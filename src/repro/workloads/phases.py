"""Phase composition of reference streams.

Real programs run in phases (SPEC2000's behaviour over a billion
instructions is famously phased), and systems time-share the L2 between
programs.  These combinators build such streams from the archetype
generators:

* :func:`phase_alternate` — switch between streams every ``phase_len``
  references (one program's phases, or round-robin multiprogramming at
  coarse quanta);
* :func:`interleave` — fine-grained interleaving (SMT-style), one
  reference from each stream in turn;
* :func:`with_pauses` — inject idle gaps between phases, during which
  the cleaning logic keeps sweeping but no references arrive (models
  I/O waits; stresses the sweep's idle-gap handling).
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.workloads.generators import MemRef


def phase_alternate(
    streams: Sequence[Iterator[MemRef]],
    phase_len: int,
    rng: random.Random = None,
    jitter: float = 0.0,
) -> Iterator[MemRef]:
    """Round-robin over ``streams`` in phases of ``phase_len`` references.

    With ``jitter`` > 0 each phase's length is scaled by a uniform
    factor in [1-jitter, 1+jitter] so phase boundaries do not beat
    against periodic structures in the workloads.
    """
    if not streams:
        raise ValueError("need at least one stream")
    if phase_len <= 0:
        raise ValueError("phase_len must be positive")
    if not 0.0 <= jitter < 1.0:
        raise ValueError("jitter must be in [0, 1)")
    rng = rng or random.Random(0)
    idx = 0
    while True:
        length = phase_len
        if jitter:
            length = max(1, int(phase_len * rng.uniform(1 - jitter,
                                                        1 + jitter)))
        stream = streams[idx % len(streams)]
        for _ in range(length):
            yield next(stream)
        idx += 1


def interleave(streams: Sequence[Iterator[MemRef]]) -> Iterator[MemRef]:
    """One reference from each stream in turn (fine-grained sharing)."""
    if not streams:
        raise ValueError("need at least one stream")
    while True:
        for stream in streams:
            yield next(stream)


def with_pauses(
    stream: Iterator[MemRef],
    active_refs: int,
    pause_cycles: int,
) -> Iterator[MemRef]:
    """Insert an idle gap of ``pause_cycles`` after every ``active_refs``.

    The pause is attached to the next reference's ``gap`` field, so a
    cycle-accounting consumer sees time pass with no memory activity —
    the situation in which the paper's cleaning logic gets the whole
    cache to itself.
    """
    if active_refs <= 0 or pause_cycles < 0:
        raise ValueError("active_refs must be positive, pause_cycles >= 0")
    count = 0
    for ref in stream:
        count += 1
        if count > active_refs:
            count = 1
            yield MemRef(ref.is_write, ref.addr, ref.gap + pause_cycles)
        else:
            yield ref
