"""Synthetic SPEC2000-like workloads.

The paper evaluates 14 SPEC2000 benchmarks (7 floating-point, 7 integer)
as precompiled Alpha binaries — unavailable here, so each benchmark is
modelled by a synthetic generator reproducing the properties that drive
the paper's figures: working-set size relative to the L2, store
fraction, access pattern (streaming / blocked-generational / pointer
chasing / Zipf reuse) and write-reuse behaviour.  See DESIGN.md §2 for
the substitution argument.

Two stream granularities:

* :class:`MemRef` streams — just the memory references, consumed
  directly by the residency/traffic experiments (fast path);
* full :class:`repro.cpu.trace.Inst` streams via
  :class:`repro.workloads.mix.InstructionMixer` — used by the IPC
  experiments.
"""

from repro.workloads.generators import (
    MemRef,
    blocked_stream,
    pointer_stream,
    streaming_stream,
    zipf_stream,
)
from repro.workloads.io import (
    TraceFormatError,
    TraceSummary,
    load_trace,
    save_trace,
    summarize_trace,
)
from repro.workloads.mix import InstructionMixer, MixConfig
from repro.workloads.phases import interleave, phase_alternate, with_pauses
from repro.workloads.spec2000 import (
    BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    BenchmarkSpec,
    get_benchmark,
    make_ref_stream,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "InstructionMixer",
    "MemRef",
    "MixConfig",
    "TraceFormatError",
    "TraceSummary",
    "blocked_stream",
    "get_benchmark",
    "interleave",
    "load_trace",
    "phase_alternate",
    "with_pauses",
    "make_ref_stream",
    "pointer_stream",
    "save_trace",
    "streaming_stream",
    "summarize_trace",
    "zipf_stream",
]
