"""Building-block memory-reference generators.

Each generator yields an endless stream of :class:`MemRef` — one data
memory reference plus ``gap``, the number of non-memory instructions
that precede it (so a cache-only run can advance its cycle clock and a
CPU run can interleave compute instructions).

The four archetypes cover the SPEC2000 behaviours the paper's results
hinge on:

``streaming``
    Sequential sweeps over arrays much larger than the cache (swim,
    applu, mgrid): lines live briefly, so long cleaning intervals never
    catch them.
``blocked``
    Generational tile reuse (mesa, apsi, gap): a tile is filled, worked
    on, then abandoned *dirty* inside a cache-resident working set —
    exactly the dead-line population cleaning reclaims.
``pointer``
    Pointer chasing over a huge footprint (mcf).
``zipf``
    Skewed reuse over a cache-sized set (parser, vpr, twolf): hot lines
    keep their written bit set and survive cleaning; cold dirty lines
    are reclaimed.
"""

from __future__ import annotations

import bisect
import random
from typing import Iterator, NamedTuple

try:  # The [fast] extra; the zipf sampler has a stdlib fallback.
    import numpy as np
except ImportError:  # pragma: no cover - environment-dependent
    np = None


class MemRef(NamedTuple):
    """One data reference: write flag, byte address, preceding non-mem insts."""

    is_write: bool
    addr: int
    gap: int


def _gap(rng: random.Random, mean_gap: float) -> int:
    """Draw the number of non-memory instructions before the next reference."""
    if mean_gap <= 0:
        return 0
    # Geometric with the requested mean; cheap and adequately bursty.
    return min(int(rng.expovariate(1.0 / mean_gap)), 64)


def streaming_stream(
    rng: random.Random,
    ws_bytes: int,
    store_ratio: float = 0.3,
    arrays: int = 3,
    stride: int = 8,
    base: int = 1 << 30,
    mean_gap: float = 1.5,
) -> Iterator[MemRef]:
    """Round-robin sequential sweeps over ``arrays`` equal arrays.

    Each position is visited in every array per step; a fixed fraction
    of the arrays (the last ``round(arrays*store_ratio)``) are written,
    matching the read-read-write structure of stencil codes.
    """
    array_bytes = max(stride, ws_bytes // max(arrays, 1))
    writers = min(arrays, round(arrays * store_ratio))
    if store_ratio > 0:
        writers = max(1, writers)
    bases = [base + i * (1 << 26) for i in range(arrays)]
    offset = 0
    while True:
        for idx, a_base in enumerate(bases):
            is_write = idx >= arrays - writers
            yield MemRef(is_write, a_base + offset, _gap(rng, mean_gap))
        offset += stride
        if offset >= array_bytes:
            offset = 0


def blocked_stream(
    rng: random.Random,
    ws_bytes: int,
    tile_bytes: int = 16 * 1024,
    reuse: int = 4,
    store_ratio: float = 0.5,
    stride: int = 8,
    base: int = 1 << 31,
    mean_gap: float = 1.5,
) -> Iterator[MemRef]:
    """Generational tile processing within a bounded working set.

    A tile is swept ``reuse`` times — reads on the first pass, a
    read/write mix afterwards — then the generator moves to the next
    tile and never writes the old one again.  Inside a cache-resident
    working set this leaves behind exactly the write-dead dirty lines
    the paper's cleaning logic targets.
    """
    n_tiles = max(1, ws_bytes // tile_bytes)
    refs_per_pass = max(1, tile_bytes // stride)
    tile_cursor = 0
    while True:
        # Mostly march through the working set in order (so the whole
        # footprint is covered quickly) with occasional random revisits.
        if rng.random() < 0.1:
            tile = rng.randrange(n_tiles)
        else:
            tile = tile_cursor
            tile_cursor = (tile_cursor + 1) % n_tiles
        tile_base = base + tile * tile_bytes
        for pass_no in range(reuse):
            for i in range(refs_per_pass):
                addr = tile_base + i * stride
                is_write = pass_no > 0 and rng.random() < store_ratio
                yield MemRef(is_write, addr, _gap(rng, mean_gap))


def pointer_stream(
    rng: random.Random,
    ws_bytes: int,
    store_ratio: float = 0.12,
    node_bytes: int = 64,
    base: int = 3 << 30,
    mean_gap: float = 2.0,
) -> Iterator[MemRef]:
    """Random pointer chase over ``ws_bytes`` of node storage (mcf-like).

    Each step reads one node; occasionally the node is also updated.
    """
    n_nodes = max(1, ws_bytes // node_bytes)
    while True:
        node = rng.randrange(n_nodes)
        addr = base + node * node_bytes
        yield MemRef(False, addr, _gap(rng, mean_gap))
        if rng.random() < store_ratio:
            yield MemRef(True, addr + 8, _gap(rng, mean_gap))


def zipf_stream(
    rng: random.Random,
    ws_bytes: int,
    alpha: float = 0.9,
    store_ratio: float = 0.35,
    fresh_write_fraction: float = 0.8,
    granule_bytes: int = 64,
    base: int = 5 << 30,
    mean_gap: float = 1.5,
    batch: int = 4096,
) -> Iterator[MemRef]:
    """Zipf-skewed reads plus allocation-style writes (parser/vpr/twolf).

    Reads follow a Zipf popularity law over the working set's blocks.
    Writes split two ways: a ``fresh_write_fraction`` share goes to a
    bump-allocator cursor marching through the working set — blocks
    written once and then only read (the write-dead generational
    population the cleaning logic reclaims) — while the remainder
    rewrites popular blocks (which therefore keep their written bits set
    and rightly survive cleaning).
    """
    n = max(1, ws_bytes // granule_bytes)
    if np is not None:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-alpha)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        # Shuffle rank->block so hot blocks are scattered across sets.
        perm = np.random.RandomState(rng.randrange(2**31)).permutation(n)
        np_rng = np.random.RandomState(rng.randrange(2**31))

        def _draw_picks():
            return perm[np.searchsorted(cdf, np_rng.random_sample(batch))]

    else:
        # Stdlib fallback (no [fast] extra): same popularity law via
        # bisect over the cumulative weights.  Deterministic per seed,
        # but a different stream than the numpy sampler — installs with
        # and without numpy produce different (equally valid) traces.
        weights_py = [float(rank) ** (-alpha) for rank in range(1, n + 1)]
        cdf_py, acc = [], 0.0
        for weight in weights_py:
            acc += weight
            cdf_py.append(acc)
        cdf_py = [value / acc for value in cdf_py]
        perm_py = list(range(n))
        random.Random(rng.randrange(2**31)).shuffle(perm_py)
        py_rng = random.Random(rng.randrange(2**31))

        def _draw_picks():
            return [
                perm_py[
                    min(bisect.bisect_left(cdf_py, py_rng.random()), n - 1)
                ]
                for _ in range(batch)
            ]

    slots_per_block = max(1, granule_bytes // 8)
    alloc_slot = 0  # bump-allocator position, in 8-byte slots
    while True:
        picks = _draw_picks()
        for block in picks:
            if rng.random() < store_ratio:
                if rng.random() < fresh_write_fraction:
                    # Write-once allocation: fill the working set slot by
                    # slot, so the writes within a block coalesce in the
                    # write buffer the way a real allocator's do.
                    target_block, slot = divmod(alloc_slot, slots_per_block)
                    alloc_slot = (alloc_slot + 1) % (n * slots_per_block)
                    addr = base + target_block * granule_bytes + slot * 8
                else:
                    addr = base + int(block) * granule_bytes
                yield MemRef(True, addr, _gap(rng, mean_gap))
            else:
                addr = (
                    base
                    + int(block) * granule_bytes
                    + rng.randrange(0, granule_bytes, 8)
                )
                yield MemRef(False, addr, _gap(rng, mean_gap))
