"""Reference-trace file I/O.

Lets users persist synthetic streams or bring their own traces to the
simulator.  Two formats, auto-detected on load:

* **text** — one record per line, ``R``/``W``, hex address, gap;
  ``#`` starts a comment.  Diff-friendly.
* **binary** — fixed 11-byte little-endian records behind a magic
  header; ~6× smaller and much faster to parse.

Both round-trip :class:`~repro.workloads.generators.MemRef` exactly.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.workloads.generators import MemRef

#: Magic prefix of the binary format.
BINARY_MAGIC = b"RPTR\x01"
#: One record: flags (bit0 = write), 8-byte address, 2-byte gap.
_RECORD = struct.Struct("<BQH")

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """Raised on malformed trace files."""


def save_trace_text(refs: Iterable[MemRef], path: PathLike) -> int:
    """Write ``refs`` as text; returns the number of records written."""
    n = 0
    with open(path, "w") as fh:
        fh.write("# repro reference trace: <R|W> <hex addr> <gap>\n")
        for ref in refs:
            fh.write(
                f"{'W' if ref.is_write else 'R'} {ref.addr:#x} {ref.gap}\n"
            )
            n += 1
    return n


def save_trace_binary(refs: Iterable[MemRef], path: PathLike) -> int:
    """Write ``refs`` in the binary format; returns the record count."""
    n = 0
    with open(path, "wb") as fh:
        fh.write(BINARY_MAGIC)
        pack = _RECORD.pack
        for ref in refs:
            if ref.gap > 0xFFFF:
                raise TraceFormatError(f"gap {ref.gap} exceeds format limit")
            fh.write(pack(int(ref.is_write), ref.addr, ref.gap))
            n += 1
    return n


def save_trace(
    refs: Iterable[MemRef], path: PathLike, fmt: str = "binary"
) -> int:
    """Write a trace in the requested format ('binary' or 'text')."""
    if fmt == "binary":
        return save_trace_binary(refs, path)
    if fmt == "text":
        return save_trace_text(refs, path)
    raise TraceFormatError(f"unknown trace format {fmt!r}")


def _load_text(fh: io.TextIOBase) -> Iterator[MemRef]:
    for lineno, line in enumerate(fh, start=1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise TraceFormatError(f"line {lineno}: expected 2-3 fields")
        kind, addr_s = parts[0].upper(), parts[1]
        if kind not in ("R", "W"):
            raise TraceFormatError(f"line {lineno}: bad op {parts[0]!r}")
        try:
            addr = int(addr_s, 0)
            gap = int(parts[2]) if len(parts) == 3 else 0
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from None
        if addr < 0 or gap < 0:
            raise TraceFormatError(f"line {lineno}: negative field")
        yield MemRef(kind == "W", addr, gap)


def _load_binary(fh: io.BufferedIOBase) -> Iterator[MemRef]:
    unpack = _RECORD.unpack
    size = _RECORD.size
    while True:
        chunk = fh.read(size)
        if not chunk:
            return
        if len(chunk) != size:
            raise TraceFormatError("truncated binary trace record")
        flags, addr, gap = unpack(chunk)
        yield MemRef(bool(flags & 1), addr, gap)


def load_trace(path: PathLike) -> Iterator[MemRef]:
    """Load a trace file, auto-detecting its format.

    Returns a generator; the file stays open until it is exhausted.
    """
    fh = open(path, "rb")
    head = fh.read(len(BINARY_MAGIC))
    if head == BINARY_MAGIC:
        return _load_binary(fh)
    fh.close()
    return _load_text(open(path, "r"))


@dataclass
class TraceSummary:
    """Aggregate statistics of a trace (see :func:`summarize_trace`)."""

    records: int = 0
    writes: int = 0
    total_gap: int = 0
    footprint_lines: int = 0
    line_bytes: int = 64

    @property
    def write_ratio(self) -> float:
        return self.writes / self.records if self.records else 0.0

    @property
    def instructions(self) -> int:
        """Total instruction count implied by the gaps."""
        return self.records + self.total_gap

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_lines * self.line_bytes


def summarize_trace(
    refs: Iterable[MemRef], line_bytes: int = 64
) -> TraceSummary:
    """One pass over ``refs`` computing the workload-shape statistics."""
    summary = TraceSummary(line_bytes=line_bytes)
    lines = set()
    for ref in refs:
        summary.records += 1
        summary.writes += int(ref.is_write)
        summary.total_gap += ref.gap
        lines.add(ref.addr // line_bytes)
    summary.footprint_lines = len(lines)
    return summary
