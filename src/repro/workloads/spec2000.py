"""The 14 benchmark models of the paper's evaluation.

Seven floating-point and seven integer SPEC2000 benchmarks, each mapped
to a generator archetype (:mod:`repro.workloads.generators`) with
parameters chosen to reproduce the qualitative behaviour the paper
reports per benchmark:

* applu/swim/mgrid/equake (FP) and mcf (INT) — footprints much larger
  than the L2; the paper notes these "show little reduction with 4M
  interval" because lines are evicted before long intervals elapse.
* apsi/mesa (FP) and gap/parser (INT) — the paper's high-dirty-fraction
  outliers in Figure 1: cache-resident working sets that accumulate
  write-dead dirty lines.

Working-set sizes are expressed *relative to the L2 capacity* so the
suite scales coherently when experiments run the reduced geometry (see
DESIGN.md §5).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.workloads.generators import (
    MemRef,
    blocked_stream,
    pointer_stream,
    streaming_stream,
    zipf_stream,
)


@dataclass(frozen=True)
class BenchmarkSpec:
    """One synthetic benchmark: archetype + parameters.

    ``ws_factor`` scales the working set as a multiple of the L2 size;
    remaining knobs are passed through to the archetype generator.
    """

    name: str
    suite: str  # "fp" or "int"
    kind: str  # "streaming" | "blocked" | "pointer" | "zipf"
    ws_factor: float
    store_ratio: float
    params: Dict[str, object] = field(default_factory=dict)

    def working_set_bytes(self, l2_bytes: int) -> int:
        return max(4096, int(self.ws_factor * l2_bytes))


#: 7 floating-point benchmarks (paper Figure 3 / 5 population).
FP_BENCHMARKS: List[BenchmarkSpec] = [
    BenchmarkSpec("applu", "fp", "streaming", 6.0, 0.35, {"arrays": 5}),
    BenchmarkSpec("swim", "fp", "streaming", 8.0, 0.30, {"arrays": 4}),
    BenchmarkSpec("mgrid", "fp", "streaming", 4.0, 0.25, {"arrays": 3}),
    BenchmarkSpec(
        "equake", "fp", "pointer", 4.0, 0.20, {"node_bytes": 64, "mean_gap": 1.5}
    ),
    BenchmarkSpec("art", "fp", "streaming", 2.0, 0.30, {"arrays": 3}),
    BenchmarkSpec(
        "mesa",
        "fp",
        "blocked",
        0.70,
        0.55,
        {"tile_frac": 1 / 64, "reuse": 6},
    ),
    BenchmarkSpec(
        "apsi",
        "fp",
        "blocked",
        0.90,
        0.50,
        {"tile_frac": 1 / 32, "reuse": 4},
    ),
]

#: 7 integer benchmarks (paper Figure 4 / 6 population).
INT_BENCHMARKS: List[BenchmarkSpec] = [
    BenchmarkSpec("mcf", "int", "pointer", 8.0, 0.12, {}),
    BenchmarkSpec(
        "gap",
        "int",
        "blocked",
        0.80,
        0.45,
        {"tile_frac": 1 / 16, "reuse": 3},
    ),
    BenchmarkSpec(
        "parser",
        "int",
        "zipf",
        0.90,
        0.25,
        {"alpha": 0.8, "fresh_write_fraction": 0.85},
    ),
    BenchmarkSpec("gzip", "int", "streaming", 1.5, 0.25, {"arrays": 3}),
    BenchmarkSpec(
        "vpr",
        "int",
        "zipf",
        0.50,
        0.30,
        {"alpha": 1.0, "fresh_write_fraction": 0.7},
    ),
    BenchmarkSpec(
        "twolf",
        "int",
        "zipf",
        0.40,
        0.35,
        {"alpha": 1.1, "fresh_write_fraction": 0.7},
    ),
    BenchmarkSpec("bzip2", "int", "streaming", 2.0, 0.35, {"arrays": 2}),
]

BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec for spec in FP_BENCHMARKS + INT_BENCHMARKS
}


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
        ) from None


def make_ref_stream(
    spec: BenchmarkSpec, l2_bytes: int, seed: int = 0
) -> Iterator[MemRef]:
    """Instantiate ``spec``'s endless memory-reference stream.

    ``l2_bytes`` anchors the working-set scaling; ``seed`` makes the
    stream reproducible.
    """
    # Derive the per-benchmark RNG seed with crc32, not hash(): str hash
    # is randomized per process (PYTHONHASHSEED), which would make the
    # "reproducible" stream differ between interpreter invocations.
    rng = random.Random(
        (zlib.crc32(spec.name.encode("ascii")) ^ (seed * 0x9E3779B9)) & 0x7FFFFFFF
    )
    ws = spec.working_set_bytes(l2_bytes)
    params = dict(spec.params)
    if spec.kind == "streaming":
        return streaming_stream(
            rng, ws_bytes=ws, store_ratio=spec.store_ratio, **params
        )
    if spec.kind == "blocked":
        tile_frac = float(params.pop("tile_frac", 1 / 32))
        tile_bytes = max(1024, int(l2_bytes * tile_frac))
        return blocked_stream(
            rng,
            ws_bytes=ws,
            tile_bytes=tile_bytes,
            store_ratio=spec.store_ratio,
            **params,
        )
    if spec.kind == "pointer":
        return pointer_stream(
            rng, ws_bytes=ws, store_ratio=spec.store_ratio, **params
        )
    if spec.kind == "zipf":
        return zipf_stream(
            rng, ws_bytes=ws, store_ratio=spec.store_ratio, **params
        )
    raise ValueError(f"unknown benchmark kind {spec.kind!r}")
