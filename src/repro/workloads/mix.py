"""Turn memory-reference streams into full instruction streams.

The IPC experiments need realistic instruction-level structure around
the memory references: compute instructions with register dependences,
a loop skeleton with predictable back-edges, and occasional
data-dependent (hard-to-predict) branches.  :class:`InstructionMixer`
synthesises that structure deterministically from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.cpu.trace import Inst, OpClass
from repro.workloads.generators import MemRef


@dataclass(frozen=True)
class MixConfig:
    """Shape of the non-memory instruction mix."""

    #: Fraction of ALU filler that is floating point (suite dependent).
    fp_fraction: float = 0.4
    #: Of the FP/INT filler, fraction using the mult/div unit.
    mul_fraction: float = 0.08
    #: A branch roughly every this many instructions.
    branch_period: int = 7
    #: Fraction of branches that are data dependent (random outcome).
    random_branch_fraction: float = 0.15
    #: Taken probability of a data-dependent branch.
    random_branch_bias: float = 0.6
    #: Instructions in the synthetic loop body (controls I-cache reuse).
    loop_body_insts: int = 256
    #: Base address of the code region.
    code_base: int = 0x0040_0000
    #: Architectural register pool size.
    registers: int = 32


class InstructionMixer:
    """Deterministic MemRef → Inst stream expansion."""

    def __init__(self, config: MixConfig = MixConfig(), seed: int = 0) -> None:
        self.config = config
        self._rng = random.Random(seed)
        self._emitted = 0
        self._recent_dests = [0, 1, 2]
        self._next_reg = 3
        # Branches live at *fixed* code slots (every branch_period-th
        # slot plus the loop back-edge), and each branch slot gets a
        # fixed personality — as in real code: mostly strongly biased
        # branches the predictor learns, plus a data-dependent minority
        # it cannot.
        self._branch_slots = set(
            range(config.branch_period - 1, config.loop_body_insts,
                  config.branch_period)
        )
        self._branch_slots.add(config.loop_body_insts - 1)
        self._branch_bias = {}
        for slot in self._branch_slots:
            roll = self._rng.random()
            if roll < config.random_branch_fraction:
                self._branch_bias[slot] = config.random_branch_bias
            elif roll < 0.5 + config.random_branch_fraction / 2:
                self._branch_bias[slot] = 0.97
            else:
                self._branch_bias[slot] = 0.03

    # -- internals ----------------------------------------------------------

    def _pc(self) -> int:
        cfg = self.config
        slot = self._emitted % cfg.loop_body_insts
        return cfg.code_base + slot * 4

    def _alloc_dest(self) -> int:
        reg = self._next_reg
        self._next_reg = (self._next_reg + 1) % self.config.registers
        self._recent_dests.append(reg)
        if len(self._recent_dests) > 8:
            self._recent_dests.pop(0)
        return reg

    def _pick_srcs(self, n: int = 2) -> tuple:
        rng = self._rng
        return tuple(
            rng.choice(self._recent_dests) for _ in range(rng.randint(1, n))
        )

    def _filler(self) -> Inst:
        """One compute instruction drawn from the configured mix."""
        rng = self._rng
        cfg = self.config
        if rng.random() < cfg.fp_fraction:
            op = OpClass.FP_MUL if rng.random() < cfg.mul_fraction else OpClass.FP_ALU
        else:
            op = OpClass.INT_MUL if rng.random() < cfg.mul_fraction else OpClass.INT_ALU
        inst = Inst(
            op, self._pc(), dest=self._alloc_dest(), srcs=self._pick_srcs()
        )
        self._emitted += 1
        return inst

    def _branch(self) -> Inst:
        """Loop back-edge (always taken) or a slot-biased branch."""
        rng = self._rng
        cfg = self.config
        pc = self._pc()
        slot = self._emitted % cfg.loop_body_insts
        if slot == cfg.loop_body_insts - 1:
            taken, target = True, cfg.code_base
        else:
            taken = rng.random() < self._branch_bias[slot]
            # Per-slot fixed target keeps the BTB effective; the target
            # stays within the body so the fetch stream is unchanged.
            target = pc + 4
        inst = Inst(
            OpClass.BRANCH, pc, srcs=self._pick_srcs(1), taken=taken, target=target
        )
        self._emitted += 1
        return inst

    def _mem(self, ref: MemRef) -> Inst:
        op = OpClass.STORE if ref.is_write else OpClass.LOAD
        dest = self._alloc_dest() if op is OpClass.LOAD else -1
        inst = Inst(
            op, self._pc(), addr=ref.addr, dest=dest, srcs=self._pick_srcs(1)
        )
        self._emitted += 1
        return inst

    # -- public API ------------------------------------------------------------

    def _at_branch_slot(self) -> bool:
        return (self._emitted % self.config.loop_body_insts) in self._branch_slots

    def expand(self, refs: Iterable[MemRef]) -> Iterator[Inst]:
        """Expand a reference stream into a full instruction stream.

        Branch slots interleave naturally: whenever emission reaches a
        branch slot, the branch is issued before the pending filler or
        memory instruction, keeping branch PCs fixed across iterations.
        """
        for ref in refs:
            for _ in range(ref.gap):
                if self._at_branch_slot():
                    yield self._branch()
                yield self._filler()
            if self._at_branch_slot():
                yield self._branch()
            yield self._mem(ref)
