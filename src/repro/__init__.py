"""repro: reproduction of "Area-Efficient Error Protection for Caches".

Soontae Kim, DATE 2006.  The paper protects only *dirty* L2 lines with
ECC (clean lines need just parity — they can be refetched), keeps the
dirty population small with a written-bit cleaning heuristic, and stores
the ECCs in a small per-set shared array, cutting error-protection area
by 59% for a 1 MB L2 at <1% IPC loss.

Package map
-----------
``repro.ecc``
    Parity and SECDED(72,64) codecs, fault injection.
``repro.cache``
    Trace-driven memory hierarchy (L1s, write buffer, L2, memory bus).
``repro.cpu``
    Four-issue out-of-order timing model (Table 1).
``repro.core``
    The paper's scheme: cleaning logic, shared ECC array, protected L2,
    area model.
``repro.workloads``
    Synthetic SPEC2000-like benchmark models.
``repro.experiments``
    Harness regenerating every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
