"""One-pass out-of-order timing model of the Table 1 processor.

The model processes the dynamic instruction stream once, computing for
every instruction its fetch, dispatch, issue, completion and commit
times under the machine's constraints:

* fetch/decode bandwidth (4/cycle) and I-cache/ITLB latency per fetch
  block, with front-end redirect stalls on branch mispredicts;
* RUU (64) and LSQ (32) occupancy — an instruction cannot dispatch
  until an older one commits and frees an entry;
* functional-unit structural hazards (Table 1 pool) and true register
  data dependences;
* load latency taken live from the memory hierarchy, so bus contention
  from the protected L2's extra write-backs lengthens load misses;
* in-order commit, 4 per cycle; stores write through to the hierarchy
  at commit.

This is the standard "scoreboard in one pass" approximation of
SimpleScalar's sim-outorder: it tracks when each resource frees rather
than iterating cycle by cycle, which keeps Python fast enough for
million-instruction runs while preserving the latency/bandwidth/
occupancy interactions the paper's IPC experiment depends on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

from repro.cache.hierarchy import MemoryHierarchy
from repro.cpu.branch import BranchPredictor, BranchPredictorConfig
from repro.cpu.config import ProcessorConfig
from repro.cpu.tlb import Tlb, TlbConfig
from repro.cpu.trace import EXEC_LATENCY, Inst, OpClass


@dataclass
class RunResult:
    """Summary of one timed run."""

    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredicts: int = 0
    #: Sum of end-to-end load latencies (issue to data ready), cycles.
    load_latency_total: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    @property
    def avg_load_latency(self) -> float:
        """Mean cycles from load issue to data availability."""
        return self.load_latency_total / self.loads if self.loads else 0.0


class _BandwidthGate:
    """Enforces at most ``width`` events per cycle, in nondecreasing time."""

    __slots__ = ("width", "_cycle", "_count")

    def __init__(self, width: int) -> None:
        self.width = width
        self._cycle = -1
        self._count = 0

    def admit(self, cycle: int) -> int:
        """Return the first cycle >= ``cycle`` with a free slot; claim it."""
        if cycle < self._cycle:
            cycle = self._cycle
        if cycle == self._cycle:
            if self._count >= self.width:
                cycle += 1
                self._cycle, self._count = cycle, 0
        else:
            self._cycle, self._count = cycle, 0
        self._count += 1
        return cycle


class OoOCore:
    """The four-issue out-of-order core driving a memory hierarchy."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        config: Optional[ProcessorConfig] = None,
        branch_config: Optional[BranchPredictorConfig] = None,
        itlb_config: Optional[TlbConfig] = None,
        dtlb_config: Optional[TlbConfig] = None,
    ) -> None:
        self.config = config or ProcessorConfig()
        self.hierarchy = hierarchy
        self.predictor = BranchPredictor(branch_config or BranchPredictorConfig())
        self.itlb = Tlb(itlb_config or TlbConfig(entries=64, ways=4))
        self.dtlb = Tlb(dtlb_config or TlbConfig(entries=128, ways=4))
        self._register_telemetry()

    def _register_telemetry(self) -> None:
        """Register the core's stats into the hierarchy's registry.

        A later core on the same hierarchy replaces an earlier one's
        sources — the registry reflects whichever core is driving it.
        """
        reg = self.hierarchy.registry
        for name, source in (
            ("core.branch", self.predictor.stats),
            ("core.itlb", self.itlb),
            ("core.dtlb", self.dtlb),
        ):
            reg.unregister_source(name)
            reg.register_source(name, source)

        fu_pool = self.config.functional_units.pool()
        #: Per op class, the next-free cycle of each unit instance.
        self._fu_free: Dict[OpClass, List[int]] = {
            op: [0] * count for op, count in fu_pool.items()
        }

    # -- main loop -------------------------------------------------------------

    def run(self, insts: Iterable[Inst]) -> RunResult:
        cfg = self.config
        result = RunResult()

        fetch_gate = _BandwidthGate(cfg.decode_width)
        commit_gate = _BandwidthGate(cfg.commit_width)
        #: Commit times of in-flight instructions (RUU) / mem ops (LSQ).
        ruu: Deque[int] = deque()
        lsq: Deque[int] = deque()
        reg_ready: Dict[int, int] = {}
        #: Earliest cycle the front end may deliver the next instruction.
        stall_until = 0
        #: Availability time of the current fetch block.
        block_ready = 0
        current_block = None
        last_commit = 0
        block_mask = ~(cfg.fetch_block_bytes - 1)

        for inst in insts:
            result.instructions += 1

            # ---- fetch ----
            block = inst.pc & block_mask
            if block != current_block:
                current_block = block
                t = max(stall_until, block_ready)
                penalty = self.itlb.translate(inst.pc)
                lat = self.hierarchy.ifetch(inst.pc, t)
                block_ready = t + penalty + (lat - 1)
            fetch_time = fetch_gate.admit(max(stall_until, block_ready))

            # ---- dispatch: RUU/LSQ occupancy ----
            dispatch = fetch_time + 1
            while ruu and ruu[0] <= dispatch:
                ruu.popleft()
            if len(ruu) >= cfg.ruu_entries:
                dispatch = ruu.popleft()
            if inst.op.is_mem:
                while lsq and lsq[0] <= dispatch:
                    lsq.popleft()
                if len(lsq) >= cfg.lsq_entries:
                    dispatch = lsq.popleft()

            # ---- issue: operands + functional unit ----
            ready = dispatch
            for src in inst.srcs:
                avail = reg_ready.get(src, 0)
                if avail > ready:
                    ready = avail
            units = self._fu_free[inst.op]
            unit_idx = min(range(len(units)), key=units.__getitem__)
            issue = max(ready, units[unit_idx])

            # ---- execute ----
            latency = EXEC_LATENCY[inst.op]
            if inst.op is OpClass.LOAD:
                latency += self.dtlb.translate(inst.addr)
                latency += self.hierarchy.load(inst.addr, issue)
                result.loads += 1
                result.load_latency_total += latency
            elif inst.op is OpClass.STORE:
                latency += self.dtlb.translate(inst.addr)
                result.stores += 1
            complete = issue + latency
            # Pipelined units accept a new op next cycle; the single
            # mult/div units are unpipelined and block for the full op.
            if inst.op in (OpClass.INT_MUL, OpClass.FP_MUL):
                units[unit_idx] = complete
            else:
                units[unit_idx] = issue + 1

            if inst.dest >= 0:
                reg_ready[inst.dest] = complete

            # ---- branch resolution ----
            if inst.op is OpClass.BRANCH:
                result.branches += 1
                mispredict = self.predictor.predict_and_update(
                    inst.pc, inst.taken, inst.target
                )
                if mispredict:
                    result.mispredicts += 1
                    redirect = complete + cfg.mispredict_penalty
                    if redirect > stall_until:
                        stall_until = redirect
                    current_block = None  # refetch starts a new block

            # ---- commit (in order) ----
            commit = commit_gate.admit(max(complete, last_commit))
            last_commit = commit
            ruu.append(commit)
            if inst.op.is_mem:
                lsq.append(commit)
            if inst.op is OpClass.STORE:
                # Write-through L1 + write buffer at retirement.
                self.hierarchy.store(inst.addr, commit)

        result.cycles = last_commit
        return result
