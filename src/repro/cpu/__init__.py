"""CPU substrate: the four-issue out-of-order processor of Table 1.

A cycle-approximate, one-pass timing model in the spirit of
SimpleScalar's ``sim-outorder`` (which the paper modified): a 64-entry
RUU and 32-entry LSQ bound in-flight work, functional-unit scoreboards
model structural hazards, a two-level branch predictor with a 2K-entry
BTB models control flow, and every memory reference goes through the
:class:`repro.cache.MemoryHierarchy` — so extra write-back traffic from
the paper's scheme contends on the memory bus and shows up as IPC loss,
which is exactly the paper's Section 5.2 measurement.
"""

from repro.cpu.branch import BranchPredictor, BranchPredictorConfig
from repro.cpu.config import FunctionalUnits, ProcessorConfig
from repro.cpu.ooo import OoOCore, RunResult
from repro.cpu.tlb import Tlb, TlbConfig
from repro.cpu.trace import Inst, OpClass

__all__ = [
    "BranchPredictor",
    "BranchPredictorConfig",
    "FunctionalUnits",
    "Inst",
    "OoOCore",
    "OpClass",
    "ProcessorConfig",
    "RunResult",
    "Tlb",
    "TlbConfig",
]
