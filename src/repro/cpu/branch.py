"""Two-level branch predictor with a 2K-entry BTB (Table 1).

A two-level adaptive predictor: a global branch-history register is
combined (gshare-style, shifted XOR) with the branch address to index a
pattern history table of 2-bit saturating counters.  The history is
deliberately narrower than the table index so each static branch keeps
a mostly-private group of counters — the predictor then degrades
gracefully to per-branch bias prediction when history carries no
correlation, as in real designs.

A direct-mapped, tagged branch target buffer supplies targets; a taken
prediction without a BTB target is treated as a mispredict (the
front-end cannot redirect without a target).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.metrics import StatsSourceMixin


@dataclass(frozen=True)
class BranchPredictorConfig:
    #: log2 of the pattern-history-table size.
    pht_bits: int = 12
    #: Global history bits folded into the index.
    history_bits: int = 6
    btb_entries: int = 2048

    def __post_init__(self) -> None:
        if not 0 < self.pht_bits <= 24:
            raise ValueError("pht_bits must be in 1..24")
        if not 0 <= self.history_bits <= self.pht_bits:
            raise ValueError("history_bits must be in 0..pht_bits")
        if self.btb_entries & (self.btb_entries - 1):
            raise ValueError("btb_entries must be a power of two")


@dataclass
class BranchStats(StatsSourceMixin):
    labels = {"component": "branch-predictor"}

    predictions: int = 0
    mispredictions: int = 0
    btb_misses: int = 0

    @property
    def mispredict_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions


class BranchPredictor:
    """Two-level direction predictor + direct-mapped BTB."""

    def __init__(self, config: BranchPredictorConfig = BranchPredictorConfig()):
        self.config = config
        self._pht_size = 1 << config.pht_bits
        self._pht_mask = self._pht_size - 1
        #: 2-bit saturating counters, initialised weakly taken.
        self._pht = [2] * self._pht_size
        self._history = 0
        self._history_mask = (1 << config.history_bits) - 1
        #: Left-shift that spreads the history across the index's top bits.
        self._history_shift = config.pht_bits - config.history_bits
        self._btb_mask = config.btb_entries - 1
        #: BTB entry: pc tag -> target; direct mapped on low pc bits.
        self._btb_tags = [0] * config.btb_entries
        self._btb_targets = [0] * config.btb_entries
        self._btb_valid = [False] * config.btb_entries
        self.stats = BranchStats()

    def _index(self, pc: int) -> int:
        return (
            (pc >> 2) ^ (self._history << self._history_shift)
        ) & self._pht_mask

    def predict_and_update(self, pc: int, taken: bool, target: int) -> bool:
        """Predict the branch at ``pc``; train; return True on mispredict."""
        self.stats.predictions += 1
        idx = self._index(pc)
        counter = self._pht[idx]
        pred_taken = counter >= 2

        btb_idx = (pc >> 2) & self._btb_mask
        btb_hit = self._btb_valid[btb_idx] and self._btb_tags[btb_idx] == pc
        pred_target = self._btb_targets[btb_idx] if btb_hit else None

        mispredict = pred_taken != taken
        if not mispredict and taken:
            if pred_target is None:
                self.stats.btb_misses += 1
                mispredict = True
            elif pred_target != target:
                mispredict = True
        if mispredict:
            self.stats.mispredictions += 1

        # Train the PHT counter and the history register.
        if taken:
            self._pht[idx] = min(3, counter + 1)
        else:
            self._pht[idx] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

        # Allocate/refresh the BTB entry for taken branches.
        if taken:
            self._btb_valid[btb_idx] = True
            self._btb_tags[btb_idx] = pc
            self._btb_targets[btb_idx] = target

        return mispredict
