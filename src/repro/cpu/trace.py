"""Instruction trace records consumed by the timing model.

Workload generators (:mod:`repro.workloads`) emit streams of
:class:`Inst`; the cache-only experiments use just the LOAD/STORE
records, the IPC experiments feed the full stream to
:class:`repro.cpu.ooo.OoOCore`.
"""

from __future__ import annotations

import enum
from typing import Tuple


class OpClass(enum.IntEnum):
    """Instruction classes with distinct timing behaviour."""

    INT_ALU = 0
    INT_MUL = 1
    FP_ALU = 2
    FP_MUL = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6

    @property
    def is_mem(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)


#: Execution latency (cycles) per op class; LOAD latency comes from the
#: memory hierarchy instead.
EXEC_LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.FP_ALU: 2,
    OpClass.FP_MUL: 4,
    OpClass.LOAD: 1,  # address generation; memory latency added on top
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
}


class Inst:
    """One dynamic instruction.

    ``srcs``/``dest`` are abstract register ids (any ints); ``-1`` means
    no destination.  For branches, ``taken``/``target`` are the *actual*
    outcome the predictor is checked against.
    """

    __slots__ = ("op", "pc", "addr", "dest", "srcs", "taken", "target")

    def __init__(
        self,
        op: OpClass,
        pc: int,
        addr: int = 0,
        dest: int = -1,
        srcs: Tuple[int, ...] = (),
        taken: bool = False,
        target: int = 0,
    ) -> None:
        self.op = op
        self.pc = pc
        self.addr = addr
        self.dest = dest
        self.srcs = srcs
        self.taken = taken
        self.target = target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.op.is_mem:
            extra = f", addr={self.addr:#x}"
        elif self.op is OpClass.BRANCH:
            extra = f", taken={self.taken}"
        return f"Inst({self.op.name}, pc={self.pc:#x}{extra})"
