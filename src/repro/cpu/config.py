"""Processor configuration reproducing the paper's Table 1."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cpu.trace import OpClass


@dataclass(frozen=True)
class FunctionalUnits:
    """Functional-unit pool (Table 1): counts per unit class."""

    int_add: int = 4
    int_mul: int = 1
    fp_add: int = 1
    fp_mul: int = 1
    #: Cache ports shared by loads and stores (SimpleScalar default).
    mem_ports: int = 2

    def pool(self) -> Dict[OpClass, int]:
        """Unit count keyed by the op class that uses it."""
        return {
            OpClass.INT_ALU: self.int_add,
            OpClass.INT_MUL: self.int_mul,
            OpClass.FP_ALU: self.fp_add,
            OpClass.FP_MUL: self.fp_mul,
            OpClass.BRANCH: self.int_add,  # branches share the INT adders
            OpClass.LOAD: self.mem_ports,
            OpClass.STORE: self.mem_ports,
        }


@dataclass(frozen=True)
class ProcessorConfig:
    """Table 1 baseline: a typical four-issue superscalar."""

    ruu_entries: int = 64
    lsq_entries: int = 32
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    functional_units: FunctionalUnits = field(default_factory=FunctionalUnits)
    #: Front-end refill penalty after a branch mispredict resolves.
    mispredict_penalty: int = 3
    #: Instructions per 32 B fetch block (4 B fixed-width ISA).
    fetch_block_bytes: int = 32

    def describe(self) -> str:
        """Render the Table 1 parameter block."""
        fu = self.functional_units
        rows = [
            ("Issue window", f"{self.ruu_entries}-entry RUU"),
            ("", f"{self.lsq_entries}-entry LSQ"),
            ("decode and issue rate", f"{self.issue_width} instructions per cycle"),
            (
                "Functional units",
                f"{fu.int_add} INT add, {fu.int_mul} INT mult/div",
            ),
            ("", f"{fu.fp_add} FP add, {fu.fp_mul} FP mult/div"),
        ]
        width = max(len(r[0]) for r in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)
