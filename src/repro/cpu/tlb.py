"""Instruction and data TLBs (Table 1: 64-entry/4-way and 128-entry/4-way)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.telemetry.metrics import StatsSourceMixin


@dataclass(frozen=True)
class TlbConfig:
    entries: int = 64
    ways: int = 4
    page_bytes: int = 4096
    #: Fixed page-walk penalty on a miss (SimpleScalar's default 30).
    miss_penalty: int = 30

    def __post_init__(self) -> None:
        if self.entries % self.ways != 0:
            raise ValueError("entries must be divisible by ways")
        n_sets = self.entries // self.ways
        if n_sets & (n_sets - 1):
            raise ValueError("number of TLB sets must be a power of two")
        if self.page_bytes & (self.page_bytes - 1):
            raise ValueError("page_bytes must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.entries // self.ways


@dataclass
class TlbStats(StatsSourceMixin):
    labels = {"component": "tlb"}

    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class Tlb:
    """Set-associative LRU TLB; returns the translation penalty in cycles."""

    def __init__(self, config: TlbConfig = TlbConfig()) -> None:
        self.config = config
        self._offset_bits = config.page_bytes.bit_length() - 1
        self._index_mask = config.n_sets - 1
        #: Per set: list of (vpn, stamp), most recent last.
        self._sets: List[List[List[int]]] = [
            [] for _ in range(config.n_sets)
        ]
        self._stamp = 0
        self.stats = TlbStats()

    # -- telemetry -----------------------------------------------------------

    @property
    def labels(self) -> Dict[str, str]:
        return {"component": "tlb", "entries": str(self.config.entries)}

    def as_dict(self) -> Dict[str, float]:
        d = self.stats.as_dict()
        d["miss_rate"] = self.stats.miss_rate
        return d

    def reset(self, cycle: int = 0) -> None:
        self.stats.reset(cycle)

    def translate(self, addr: int) -> int:
        """Look up ``addr``; return 0 on a hit, miss_penalty on a miss."""
        vpn = addr >> self._offset_bits
        set_idx = vpn & self._index_mask
        entries = self._sets[set_idx]
        self._stamp += 1
        for entry in entries:
            if entry[0] == vpn:
                entry[1] = self._stamp
                self.stats.hits += 1
                return 0
        self.stats.misses += 1
        if len(entries) >= self.config.ways:
            # Evict the LRU entry.
            entries.remove(min(entries, key=lambda e: e[1]))
        entries.append([vpn, self._stamp])
        return self.config.miss_penalty
