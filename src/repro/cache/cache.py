"""Generic set-associative cache with write-back / write-through policies.

This is the substrate the paper's protected L2 extends: the base class
exposes hooks (``_on_write_line``, ``_evict_way``, ``advance``) that
:class:`repro.core.protected_cache.ProtectedL2` overrides to add the
written-bit semantics, cleaning sweeps and shared-ECC-array bookkeeping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.line import CacheLine
from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.cache.stats import CacheStats, DirtyIntegrator
from repro.telemetry.tracing import EventTracer


class WritePolicy(enum.Enum):
    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


class WritebackReason(enum.Enum):
    """Why a line left the cache toward the next memory level."""

    REPLACEMENT = "replacement"
    CLEANING = "cleaning"
    ECC_EVICTION = "ecc-eviction"
    #: Eager write-back (Lee et al. [7]), used by the ablation baseline.
    EAGER = "eager"
    FLUSH = "flush"


@dataclass(frozen=True)
class Writeback:
    """One dirty-line write-back: block address plus its cause.

    ``bytes`` is the payload size actually sent downstream; ``None``
    (the nominal path) means the full line.  The wb-compress variant
    fills it in with the compressed size so main memory and the
    bus-energy model are charged what really crossed the bus.
    """

    addr: int
    reason: WritebackReason
    bytes: Optional[int] = None


@dataclass
class AccessResult:
    """Outcome of one cache access.

    ``fill_addr`` is the block address fetched from the next level (None
    on hits and on no-allocate write misses).  ``writebacks`` lists every
    block pushed down to the next level by this access, including any
    forced by the protected cache's ECC-array eviction.
    """

    hit: bool
    is_write: bool
    fill_addr: Optional[int] = None
    writebacks: List[Writeback] = field(default_factory=list)
    #: True for write-through forwarding of the written data.
    wrote_through: bool = False


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass
class CacheConfig:
    """Geometry and policy of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    #: Allocate a line on a write miss (write-back caches normally do;
    #: the paper's write-through L1D does not, it forwards via the buffer).
    write_allocate: bool = True
    hit_latency: int = 1
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if not _is_pow2(self.line_bytes):
            raise ValueError("line_bytes must be a power of two")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValueError("size must be divisible by ways*line_bytes")
        n_sets = self.size_bytes // (self.line_bytes * self.ways)
        if not _is_pow2(n_sets):
            raise ValueError("number of sets must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def n_lines(self) -> int:
        return self.n_sets * self.ways


class SetAssociativeCache:
    """A single level of set-associative cache.

    The cache is address-only (trace driven): it tracks tags and line
    state, not payloads.  Payload-level protection behaviour is modelled
    separately by :mod:`repro.ecc` and exercised in the fault-injection
    experiments.
    """

    def __init__(self, config: CacheConfig, seed: int = 0) -> None:
        self.config = config
        self.policy: ReplacementPolicy = make_policy(config.replacement, seed=seed)
        self.n_sets = config.n_sets
        self.ways = config.ways
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._index_mask = self.n_sets - 1
        self._index_bits = self.n_sets.bit_length() - 1
        self.sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(config.ways)] for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()
        self.dirty = DirtyIntegrator(total_lines=config.n_lines)
        self._stamp = 0
        #: Opt-in structured event tracing; ``None`` keeps every
        #: emission site to one attribute test on cold paths only.
        self._tracer: Optional[EventTracer] = None

    # -- address helpers ---------------------------------------------------

    def locate(self, addr: int) -> Tuple[int, int]:
        """Return (set index, tag) for a byte address."""
        block = addr >> self._offset_bits
        return block & self._index_mask, block >> self._index_bits

    def block_addr(self, set_idx: int, tag: int) -> int:
        """Reconstruct the byte address of a block from (set, tag)."""
        block = (tag << self._index_bits) | set_idx
        return block << self._offset_bits

    # -- queries -----------------------------------------------------------

    def probe(self, addr: int) -> bool:
        """Non-mutating hit test."""
        set_idx, tag = self.locate(addr)
        return any(l.valid and l.tag == tag for l in self.sets[set_idx])

    def find_line(self, addr: int) -> Optional[CacheLine]:
        """Return the line holding ``addr``, or None (non-mutating)."""
        set_idx, tag = self.locate(addr)
        for line in self.sets[set_idx]:
            if line.valid and line.tag == tag:
                return line
        return None

    def dirty_line_count(self) -> int:
        """Exact current number of dirty lines (O(lines); for validation)."""
        return sum(
            1 for ways in self.sets for l in ways if l.valid and l.dirty
        )

    # -- telemetry -----------------------------------------------------------

    @property
    def labels(self) -> Dict[str, str]:
        return {
            "component": "cache",
            "name": self.config.name,
            "policy": self.config.write_policy.value,
        }

    def as_dict(self) -> Dict[str, float]:
        """Counters plus derived dirty-population metrics."""
        d = self.stats.as_dict()
        d["dirty_lines"] = self.dirty.dirty_count
        d["peak_dirty_lines"] = self.dirty.peak_dirty
        d["avg_dirty_fraction"] = self.dirty.average_dirty_fraction(
            self.dirty.last_cycle
        )
        return d

    def reset(self, cycle: int = 0) -> None:
        """Measurement boundary: zero counters, keep cache contents.

        Dirty lines inherited from before the boundary have their
        episode start clamped to ``cycle``, otherwise pre-boundary
        cycles would be charged into measured dirty-episode lengths;
        the residency integrator restarts with the surviving dirty
        population.
        """
        self.stats.reset(cycle)
        for ways in self.sets:
            for line in ways:
                if line.valid and line.dirty and line.dirty_since < cycle:
                    line.dirty_since = cycle
        self.dirty.reset(cycle, self.dirty.dirty_count)

    def attach_tracer(self, tracer: Optional[EventTracer]) -> None:
        """Attach (or with ``None`` detach) a structured event tracer."""
        self._tracer = tracer

    # -- main access path ----------------------------------------------------

    def advance(self, cycle: int) -> List[Writeback]:
        """Hook: run background activity (cleaning sweeps) up to ``cycle``.

        The base cache has none; the protected L2 overrides this.
        """
        return []

    def access(self, addr: int, is_write: bool, cycle: int) -> AccessResult:
        """Perform one read or write at ``cycle``; cycles must not decrease."""
        # Hot loop: every simulated reference lands here, so the set/tag
        # arithmetic is inlined (no ``locate`` call) and attribute
        # lookups are hoisted into locals before the way scan.
        block = addr >> self._offset_bits
        set_idx = block & self._index_mask
        tag = block >> self._index_bits
        ways = self.sets[set_idx]
        stamp = self._stamp + 1
        self._stamp = stamp
        stats = self.stats
        result = AccessResult(hit=False, is_write=is_write)

        way = 0
        for line in ways:
            if line.valid and line.tag == tag:
                result.hit = True
                self.policy.on_access(line, stamp)
                line.last_touch_cycle = cycle
                if is_write:
                    stats.write_hits += 1
                    self._handle_write(line, set_idx, way, cycle, result)
                else:
                    stats.read_hits += 1
                return result
            way += 1

        # Miss path.
        if is_write:
            stats.write_misses += 1
            if not self.config.write_allocate:
                # No-allocate write miss: forward the write downstream.
                result.wrote_through = True
                stats.write_throughs += 1
                return result
        else:
            stats.read_misses += 1

        way = self._fill(set_idx, tag, cycle, result)
        if is_write:
            self._handle_write(ways[way], set_idx, way, cycle, result)
        return result

    # -- internals / extension points ---------------------------------------

    def _fill(self, set_idx: int, tag: int, cycle: int, result: AccessResult) -> int:
        """Bring a block into the set, evicting a victim if needed."""
        ways = self.sets[set_idx]
        way = self.policy.choose_victim(ways)
        victim = ways[way]
        if victim.valid:
            self._evict_way(set_idx, way, cycle, result, WritebackReason.REPLACEMENT)
        victim.fill(tag, cycle, self._stamp)
        self.stats.fills += 1
        result.fill_addr = self.block_addr(set_idx, tag)
        return way

    def _evict_way(
        self,
        set_idx: int,
        way: int,
        cycle: int,
        result: AccessResult,
        reason: WritebackReason,
    ) -> None:
        """Evict one valid way, emitting a write-back if it is dirty."""
        line = self.sets[set_idx][way]
        self.stats.evictions += 1
        if line.dirty:
            self._writeback_line(set_idx, way, cycle, result, reason)
        line.invalidate()

    def _writeback_line(
        self,
        set_idx: int,
        way: int,
        cycle: int,
        result: AccessResult,
        reason: WritebackReason,
    ) -> None:
        """Push a dirty line downstream and mark it clean."""
        line = self.sets[set_idx][way]
        if not line.dirty:
            raise ValueError("write-back of a clean line")
        self.dirty.add_dirty(cycle, -1)
        self.stats.dirty_episodes += 1
        self.stats.dirty_episode_cycles += max(0, cycle - line.dirty_since)
        line.dirty = False
        line.written = False
        addr = self.block_addr(set_idx, line.tag)
        result.writebacks.append(Writeback(addr=addr, reason=reason))
        tracer = self._tracer
        if tracer is not None:
            name = self.config.name
            tracer.emit(
                "writeback", cycle, cache=name, set=set_idx, way=way,
                addr=addr, reason=reason.value,
            )
            tracer.emit(
                "dirty_transition", cycle, cache=name, set=set_idx, way=way,
                addr=addr, dirty=False, reason=reason.value,
            )
        if reason is WritebackReason.CLEANING:
            self.stats.writebacks_cleaning += 1
        elif reason is WritebackReason.ECC_EVICTION:
            self.stats.writebacks_ecc_eviction += 1
        elif reason is WritebackReason.EAGER:
            self.stats.writebacks_eager += 1
        else:
            # REPLACEMENT and FLUSH both count as ordinary write-backs.
            self.stats.writebacks_replacement += 1

    def _handle_write(
        self,
        line: CacheLine,
        set_idx: int,
        way: int,
        cycle: int,
        result: AccessResult,
    ) -> None:
        """Apply a write to a resident line (policy-dependent)."""
        if self.config.write_policy is WritePolicy.WRITE_THROUGH:
            # Data is forwarded downstream; the line never turns dirty.
            result.wrote_through = True
            self.stats.write_throughs += 1
            return
        self._mark_dirty(line, set_idx, way, cycle)

    def _mark_dirty(
        self, line: CacheLine, set_idx: int, way: int, cycle: int
    ) -> None:
        """Record a write on a write-back line, tracking the clean->dirty
        transition exactly once per episode."""
        if line.record_write():
            line.dirty_since = cycle
            self.dirty.add_dirty(cycle, +1)
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(
                    "dirty_transition", cycle, cache=self.config.name,
                    set=set_idx, way=way,
                    addr=self.block_addr(set_idx, line.tag),
                    dirty=True, reason="write",
                )

    # -- maintenance ---------------------------------------------------------

    def flush(self, cycle: int) -> List[Writeback]:
        """Write back every dirty line and invalidate the whole cache."""
        result = AccessResult(hit=False, is_write=False)
        for set_idx, ways in enumerate(self.sets):
            for way, line in enumerate(ways):
                if line.valid:
                    self._evict_way(
                        set_idx, way, cycle, result, WritebackReason.FLUSH
                    )
        return result.writebacks
