"""Main memory behind a split-transaction off-chip bus.

Table 1 of the paper: 8-byte-wide bus, 100-cycle access latency.  The bus
is the resource the paper's extra write-backs contend for, so occupancy
is modelled explicitly: every transaction (demand fill or write-back)
holds the bus for its transfer beats, delaying later transactions.
Write-backs are fire-and-forget (the split-transaction assumption the
paper makes when measuring IPC loss), but they still consume bus slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.telemetry.metrics import StatsSourceMixin


@dataclass
class MemoryConfig:
    """Off-chip memory and bus parameters (Table 1 defaults)."""

    bus_width_bytes: int = 8
    latency_cycles: int = 100

    def transfer_cycles(self, size_bytes: int) -> int:
        """Bus beats needed to move ``size_bytes``."""
        width = self.bus_width_bytes
        return (size_bytes + width - 1) // width


@dataclass
class MemoryStats(StatsSourceMixin):
    labels = {"component": "memory"}

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_cycles: int = 0
    #: Cycles a demand read spent queued behind earlier bus traffic.
    read_queue_cycles: int = 0

    @property
    def transactions(self) -> int:
        return self.reads + self.writes


class MainMemory:
    """Latency/occupancy model of main memory and its bus."""

    labels = {"component": "memory"}

    def __init__(self, config: MemoryConfig = MemoryConfig()) -> None:
        self.config = config
        self.stats = MemoryStats()
        self._bus_free_at = 0

    def as_dict(self) -> Dict[str, int]:
        return self.stats.as_dict()

    def reset(self, cycle: int = 0) -> None:
        """Zero the counters; bus occupancy carries across the boundary."""
        self.stats.reset(cycle)

    @property
    def bus_free_at(self) -> int:
        return self._bus_free_at

    def _claim_bus(self, cycle: int, size_bytes: int) -> int:
        """Reserve the bus; return the cycle the transfer starts."""
        start = max(cycle, self._bus_free_at)
        beats = self.config.transfer_cycles(size_bytes)
        self._bus_free_at = start + beats
        self.stats.busy_cycles += beats
        return start

    def read(self, cycle: int, size_bytes: int) -> int:
        """Issue a demand read at ``cycle``; return data-ready cycle."""
        start = self._claim_bus(cycle, size_bytes)
        self.stats.reads += 1
        self.stats.bytes_read += size_bytes
        self.stats.read_queue_cycles += start - cycle
        return start + self.config.latency_cycles + self.config.transfer_cycles(
            size_bytes
        )

    def write(self, cycle: int, size_bytes: int) -> int:
        """Issue a (posted) write at ``cycle``; return bus-release cycle.

        The writer does not wait for completion, but the occupied beats
        delay any subsequent demand read — that is the contention the
        paper's IPC experiment measures.
        """
        start = self._claim_bus(cycle, size_bytes)
        self.stats.writes += 1
        self.stats.bytes_written += size_bytes
        return start + self.config.transfer_cycles(size_bytes)

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of cycles the bus was busy over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / elapsed_cycles)
