"""Energy accounting for the memory system and its protection logic.

The paper motivates the cleaning-interval choice by memory-traffic
energy ("increased memory traffic ... results in increased energy
consumption") and cites Li et al. [11], who choose parity over ECC for
its energy efficiency.  This module estimates those quantities from a
run's event counters:

* array access energy per L1/L2 access and per DRAM access;
* off-chip bus energy per byte moved;
* protection-logic energy per 64-bit word — parity (1-bit XOR tree)
  versus SECDED (8-bit encode/syndrome), where ECC logic costs several
  times parity.

Default coefficients are CACTI-class ballpark values for the paper's
era (130–180 nm, nanojoules); they are parameters, not claims — the
*relative* comparison between schemes is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cache.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies, in nanojoules."""

    l1_access: float = 0.3
    l2_access: float = 2.0
    dram_access: float = 30.0
    bus_per_byte: float = 0.4
    #: Checking/encoding one 64-bit word's parity (single XOR tree).
    parity_per_word: float = 0.01
    #: Checking/encoding one 64-bit word's SECDED (8 trees + correction).
    ecc_per_word: float = 0.06


@dataclass
class EnergyBreakdown:
    """Energy by component, in nanojoules."""

    scheme: str
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_nj(self) -> float:
        return sum(self.components.values())

    @property
    def total_uj(self) -> float:
        return self.total_nj / 1000.0

    def rows(self):
        out = [(k, v) for k, v in self.components.items()]
        out.append(("total", self.total_nj))
        return out


def _common_components(
    hierarchy: MemoryHierarchy, params: EnergyParams
) -> Dict[str, float]:
    """Array, bus and DRAM energy — identical formulas for both schemes."""
    l1_accesses = (
        hierarchy.l1i.stats.accesses + hierarchy.l1d.stats.accesses
    )
    l2_accesses = hierarchy.l2.stats.accesses
    mem = hierarchy.memory.stats
    return {
        "L1 arrays": l1_accesses * params.l1_access,
        "L2 array": l2_accesses * params.l2_access,
        "off-chip bus": (mem.bytes_read + mem.bytes_written)
        * params.bus_per_byte,
        "DRAM": mem.transactions * params.dram_access,
    }


def estimate_energy(
    hierarchy: MemoryHierarchy,
    scheme: str,
    dirty_fraction: float = 0.5,
    params: EnergyParams = EnergyParams(),
) -> EnergyBreakdown:
    """Estimate a run's memory-system energy under a protection scheme.

    ``scheme`` is ``"conventional"`` (SECDED checked/encoded on every L2
    access) or ``"proposed"`` (parity on every access; ECC work only for
    the dirty-line operations).  ``dirty_fraction`` apportions the
    proposed scheme's read checks between parity-only (clean) and
    parity+ECC (dirty) lines — pass the run's measured average.

    The L1s carry parity in both schemes (both systems the paper cites
    do), so their check energy is charged identically.
    """
    if scheme not in ("conventional", "proposed"):
        raise ValueError(f"unknown scheme {scheme!r}")
    if not 0.0 <= dirty_fraction <= 1.0:
        raise ValueError("dirty_fraction must be in [0, 1]")

    words_per_l2_line = hierarchy.l2.config.line_bytes * 8 // 64
    words_per_l1_line = hierarchy.l1d.config.line_bytes * 8 // 64
    l2 = hierarchy.l2.stats

    components = _common_components(hierarchy, params)

    l1_accesses = (
        hierarchy.l1i.stats.accesses + hierarchy.l1d.stats.accesses
    )
    components["L1 parity logic"] = (
        l1_accesses * words_per_l1_line * params.parity_per_word
    )

    l2_reads = l2.read_hits + l2.read_misses
    l2_writes = l2.write_hits + l2.write_misses
    #: Every fill and write-back also passes the coding logic.
    l2_moves = l2.fills + l2.writebacks_total

    if scheme == "conventional":
        checked = (l2_reads + l2_writes + l2_moves) * words_per_l2_line
        components["L2 ECC logic"] = checked * params.ecc_per_word
        components["L2 parity logic"] = 0.0
    else:
        all_ops = (l2_reads + l2_writes + l2_moves) * words_per_l2_line
        # Parity is maintained on every operation.
        components["L2 parity logic"] = all_ops * params.parity_per_word
        # ECC work: every write encodes; reads check ECC only when the
        # line is dirty; write-backs of dirty lines re-check.  Writes a
        # silent-write variant elided never reach the encoder, so their
        # word count comes straight back off (0 on the nominal path).
        ecc_words = (
            (l2_writes - l2.elided_ecc_updates) * words_per_l2_line
            + l2_reads * dirty_fraction * words_per_l2_line
            + l2.writebacks_total * words_per_l2_line
        )
        components["L2 ECC logic"] = max(0.0, ecc_words) * params.ecc_per_word

    return EnergyBreakdown(scheme=scheme, components=components)


def compare_schemes(
    conventional_hierarchy: MemoryHierarchy,
    proposed_hierarchy: MemoryHierarchy,
    proposed_dirty_fraction: float,
    params: EnergyParams = EnergyParams(),
) -> Dict[str, EnergyBreakdown]:
    """Energy of two same-workload runs, one per scheme."""
    return {
        "conventional": estimate_energy(
            conventional_hierarchy, "conventional", 1.0, params
        ),
        "proposed": estimate_energy(
            proposed_hierarchy, "proposed", proposed_dirty_fraction, params
        ),
    }
