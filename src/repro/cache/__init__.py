"""Cache-hierarchy substrate: the trace-driven memory system simulator.

Models the paper's baseline memory system (Table 1): write-through L1
instruction/data caches backed by a 16-entry coalescing write buffer, a
unified write-back L2, and an 8-byte-wide 100-cycle main memory behind a
split-transaction bus.  The paper's protected L2 (``repro.core``) plugs
into this hierarchy in place of the plain L2.
"""

from repro.cache.cache import (
    AccessResult,
    CacheConfig,
    SetAssociativeCache,
    Writeback,
    WritebackReason,
    WritePolicy,
)
from repro.cache.energy import (
    EnergyBreakdown,
    EnergyParams,
    compare_schemes,
    estimate_energy,
)
from repro.cache.hierarchy import (
    HierarchyConfig,
    MemoryHierarchy,
    default_l1d_config,
    default_l1i_config,
    default_l2_config,
    default_l3_config,
)
from repro.cache.line import CacheLine
from repro.cache.mainmem import MainMemory, MemoryConfig
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.cache.stats import CacheStats, DirtyIntegrator
from repro.cache.write_buffer import WriteBuffer

__all__ = [
    "AccessResult",
    "CacheConfig",
    "CacheLine",
    "CacheStats",
    "DirtyIntegrator",
    "EnergyBreakdown",
    "EnergyParams",
    "compare_schemes",
    "estimate_energy",
    "FifoPolicy",
    "HierarchyConfig",
    "LruPolicy",
    "MainMemory",
    "MemoryConfig",
    "MemoryHierarchy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "WriteBuffer",
    "Writeback",
    "WritebackReason",
    "WritePolicy",
    "default_l1d_config",
    "default_l1i_config",
    "default_l2_config",
    "default_l3_config",
    "make_policy",
]
