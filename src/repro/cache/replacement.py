"""Replacement policies for set-associative caches."""

from __future__ import annotations

import abc
import random
from typing import List

from repro.cache.line import CacheLine


class ReplacementPolicy(abc.ABC):
    """Chooses a victim way within one set.

    Invalid ways are always preferred; policies only order valid lines.
    """

    @abc.abstractmethod
    def choose_victim(self, ways: List[CacheLine]) -> int:
        """Return the index of the way to evict (or fill, if invalid)."""

    def on_access(self, line: CacheLine, stamp: int) -> None:
        """Notify the policy that ``line`` was touched at ``stamp``."""
        line.lru_stamp = stamp

    @staticmethod
    def _first_invalid(ways: List[CacheLine]) -> int:
        for i, line in enumerate(ways):
            if not line.valid:
                return i
        return -1


class LruPolicy(ReplacementPolicy):
    """Evict the least-recently-used valid line."""

    def choose_victim(self, ways: List[CacheLine]) -> int:
        idx = self._first_invalid(ways)
        if idx >= 0:
            return idx
        victim, oldest = 0, ways[0].lru_stamp
        for i in range(1, len(ways)):
            if ways[i].lru_stamp < oldest:
                victim, oldest = i, ways[i].lru_stamp
        return victim


class FifoPolicy(ReplacementPolicy):
    """Evict the earliest-filled valid line, ignoring later touches."""

    def choose_victim(self, ways: List[CacheLine]) -> int:
        idx = self._first_invalid(ways)
        if idx >= 0:
            return idx
        victim, oldest = 0, ways[0].fifo_stamp
        for i in range(1, len(ways)):
            if ways[i].fifo_stamp < oldest:
                victim, oldest = i, ways[i].fifo_stamp
        return victim


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random valid line (seeded for reproducibility)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose_victim(self, ways: List[CacheLine]) -> int:
        idx = self._first_invalid(ways)
        if idx >= 0:
            return idx
        return self._rng.randrange(len(ways))


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``fifo``/``random``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return cls(seed=seed)
    return cls()
