"""Miss-status holding registers (MSHRs): in-flight miss tracking.

Non-blocking caches (SimpleScalar's default, and any modern L1) track
outstanding misses in MSHRs so that a second access to a block whose
fill is still in flight *merges* with the pending miss instead of
either re-requesting the line or — the naive trace-driven error —
hitting instantly on a line that functionally appears filled.

This model keeps the functional fill immediate (trace-driven caches
install lines at access time) and repairs the *timing*: an access to a
block with a pending fill observes the fill's completion time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.telemetry.metrics import StatsSourceMixin


@dataclass
class MshrStats(StatsSourceMixin):
    labels = {"component": "mshr"}

    allocations: int = 0
    #: Accesses that merged with an in-flight fill.
    merges: int = 0
    #: Allocations that displaced a still-pending entry (file full).
    overflows: int = 0


class MshrFile:
    """Bounded table of block address -> fill-completion cycle.

    Doubles as a :class:`~repro.telemetry.metrics.StatsSource`
    (delegating to its :class:`MshrStats`) so a registry reset covers
    it without replacing the stats object.
    """

    labels = {"component": "mshr"}

    def __init__(self, entries: int = 8) -> None:
        if entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        self.entries = entries
        self._pending: Dict[int, int] = {}
        self.stats = MshrStats()

    def as_dict(self) -> Dict[str, int]:
        d = self.stats.as_dict()
        d["occupancy"] = len(self._pending)
        return d

    def reset(self, cycle: int = 0) -> None:
        """Zero the counters; in-flight fills stay in flight."""
        self.stats.reset(cycle)

    def __len__(self) -> int:
        return len(self._pending)

    def _prune(self, cycle: int) -> None:
        """Drop entries whose fills have completed."""
        if not self._pending:
            return
        done = [b for b, ready in self._pending.items() if ready <= cycle]
        for b in done:
            del self._pending[b]

    def pending_ready(self, block: int, cycle: int) -> Optional[int]:
        """Completion cycle of an in-flight fill of ``block``, if any.

        Returns None when no fill is pending (or it already completed).
        A hit counts as a merge in the statistics.
        """
        ready = self._pending.get(block)
        if ready is None or ready <= cycle:
            return None
        self.stats.merges += 1
        return ready

    def allocate(self, block: int, ready: int, cycle: int) -> None:
        """Record a new in-flight fill completing at ``ready``.

        When the file is full even after pruning completed fills, the
        soonest-completing pending entry is displaced (and counted) —
        a slight optimism that avoids deadlocking the one-pass model.
        """
        self._prune(cycle)
        if len(self._pending) >= self.entries and block not in self._pending:
            victim = min(self._pending, key=self._pending.__getitem__)
            del self._pending[victim]
            self.stats.overflows += 1
        self._pending[block] = ready
        self.stats.allocations += 1
