"""Coalescing write buffer between the write-through L1D and the L2.

The paper's baseline (following POWER4/Itanium and Skadron & Clark [6])
uses a fully-associative 16-entry write buffer that merges multiple
stores to the same block into a single L2 write.  Entries drain to the
L2 in FIFO order when the buffer overflows (and on explicit drain).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.telemetry.metrics import StatsSourceMixin


@dataclass
class WriteBufferStats(StatsSourceMixin):
    labels = {"component": "write-buffer"}

    inserts: int = 0
    coalesced: int = 0
    drains: int = 0

    @property
    def stores_seen(self) -> int:
        return self.inserts + self.coalesced

    def as_dict(self) -> Dict[str, int]:
        d = StatsSourceMixin.as_dict(self)
        d["stores_seen"] = self.stores_seen
        return d


class WriteBuffer:
    """Fully-associative FIFO write buffer with store coalescing.

    Addresses are tracked at ``block_bytes`` granularity (the L2 line
    size, so one drain is one L2 write access).
    """

    labels = {"component": "write-buffer"}

    def __init__(self, entries: int = 16, block_bytes: int = 64) -> None:
        if entries <= 0:
            raise ValueError("write buffer needs at least one entry")
        if block_bytes & (block_bytes - 1):
            raise ValueError("block_bytes must be a power of two")
        self.entries = entries
        self.block_bytes = block_bytes
        self._offset_bits = block_bytes.bit_length() - 1
        #: Insertion-ordered map block_addr -> True (OrderedDict as FIFO set).
        self._pending: "OrderedDict[int, bool]" = OrderedDict()
        self.stats = WriteBufferStats()

    def __len__(self) -> int:
        return len(self._pending)

    def as_dict(self) -> Dict[str, int]:
        d = self.stats.as_dict()
        d["occupancy"] = len(self._pending)
        return d

    def reset(self, cycle: int = 0) -> None:
        """Zero the counters; buffered stores stay buffered."""
        self.stats.reset(cycle)

    @property
    def full(self) -> bool:
        return len(self._pending) >= self.entries

    def block_of(self, addr: int) -> int:
        return (addr >> self._offset_bits) << self._offset_bits

    def contains(self, addr: int) -> bool:
        """True when a store to ``addr``'s block is still buffered."""
        return self.block_of(addr) in self._pending

    def push(self, addr: int) -> Optional[int]:
        """Buffer a store to ``addr``.

        Returns the block address drained to the L2 when the buffer had
        to make room, else None (the store coalesced or fit).
        """
        block = self.block_of(addr)
        if block in self._pending:
            self._pending.move_to_end(block)
            self.stats.coalesced += 1
            return None
        drained: Optional[int] = None
        if self.full:
            drained, _ = self._pending.popitem(last=False)
            self.stats.drains += 1
        self._pending[block] = True
        self.stats.inserts += 1
        return drained

    def drain_one(self) -> Optional[int]:
        """Drain the oldest buffered block, if any."""
        if not self._pending:
            return None
        block, _ = self._pending.popitem(last=False)
        self.stats.drains += 1
        return block

    def drain_all(self) -> List[int]:
        """Drain every buffered block in FIFO order."""
        out = list(self._pending.keys())
        self.stats.drains += len(out)
        self._pending.clear()
        return out
