"""Per-line cache state, including the paper's *written* bit."""

from __future__ import annotations


class CacheLine:
    """State of one cache line (one way of one set).

    Besides the usual tag/valid/dirty state this carries the paper's
    *written* bit: ``dirty`` is set on the first write to the line after
    fill, ``written`` on any write beyond the first.  The cleaning logic
    (:mod:`repro.core.cleaning`) uses ``dirty and not written`` as its
    "no longer being modified" predicate.
    """

    __slots__ = (
        "tag",
        "valid",
        "dirty",
        "written",
        "lru_stamp",
        "fill_cycle",
        "fifo_stamp",
        "last_touch_cycle",
        "dirty_since",
    )

    def __init__(self) -> None:
        self.tag: int = 0
        self.valid: bool = False
        self.dirty: bool = False
        self.written: bool = False
        #: Monotonic access stamp used by LRU replacement.
        self.lru_stamp: int = 0
        #: Cycle of the most recent fill (for generational statistics).
        self.fill_cycle: int = 0
        #: Fill order stamp used by FIFO replacement.
        self.fifo_stamp: int = 0
        #: Cycle of the most recent access (for decay-style policies).
        self.last_touch_cycle: int = 0
        #: Cycle the current dirty episode began (exposure accounting).
        self.dirty_since: int = 0

    def fill(self, tag: int, cycle: int, stamp: int) -> None:
        """Install a new block: resets dirty and written per the paper."""
        self.tag = tag
        self.valid = True
        self.dirty = False
        self.written = False
        self.lru_stamp = stamp
        self.fifo_stamp = stamp
        self.fill_cycle = cycle
        self.last_touch_cycle = cycle

    def invalidate(self) -> None:
        self.valid = False
        self.dirty = False
        self.written = False

    def record_write(self) -> bool:
        """Apply one write; return True when the line turned dirty just now.

        Implements the paper's rule: the dirty bit is set when the line
        is modified once; the written bit when it is modified more than
        one time.
        """
        if self.dirty:
            self.written = True
            return False
        self.dirty = True
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f if on else "-"
            for f, on in (
                ("V", self.valid),
                ("D", self.dirty),
                ("W", self.written),
            )
        )
        return f"CacheLine(tag={self.tag:#x}, {flags})"
