"""Statistics counters for caches, including time-weighted dirty residency.

The paper's headline metric is "percentage of dirty cache lines per
cycle": the time-weighted average number of dirty lines divided by the
total number of lines.  :class:`DirtyIntegrator` accumulates that
integral incrementally as lines change state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.metrics import StatsSourceMixin


@dataclass
class CacheStats(StatsSourceMixin):
    """Event counters for one cache.

    A :class:`~repro.telemetry.metrics.StatsSource`: ``as_dict`` /
    ``reset`` / ``labels`` come from the mixin, so a registry can hold
    and reset this object without knowing it is cache-specific.
    """

    labels = {"component": "cache-stats"}

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    #: Write-backs caused by replacement of a dirty line.
    writebacks_replacement: int = 0
    #: Write-backs issued by the cleaning logic (paper's Clean-WB).
    writebacks_cleaning: int = 0
    #: Write-backs forced by ECC-array entry eviction (paper's ECC-WB).
    writebacks_ecc_eviction: int = 0
    #: Write-backs issued by the eager-writeback ablation baseline.
    writebacks_eager: int = 0
    #: Write-throughs (write-through caches forward every write).
    write_throughs: int = 0
    fills: int = 0
    evictions: int = 0
    #: Completed dirty episodes (dirty -> written back) and their total
    #: duration in cycles: the data for mean-exposure statistics.
    dirty_episodes: int = 0
    dirty_episode_cycles: int = 0
    #: Stores that rewrote the value the line already held and were
    #: elided (silent-write variants only; always 0 on the nominal path).
    silent_writes: int = 0
    #: ECC encodes / shared-array claims skipped by silent-write elision.
    elided_ecc_updates: int = 0
    #: Clean->dirty transitions skipped by silent-write elision.
    elided_dirty_transitions: int = 0
    #: Write-back bytes before / after compression (wb-compress variant
    #: only; both stay 0 on the nominal path).
    wb_bytes_raw: int = 0
    wb_bytes_compressed: int = 0

    @property
    def accesses(self) -> int:
        return (
            self.read_hits + self.read_misses + self.write_hits + self.write_misses
        )

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def writebacks_total(self) -> int:
        return (
            self.writebacks_replacement
            + self.writebacks_cleaning
            + self.writebacks_ecc_eviction
            + self.writebacks_eager
        )

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def mean_dirty_episode_cycles(self) -> float:
        """Average dirty-episode length (write to write-back), cycles."""
        if self.dirty_episodes == 0:
            return 0.0
        return self.dirty_episode_cycles / self.dirty_episodes

    @property
    def silent_write_fraction(self) -> float:
        """Elided stores as a fraction of all write accesses."""
        writes = self.write_hits + self.write_misses
        return self.silent_writes / writes if writes else 0.0

    @property
    def wb_compression_ratio(self) -> float:
        """Raw over compressed write-back bytes (1.0 when untracked)."""
        if self.wb_bytes_compressed == 0:
            return 1.0
        return self.wb_bytes_raw / self.wb_bytes_compressed

    # ``as_dict``/``reset`` come from :class:`StatsSourceMixin`: one
    # flat entry per dataclass field (18 counters).


@dataclass
class DirtyIntegrator:
    """Time-weighted integral of the dirty-line count.

    ``update`` must be called *before* every change to the dirty count so
    the elapsed interval is weighted by the old count.  The average dirty
    fraction over the run is ``area / (elapsed_cycles * total_lines)``.
    """

    total_lines: int
    dirty_count: int = 0
    area: float = 0.0
    last_cycle: int = 0
    start_cycle: int = 0
    peak_dirty: int = 0

    def reset(self, cycle: int, dirty_count: int) -> None:
        """Restart integration at ``cycle`` (e.g. after warm-up)."""
        self.area = 0.0
        self.last_cycle = cycle
        self.start_cycle = cycle
        self.dirty_count = dirty_count
        self.peak_dirty = dirty_count

    def update(self, cycle: int) -> None:
        """Integrate up to ``cycle`` with the current dirty count."""
        if cycle > self.last_cycle:
            self.area += self.dirty_count * (cycle - self.last_cycle)
            self.last_cycle = cycle

    def add_dirty(self, cycle: int, delta: int) -> None:
        """Apply a dirty-count change of ``delta`` at ``cycle``."""
        self.update(cycle)
        self.dirty_count += delta
        if self.dirty_count < 0:
            raise ValueError("dirty count went negative")
        if self.dirty_count > self.peak_dirty:
            self.peak_dirty = self.dirty_count

    def average_dirty_lines(self, cycle: int) -> float:
        """Average dirty-line count over [start_cycle, cycle]."""
        self.update(cycle)
        elapsed = self.last_cycle - self.start_cycle
        return self.area / elapsed if elapsed else float(self.dirty_count)

    def average_dirty_fraction(self, cycle: int) -> float:
        """Average fraction of lines dirty over [start_cycle, cycle]."""
        return self.average_dirty_lines(cycle) / self.total_lines
