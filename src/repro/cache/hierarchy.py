"""The full memory hierarchy of the paper's baseline processor.

Write-through L1 instruction and data caches (so they need only parity)
with MSHR-tracked in-flight misses, a 16-entry coalescing write buffer,
a unified write-back L2 (the cache the paper protects), an optional L3,
and main memory behind a contended 8-byte bus.

The unified levels are pluggable: pass a plain
:class:`SetAssociativeCache` for the conventional uniform-ECC baseline,
or a :class:`repro.core.protected_cache.ProtectedL2` (at either level)
for the paper's scheme.

Port arbitration note: the paper gives L1 requests priority over the
cleaning logic at the L2 ports.  The trace-driven model realises the
same effect structurally — cleaning sweeps (`advance`) run between
demand accesses, never delaying one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cache.cache import (
    CacheConfig,
    SetAssociativeCache,
    WritePolicy,
)
from repro.cache.mainmem import MainMemory, MemoryConfig
from repro.cache.mshr import MshrFile
from repro.cache.write_buffer import WriteBuffer
from repro.telemetry.metrics import MetricsRegistry, StatsSourceMixin
from repro.telemetry.tracing import EventTracer


def default_l1i_config() -> CacheConfig:
    """Table 1: 32KB 4-way, 32B line, 1-cycle, read-only stream."""
    return CacheConfig(
        name="l1i",
        size_bytes=32 * 1024,
        ways=4,
        line_bytes=32,
        write_policy=WritePolicy.WRITE_THROUGH,
        write_allocate=False,
        hit_latency=1,
    )


def default_l1d_config() -> CacheConfig:
    """Table 1: 32KB 4-way, 32B line, 1-cycle, write-through no-allocate."""
    return CacheConfig(
        name="l1d",
        size_bytes=32 * 1024,
        ways=4,
        line_bytes=32,
        write_policy=WritePolicy.WRITE_THROUGH,
        write_allocate=False,
        hit_latency=1,
    )


def default_l2_config() -> CacheConfig:
    """Table 1: unified 1MB, 4-way, 64B line, 10-cycle, write-back."""
    return CacheConfig(
        name="l2",
        size_bytes=1024 * 1024,
        ways=4,
        line_bytes=64,
        write_policy=WritePolicy.WRITE_BACK,
        write_allocate=True,
        hit_latency=10,
    )


def default_l3_config() -> CacheConfig:
    """A typical L3 for three-level experiments: 4MB, 8-way, 64B, 25-cycle."""
    return CacheConfig(
        name="l3",
        size_bytes=4 * 1024 * 1024,
        ways=8,
        line_bytes=64,
        write_policy=WritePolicy.WRITE_BACK,
        write_allocate=True,
        hit_latency=25,
    )


@dataclass
class HierarchyConfig:
    """Configuration bundle for the whole memory system.

    ``l3`` is optional: the paper's Table 1 machine is two-level, but
    the scheme applies to L3s equally (both POWER4 and Itanium protect
    L2 *and* L3 with ECC), so a third level can be enabled for those
    experiments.
    """

    l1i: CacheConfig = field(default_factory=default_l1i_config)
    l1d: CacheConfig = field(default_factory=default_l1d_config)
    l2: CacheConfig = field(default_factory=default_l2_config)
    l3: Optional[CacheConfig] = None
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    write_buffer_entries: int = 16
    #: MSHRs per L1 (in-flight miss tracking; SimpleScalar-style).
    mshr_entries: int = 8


@dataclass
class HierarchyStats(StatsSourceMixin):
    labels = {"component": "hierarchy"}

    loads: int = 0
    stores: int = 0
    ifetches: int = 0

    @property
    def loads_stores(self) -> int:
        return self.loads + self.stores

    def flatten(self) -> Dict[str, int]:
        """Raw counters plus derived totals — the registry feed."""
        d = StatsSourceMixin.as_dict(self)
        d["loads_stores"] = self.loads_stores
        d["refs"] = self.loads_stores + self.ifetches
        return d

    def as_dict(self) -> Dict[str, int]:
        return self.flatten()


class MemoryHierarchy:
    """Trace-driven memory system: returns a latency for every reference."""

    def __init__(
        self,
        config: Optional[HierarchyConfig] = None,
        l2: Optional[SetAssociativeCache] = None,
        l3: Optional[SetAssociativeCache] = None,
    ) -> None:
        self.config = config or HierarchyConfig()
        self.l1i = SetAssociativeCache(self.config.l1i)
        self.l1d = SetAssociativeCache(self.config.l1d)
        self.l2 = l2 if l2 is not None else SetAssociativeCache(self.config.l2)
        if l3 is not None:
            self.l3: Optional[SetAssociativeCache] = l3
        elif self.config.l3 is not None:
            self.l3 = SetAssociativeCache(self.config.l3)
        else:
            self.l3 = None
        #: Unified levels below the L1s, nearest first.
        self.levels = [self.l2] + ([self.l3] if self.l3 is not None else [])
        self.write_buffer = WriteBuffer(
            entries=self.config.write_buffer_entries,
            block_bytes=self.l2.config.line_bytes,
        )
        #: In-flight miss tracking, at L2-block granularity.
        self.l1d_mshr = MshrFile(self.config.mshr_entries)
        self.l1i_mshr = MshrFile(self.config.mshr_entries)
        self._block_shift = self.l2.config.line_bytes.bit_length() - 1
        self.memory = MainMemory(self.config.memory)
        self.stats = HierarchyStats()
        #: Monotonic clock: out-of-order cores may present slightly
        #: out-of-order timestamps; the hierarchy's bookkeeping (dirty
        #: integration, cleaning sweeps, bus occupancy) needs time to
        #: only move forward.
        self._clock = 0
        #: Every stats holder in the system, one snapshot/reset boundary.
        self.registry = MetricsRegistry()
        self._register_telemetry()
        self.tracer: Optional[EventTracer] = None

    def _register_telemetry(self) -> None:
        """Register every component's stats into the hierarchy registry."""
        reg = self.registry
        reg.register_source("hierarchy", self.stats)
        reg.register_source("l1i", self.l1i)
        reg.register_source("l1d", self.l1d)
        for cache in self.levels:
            name = cache.config.name
            reg.register_source(name, cache)
            ecc_array = getattr(cache, "ecc_array", None)
            if ecc_array is not None:
                reg.register_source(f"{name}.ecc_array", ecc_array)
            cleaning = getattr(cache, "cleaning", None)
            if cleaning is not None:
                reg.register_source(f"{name}.cleaning", cleaning)
        reg.register_source("write_buffer", self.write_buffer)
        reg.register_source("l1d_mshr", self.l1d_mshr)
        reg.register_source("l1i_mshr", self.l1i_mshr)
        reg.register_source("memory", self.memory)

    def attach_tracer(self, tracer: Optional[EventTracer]) -> None:
        """Attach (or with ``None`` detach) a tracer to every cache level."""
        self.tracer = tracer
        for cache in (self.l1i, self.l1d, *self.levels):
            cache.attach_tracer(tracer)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Point-in-time counters of every component (plain data)."""
        return self.registry.snapshot()

    def reset_measurement(self, cycle: int) -> None:
        """Zero every counter at ``cycle``, keeping all cache contents."""
        self.registry.reset(cycle)

    def _mono(self, cycle: int) -> int:
        if cycle > self._clock:
            self._clock = cycle
        return self._clock

    @property
    def clock(self) -> int:
        """Latest cycle the hierarchy has seen."""
        return self._clock

    # -- reference entry points ---------------------------------------------

    def _block(self, addr: int) -> int:
        return addr >> self._block_shift

    def ifetch(self, addr: int, cycle: int) -> int:
        """Instruction fetch; returns latency in cycles."""
        cycle = self._mono(cycle)
        self.stats.ifetches += 1
        self._advance_l2(cycle)
        res = self.l1i.access(addr, is_write=False, cycle=cycle)
        pending = self.l1i_mshr.pending_ready(self._block(addr), cycle)
        if pending is not None:
            # The block's fill is still in flight: wait for it.
            return self.l1i.config.hit_latency + (pending - cycle)
        if res.hit:
            return self.l1i.config.hit_latency
        below = self._l2_read(addr, cycle)
        latency = self.l1i.config.hit_latency + below
        self.l1i_mshr.allocate(self._block(addr), cycle + latency, cycle)
        return latency

    def load(self, addr: int, cycle: int) -> int:
        """Data load; returns latency in cycles."""
        cycle = self._mono(cycle)
        self.stats.loads += 1
        self._advance_l2(cycle)
        res = self.l1d.access(addr, is_write=False, cycle=cycle)
        pending = self.l1d_mshr.pending_ready(self._block(addr), cycle)
        if pending is not None:
            # Merge with the in-flight miss (MSHR semantics): the line
            # looks resident functionally but its data arrives later.
            return self.l1d.config.hit_latency + (pending - cycle)
        if res.hit:
            return self.l1d.config.hit_latency
        if self.write_buffer.contains(addr):
            # Store-to-load forwarding out of the write buffer.
            return self.l1d.config.hit_latency + 1
        below = self._l2_read(addr, cycle)
        latency = self.l1d.config.hit_latency + below
        self.l1d_mshr.allocate(self._block(addr), cycle + latency, cycle)
        return latency

    def store(self, addr: int, cycle: int) -> int:
        """Data store; write-through L1 into the coalescing buffer."""
        cycle = self._mono(cycle)
        self.stats.stores += 1
        self._advance_l2(cycle)
        self.l1d.access(addr, is_write=True, cycle=cycle)
        drained = self.write_buffer.push(addr)
        if drained is not None:
            self._l2_write(drained, cycle)
        # A buffered store retires immediately from the core's view.
        return self.l1d.config.hit_latency

    def drain_write_buffer(self, cycle: int) -> None:
        """Flush all pending buffered stores into the L2."""
        for block in self.write_buffer.drain_all():
            self._l2_write(block, cycle)

    # -- internals -----------------------------------------------------------

    def _advance_l2(self, cycle: int) -> None:
        """Run background work (cleaning sweeps) at every unified level.

        Each level's cleaning write-backs are pushed to the level below
        it (the next cache, or memory for the last level).
        """
        for idx, cache in enumerate(self.levels):
            for wb in cache.advance(cycle):
                self._push_down(wb, cycle, idx + 1)

    def _push_down(self, wb, cycle: int, level: int) -> None:
        """Deliver a write-back to ``level`` (memory past the last cache).

        A :class:`~repro.cache.cache.Writeback` carrying a compressed
        ``bytes`` count charges memory that size; ``None`` charges the
        full line, exactly as before.
        """
        if level >= len(self.levels):
            size = wb.bytes
            if size is None:
                size = self.levels[-1].config.line_bytes
            self.memory.write(cycle, size)
        else:
            self._level_access(wb.addr, True, cycle, level)

    def _level_access(
        self, addr: int, is_write: bool, cycle: int, level: int
    ) -> int:
        """Access unified cache ``level``; recurse downward on a miss.

        Returns the latency contributed by this level and everything
        below it.  Write-backs emitted by the access (replacement,
        cleaning, ECC eviction) are pushed to the next level but do not
        add to the requester's latency (they are posted).
        """
        if level >= len(self.levels):
            line_bytes = self.levels[-1].config.line_bytes
            return self.memory.read(cycle, line_bytes) - cycle
        cache = self.levels[level]
        res = cache.access(addr, is_write=is_write, cycle=cycle)
        extra = 0
        for wb in res.writebacks:
            self._push_down(wb, cycle, level + 1)
        if res.fill_addr is not None:
            extra = self._level_access(
                res.fill_addr, False, cycle, level + 1
            )
        return cache.config.hit_latency + extra

    def _l2_read(self, addr: int, cycle: int) -> int:
        return self._level_access(addr, False, cycle, 0)

    def _l2_write(self, addr: int, cycle: int) -> int:
        return self._level_access(addr, True, cycle, 0)

    # -- reporting -------------------------------------------------------------

    def writeback_fraction(self) -> float:
        """Write-backs from the L2 as a fraction of all loads/stores.

        This is the paper's Figures 5/6/8 metric.
        """
        refs = self.stats.loads_stores
        if refs == 0:
            return 0.0
        return self.l2.stats.writebacks_total / refs
