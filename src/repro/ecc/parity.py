"""Parity check code: one even-parity bit per 64-bit data word.

This is the code Itanium and POWER4 use for L1 arrays and the code the
paper applies to *every* L2 line (clean or dirty) in its scheme.  Parity
detects any odd number of bit flips and corrects nothing; the recovery
action for a clean line is a refetch from the next memory level.
"""

from __future__ import annotations

from repro.ecc.codec import Codec, register_codec
from repro.ecc.events import CheckOutcome, CheckResult


def _parity64(word: int) -> int:
    """Return the even-parity bit (XOR reduction) of a 64-bit word."""
    word ^= word >> 32
    word ^= word >> 16
    word ^= word >> 8
    word ^= word >> 4
    word ^= word >> 2
    word ^= word >> 1
    return word & 1


#: Even parity of every byte value: ``BYTE_PARITY[b] == _parity64(b)``.
#: The batched injection kernel folds a word's bytes with XOR and does a
#: single table lookup instead of a six-shift reduction per word.
BYTE_PARITY: tuple = tuple(_parity64(value) for value in range(256))

_BYTE_PARITY_ARRAY = None


def byte_parity_array():
    """:data:`BYTE_PARITY` as a read-only ``(256,)`` uint8 ndarray.

    Lazy numpy view for the vectorized injection kernel (the ``[fast]``
    extra); this module itself stays importable without numpy.
    """
    global _BYTE_PARITY_ARRAY
    if _BYTE_PARITY_ARRAY is None:
        import numpy

        array = numpy.array(BYTE_PARITY, dtype=numpy.uint8)
        array.setflags(write=False)
        _BYTE_PARITY_ARRAY = array
    return _BYTE_PARITY_ARRAY


class ParityCodec(Codec):
    """Single even-parity bit per 64-bit word (detect-only)."""

    name = "parity"
    check_bits_per_word = 1
    corrects = False

    def encode(self, word: int) -> int:
        self._validate_word(word)
        return _parity64(word)

    def check(self, word: int, check: int) -> CheckResult:
        self._validate_word(word)
        self._validate_check(check)
        if _parity64(word) == check:
            return CheckResult(outcome=CheckOutcome.OK, data=word)
        return CheckResult(outcome=CheckOutcome.DETECTED, data=word, syndrome=1)


class InterleavedParityCodec(Codec):
    """``ways`` interleaved parity bits per 64-bit word.

    Parity bit *j* covers data bits ``j, j+ways, j+2*ways, …`` — the
    physical-interleaving trick real arrays use so a multi-bit upset
    (one particle flipping adjacent cells) lands each flipped bit in a
    *different* parity domain.  Detects every burst of up to ``ways``
    adjacent bits; a single parity bit (``ways=1``) already misses
    2-bit bursts.

    Still detect-only: recovery for clean lines is a refetch, as with
    plain parity.
    """

    name = "interleaved-parity"
    corrects = False

    def __init__(self, ways: int = 8) -> None:
        if not 1 <= ways <= 64:
            raise ValueError("interleave ways must be in 1..64")
        self.ways = ways
        self.check_bits_per_word = ways
        # Mask of data bits in each interleave domain.
        self._masks = []
        for j in range(ways):
            mask = 0
            for bit in range(j, 64, ways):
                mask |= 1 << bit
            self._masks.append(mask)

    def encode(self, word: int) -> int:
        self._validate_word(word)
        check = 0
        for j, mask in enumerate(self._masks):
            check |= _parity64(word & mask) << j
        return check

    def check(self, word: int, check: int) -> CheckResult:
        self._validate_word(word)
        self._validate_check(check)
        syndrome = self.encode(word) ^ check
        if syndrome == 0:
            return CheckResult(outcome=CheckOutcome.OK, data=word)
        return CheckResult(
            outcome=CheckOutcome.DETECTED, data=word, syndrome=syndrome
        )


register_codec(ParityCodec.name, ParityCodec)
register_codec(InterleavedParityCodec.name, InterleavedParityCodec)
