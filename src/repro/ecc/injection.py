"""Fault injection over codewords: deterministic flips and random campaigns.

Soft errors in the paper's threat model flip bits in the SRAM arrays; the
injector models a strike as one or more bit flips within a stored
(data word, check bits) pair and classifies the decoder's response,
including silent data corruption (``UNDETECTED``), which only the
injector — knowing ground truth — can label.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.ecc.codec import WORD_BITS, Codec, CodewordError
from repro.ecc.events import CheckOutcome
from repro.telemetry.tracing import EventTracer


def flip_bit(word: int, bit: int, width: int = WORD_BITS) -> int:
    """Return ``word`` with bit ``bit`` flipped; ``bit`` must be in range."""
    if not 0 <= bit < width:
        raise CodewordError(f"bit index {bit} out of range for width {width}")
    return word ^ (1 << bit)


@dataclass
class CampaignStats:
    """Aggregated outcomes of an injection campaign."""

    trials: int = 0
    by_outcome: Dict[CheckOutcome, int] = field(default_factory=dict)

    def record(self, outcome: CheckOutcome) -> None:
        self.trials += 1
        self.by_outcome[outcome] = self.by_outcome.get(outcome, 0) + 1

    def rate(self, outcome: CheckOutcome) -> float:
        if self.trials == 0:
            return 0.0
        return self.by_outcome.get(outcome, 0) / self.trials


class FaultInjector:
    """Seeded random bit-flip campaigns against a :class:`Codec`.

    A *trial* encodes a random data word, flips ``n_flips`` distinct bits
    anywhere in the combined (data ‖ check) codeword, decodes, and
    classifies the outcome against ground truth.
    """

    def __init__(
        self,
        codec: Codec,
        seed: int = 0,
        tracer: Optional[EventTracer] = None,
    ) -> None:
        self.codec = codec
        self.rng = random.Random(seed)
        #: Opt-in structured tracing of per-trial outcomes.
        self.tracer = tracer

    def inject(
        self, word: int, n_flips: int, rng: Optional[random.Random] = None
    ) -> Tuple[CheckOutcome, int, int]:
        """Run one trial on ``word``; return (outcome, faulty word, faulty check).

        The outcome is reclassified as ``UNDETECTED`` when the decoder
        reported ``OK`` or returned wrong data despite the injected flips.
        """
        rng = rng or self.rng
        check = self.codec.encode(word)
        total_bits = WORD_BITS + self.codec.check_bits_per_word
        bits = rng.sample(range(total_bits), n_flips)
        faulty_word, faulty_check = word, check
        for b in bits:
            if b < WORD_BITS:
                faulty_word = flip_bit(faulty_word, b)
            else:
                faulty_check = flip_bit(
                    faulty_check, b - WORD_BITS, self.codec.check_bits_per_word
                )
        result = self.codec.check(faulty_word, faulty_check)
        outcome = result.outcome
        if n_flips > 0:
            silent_ok = outcome is CheckOutcome.OK
            wrong_repair = (
                outcome is CheckOutcome.CORRECTED and result.data != word
            )
            if silent_ok or wrong_repair:
                outcome = CheckOutcome.UNDETECTED
        return outcome, faulty_word, faulty_check

    def inject_burst(
        self,
        word: int,
        burst_len: int,
        rng: Optional[random.Random] = None,
    ) -> Tuple[CheckOutcome, int, int]:
        """One multi-bit-upset trial: flip ``burst_len`` *adjacent* data bits.

        Models a single particle strike disturbing neighbouring cells —
        the failure mode interleaved parity exists for.  The burst stays
        within the data word (check bits are assumed physically apart).
        """
        rng = rng or self.rng
        if not 1 <= burst_len <= WORD_BITS:
            raise CodewordError("burst length out of range")
        check = self.codec.encode(word)
        start = rng.randrange(WORD_BITS - burst_len + 1)
        faulty_word = word
        for b in range(start, start + burst_len):
            faulty_word = flip_bit(faulty_word, b)
        result = self.codec.check(faulty_word, check)
        outcome = result.outcome
        silent_ok = outcome is CheckOutcome.OK
        wrong_repair = (
            outcome is CheckOutcome.CORRECTED and result.data != word
        )
        if silent_ok or wrong_repair:
            outcome = CheckOutcome.UNDETECTED
        return outcome, faulty_word, check

    def campaign(
        self, trials: int, n_flips: int, burst: bool = False
    ) -> CampaignStats:
        """Run ``trials`` independent injections.

        With ``burst=False`` (default), ``n_flips`` uniformly random
        bits flip anywhere in the codeword; with ``burst=True``,
        ``n_flips`` *adjacent* data bits flip (multi-bit upset).
        """
        stats = CampaignStats()
        tracer = self.tracer
        codec_name = type(self.codec).__name__
        for trial in range(trials):
            word = self.rng.getrandbits(WORD_BITS)
            if burst:
                outcome, _, _ = self.inject_burst(word, n_flips)
            else:
                outcome, _, _ = self.inject(word, n_flips)
            stats.record(outcome)
            if tracer is not None:
                # Campaigns have no cycle clock; the trial index is time.
                tracer.emit(
                    "error_outcome", trial, codec=codec_name, trial=trial,
                    flips=n_flips, outcome=outcome.value,
                )
        return stats
