"""Outcome types shared by every codec in :mod:`repro.ecc`."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CheckOutcome(enum.Enum):
    """Result category of checking one codeword.

    ``OK``
        No error signalled; the stored word matched its check bits.
    ``CORRECTED``
        A single-bit error was detected *and repaired* (SECDED only).
    ``DETECTED``
        An error was detected but cannot be repaired by this code
        (any odd-weight error under parity; a double-bit error under
        SECDED).  For a clean line the recovery action is a refetch
        from the next memory level; for a dirty line it is data loss.
    ``UNDETECTED``
        The stored word is known (by the injection harness) to differ
        from the original, yet the code reported ``OK``.  Only the
        fault-injection driver can label this outcome, since a real
        decoder cannot observe it.
    """

    OK = "ok"
    CORRECTED = "corrected"
    DETECTED = "detected"
    UNDETECTED = "undetected"

    @property
    def is_error_signalled(self) -> bool:
        """True when the decoder raised any error indication."""
        return self in (CheckOutcome.CORRECTED, CheckOutcome.DETECTED)


@dataclass(frozen=True)
class CheckResult:
    """Full result of decoding one codeword.

    Attributes
    ----------
    outcome:
        The :class:`CheckOutcome` category.
    data:
        The (possibly corrected) data word.  For ``DETECTED`` the word
        is returned unrepaired and must not be consumed.
    syndrome:
        Raw decoder syndrome, useful for diagnostics; 0 means clean.
    corrected_bit:
        Bit index repaired within the codeword, or ``None``.
    """

    outcome: CheckOutcome
    data: int
    syndrome: int = 0
    corrected_bit: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.outcome is CheckOutcome.OK
