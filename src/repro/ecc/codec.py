"""Common codec interface for the protection codes used by the caches.

All codecs operate on 64-bit data words (the granularity at which both
the Itanium parity and SECDED schemes the paper cites are organised) and
on whole cache lines, which are sequences of such words.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Sequence, Tuple

from repro.ecc.events import CheckOutcome, CheckResult

#: Width of one protected data word, in bits.
WORD_BITS = 64
#: Mask selecting one data word.
WORD_MASK = (1 << WORD_BITS) - 1


class CodewordError(ValueError):
    """Raised for malformed codec inputs (out-of-range word or check bits)."""


class Codec(abc.ABC):
    """A per-word error protection code.

    Concrete codecs encode a 64-bit data word into *check bits* and later
    verify (and possibly repair) a stored word against stored check bits.
    The class-level contract — ``name``, ``check_bits_per_word`` and
    ``corrects`` — is everything the protection policies and the fault
    model need, so a new code (DECTED, a chip-kill symbol code) drops in
    by subclassing this and registering a factory
    (:func:`repro.ecc.register_codec`); nothing downstream special-cases
    the concrete classes.
    """

    #: Registry key and display name of the code.
    name: str = ""

    #: Number of check bits produced per 64-bit data word.
    check_bits_per_word: int

    #: Whether the code can repair (not merely detect) some errors.  A
    #: detect-only code on a dirty line means data loss; this flag is
    #: what the recovery paths branch on instead of the codec's class.
    corrects: bool = False

    @abc.abstractmethod
    def encode(self, word: int) -> int:
        """Return the check bits for ``word``."""

    @abc.abstractmethod
    def check(self, word: int, check: int) -> CheckResult:
        """Verify ``word`` against ``check``; return a :class:`CheckResult`."""

    def correct(self, word: int, check: int) -> CheckResult:
        """Verify and repair: :meth:`check` with repair required.

        For correcting codes this is :meth:`check` (whose result already
        carries the repaired data).  Detect-only codes raise, since they
        have no repair to offer — callers must consult :attr:`corrects`
        before asking.
        """
        if not self.corrects:
            raise CodewordError(
                f"{self.name or type(self).__name__} is detect-only and "
                "cannot correct"
            )
        return self.check(word, check)

    # -- shared helpers ---------------------------------------------------

    def _validate_word(self, word: int) -> None:
        if not 0 <= word <= WORD_MASK:
            raise CodewordError(f"data word out of range: {word:#x}")

    def _validate_check(self, check: int) -> None:
        limit = 1 << self.check_bits_per_word
        if not 0 <= check < limit:
            raise CodewordError(f"check bits out of range: {check:#x}")


# -- the codec registry -------------------------------------------------------

#: Factories for every known per-word code, keyed by codec name.  The
#: built-in codes register themselves on import of :mod:`repro.ecc`;
#: new geometries (DECTED, chip-kill symbol codes) extend the system by
#: registering here rather than by editing the policy or fault-model
#: layers.
_CODEC_FACTORIES: Dict[str, Callable[[], "Codec"]] = {}


def register_codec(name: str, factory: Callable[[], "Codec"]) -> None:
    """Register a codec factory under ``name`` (idempotent re-register)."""
    if not name:
        raise CodewordError("codec name must be non-empty")
    _CODEC_FACTORIES[name] = factory


def get_codec(name: str) -> "Codec":
    """Instantiate the codec registered under ``name``.

    Codecs are stateless, but a fresh instance is returned so callers
    may attach per-use state without aliasing.
    """
    try:
        factory = _CODEC_FACTORIES[name]
    except KeyError:
        raise CodewordError(
            f"unknown codec {name!r}; known: {available_codecs()}"
        ) from None
    return factory()


def available_codecs() -> List[str]:
    """Sorted names of every registered codec."""
    return sorted(_CODEC_FACTORIES)


class LineCodec:
    """Applies a per-word :class:`Codec` across a whole cache line.

    A 64-byte line holds eight 64-bit words; the line's check bits are the
    concatenation (as a list) of the per-word check bits.
    """

    def __init__(self, codec: Codec, line_bytes: int = 64) -> None:
        if line_bytes % 8 != 0:
            raise CodewordError("line size must be a multiple of 8 bytes")
        self.codec = codec
        self.line_bytes = line_bytes
        self.words_per_line = line_bytes // 8

    @property
    def check_bits_per_line(self) -> int:
        return self.codec.check_bits_per_word * self.words_per_line

    def split_line(self, payload: bytes) -> List[int]:
        """Split a line payload into little-endian 64-bit words."""
        if len(payload) != self.line_bytes:
            raise CodewordError(
                f"payload must be {self.line_bytes} bytes, got {len(payload)}"
            )
        return [
            int.from_bytes(payload[i : i + 8], "little")
            for i in range(0, self.line_bytes, 8)
        ]

    def join_line(self, words: Sequence[int]) -> bytes:
        """Inverse of :meth:`split_line`."""
        if len(words) != self.words_per_line:
            raise CodewordError("wrong number of words for line")
        return b"".join(w.to_bytes(8, "little") for w in words)

    def encode_line(self, payload: bytes) -> List[int]:
        """Return the per-word check bits for a full line payload."""
        return [self.codec.encode(w) for w in self.split_line(payload)]

    def check_line(
        self, payload: bytes, checks: Sequence[int]
    ) -> Tuple[CheckOutcome, bytes, List[CheckResult]]:
        """Verify a full line; return (worst outcome, repaired payload, details).

        The *worst* outcome across words is reported: ``DETECTED`` beats
        ``CORRECTED`` beats ``OK``.  The repaired payload incorporates any
        single-bit corrections made by the codec.
        """
        words = self.split_line(payload)
        if len(checks) != self.words_per_line:
            raise CodewordError("wrong number of check words for line")
        results = [self.codec.check(w, c) for w, c in zip(words, checks)]
        repaired = self.join_line([r.data for r in results])
        worst = CheckOutcome.OK
        severity = {
            CheckOutcome.OK: 0,
            CheckOutcome.CORRECTED: 1,
            CheckOutcome.DETECTED: 2,
            CheckOutcome.UNDETECTED: 3,
        }
        for r in results:
            if severity[r.outcome] > severity[worst]:
                worst = r.outcome
        return worst, repaired, results
