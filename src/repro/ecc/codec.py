"""Common codec interface for the protection codes used by the caches.

All codecs operate on 64-bit data words (the granularity at which both
the Itanium parity and SECDED schemes the paper cites are organised) and
on whole cache lines, which are sequences of such words.
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

from repro.ecc.events import CheckOutcome, CheckResult

#: Width of one protected data word, in bits.
WORD_BITS = 64
#: Mask selecting one data word.
WORD_MASK = (1 << WORD_BITS) - 1


class CodewordError(ValueError):
    """Raised for malformed codec inputs (out-of-range word or check bits)."""


class Codec(abc.ABC):
    """A per-word error protection code.

    Concrete codecs encode a 64-bit data word into *check bits* and later
    verify (and possibly repair) a stored word against stored check bits.
    """

    #: Number of check bits produced per 64-bit data word.
    check_bits_per_word: int

    @abc.abstractmethod
    def encode(self, word: int) -> int:
        """Return the check bits for ``word``."""

    @abc.abstractmethod
    def check(self, word: int, check: int) -> CheckResult:
        """Verify ``word`` against ``check``; return a :class:`CheckResult`."""

    # -- shared helpers ---------------------------------------------------

    def _validate_word(self, word: int) -> None:
        if not 0 <= word <= WORD_MASK:
            raise CodewordError(f"data word out of range: {word:#x}")

    def _validate_check(self, check: int) -> None:
        limit = 1 << self.check_bits_per_word
        if not 0 <= check < limit:
            raise CodewordError(f"check bits out of range: {check:#x}")


class LineCodec:
    """Applies a per-word :class:`Codec` across a whole cache line.

    A 64-byte line holds eight 64-bit words; the line's check bits are the
    concatenation (as a list) of the per-word check bits.
    """

    def __init__(self, codec: Codec, line_bytes: int = 64) -> None:
        if line_bytes % 8 != 0:
            raise CodewordError("line size must be a multiple of 8 bytes")
        self.codec = codec
        self.line_bytes = line_bytes
        self.words_per_line = line_bytes // 8

    @property
    def check_bits_per_line(self) -> int:
        return self.codec.check_bits_per_word * self.words_per_line

    def split_line(self, payload: bytes) -> List[int]:
        """Split a line payload into little-endian 64-bit words."""
        if len(payload) != self.line_bytes:
            raise CodewordError(
                f"payload must be {self.line_bytes} bytes, got {len(payload)}"
            )
        return [
            int.from_bytes(payload[i : i + 8], "little")
            for i in range(0, self.line_bytes, 8)
        ]

    def join_line(self, words: Sequence[int]) -> bytes:
        """Inverse of :meth:`split_line`."""
        if len(words) != self.words_per_line:
            raise CodewordError("wrong number of words for line")
        return b"".join(w.to_bytes(8, "little") for w in words)

    def encode_line(self, payload: bytes) -> List[int]:
        """Return the per-word check bits for a full line payload."""
        return [self.codec.encode(w) for w in self.split_line(payload)]

    def check_line(
        self, payload: bytes, checks: Sequence[int]
    ) -> Tuple[CheckOutcome, bytes, List[CheckResult]]:
        """Verify a full line; return (worst outcome, repaired payload, details).

        The *worst* outcome across words is reported: ``DETECTED`` beats
        ``CORRECTED`` beats ``OK``.  The repaired payload incorporates any
        single-bit corrections made by the codec.
        """
        words = self.split_line(payload)
        if len(checks) != self.words_per_line:
            raise CodewordError("wrong number of check words for line")
        results = [self.codec.check(w, c) for w, c in zip(words, checks)]
        repaired = self.join_line([r.data for r in results])
        worst = CheckOutcome.OK
        severity = {
            CheckOutcome.OK: 0,
            CheckOutcome.CORRECTED: 1,
            CheckOutcome.DETECTED: 2,
            CheckOutcome.UNDETECTED: 3,
        }
        for r in results:
            if severity[r.outcome] > severity[worst]:
                worst = r.outcome
        return worst, repaired, results
