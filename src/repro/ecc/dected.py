"""DECTED (Double Error Correction, Triple Error Detection) BCH code.

A shortened binary BCH code over GF(2^7) extended by one overall parity
bit: the generator ``g(x) = m1(x) * m3(x)`` (the minimal polynomials of
``α`` and ``α^3``, each degree 7) yields 14 BCH check bits per 64-bit
data word, and the extra parity bit raises the minimum distance from 5
to 6 — so any two flipped bits are *repaired* and any three are
*detected* (never miscorrected).  15 check bits per word (23.4%
overhead) against SECDED's 8 (12.5%): this is the code the
correlated-fault scenarios (``docs/reliability.md``, "Scenario packs")
trade area against.

Codeword layout
---------------
Polynomial positions ``0..13`` hold the BCH remainder bits, positions
``14..77`` the 64 data bits (data bit *i* at ``x^(14+i)``, the
systematic arrangement), and one overall even-parity bit covers all 78
of them.  The 15 check bits pack as ``parity << 14 | remainder``.

Decoding is a table lookup.  The *check-bit difference*
``encode(word) ^ stored_check`` is a linear function of the injected
error pattern alone, and distance 6 guarantees every error of weight
≤ 2 over the 79-bit codeword maps to a distinct difference — so a
precomputed dict of all 3160 such patterns corrects them exactly, and
any unlisted difference is a detected (≥ 3 bit) error.  The build
asserts that injectivity rather than assuming it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ecc.codec import Codec, register_codec
from repro.ecc.events import CheckOutcome, CheckResult

#: GF(2^7) primitive polynomial x^7 + x^3 + 1, as a bit mask.
_GF_POLY = 0b1000_1001
#: Degree of the BCH generator (14 = deg m1 + deg m3).
_BCH_BITS = 14


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^7) modulo ``x^7 + x^3 + 1``."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & 0x80:
            a ^= _GF_POLY
    return result


def _minimal_poly(beta: int) -> int:
    """Minimal polynomial of ``beta`` over GF(2), as a bit mask.

    The product of ``(x + beta^(2^k))`` over the conjugacy class; the
    coefficients land in GF(2) by construction (asserted).
    """
    roots: List[int] = []
    conj = beta
    while conj not in roots:
        roots.append(conj)
        conj = _gf_mul(conj, conj)
    coeffs = [1]  # coeffs[d] = coefficient of x^d
    for root in roots:
        grown = [0] * (len(coeffs) + 1)
        for degree, coeff in enumerate(coeffs):
            grown[degree + 1] ^= coeff
            grown[degree] ^= _gf_mul(coeff, root)
        coeffs = grown
    assert all(coeff in (0, 1) for coeff in coeffs)
    return sum(coeff << degree for degree, coeff in enumerate(coeffs))


def _poly_mul(a: int, b: int) -> int:
    """Carry-less (GF(2)) polynomial product of two bit masks."""
    result = 0
    shift = 0
    while b:
        if b & 1:
            result ^= a << shift
        b >>= 1
        shift += 1
    return result


def _poly_mod(value: int, divisor: int) -> int:
    """Remainder of ``value`` modulo ``divisor`` over GF(2)."""
    div_deg = divisor.bit_length() - 1
    while value.bit_length() - 1 >= div_deg and value:
        value ^= divisor << (value.bit_length() - 1 - div_deg)
    return value


#: The generator polynomial g(x) = m1(x) * m3(x), degree 14.
_GENERATOR = _poly_mul(_minimal_poly(0b10), _minimal_poly(_gf_mul(4, 2)))
assert _GENERATOR.bit_length() - 1 == _BCH_BITS


def _bit_check(data_bit: int) -> int:
    """15-bit check contribution of data bit ``data_bit`` set alone."""
    remainder = _poly_mod(1 << (_BCH_BITS + data_bit), _GENERATOR)
    parity = 1 ^ (bin(remainder).count("1") & 1)
    return remainder | parity << _BCH_BITS


#: Per-byte DECTED check contributions, same shape as the SECDED
#: :data:`repro.ecc.hamming.SYNDROME_TABLES`: the code is GF(2)-linear,
#: so a word's 15 check bits are the XOR of its eight per-byte entries
#: — and the check-bit *difference* of an error pattern is the encode of
#: the pattern itself, which the batched injection kernel exploits.
_BIT_CHECKS: List[int] = [_bit_check(i) for i in range(64)]
CHECK_TABLES: List[tuple] = []
for _k in range(8):
    _row = []
    for _value in range(256):
        _acc = 0
        for _j in range(8):
            if _value >> _j & 1:
                _acc ^= _BIT_CHECKS[8 * _k + _j]
        _row.append(_acc)
    CHECK_TABLES.append(tuple(_row))


def encode_word_dected(word: int) -> int:
    """Table-driven DECTED encode of one 64-bit word."""
    t = CHECK_TABLES
    return (
        t[0][word & 0xFF]
        ^ t[1][(word >> 8) & 0xFF]
        ^ t[2][(word >> 16) & 0xFF]
        ^ t[3][(word >> 24) & 0xFF]
        ^ t[4][(word >> 32) & 0xFF]
        ^ t[5][(word >> 40) & 0xFF]
        ^ t[6][(word >> 48) & 0xFF]
        ^ t[7][(word >> 56) & 0xFF]
    )


def _build_decode_table() -> Dict[int, int]:
    """Map check-bit difference -> 64-bit data-error mask, weight ≤ 2.

    Codeword positions: 64 data bits (difference = their check
    contribution), 14 BCH check bits and the overall parity bit
    (difference = the flipped check bit itself).  Distance 6 makes the
    mapping injective; a key collision here would mean the generator is
    wrong, so it is a hard assertion, not a silent overwrite.
    """
    positions = (
        [(_BIT_CHECKS[i], 1 << i) for i in range(64)]
        + [(1 << j, 0) for j in range(_BCH_BITS + 1)]
    )
    table: Dict[int, int] = {}
    for a, (diff_a, mask_a) in enumerate(positions):
        assert diff_a not in table
        table[diff_a] = mask_a
        for diff_b, mask_b in positions[a + 1 :]:
            diff = diff_a ^ diff_b
            assert diff not in table
            table[diff] = mask_a ^ mask_b
    return table


_DECODE: Dict[int, int] = _build_decode_table()


class DecTedCodec(Codec):
    """Extended BCH(78,64)+parity: corrects 2-bit, detects 3-bit errors."""

    name = "dected"
    check_bits_per_word = _BCH_BITS + 1
    corrects = True

    def encode(self, word: int) -> int:
        self._validate_word(word)
        return encode_word_dected(word)

    def check(self, word: int, check: int) -> CheckResult:
        self._validate_word(word)
        self._validate_check(check)
        diff = encode_word_dected(word) ^ check
        if diff == 0:
            return CheckResult(outcome=CheckOutcome.OK, data=word)
        mask = _DECODE.get(diff)
        if mask is None:
            # ≥ 3 flipped bits: outside the correctable ball, and
            # distance 6 guarantees weight-3 errors never alias into it.
            return CheckResult(
                outcome=CheckOutcome.DETECTED, data=word, syndrome=diff
            )
        return CheckResult(
            outcome=CheckOutcome.CORRECTED,
            data=word ^ mask,
            syndrome=diff,
        )


register_codec(DecTedCodec.name, DecTedCodec)
