"""Reed-Solomon symbol code: single-symbol correction over byte symbols.

An RS(10,8) code over GF(2^8): the eight bytes of a 64-bit data word
are eight symbols, and two check symbols make any *single-symbol* error
— up to eight flipped bits, as long as they stay within one byte —
fully correctable.  That is the chip-kill idea at word granularity, and
the natural answer to the adjacent-burst MBU scenarios
(``docs/reliability.md``, "Scenario packs"): a particle track that
wrecks several neighbouring cells of one byte is one symbol error.

16 check bits per 64-bit word (25% overhead).  Being MDS with two check
symbols the code has symbol distance 3, so it *cannot* also guarantee
double-symbol detection: a burst that straddles a byte boundary (two
damaged symbols) is usually detected but can miscorrect — the
fault-model campaigns count those as SDC, which is exactly the
trade-off the scenario packs measure (see ``docs/codecs.md``).

Layout: data byte *i* (little-endian) is the symbol at position *i*;
the check symbols sit at positions 8 and 9 and pack as
``c9 << 8 | c8``.  The parity checks are ``Σ r_p = 0`` and
``Σ α^p · r_p = 0`` over all ten received symbols.
"""

from __future__ import annotations

from typing import List

from repro.ecc.codec import Codec, register_codec
from repro.ecc.events import CheckOutcome, CheckResult

#: GF(2^8) primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
_GF_POLY = 0x11D

#: Exp/log tables for GF(2^8) with generator α = x.
_EXP: List[int] = [0] * 512
_LOG: List[int] = [0] * 256
_value = 1
for _i in range(255):
    _EXP[_i] = _value
    _LOG[_value] = _i
    _value <<= 1
    if _value & 0x100:
        _value ^= _GF_POLY
for _i in range(255, 512):
    _EXP[_i] = _EXP[_i - 255]


def _gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def _gf_div(a: int, b: int) -> int:
    if a == 0:
        return 0
    return _EXP[(_LOG[a] - _LOG[b]) % 255]


#: Number of symbols (8 data bytes + 2 check symbols).
_SYMBOLS = 10
#: α^p for each symbol position p.
_ALPHA_POW = [_EXP[p] for p in range(_SYMBOLS)]
#: 1 / (α^8 + α^9), the encoder's solve constant.
_SOLVE_INV = _gf_div(1, _ALPHA_POW[8] ^ _ALPHA_POW[9])


class RsSymbolCodec(Codec):
    """RS(10,8) over GF(2^8): corrects any single byte-symbol error."""

    name = "rs-symbol"
    check_bits_per_word = 16
    corrects = True

    def encode(self, word: int) -> int:
        self._validate_word(word)
        plain = 0
        weighted = 0
        for i in range(8):
            symbol = word >> (8 * i) & 0xFF
            plain ^= symbol
            weighted ^= _gf_mul(_ALPHA_POW[i], symbol)
        # Solve S0 = S1 = 0 for the two check symbols.
        c8 = _gf_mul(weighted ^ _gf_mul(_ALPHA_POW[9], plain), _SOLVE_INV)
        c9 = plain ^ c8
        return c9 << 8 | c8

    def check(self, word: int, check: int) -> CheckResult:
        self._validate_word(word)
        self._validate_check(check)
        c8 = check & 0xFF
        c9 = check >> 8
        s0 = c8 ^ c9
        s1 = _gf_mul(_ALPHA_POW[8], c8) ^ _gf_mul(_ALPHA_POW[9], c9)
        for i in range(8):
            symbol = word >> (8 * i) & 0xFF
            s0 ^= symbol
            s1 ^= _gf_mul(_ALPHA_POW[i], symbol)
        if s0 == 0 and s1 == 0:
            return CheckResult(outcome=CheckOutcome.OK, data=word)
        syndrome = s1 << 8 | s0
        if s0 == 0 or s1 == 0:
            # A single-symbol error has S1 = α^p · S0 with both nonzero;
            # one vanishing syndrome means ≥ 2 damaged symbols.
            return CheckResult(
                outcome=CheckOutcome.DETECTED, data=word, syndrome=syndrome
            )
        position = (_LOG[s1] - _LOG[s0]) % 255
        if position >= _SYMBOLS:
            return CheckResult(
                outcome=CheckOutcome.DETECTED, data=word, syndrome=syndrome
            )
        data = word
        if position < 8:
            data ^= s0 << (8 * position)
        return CheckResult(
            outcome=CheckOutcome.CORRECTED, data=data, syndrome=syndrome
        )


register_codec(RsSymbolCodec.name, RsSymbolCodec)
