"""SECDED (Single Error Correction, Double Error Detection) code.

This is an extended Hamming(72,64) code: seven Hamming parity bits plus
one overall parity bit protect each 64-bit data word, i.e. 8 check bits
per 64 data bits — exactly the 12.5% overhead the paper quotes for the
Itanium L2.  The paper applies this code only to dirty lines.

Codeword layout
---------------
Positions ``1..71`` follow the textbook Hamming arrangement: parity bits
occupy the power-of-two positions (1, 2, 4, 8, 16, 32, 64) and the 64
data bits fill the remaining positions in ascending order.  Position 0
holds the overall (even) parity of the other 71 bits.  The 8 check bits
are packed as ``overall << 7 | hamming`` where ``hamming`` bit *j* is the
parity bit at position ``2**j``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ecc.codec import WORD_BITS, Codec, register_codec
from repro.ecc.events import CheckOutcome, CheckResult
from repro.ecc.parity import _parity64

#: Codeword positions used by data bits (all non-power-of-two in 1..71).
_DATA_POSITIONS: List[int] = [
    p for p in range(1, 72) if p & (p - 1) != 0
]
assert len(_DATA_POSITIONS) == WORD_BITS

#: Map codeword position -> data bit index, for correction.
_POS_TO_DATABIT: Dict[int, int] = {p: i for i, p in enumerate(_DATA_POSITIONS)}

#: For each of the 7 Hamming parity bits, the mask of data bits it covers.
_COVER_MASKS: List[int] = []
for _j in range(7):
    _mask = 0
    for _i, _p in enumerate(_DATA_POSITIONS):
        if _p & (1 << _j):
            _mask |= 1 << _i
    _COVER_MASKS.append(_mask)


def _encode_reference(word: int) -> int:
    """Loop-based SECDED encode (the readable textbook form).

    Kept as the ground truth the precomputed byte tables are built from
    (and cross-checked against in the tests); hot paths go through
    :func:`encode_word` instead.
    """
    hamming = 0
    for j in range(7):
        hamming |= _parity64(word & _COVER_MASKS[j]) << j
    overall = _parity64(word) ^ _parity64(hamming)
    return (overall << 7) | hamming


#: Per-byte SECDED check contributions: ``SYNDROME_TABLES[k][b]`` is the
#: 8-bit check value of the word whose byte ``k`` (little-endian, bits
#: ``8k..8k+7``) is ``b`` and whose other bytes are zero.  The code is
#: GF(2)-linear, so the check bits of any word are the XOR of its eight
#: per-byte contributions — and the *syndrome* of an error pattern is
#: the encode of the pattern itself, which is what lets the batched
#: fault-injection kernel classify a strike with eight table lookups
#: instead of a full re-encode.
SYNDROME_TABLES: List[tuple] = [
    tuple(_encode_reference(value << (8 * k)) for value in range(256))
    for k in range(8)
]

_SYNDROME_ARRAY = None


def syndrome_table_array():
    """:data:`SYNDROME_TABLES` as a read-only ``(8, 256)`` uint8 ndarray.

    The vectorized kernel's gather target: row ``k`` indexed by byte
    value gives that byte's check-bit contribution, so a whole block of
    error patterns decodes as eight fancy-indexed XORs.  Built lazily so
    this module never requires numpy (the ``[fast]`` extra); callers
    must ensure numpy is importable first.
    """
    global _SYNDROME_ARRAY
    if _SYNDROME_ARRAY is None:
        import numpy

        array = numpy.array(SYNDROME_TABLES, dtype=numpy.uint8)
        array.setflags(write=False)
        _SYNDROME_ARRAY = array
    return _SYNDROME_ARRAY


def encode_word(word: int) -> int:
    """Table-driven SECDED encode of one 64-bit word (≈7× the loop)."""
    t = SYNDROME_TABLES
    return (
        t[0][word & 0xFF]
        ^ t[1][(word >> 8) & 0xFF]
        ^ t[2][(word >> 16) & 0xFF]
        ^ t[3][(word >> 24) & 0xFF]
        ^ t[4][(word >> 32) & 0xFF]
        ^ t[5][(word >> 40) & 0xFF]
        ^ t[6][(word >> 48) & 0xFF]
        ^ t[7][(word >> 56) & 0xFF]
    )


class SecDedCodec(Codec):
    """Extended Hamming(72,64): corrects 1-bit, detects 2-bit errors."""

    name = "secded"
    check_bits_per_word = 8
    corrects = True

    def encode(self, word: int) -> int:
        self._validate_word(word)
        return encode_word(word)

    def check(self, word: int, check: int) -> CheckResult:
        self._validate_word(word)
        self._validate_check(check)
        stored_hamming = check & 0x7F
        recomputed = encode_word(word) & 0x7F
        syndrome = stored_hamming ^ recomputed
        # Even parity over the full 72-bit codeword: 0 when clean.
        overall = _parity64(word) ^ _parity64(check)

        if syndrome == 0 and overall == 0:
            return CheckResult(outcome=CheckOutcome.OK, data=word)

        if overall == 1:
            # Odd-weight error: assume single bit, locate and repair it.
            return self._correct_single(word, syndrome)

        # Non-zero syndrome with even overall parity: double-bit error.
        return CheckResult(
            outcome=CheckOutcome.DETECTED, data=word, syndrome=syndrome
        )

    def _correct_single(self, word: int, syndrome: int) -> CheckResult:
        """Repair the single-bit error located by ``syndrome``."""
        if syndrome == 0:
            # The flipped bit is the overall parity bit itself; data intact.
            return CheckResult(
                outcome=CheckOutcome.CORRECTED,
                data=word,
                syndrome=syndrome,
                corrected_bit=0,
            )
        if syndrome & (syndrome - 1) == 0:
            # A Hamming parity bit flipped; data intact.
            return CheckResult(
                outcome=CheckOutcome.CORRECTED,
                data=word,
                syndrome=syndrome,
                corrected_bit=syndrome,
            )
        databit: Optional[int] = _POS_TO_DATABIT.get(syndrome)
        if databit is None:
            # Syndrome points outside the codeword: at least 3 bits flipped.
            return CheckResult(
                outcome=CheckOutcome.DETECTED, data=word, syndrome=syndrome
            )
        return CheckResult(
            outcome=CheckOutcome.CORRECTED,
            data=word ^ (1 << databit),
            syndrome=syndrome,
            corrected_bit=syndrome,
        )


register_codec(SecDedCodec.name, SecDedCodec)
