"""Error-coding substrate: the registered codecs plus fault injection.

The paper protects clean cache lines with one parity bit per 64-bit word
and dirty lines with SECDED ECC (8 check bits per 64-bit word, as in the
Itanium L2).  This package provides bit-accurate implementations of
those codes — plus the stronger geometries the correlated-fault
scenarios compare them against (interleaved parity, BCH DECTED, an
RS byte-symbol code) — behind a common
:class:`~repro.ecc.codec.Codec` interface and registry, and a
fault-injection harness used by the reliability experiments and tests.
See ``docs/codecs.md`` for the full reference manual.
"""

from repro.ecc.codec import (
    Codec,
    CodewordError,
    LineCodec,
    available_codecs,
    get_codec,
    register_codec,
)
from repro.ecc.dected import DecTedCodec
from repro.ecc.events import CheckOutcome, CheckResult
from repro.ecc.hamming import SecDedCodec
from repro.ecc.injection import FaultInjector, flip_bit
from repro.ecc.parity import InterleavedParityCodec, ParityCodec
from repro.ecc.rs import RsSymbolCodec

__all__ = [
    "CheckOutcome",
    "CheckResult",
    "Codec",
    "CodewordError",
    "DecTedCodec",
    "FaultInjector",
    "InterleavedParityCodec",
    "LineCodec",
    "ParityCodec",
    "RsSymbolCodec",
    "SecDedCodec",
    "available_codecs",
    "flip_bit",
    "get_codec",
    "register_codec",
]
