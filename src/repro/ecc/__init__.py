"""Error-coding substrate: parity and SECDED codecs plus fault injection.

The paper protects clean cache lines with one parity bit per 64-bit word
and dirty lines with SECDED ECC (8 check bits per 64-bit word, as in the
Itanium L2).  This package provides bit-accurate implementations of both
codes over real payloads, a common :class:`~repro.ecc.codec.Codec`
interface, and a fault-injection harness used by the reliability
experiments and tests.
"""

from repro.ecc.codec import (
    Codec,
    CodewordError,
    LineCodec,
    available_codecs,
    get_codec,
    register_codec,
)
from repro.ecc.events import CheckOutcome, CheckResult
from repro.ecc.hamming import SecDedCodec
from repro.ecc.injection import FaultInjector, flip_bit
from repro.ecc.parity import InterleavedParityCodec, ParityCodec

__all__ = [
    "CheckOutcome",
    "CheckResult",
    "Codec",
    "CodewordError",
    "FaultInjector",
    "InterleavedParityCodec",
    "LineCodec",
    "ParityCodec",
    "SecDedCodec",
    "available_codecs",
    "flip_bit",
    "get_codec",
    "register_codec",
]
