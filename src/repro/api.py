"""Typed facade over the experiment and campaign engines.

Every operation the CLI exposes — single runs, IPC comparisons, the
area accounting, figure regeneration, ablations, codec injection and
Monte Carlo reliability campaigns — is callable here as a pure
function: a **frozen request dataclass in, a result dataclass out, no
printing**.  The CLI (:mod:`repro.cli`), the job service
(:mod:`repro.service`) and the tests all consume this one layer, so a
number rendered in a terminal table, returned over HTTP and asserted in
a test is computed by the same code path.

Contract
--------
* Requests are frozen dataclasses whose fields are JSON primitives
  (ints, floats, strings, tuples), so they round-trip through
  :func:`request_from_dict` / ``as_dict`` unchanged — that is the
  service's wire format.
* Invalid inputs (unknown benchmark, missing trace file, bad scheme)
  raise :class:`ReproError`, never a bare traceback; the CLI maps it to
  a nonzero exit code and the service to an HTTP 400.
* :func:`request_key` gives every request a content-addressed identity
  (folding in :func:`repro.experiments.pool.code_version`); plain
  benchmark runs reuse the sweep cache's own
  :func:`~repro.experiments.pool.cell_key`, so service-level dedupe and
  the on-disk result cache agree about what "the same work" means.
* Responses expose ``as_dict()`` returning plain JSON-able data — the
  single serialization path shared by ``--format json`` and the
  service.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.core.protected_cache import ProtectionConfig
from repro.experiments.pool import Cell, SweepEngine, cell_key, code_version
from repro.experiments.runner import RunConfig, interval_label

__all__ = [
    "AblateRequest",
    "AblateResponse",
    "AreaRequest",
    "AreaResponse",
    "FigureSection",
    "FiguresRequest",
    "FiguresResponse",
    "InjectRequest",
    "InjectResponse",
    "IpcRequest",
    "IpcResponse",
    "KINDS",
    "ReliabilityRequest",
    "ReliabilityResponse",
    "ReproError",
    "RunRequest",
    "RunResponse",
    "ablate",
    "area",
    "campaign_doc",
    "execute",
    "figures",
    "inject",
    "ipc",
    "reliability",
    "request_from_dict",
    "request_key",
    "run",
]


class ReproError(Exception):
    """A request that cannot be executed (bad input, missing file).

    The facade's contract is that *invalid inputs* surface as this
    single exception type — the CLI turns it into exit code 2 on
    stderr, the service into an HTTP 400 — while genuine bugs still
    raise whatever they raise.
    """


# -- request plumbing ---------------------------------------------------------


def _as_dict(obj: Any) -> Any:
    """JSON-able view of a (possibly nested) dataclass."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _as_dict(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): _as_dict(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_as_dict(v) for v in obj]
    if isinstance(obj, float) and obj != obj:  # NaN: JSON-hostile
        return None
    return obj


def request_from_dict(cls: type, payload: Mapping[str, Any]) -> Any:
    """Build a request dataclass from a plain dict (the wire format).

    Unknown fields are a :class:`ReproError` — a misspelled option must
    fail loudly, not silently fall back to a default.  Lists arriving
    from JSON are converted to the tuples the frozen dataclasses carry.
    """
    if not isinstance(payload, Mapping):
        raise ReproError(f"{cls.__name__} payload must be an object")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - names)
    if unknown:
        raise ReproError(
            f"unknown {cls.__name__} field(s): {', '.join(unknown)}"
        )
    kwargs = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in payload.items()
    }
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as err:
        raise ReproError(f"bad {cls.__name__}: {err}") from None


def request_key(kind: str, request: Any) -> str:
    """Content-addressed identity of one request.

    A plain benchmark run *is* a sweep-cache cell, so its key is the
    cache's own :func:`~repro.experiments.pool.cell_key` — the service
    dedupes exactly where the on-disk result cache would hit.  Every
    other request hashes its canonical dict plus the source-tree
    version, so a code change never serves stale work.
    """
    if kind == "run" and isinstance(request, RunRequest) and not request.trace:
        return cell_key(
            Cell(
                request.benchmark,
                request.protection_config(),
                request.run_config(),
            )
        )
    payload = {
        "kind": kind,
        "request": _as_dict(request),
        "code": code_version(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _run_config(refs: int, warmup: int, seed: int) -> RunConfig:
    if refs < 1 or warmup < 0:
        raise ReproError("refs must be positive and warmup non-negative")
    return RunConfig(n_refs=refs, warmup_refs=warmup, seed=seed)


def _benchmark(name: str) -> str:
    from repro.workloads import get_benchmark

    try:
        get_benchmark(name)
    except ValueError as err:
        raise ReproError(str(err)) from None
    return name


def _engine(engine: Optional[SweepEngine]) -> SweepEngine:
    return engine if engine is not None else SweepEngine()


# -- run ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunRequest:
    """One reference-mode run of a benchmark or trace file."""

    benchmark: str = "mesa"
    #: Path of a trace file to replay instead of ``benchmark``.
    trace: Optional[str] = None
    #: Cleaning interval in paper-nominal cycles; None disables cleaning.
    interval: Optional[int] = 1 << 20
    #: Shared ECC entries per set; None means unconstrained.
    ecc_entries: Optional[int] = 1
    refs: int = 60_000
    warmup: int = 20_000
    seed: int = 0

    def protection_config(self) -> Optional[ProtectionConfig]:
        if self.interval is None and self.ecc_entries is None:
            return None
        return ProtectionConfig(
            cleaning_interval=self.interval,
            ecc_entries_per_set=self.ecc_entries,
        )

    def run_config(self) -> RunConfig:
        return _run_config(self.refs, self.warmup, self.seed)

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class RunResponse:
    """Measured quantities of one run, ready to render or serialize."""

    request: RunRequest
    benchmark: str
    #: ``"1M (32768 scaled cycles)"``-style label, None when no cleaning.
    cleaning_interval: Optional[str]
    refs: int
    cycles: int
    dirty_fraction: float
    peak_dirty_fraction: float
    writeback_fraction: float
    writeback_split: Dict[str, float]
    l2_miss_rate: float
    bus_utilization: float

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


def run(
    request: RunRequest,
    engine: Optional[SweepEngine] = None,
    tracer=None,
    profiler=None,
) -> RunResponse:
    """Execute one reference-mode run.

    ``tracer`` forces a live (uncached) simulation, since event traces
    cannot come out of the result cache.
    """
    from repro.experiments.runner import run_refs, run_trace
    from repro.workloads import load_trace

    config = request.run_config()
    protection = request.protection_config()
    if request.trace:
        path = Path(request.trace)
        if not path.exists():
            raise ReproError(f"trace file not found: {request.trace}")
        try:
            stream = load_trace(path)
        except (OSError, ValueError) as err:
            raise ReproError(
                f"unreadable trace {request.trace}: {err}"
            ) from None
        out = run_trace(
            stream, protection, config, label=request.trace,
            tracer=tracer, profiler=profiler,
        )
    else:
        _benchmark(request.benchmark)
        if tracer is not None:
            out = run_refs(
                request.benchmark, protection, config,
                tracer=tracer, profiler=profiler,
            )
        else:
            eng = _engine(engine)
            out = eng.run_refs(request.benchmark, protection, config)
            if profiler is not None:
                profiler.merge(eng.profiler)

    label = None
    if protection is not None and protection.cleaning_interval is not None:
        geometry = config.geometry
        label = (
            f"{interval_label(protection.cleaning_interval)} "
            f"({geometry.scaled_interval(protection.cleaning_interval)} "
            f"scaled cycles)"
        )
    return RunResponse(
        request=request,
        benchmark=out.benchmark,
        cleaning_interval=label,
        refs=out.refs,
        cycles=out.cycles,
        dirty_fraction=out.dirty_fraction,
        peak_dirty_fraction=out.peak_dirty_fraction,
        writeback_fraction=out.writeback_fraction,
        writeback_split=dict(out.writeback_split),
        l2_miss_rate=out.l2_miss_rate,
        bus_utilization=out.bus_utilization,
    )


# -- ipc ----------------------------------------------------------------------


@dataclass(frozen=True)
class IpcRequest:
    """Org-vs-ours IPC comparison of one benchmark."""

    benchmark: str = "mesa"
    insts: int = 120_000
    interval: Optional[int] = 1 << 20
    ecc_entries: Optional[int] = 1
    refs: int = 60_000
    warmup: int = 20_000
    seed: int = 0

    def protection_config(self) -> Optional[ProtectionConfig]:
        if self.interval is None and self.ecc_entries is None:
            return None
        return ProtectionConfig(
            cleaning_interval=self.interval,
            ecc_entries_per_set=self.ecc_entries,
        )

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class IpcResponse:
    request: IpcRequest
    benchmark: str
    insts: int
    org_ipc: float
    ours_ipc: float
    org_cycles: int
    ours_cycles: int
    org_writeback_fraction: float
    ours_writeback_fraction: float
    #: 100 × (org − ours) / org, the paper's headline metric.
    ipc_loss_pct: float

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


def ipc(
    request: IpcRequest, engine: Optional[SweepEngine] = None
) -> IpcResponse:
    """Run the paired org/ours CPU-mode comparison."""
    _benchmark(request.benchmark)
    if request.insts < 1:
        raise ReproError("insts must be positive")
    config = _run_config(request.refs, request.warmup, request.seed)
    eng = _engine(engine)
    org = eng.run_ipc(request.benchmark, None, config, n_insts=request.insts)
    ours = eng.run_ipc(
        request.benchmark, request.protection_config(), config,
        n_insts=request.insts,
    )
    loss = 100 * (org.ipc - ours.ipc) / org.ipc if org.ipc else 0.0
    return IpcResponse(
        request=request,
        benchmark=request.benchmark,
        insts=request.insts,
        org_ipc=org.ipc,
        ours_ipc=ours.ipc,
        org_cycles=org.result.cycles,
        ours_cycles=ours.result.cycles,
        org_writeback_fraction=org.writeback_fraction,
        ours_writeback_fraction=ours.writeback_fraction,
        ipc_loss_pct=loss,
    )


# -- area ---------------------------------------------------------------------


@dataclass(frozen=True)
class AreaRequest:
    """The Section 5.2 protection-area accounting."""

    ecc_entries: int = 1

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class AreaResponse:
    request: AreaRequest
    #: (component, KiB) rows, ``total`` last — conventional scheme.
    conventional: Tuple[Tuple[str, float], ...]
    #: Same for the paper's proposed scheme.
    proposed: Tuple[Tuple[str, float], ...]
    #: Fractional area reduction (the paper's 0.59).
    reduction: float

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


def area(request: AreaRequest = AreaRequest()) -> AreaResponse:
    from repro.experiments import area_table

    if request.ecc_entries < 1:
        raise ReproError("ecc_entries must be positive")
    conv, ours, red = area_table(ecc_entries_per_set=request.ecc_entries)
    return AreaResponse(
        request=request,
        conventional=tuple((name, kib) for name, _, kib in conv.rows()),
        proposed=tuple((name, kib) for name, _, kib in ours.rows()),
        reduction=red,
    )


# -- inject -------------------------------------------------------------------


@dataclass(frozen=True)
class InjectRequest:
    """A codec-level fault-injection campaign.

    ``codec`` is any name in the :mod:`repro.ecc` registry, so codes
    added via :func:`repro.ecc.register_codec` are immediately
    injectable without touching this layer.
    """

    codec: str = "secded"
    trials: int = 1000
    flips: int = 1
    seed: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class InjectResponse:
    request: InjectRequest
    trials: int
    #: outcome name -> {"count": n, "rate": n / trials}.
    outcomes: Dict[str, Dict[str, float]]

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


def inject(request: InjectRequest, tracer=None) -> InjectResponse:
    from repro.ecc import CodewordError, FaultInjector, get_codec

    if request.trials < 1 or request.flips < 1:
        raise ReproError("trials and flips must be positive")
    try:
        codec = get_codec(request.codec)
    except CodewordError as err:
        raise ReproError(str(err)) from None
    injector = FaultInjector(codec, seed=request.seed, tracer=tracer)
    stats = injector.campaign(request.trials, request.flips)
    outcomes = {
        outcome.value: {"count": n, "rate": n / stats.trials}
        for outcome, n in sorted(
            stats.by_outcome.items(), key=lambda kv: kv[0].value
        )
    }
    return InjectResponse(
        request=request, trials=stats.trials, outcomes=outcomes
    )


# -- figures ------------------------------------------------------------------

FIGURE_CHOICES = (
    "all", "table1", "1", "3", "4", "5", "6", "7", "8", "ipc", "area",
)


@dataclass(frozen=True)
class FiguresRequest:
    """Regenerate one (or all) of the paper's figures and tables."""

    fig: str = "all"
    refs: int = 60_000
    warmup: int = 20_000
    seed: int = 0
    ecc_area_entries: int = 1

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class FigureSection:
    """One renderable block of figure output.

    Exactly one of ``series`` (a ``{row: {column: value}}`` table) or
    ``text`` (a pre-rendered block, e.g. Table 1) is set; ``area``
    sections carry an :class:`AreaResponse` instead.
    """

    title: str
    series: Optional[Dict[str, Dict[str, float]]] = None
    text: Optional[str] = None
    area: Optional[AreaResponse] = None
    ndigits: int = 2

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class FiguresResponse:
    request: FiguresRequest
    sections: Tuple[FigureSection, ...]

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


def figures(
    request: FiguresRequest, engine: Optional[SweepEngine] = None
) -> FiguresResponse:
    """Regenerate the requested figures as structured sections.

    This is the whole of the old ``cmd_figures`` orchestration: which
    sweeps to run, how to title them, which suites feed which figure —
    the CLI and the service both just render the returned sections.
    """
    from repro.experiments import (
        figure1,
        figure3_4,
        figure5_6,
        figure7,
        figure8,
        interval_sweep,
        ipc_loss,
        table1,
    )

    wanted = request.fig
    if wanted not in FIGURE_CHOICES:
        raise ReproError(
            f"unknown figure {wanted!r}; choose from {list(FIGURE_CHOICES)}"
        )
    config = _run_config(request.refs, request.warmup, request.seed)
    eng = _engine(engine)
    sections: List[FigureSection] = []

    if wanted in ("all", "table1"):
        sections.append(
            FigureSection(
                title="Table 1: baseline configuration", text=table1()
            )
        )
    if wanted in ("all", "1"):
        f1 = figure1(config, engine=eng)
        sections.append(FigureSection(
            title="Figure 1: % dirty lines (conventional)",
            series={k: {"dirty %": v} for k, v in f1.items()},
        ))
    if wanted in ("all", "3", "4", "5", "6"):
        suites = {"3": ["fp"], "5": ["fp"], "4": ["int"], "6": ["int"]}.get(
            wanted, ["fp", "int"]
        )
        for suite in suites:
            sweep = interval_sweep(suite, config, engine=eng)
            if wanted in ("all", "3", "4"):
                fig = "3" if suite == "fp" else "4"
                sections.append(FigureSection(
                    title=f"Figure {fig}: dirty % vs interval ({suite})",
                    series=figure3_4(suite, config, sweep=sweep),
                ))
            if wanted in ("all", "5", "6"):
                fig = "5" if suite == "fp" else "6"
                sections.append(FigureSection(
                    title=f"Figure {fig}: writeback % vs interval ({suite})",
                    series=figure5_6(suite, config, sweep=sweep),
                ))
    if wanted in ("all", "7"):
        f7 = figure7(config, engine=eng)
        sections.append(FigureSection(
            title="Figure 7: % dirty lines (full scheme)",
            series={k: {"dirty %": v} for k, v in f7.items()},
        ))
    if wanted in ("all", "8"):
        sections.append(FigureSection(
            title="Figure 8: writeback split (full scheme)",
            series=figure8(config, engine=eng),
        ))
    if wanted in ("all", "ipc"):
        rows: Dict[str, Dict[str, float]] = {}
        for suite in ("fp", "int"):
            rows.update(ipc_loss(
                config, suite=suite, n_insts=request.refs * 2, engine=eng
            ))
        sections.append(FigureSection(
            title="IPC: org vs ours", series=rows, ndigits=3
        ))
    if wanted in ("all", "area"):
        sections.append(FigureSection(
            title="Protection area, 1MB 4-way 64B L2",
            area=area(AreaRequest(ecc_entries=request.ecc_area_entries)),
        ))
    return FiguresResponse(request=request, sections=tuple(sections))


# -- ablate -------------------------------------------------------------------

#: Study name -> repro.experiments driver attribute.
ABLATIONS: Dict[str, str] = {
    "ecc-entries": "ablate_ecc_entries",
    "best-interval": "ablate_best_interval",
    "eager": "ablate_eager_writeback",
    "written-bit": "ablate_written_bit",
    "decay": "ablate_cleaning_policy",
    "replacement": "ablate_replacement",
    "write-buffer": "ablate_write_buffer",
    "cache-size": "ablate_cache_size",
    "energy": "ablate_energy",
}


@dataclass(frozen=True)
class AblateRequest:
    """Run one ablation study."""

    study: str = "best-interval"
    benchmarks: Optional[Tuple[str, ...]] = None
    refs: int = 60_000
    warmup: int = 20_000
    seed: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class AblateResponse:
    """One study's output, normalized to a renderable table.

    Most studies produce a ``{row: {column: value}}`` series; the
    ``ecc-entries`` study produces explicit headers + rows (mixed
    integer/float columns).  Exactly one of the two is set.
    """

    request: AblateRequest
    study: str
    series: Optional[Dict[str, Dict[str, float]]] = None
    headers: Optional[Tuple[str, ...]] = None
    rows: Optional[Tuple[Tuple[Any, ...], ...]] = None

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


def ablate(
    request: AblateRequest, engine: Optional[SweepEngine] = None
) -> AblateResponse:
    import inspect

    import repro.experiments as experiments

    if request.study not in ABLATIONS:
        raise ReproError(
            f"unknown study {request.study!r}; "
            f"choose from {sorted(ABLATIONS)}"
        )
    for name in request.benchmarks or ():
        _benchmark(name)
    config = _run_config(request.refs, request.warmup, request.seed)
    func = getattr(experiments, ABLATIONS[request.study])
    kwargs: Dict[str, Any] = {"config": config}
    if request.benchmarks:
        kwargs["benchmarks"] = list(request.benchmarks)
    if "engine" in inspect.signature(func).parameters:
        kwargs["engine"] = _engine(engine)
    result = func(**kwargs)
    if request.study == "ecc-entries":
        return AblateResponse(
            request=request,
            study=request.study,
            headers=(
                "entries/set", "area KiB", "dirty %", "ECC-WB %",
                "total WB %",
            ),
            rows=tuple(
                (p.entries_per_set, p.area_kib, p.dirty_pct, p.ecc_wb_pct,
                 p.total_wb_pct)
                for p in result
            ),
        )
    return AblateResponse(
        request=request, study=request.study, series=result
    )


# -- reliability --------------------------------------------------------------


@dataclass(frozen=True)
class ReliabilityRequest:
    """A Monte Carlo fault-injection campaign across schemes.

    ``trials=None`` is the CLI's ``--trials auto``: run until the
    Wilson half-width ``target`` is met on ``metric``.  ``benchmark``
    substitutes measured per-scheme dirty fractions for the paper's
    averages (``refs``/``warmup``/``seed`` shape that measurement run).
    ``checkpoint`` names a JSONL file completed shards persist to; the
    service fills it in automatically so campaigns survive restarts.
    """

    schemes: Tuple[str, ...] = ("uniform-ecc", "non-uniform")
    trials: Optional[int] = None
    target: float = 0.01
    metric: str = "sdc"
    trials_per_shard: int = 500
    shards_per_round: int = 8
    max_trials: int = 1_000_000
    kernel: str = "batch"
    seed: int = 0
    double_bit_fraction: float = 0.05
    raw_fit: float = 1000.0
    n_lines: int = 16384
    benchmark: Optional[str] = None
    refs: int = 60_000
    warmup: int = 20_000
    checkpoint: Optional[str] = None

    def __post_init__(self) -> None:
        # Validate the kernel at request-construction time: the CLI
        # surfaces this as `error:` + exit 2 and the job service as a
        # 400 at POST /v1/jobs — not as a worker-side failure after the
        # job was accepted.
        from repro.reliability.campaign import KERNELS

        if self.kernel not in KERNELS:
            raise ReproError(
                f"unknown kernel {self.kernel!r}; "
                f"available backends: {', '.join(KERNELS)}"
            )
        if self.kernel == "vector":
            from repro.reliability.vector import require_numpy

            require_numpy()

    def campaign_config(
        self, dirty_fractions: Optional[Mapping[str, float]] = None
    ):
        from repro.reliability import (
            CampaignConfig,
            FaultModelConfig,
            StoppingRule,
        )

        try:
            return CampaignConfig(
                schemes=tuple(self.schemes),
                trials=self.trials,
                trials_per_shard=self.trials_per_shard,
                shards_per_round=self.shards_per_round,
                stopping=StoppingRule(
                    target_half_width=self.target,
                    max_trials=self.max_trials,
                ),
                metric=self.metric,
                seed=self.seed,
                model=FaultModelConfig(
                    double_bit_fraction=self.double_bit_fraction
                ),
                dirty_fractions=(
                    dict(dirty_fractions) if dirty_fractions else None
                ),
                raw_fit_per_mbit=self.raw_fit,
                n_lines=self.n_lines,
                kernel=self.kernel,
            )
        except ValueError as err:
            raise ReproError(str(err)) from None

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class ReliabilityResponse:
    """Everything one campaign produced, plus the rich result object.

    ``result`` is the engine's :class:`~repro.reliability.CampaignResult`
    (for table rendering and further analysis); ``as_dict`` serializes
    it via :func:`campaign_doc`.
    """

    request: ReliabilityRequest
    #: Measured per-scheme dirty fractions, when ``benchmark`` was set.
    dirty_fractions: Optional[Dict[str, float]]
    result: Any = field(repr=False)
    resumed_shards: int = 0
    executed_shards: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "request": _as_dict(self.request),
            "dirty_fractions": self.dirty_fractions,
            "resumed_shards": self.resumed_shards,
            "executed_shards": self.executed_shards,
            "campaign": campaign_doc(self.result),
        }


def campaign_doc(result) -> Dict[str, Any]:
    """JSON-able document of a :class:`~repro.reliability.CampaignResult`.

    The one serialization of campaign numbers: per-scheme trials,
    conditional outcome rates with Wilson half-widths, AVF, the FIT
    split and MTTF — exactly the quantities the rendered tables show.
    """
    schemes: Dict[str, Any] = {}
    for name, s in result.schemes.items():
        e = s.estimate
        schemes[name] = {
            "trials": s.trials,
            "shards": s.shards,
            "stopped_by": s.stopped_by,
            "half_width": s.half_width,
            "rates": {
                outcome.value: {
                    "value": r.value,
                    "lo": r.lo,
                    "hi": r.hi,
                    "count": r.successes,
                }
                for outcome, r in e.rates.items()
            },
            "avf": {"value": e.avf.value, "lo": e.avf.lo, "hi": e.avf.hi},
            "fit_sdc": list(e.fit_sdc),
            "fit_due": list(e.fit_due),
            "mttf_hours": [
                (None if v == float("inf") else v) for v in e.mttf_hours
            ],
            "outcome_counts": {
                outcome.value: n for outcome, n in s.outcome_counts.items()
            },
            "domain_counts": {
                domain.value: {o.value: n for o, n in per.items()}
                for domain, per in s.domain_counts.items()
            },
        }
    return {
        "schemes": schemes,
        "total_trials": result.total_trials,
        "resumed_shards": result.resumed_shards,
        "executed_shards": result.executed_shards,
    }


def reliability(
    request: ReliabilityRequest,
    engine: Optional[SweepEngine] = None,
    tracer=None,
    registry=None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    checkpoint: Optional[str] = None,
) -> ReliabilityResponse:
    """Run (or resume) a campaign.

    ``checkpoint`` overrides ``request.checkpoint`` (the service passes
    a path derived from the request digest so identical campaigns share
    one resumable checkpoint file).  ``progress`` receives round-level
    event dicts from the engine (see
    :class:`repro.reliability.CampaignEngine`).
    """
    from repro.experiments.reliability import measured_dirty_fractions
    from repro.reliability import CampaignEngine, CheckpointError

    eng = _engine(engine)
    dirty_fractions = None
    if request.benchmark:
        _benchmark(request.benchmark)
        config = _run_config(request.refs, request.warmup, request.seed)
        dirty_fractions = measured_dirty_fractions(
            request.benchmark, config, engine=eng
        )
        if progress is not None:
            progress({
                "type": "dirty-fractions",
                "benchmark": request.benchmark,
                "dirty_fractions": dict(dirty_fractions),
            })

    campaign = request.campaign_config(dirty_fractions)
    try:
        result = CampaignEngine(
            campaign,
            engine=eng,
            checkpoint=checkpoint or request.checkpoint,
            tracer=tracer,
            registry=registry,
            progress=progress,
        ).run()
    except CheckpointError as err:
        raise ReproError(str(err)) from None
    return ReliabilityResponse(
        request=request,
        dirty_fractions=(
            dict(dirty_fractions) if dirty_fractions is not None else None
        ),
        result=result,
        resumed_shards=result.resumed_shards,
        executed_shards=result.executed_shards,
    )


# -- dispatch -----------------------------------------------------------------

#: Request kind -> (request class, executor).  The service's job types.
KINDS: Dict[str, Tuple[type, Callable[..., Any]]] = {
    "run": (RunRequest, run),
    "ipc": (IpcRequest, ipc),
    "area": (AreaRequest, area),
    "inject": (InjectRequest, inject),
    "figures": (FiguresRequest, figures),
    "ablate": (AblateRequest, ablate),
    "reliability": (ReliabilityRequest, reliability),
}


def execute(kind: str, request: Any, **kwargs: Any) -> Any:
    """Dispatch one request to its executor by kind name."""
    try:
        cls, func = KINDS[kind]
    except KeyError:
        raise ReproError(
            f"unknown request kind {kind!r}; known: {sorted(KINDS)}"
        ) from None
    if not isinstance(request, cls):
        raise ReproError(
            f"{kind} request must be {cls.__name__}, "
            f"got {type(request).__name__}"
        )
    return func(request, **kwargs)
