"""Command-line interface: ``python -m repro <command>``.

The CLI is a thin rendering shell over :mod:`repro.api`: every command
builds a frozen request dataclass, hands it to the facade, and renders
the returned result dataclass — as a table by default, or verbatim as
JSON under ``--format json``.  Invalid inputs surface as
:class:`repro.api.ReproError` and exit with status 2; the same facade
calls (and the same result documents) are served over HTTP by
``repro serve`` (:mod:`repro.service`).

Commands
--------
``figures``   regenerate one or all of the paper's figures/tables
``run``       one reference-mode run of a benchmark or trace file
``ipc``       one CPU-mode run (org vs ours IPC comparison)
``area``      the Section 5.2 area accounting
``inject``    a fault-injection campaign against a codec
``reliability``  a Monte Carlo fault-injection campaign across schemes
``autotune``  Pareto fronts over the scheme/codec/interval design grid
``recommend`` pick a front point under FIT and area budgets
``serve``     long-running job server over the same facade; several
              replicas sharing one ``--data-dir`` form a fabric
``workers``   list a running service's fabric worker registry
``trace``     export a benchmark's synthetic trace to a file
``list``      list the benchmark suite
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Callable, Dict, List, Optional

from repro import api
from repro.experiments import (
    RunConfig,
    render_series,
    render_table,
)
from repro.experiments.report import render_snapshot
from repro.telemetry import (
    EventTracer,
    PhaseProfiler,
    mean_snapshots,
)
from repro.workloads import (
    BENCHMARKS,
    get_benchmark,
    load_trace,
    make_ref_stream,
    save_trace,
    summarize_trace,
)


def _typed_arg(
    kind: str,
    none_values: tuple = ("none", "off"),
    suffixes: Optional[Dict[str, int]] = None,
) -> Callable[[str], Optional[int]]:
    """Build an argparse ``type``: a positive int, 'none'-able, with
    optional magnitude suffixes (``1M``, ``256K``).

    All of the CLI's nullable numeric options share this grammar; the
    factory keeps their parsing and error messages identical.
    """

    def parse(text: str) -> Optional[int]:
        raw = text.strip().lower()
        if raw in none_values:
            return None
        multiplier = 1
        if suffixes:
            for suffix, mult in suffixes.items():
                if raw.endswith(suffix):
                    multiplier, raw = mult, raw[: -len(suffix)]
                    break
        try:
            value = int(raw) * multiplier
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad {kind} {text!r}"
            ) from None
        if value <= 0:
            raise argparse.ArgumentTypeError(
                f"{kind} must be positive or 'none'"
            )
        return value

    parse.__name__ = f"_parse_{kind}"
    return parse


#: '1M'/'256K'/'none' -> cycles (paper-nominal) or None.
_parse_interval = _typed_arg(
    "interval",
    none_values=("none", "off", "0"),
    suffixes={"m": 1 << 20, "k": 1 << 10},
)

#: Shared-ECC entries per set, or None for unconstrained.
_parse_entries = _typed_arg("entries")

#: Event-tracer ring-buffer capacity ('64K' style suffixes allowed).
_parse_capacity = _typed_arg(
    "capacity", suffixes={"m": 1 << 20, "k": 1 << 10}
)


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--refs", type=int, default=60_000,
                        help="measured memory references")
    parser.add_argument("--warmup", type=int, default=20_000,
                        help="warm-up references (stats discarded)")
    parser.add_argument("--seed", type=int, default=0)


def _add_pool_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep grid (1 = sequential)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="result-cache directory (default $REPRO_CACHE_DIR or "
             "~/.cache/repro-sweeps)",
    )


def _add_format_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format", choices=["table", "json", "csv"], default="table",
        help="render a table (default), print the facade's result "
             "document as JSON, or emit the table's rows as CSV",
    )


def _emit_json(response) -> int:
    """``--format json``: the facade result document, nothing else."""
    print(json.dumps(response.as_dict(), indent=2, sort_keys=True))
    return 0


def _emit_csv(headers, rows) -> int:
    """``--format csv``: the table's headers and raw rows, one CSV."""
    import csv

    writer = csv.writer(sys.stdout)
    writer.writerow(headers)
    writer.writerows(rows)
    return 0


def _render_rows(
    args, headers, rows, *, title=None, ndigits=2, response=None, doc=None
) -> int:
    """The one ``table|json|csv`` renderer the tabular commands share.

    ``json`` prints the facade result document (``response.as_dict()``)
    when one exists, otherwise the explicit ``doc``; ``csv`` emits the
    same headers and raw rows the table would render.
    """
    if args.format == "json":
        if response is not None:
            return _emit_json(response)
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    if args.format == "csv":
        return _emit_csv(headers, rows)
    print(render_table(headers, rows, ndigits=ndigits, title=title))
    return 0


def _engine(args):
    """Build the sweep engine a command's pool flags describe."""
    from repro.experiments.pool import SweepEngine

    if args.jobs < 1:
        raise api.ReproError("--jobs must be >= 1")
    cache = False if args.no_cache else (args.cache_dir or True)
    return SweepEngine(jobs=args.jobs, cache=cache,
                       progress=sys.stderr.isatty())


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write structured events as JSON Lines to PATH "
             "(tracing is off without this)",
    )
    parser.add_argument(
        "--trace-capacity", type=_parse_capacity, default=65536,
        metavar="N",
        help="event ring-buffer capacity (oldest events drop beyond it)",
    )


def _add_variant_arg(parser: argparse.ArgumentParser) -> None:
    # Like --kernel/--scenario/--codec: no argparse `choices` — the
    # facade rejects unknown names with the same enumerating error the
    # HTTP service returns as a 400.
    from repro.core.policy import available_variants

    parser.add_argument(
        "--variant", default="standard",
        help="policy variant: " + ", ".join(available_variants())
             + " ('silent-write' elides redundant stores, 'wb-compress' "
             "compresses write-back traffic; see docs/traffic.md)",
    )


def _add_protection_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--interval", type=_parse_interval, default="1M", metavar="CYCLES",
        help="cleaning interval, paper-nominal (e.g. 256K, 1M, none)",
    )
    parser.add_argument(
        "--ecc-entries", type=_parse_entries, default="1", metavar="N",
        help="shared ECC entries per set (or 'none' for unconstrained)",
    )


def _print_sweep_stats(engine) -> None:
    """Surface per-sweep wall-time/throughput accounting."""
    if engine.stats.cells:
        print(engine.summary())


def _make_tracer(args) -> Optional[EventTracer]:
    """The tracer ``--trace-out`` asks for, or None (tracing is opt-in)."""
    if not getattr(args, "trace_out", None):
        return None
    return EventTracer(capacity=args.trace_capacity)


def _export_trace(tracer: Optional[EventTracer], args, file=None) -> None:
    if tracer is None:
        return
    n = tracer.export_jsonl(args.trace_out)
    print(f"wrote {n} events to {args.trace_out} ({tracer.summary()})",
          file=file or sys.stdout)


def _area_rows(response: api.AreaResponse) -> List[List[str]]:
    rows = [[f"conventional: {n}", f"{k:.2f}"]
            for n, k in response.conventional]
    rows += [[f"proposed: {n}", f"{k:.2f}"] for n, k in response.proposed]
    rows.append(["reduction", f"{100 * response.reduction:.1f}%"])
    return rows


def _render_area(response: api.AreaResponse) -> str:
    return render_table(["component", "KiB"], _area_rows(response),
                        title="Protection area, 1MB 4-way 64B L2")


def cmd_figures(args) -> int:
    engine = _engine(args)
    if args.json:
        from repro.experiments import regenerate_all, save_json

        config = RunConfig(n_refs=args.refs, warmup_refs=args.warmup,
                           seed=args.seed)
        doc = regenerate_all(config, include_ipc=not args.no_ipc,
                             ipc_insts=args.refs * 2, engine=engine)
        save_json(doc, args.json)
        print(f"wrote {args.json}")
        _print_sweep_stats(engine)
        return 0
    request = api.FiguresRequest(
        fig=args.fig, refs=args.refs, warmup=args.warmup, seed=args.seed,
        ecc_area_entries=args.ecc_area_entries,
    )
    response = api.figures(request, engine=engine)
    for section in response.sections:
        if section.text is not None:
            print(section.title)
            print(section.text)
        elif section.area is not None:
            print(_render_area(section.area))
        else:
            print(render_series(section.series, ndigits=section.ndigits,
                                title=section.title))
        print()
    _print_sweep_stats(engine)
    return 0


def cmd_run(args) -> int:
    request = api.RunRequest(
        benchmark=args.benchmark, trace=args.trace, interval=args.interval,
        ecc_entries=args.ecc_entries, refs=args.refs, warmup=args.warmup,
        seed=args.seed, variant=args.variant,
    )
    tracer = _make_tracer(args)
    profiler = PhaseProfiler()
    out = api.run(request, engine=_engine(args), tracer=tracer,
                  profiler=profiler)
    rows = [
        ["benchmark", out.benchmark],
        ["measured refs", out.refs],
        ["cycles", out.cycles],
        ["avg dirty %", 100 * out.dirty_fraction],
        ["peak dirty %", 100 * out.peak_dirty_fraction],
        ["writeback % of refs", 100 * out.writeback_fraction],
        ["  WB %", 100 * out.writeback_split["WB"]],
        ["  Clean-WB %", 100 * out.writeback_split["Clean-WB"]],
        ["  ECC-WB %", 100 * out.writeback_split["ECC-WB"]],
        ["L2 miss rate", out.l2_miss_rate],
        ["bus utilisation", out.bus_utilization],
    ]
    if out.cleaning_interval is not None:
        # Paper-nominal interval plus the cycles this geometry ran it at.
        rows.insert(1, ["cleaning interval", out.cleaning_interval])
    if args.variant != "standard":
        rows.insert(1, ["variant", args.variant])
        rows += [
            ["silent writes", out.silent_writes],
            ["elided ECC updates", out.elided_ecc_updates],
            ["write-back bytes raw", out.wb_bytes_raw],
            ["write-back bytes sent", out.wb_bytes_compressed],
        ]
    ret = _render_rows(args, ["metric", "value"], rows, response=out)
    _export_trace(tracer, args,
                  file=None if args.format == "table" else sys.stderr)
    if args.profile and args.format == "table":
        print(profiler.summary())
    return ret


def cmd_ipc(args) -> int:
    request = api.IpcRequest(
        benchmark=args.benchmark, insts=args.insts, interval=args.interval,
        ecc_entries=args.ecc_entries, refs=args.refs, warmup=args.warmup,
        seed=args.seed, variant=args.variant,
    )
    engine = _engine(args)
    out = api.ipc(request, engine=engine)
    rows = [
        ["IPC", out.org_ipc, out.ours_ipc],
        ["cycles", out.org_cycles, out.ours_cycles],
        ["writeback fraction", out.org_writeback_fraction,
         out.ours_writeback_fraction],
        ["energy (uJ)", out.org_energy_uj, out.ours_energy_uj],
    ]
    if args.variant != "standard":
        rows += [
            ["silent writes", 0, out.silent_writes],
            ["elided ECC updates", 0, out.elided_ecc_updates],
            ["write-back bytes raw", 0, out.wb_bytes_raw],
            ["write-back bytes sent", 0, out.wb_bytes_compressed],
        ]
    title = f"{args.benchmark}: {args.insts} instructions"
    if args.variant != "standard":
        title += f" (ours = {args.variant})"
    ret = _render_rows(args, ["metric", "org", "ours"], rows,
                       ndigits=3, title=title, response=out)
    if args.format == "table":
        print(f"IPC loss: {out.ipc_loss_pct:.2f}%")
        _print_sweep_stats(engine)
    return ret


def cmd_area(args) -> int:
    response = api.area(api.AreaRequest(ecc_entries=args.ecc_area_entries))
    return _render_rows(
        args, ["component", "KiB"], _area_rows(response),
        title="Protection area, 1MB 4-way 64B L2", response=response,
    )


def cmd_inject(args) -> int:
    request = api.InjectRequest(codec=args.codec, trials=args.trials,
                                flips=args.flips, seed=args.seed)
    tracer = _make_tracer(args)
    out = api.inject(request, tracer=tracer)
    rows = [[name, doc["count"], doc["rate"]]
            for name, doc in out.outcomes.items()]
    ret = _render_rows(
        args, ["outcome", "count", "rate"], rows, ndigits=4,
        title=f"{args.codec}: {args.trials} trials x {args.flips} flips",
        response=out,
    )
    _export_trace(tracer, args,
                  file=None if args.format == "table" else sys.stderr)
    return ret


def _parse_trials(text: str) -> Optional[int]:
    """``auto`` (run until the stopping rule fires) or a positive int."""
    raw = text.strip().lower()
    if raw == "auto":
        return None
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad trials {text!r} (want 'auto' or a positive int)"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError("trials must be positive or 'auto'")
    return value


def cmd_reliability(args) -> int:
    """Run (or resume) a Monte Carlo fault-injection campaign."""
    engine = _engine(args)
    tracer = _make_tracer(args)
    request = api.ReliabilityRequest(
        schemes=tuple(args.schemes),
        trials=args.trials,
        target=args.target,
        metric=args.metric,
        trials_per_shard=args.trials_per_shard,
        shards_per_round=args.shards_per_round,
        max_trials=args.max_trials,
        kernel=args.kernel,
        seed=args.seed,
        double_bit_fraction=args.double_bit_fraction,
        raw_fit=args.raw_fit,
        n_lines=args.n_lines,
        benchmark=args.benchmark,
        refs=args.refs,
        warmup=args.warmup,
        checkpoint=args.checkpoint,
        scenario=args.scenario,
        codec=args.codec,
        variant=args.variant,
    )

    def progress(event: Dict[str, object]) -> None:
        if event.get("type") == "dirty-fractions":
            fractions = event["dirty_fractions"]
            print(f"{args.benchmark}: measured dirty fractions "
                  + ", ".join(f"{k}={v:.3f}"
                              for k, v in sorted(fractions.items())))

    try:
        response = api.reliability(
            request, engine=engine, tracer=tracer, progress=progress
        )
    except api.ReproError as err:
        # Checkpoint mismatches and bad campaign shapes keep their
        # historical SystemExit contract (message, no traceback).
        raise SystemExit(str(err)) from None
    except KeyboardInterrupt:
        if args.checkpoint:
            print(f"\ninterrupted; completed shards are in "
                  f"{args.checkpoint} — rerun the same command to resume")
        else:
            print("\ninterrupted (no --checkpoint: progress discarded)")
        return 130

    result = response.result
    title = "Reliability campaign"
    if args.benchmark:
        title += f" ({args.benchmark} dirty fractions)"
    settings = [
        ["trials", "auto" if args.trials is None else args.trials],
        ["target half-width",
         f"±{args.target:.3g} on {args.metric} (95% Wilson)"],
        ["seed", args.seed],
        ["resumed / executed shards",
         f"{result.resumed_shards} / {result.executed_shards}"],
    ]
    # Non-default fault model: say so where the numbers are read.
    if args.variant != "standard":
        settings.insert(0, ["variant", args.variant])
    if args.scenario != "nominal":
        settings.insert(0, ["scenario", args.scenario])
    if args.codec != "secded":
        settings.insert(1 if args.scenario != "nominal" else 0,
                        ["ecc codec", args.codec])
    print(render_table(
        ["setting", "value"],
        settings,
        title=title,
    ))
    print()
    from repro.experiments.report import render_campaign

    print(render_campaign(result))
    _export_trace(tracer, args)
    _print_sweep_stats(engine)
    return 0


def _autotune_request_kwargs(args) -> Dict[str, object]:
    """The AutotuneRequest fields both grid verbs share."""
    return dict(
        benchmarks=tuple(args.benchmarks),
        schemes=tuple(args.schemes),
        codecs=tuple(args.codecs),
        intervals=tuple(args.intervals),
        ecc_entries=tuple(args.ecc_entries),
        write_buffers=tuple(args.write_buffers),
        variants=tuple(args.variants),
        scenarios=tuple(args.scenarios),
        objectives=tuple(args.objectives),
        trials=args.trials,
        trials_per_shard=args.trials_per_shard,
        kernel=args.kernel,
        seed=args.seed,
        refs=args.refs,
        warmup=args.warmup,
        insts=args.insts,
        double_bit_fraction=args.double_bit_fraction,
        raw_fit=args.raw_fit,
        n_lines=args.n_lines,
        checkpoint_dir=args.checkpoint_dir,
    )


def _autotune_progress(event: Dict[str, object]) -> None:
    """Per-point progress on stderr (interactive runs only)."""
    if event.get("type") != "point" or not sys.stderr.isatty():
        return
    state = "cached" if event.get("cached") else "ran"
    print(
        f"[{event['done']}/{event['total']}] {event['benchmark']} "
        f"{event['label']} ({state})",
        file=sys.stderr,
    )


def _emit_front_csv(response: "api.AutotuneResponse") -> int:
    """``--format csv``: one row per point, flat enough for a spreadsheet.

    Axis columns, the ``on_front`` flag, then ``<objective>``/
    ``<objective>_lo``/``<objective>_hi`` triples per objective.
    """
    import csv

    axes = ["benchmark", "scheme", "codec", "interval", "ecc_entries",
            "write_buffer", "variant", "scenario"]
    headers = axes + ["label", "on_front"]
    for name in response.objectives:
        headers += [name, f"{name}_lo", f"{name}_hi"]
    writer = csv.writer(sys.stdout)
    writer.writerow(headers)
    for doc in response.points:
        row = [doc[a] for a in axes] + [doc["label"], doc["on_front"]]
        for name in response.objectives:
            o = doc["objectives"][name]
            row += [o["value"], o["lo"], o["hi"]]
        writer.writerow(row)
    return 0


def _print_fronts(response: "api.AutotuneResponse") -> None:
    from repro.experiments.report import render_front

    for benchmark, front in response.fronts.items():
        candidates = [
            i for i, doc in enumerate(response.points)
            if doc["benchmark"] == benchmark
        ]
        print(render_front(
            response.points, front, response.objectives,
            title=(f"{benchmark}: Pareto front over "
                   f"{', '.join(response.objectives)} "
                   f"(* = non-dominated, CI-aware)"),
            indices=candidates,
        ))
        print()
    print(f"grid: {len(response.points)} points "
          f"({response.executed} executed, {response.cached} cached)")


def cmd_autotune(args) -> int:
    """Explore the design grid and print per-benchmark Pareto fronts."""
    engine = _engine(args)
    request = api.AutotuneRequest(**_autotune_request_kwargs(args))
    response = api.autotune(
        request, engine=engine, progress=_autotune_progress
    )
    if args.format == "json":
        return _emit_json(response)
    if args.format == "csv":
        return _emit_front_csv(response)
    _print_fronts(response)
    _print_sweep_stats(engine)
    return 0


def cmd_recommend(args) -> int:
    """Pick a budget-feasible front point per benchmark."""
    engine = _engine(args)
    request = api.RecommendRequest(
        fit_budget=args.fit_budget,
        area_budget=args.area_budget,
        **_autotune_request_kwargs(args),
    )
    response = api.recommend(
        request, engine=engine, progress=_autotune_progress
    )
    if args.format == "json":
        return _emit_json(response)
    if args.format == "csv":
        return _emit_front_csv(response.autotune)
    budgets = []
    if args.fit_budget is not None:
        budgets.append(f"FIT ≤ {args.fit_budget:g} (95% upper bound)")
    if args.area_budget is not None:
        budgets.append(f"area ≤ {args.area_budget:g} KiB")
    print("budgets: " + ", ".join(budgets))
    rows = []
    for benchmark, choice in response.choices.items():
        doc = choice["point"]
        fit = doc["objectives"]["fit"]
        rows.append([
            benchmark,
            doc["label"],
            f"{doc['objectives']['area']['value']:.1f}",
            ("inf" if fit["hi"] is None
             else f"{fit['value']:.1f} (≤{fit['hi']:.1f})"),
        ])
    print(render_table(
        ["benchmark", "recommended point", "area KiB", "FIT"],
        rows,
        title="Recommended design points",
    ))
    print()
    _print_fronts(response.autotune)
    _print_sweep_stats(engine)
    return 0


def cmd_serve(args) -> int:
    """Run the long-lived job service over the :mod:`repro.api` facade."""
    from repro.service import ReproService

    service = ReproService(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        workers=args.workers,
        jobs=args.jobs,
        replica_id=args.replica_id,
    )
    print(f"repro service on http://{service.host}:{service.port} "
          f"(data dir {service.data_dir}, {args.workers} workers, "
          f"replica {service.store.replica_id})")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        service.shutdown()
    return 0


def cmd_workers(args) -> int:
    """List the fabric worker registry of a running service."""
    import urllib.error

    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    try:
        doc = client.workers()
    except urllib.error.URLError as err:
        raise api.ReproError(
            f"cannot reach service at {args.url}: {err.reason}"
        ) from None
    rows = [
        (
            w["replica_id"],
            w["host"] or "-",
            str(w["pid"] or "-"),
            "alive" if w["alive"] else "stale",
            f"{w['last_heartbeat'] - w['started_at']:.0f}s",
        )
        for w in doc["workers"]
    ]
    return _render_rows(
        args, ["replica", "host", "pid", "state", "up"], rows,
        title=f"fabric workers ({args.url})", doc=doc,
    )


def cmd_trace(args) -> int:
    import itertools

    spec = get_benchmark(args.benchmark)
    stream = itertools.islice(
        make_ref_stream(spec, args.l2_bytes, seed=args.seed), args.n
    )
    count = save_trace(stream, args.out, fmt=args.format)
    summary = summarize_trace(load_trace(args.out))
    print(f"wrote {count} refs to {args.out} "
          f"(write ratio {summary.write_ratio:.2f}, "
          f"footprint {summary.footprint_bytes // 1024} KiB)")
    return 0


def cmd_stats(args) -> int:
    """Multi-seed spread of the key metrics, from registry snapshots."""
    from repro.experiments.pool import Cell
    from repro.experiments.stats import SeedStats, summarize

    config = RunConfig(n_refs=args.refs, warmup_refs=args.warmup,
                       seed=args.seed)
    request = api.RunRequest(
        benchmark=args.benchmark, interval=args.interval,
        ecc_entries=args.ecc_entries,
    )
    protection = request.protection_config()
    engine = _engine(args)
    cells = [
        Cell(args.benchmark, protection, replace(config, seed=seed))
        for seed in range(args.n_seeds)
    ]
    outs = engine.run_cells(cells)
    dirty = summarize([out.dirty_fraction for out in outs])
    traffic = summarize([out.writeback_fraction for out in outs])
    snapshots = [out.snapshot for out in outs if out.snapshot is not None]
    mean_snap = mean_snapshots(snapshots)

    doc = None
    if args.format == "json":
        def _stats_doc(s: SeedStats) -> Dict[str, object]:
            import math

            return {"mean": s.mean, "std": s.std,
                    "ci95": s.ci95 if math.isfinite(s.ci95) else None,
                    "values": list(s.values)}

        doc = {
            "benchmark": args.benchmark,
            "n_seeds": args.n_seeds,
            "metrics": {
                "dirty_fraction": _stats_doc(dirty),
                "writeback_fraction": _stats_doc(traffic),
            },
            "mean_snapshot": mean_snap,
            "snapshots": snapshots,
            "profile": engine.profiler.as_dict(),
        }

    rows = [
        ["dirty fraction", dirty.mean, dirty.std, dirty.ci95],
        ["writeback fraction", traffic.mean, traffic.std, traffic.ci95],
    ]
    ret = _render_rows(
        args, ["metric", "mean", "std", "95% CI"], rows, ndigits=4,
        title=f"{args.benchmark}: spread over {args.n_seeds} seeds",
        doc=doc,
    )
    if args.format == "table":
        if mean_snap:
            print()
            print(render_snapshot(
                mean_snap,
                title=f"registry counters (mean of {len(snapshots)} seeds)",
            ))
        _print_sweep_stats(engine)
    return ret


def cmd_ablate(args) -> int:
    """Run one ablation study and print its table."""
    engine = _engine(args)
    request = api.AblateRequest(
        study=args.study,
        benchmarks=tuple(args.benchmarks) if args.benchmarks else None,
        refs=args.refs, warmup=args.warmup, seed=args.seed,
    )
    out = api.ablate(request, engine=engine)
    if out.headers is not None:
        print(render_table(
            list(out.headers),
            [list(row) for row in out.rows],
            title=f"ablation: {args.study}",
        ))
    else:
        print(render_series(out.series, title=f"ablation: {args.study}"))
    _print_sweep_stats(engine)
    return 0


def cmd_list(args) -> int:
    rows = [
        [s.name, s.suite, s.kind, f"{s.ws_factor:g}x L2", s.store_ratio]
        for s in BENCHMARKS.values()
    ]
    print(render_table(
        ["benchmark", "suite", "kind", "working set", "store ratio"],
        rows,
        title="Synthetic SPEC2000 suite",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.ecc import available_codecs
    from repro.reliability.scenarios import available_scenarios

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Area-Efficient Error Protection for "
                    "Caches' (DATE 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    p.add_argument("--fig", default="all", choices=list(api.FIGURE_CHOICES))
    p.add_argument("--ecc-area-entries", type=int, default=1)
    p.add_argument("--json", metavar="PATH",
                   help="regenerate everything and write one JSON document")
    p.add_argument("--no-ipc", action="store_true",
                   help="skip the (slow) IPC runs in --json mode")
    _add_run_args(p)
    _add_pool_args(p)
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("run", help="one reference-mode run")
    p.add_argument("--benchmark", default="mesa",
                   choices=sorted(BENCHMARKS))
    p.add_argument("--trace", help="run a trace file instead of a benchmark")
    p.add_argument("--profile", action="store_true",
                   help="print per-phase wall-time accounting")
    _add_variant_arg(p)
    _add_protection_args(p)
    _add_run_args(p)
    _add_pool_args(p)
    _add_trace_args(p)
    _add_format_arg(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("ipc", help="org-vs-ours IPC comparison")
    p.add_argument("--benchmark", default="mesa",
                   choices=sorted(BENCHMARKS))
    p.add_argument("--insts", type=int, default=120_000)
    _add_variant_arg(p)
    _add_protection_args(p)
    _add_run_args(p)
    _add_pool_args(p)
    _add_format_arg(p)
    p.set_defaults(func=cmd_ipc)

    p = sub.add_parser("area", help="Section 5.2 area accounting")
    p.add_argument("--ecc-area-entries", type=int, default=1)
    _add_format_arg(p)
    p.set_defaults(func=cmd_area)

    p = sub.add_parser("inject", help="codec fault-injection campaign")
    p.add_argument("--codec", choices=available_codecs(), default="secded")
    p.add_argument("--trials", type=int, default=1000)
    p.add_argument("--flips", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    _add_trace_args(p)
    _add_format_arg(p)
    p.set_defaults(func=cmd_inject)

    p = sub.add_parser(
        "reliability",
        help="Monte Carlo fault-injection campaign across schemes",
    )
    p.add_argument(
        "--trials", type=_parse_trials, default="auto", metavar="N|auto",
        help="trials per scheme; 'auto' runs until the Wilson half-width "
             "target is met (default)",
    )
    p.add_argument(
        "--schemes", nargs="+", default=["uniform-ecc", "non-uniform"],
        choices=["uniform-ecc", "non-uniform", "parity-only"],
        help="protection schemes to compare",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--target", type=float, default=0.01, metavar="HW",
        help="Wilson 95%% half-width to reach on --metric (auto mode)",
    )
    p.add_argument(
        "--metric", default="sdc",
        choices=["masked", "corrected", "refetched", "due", "sdc",
                 "failure"],
        help="rate the stopping rule targets ('failure' = sdc + due)",
    )
    p.add_argument("--trials-per-shard", type=int, default=500)
    p.add_argument("--shards-per-round", type=int, default=8)
    # No argparse `choices`: validation lives in the facade
    # (api.ReliabilityRequest), so an unknown kernel exits 2 with the
    # same backend listing the HTTP service returns as a 400.
    p.add_argument(
        "--kernel", default="batch",
        help="shard execution kernel: 'batch' mutates pooled "
             "pre-encoded lines via syndrome tables (~20x faster than "
             "'reference', bit-identical results); 'reference' builds "
             "a live LineProtection per trial; 'vector' classifies "
             "whole trial blocks with numpy gathers (needs the [fast] "
             "extra; same distribution, not the same per-trial stream)",
    )
    p.add_argument("--max-trials", type=int, default=1_000_000,
                   help="hard per-scheme trial budget in auto mode")
    # Like --kernel, --scenario and --codec carry no argparse `choices`:
    # the facade rejects unknown names with the same enumerating error
    # the HTTP service returns as a 400.
    p.add_argument(
        "--scenario", default="nominal",
        help="correlated-fault scenario pack: "
             + ", ".join(available_scenarios())
             + " (burst/row-column strike mixtures and raw-BER "
             "scaling; see docs/reliability.md). 'nominal' reproduces "
             "the classic Bernoulli stream bit-identically",
    )
    p.add_argument(
        "--codec", default="secded",
        help="code in the ECC protection slot: "
             + ", ".join(available_codecs())
             + " (check-bit geometry and guarantees in docs/codecs.md)",
    )
    p.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="JSONL checkpoint: completed shards persist here and an "
             "interrupted campaign resumes from it",
    )
    p.add_argument(
        "--benchmark", default=None, choices=sorted(BENCHMARKS),
        help="measure per-scheme dirty fractions from this benchmark "
             "instead of using the paper's averages",
    )
    _add_variant_arg(p)
    p.add_argument(
        "--double-bit-fraction", type=float, default=0.05, metavar="P",
        help="P(a strike upsets two bits of one codeword) — the "
             "multi-bit tail interleaving suppresses",
    )
    p.add_argument("--raw-fit", type=float, default=1000.0,
                   help="raw SRAM strike rate, FIT per Mbit")
    p.add_argument("--n-lines", type=int, default=16384,
                   help="lines of the protected structure (paper L2)")
    # One --seed drives both the campaign and any --benchmark
    # measurement run, so only the remaining run flags are added here.
    p.add_argument("--refs", type=int, default=60_000,
                   help="measured references for --benchmark")
    p.add_argument("--warmup", type=int, default=20_000,
                   help="warm-up references for --benchmark")
    _add_pool_args(p)
    _add_trace_args(p)
    p.set_defaults(func=cmd_reliability)

    def _add_autotune_grid_args(p: argparse.ArgumentParser) -> None:
        """The grid/evaluation flags ``autotune`` and ``recommend`` share.

        Axis flags take several values (``--codecs secded dected``);
        like ``reliability``'s --kernel/--scenario/--codec, most carry
        no argparse `choices` — the facade rejects unknown names with
        the same enumerating error the HTTP service returns as a 400.
        """
        from repro.autotune import SCHEMES, available_objectives
        from repro.core.policy import available_variants

        g = p.add_argument_group("design grid axes")
        g.add_argument("--benchmarks", nargs="+", default=["mesa"],
                       choices=sorted(BENCHMARKS), metavar="NAME",
                       help="workloads to explore (a front per workload)")
        g.add_argument("--schemes", nargs="+",
                       default=["non-uniform", "uniform-ecc"],
                       help="protection schemes: " + ", ".join(SCHEMES))
        g.add_argument("--codecs", nargs="+", default=["secded", "dected"],
                       help="ECC codecs: " + ", ".join(available_codecs()))
        g.add_argument("--intervals", nargs="+", type=_parse_interval,
                       default=[262144, 1048576], metavar="CYCLES",
                       help="cleaning intervals, paper-nominal "
                            "(e.g. 256K 1M); applies to non-uniform "
                            "points only")
        g.add_argument("--ecc-entries", nargs="+", type=_parse_entries,
                       default=[1], metavar="N",
                       help="shared ECC entries per set (non-uniform only)")
        g.add_argument("--write-buffers", nargs="+", type=int,
                       default=[16], metavar="N",
                       help="write-buffer depths between L2 and memory")
        g.add_argument("--variants", nargs="+", default=["standard"],
                       help="policy variants: "
                            + ", ".join(available_variants())
                            + " (see docs/traffic.md for the "
                            "traffic-aware ones)")
        g.add_argument("--scenarios", nargs="+", default=["nominal"],
                       help="correlated-fault scenario packs: "
                            + ", ".join(available_scenarios()))
        p.add_argument(
            "--objectives", nargs="+", default=["area", "fit", "traffic"],
            help="objectives the front is computed over: "
                 + ", ".join(available_objectives())
                 + " (fit/mttf use Wilson intervals; dominance is "
                 "CI-aware)",
        )
        p.add_argument("--trials", type=int, default=2000,
                       help="fixed injection trials per design point")
        p.add_argument("--trials-per-shard", type=int, default=500)
        p.add_argument("--kernel", default="batch",
                       help="campaign kernel (batch, reference, vector)")
        p.add_argument("--insts", type=int, default=120_000,
                       help="CPU-mode instructions for the ipc objective")
        p.add_argument("--double-bit-fraction", type=float, default=0.05,
                       metavar="P")
        p.add_argument("--raw-fit", type=float, default=1000.0,
                       help="raw SRAM strike rate, FIT per Mbit")
        p.add_argument("--n-lines", type=int, default=16384,
                       help="lines of the protected structure (paper L2)")
        p.add_argument(
            "--checkpoint-dir", metavar="DIR", default=None,
            help="directory of per-point campaign checkpoints: an "
                 "interrupted sweep resumes mid-grid from it",
        )
        _add_run_args(p)
        _add_pool_args(p)
        p.add_argument(
            "--format", choices=["table", "json", "csv"], default="table",
            help="front tables (default), the facade's JSON document, "
                 "or one flat CSV row per design point",
        )

    p = sub.add_parser(
        "autotune",
        help="Pareto fronts over the scheme/codec/interval design grid",
    )
    _add_autotune_grid_args(p)
    p.set_defaults(func=cmd_autotune)

    p = sub.add_parser(
        "recommend",
        help="pick a Pareto-front design point under FIT/area budgets",
    )
    p.add_argument("--fit-budget", type=float, default=None, metavar="FIT",
                   help="total-FIT budget; judged against the Wilson 95%% "
                        "upper bound")
    p.add_argument("--area-budget", type=float, default=None, metavar="KIB",
                   help="protection-area budget in KiB")
    _add_autotune_grid_args(p)
    p.set_defaults(func=cmd_recommend)

    p = sub.add_parser(
        "serve", help="serve facade requests as deduplicated jobs over HTTP"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument(
        "--data-dir", metavar="PATH", default=None,
        help="service state root: result cache and campaign checkpoints "
             "(default $REPRO_SERVICE_DIR or ~/.cache/repro-service)",
    )
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent job-executor threads")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes each job's sweep engine may use")
    p.add_argument(
        "--replica-id", metavar="ID", default=None,
        help="this replica's identity in the shared fabric (several "
             "replicas on one --data-dir cooperate on campaigns; "
             "default: a unique host-pid id)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "workers", help="list the fabric workers of a running service"
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="service base URL (default %(default)s)",
    )
    _add_format_arg(p)
    p.set_defaults(func=cmd_workers)

    p = sub.add_parser("trace", help="export a synthetic trace")
    p.add_argument("--benchmark", required=True, choices=sorted(BENCHMARKS))
    p.add_argument("--out", required=True)
    p.add_argument("-n", type=int, default=100_000)
    p.add_argument("--format", choices=["binary", "text"], default="binary")
    p.add_argument("--l2-bytes", type=int, default=64 * 1024)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("stats", help="multi-seed spread of key metrics")
    p.add_argument("--benchmark", default="mesa",
                   choices=sorted(BENCHMARKS))
    p.add_argument("--n-seeds", type=int, default=5)
    _add_format_arg(p)
    _add_protection_args(p)
    _add_run_args(p)
    _add_pool_args(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("ablate", help="run one ablation study")
    p.add_argument("study", choices=sorted(api.ABLATIONS))
    p.add_argument("--benchmarks", nargs="*", metavar="NAME",
                   help="restrict to these benchmarks")
    _add_run_args(p)
    _add_pool_args(p)
    p.set_defaults(func=cmd_ablate)

    p = sub.add_parser("list", help="list the benchmark suite")
    p.set_defaults(func=cmd_list)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except api.ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
