"""The campaign fault model: domains, outcome taxonomy, trial lifecycle.

One **trial** models a single particle strike against one cache line of
a given protection scheme and classifies its end-to-end architectural
outcome.  The stored state a strike can corrupt is split into four
**protection domains**, weighted by their stored-bit counts (a strike is
a uniformly random bit of the SRAM arrays):

``data``
    The 512-bit payload, guarded by the scheme's data code (parity,
    SECDED, or parity+SECDED-while-dirty).
``tag``
    The tag field plus its own parity bit ("as in Itanium", both
    schemes); modelled by :class:`repro.core.tag_protection.ProtectedTag`.
``status``
    The valid / dirty / written state bits, covered by the same per-tag
    parity bit as the tag.
``check``
    The stored check bits themselves (parity column, SECDED column or
    shared-ECC-array entry) — a real array that real strikes hit.

Outcome taxonomy (the superset of every domain's behaviours):

``masked``
    The fault is never architecturally observed: the line is
    overwritten or evicted clean before any read, or the flipped bit
    was microarchitectural only (e.g. the written bit).
``corrected``
    SECDED repaired the word in place; execution is unaffected.
``refetched``
    A detected error on a *clean* line; the pristine copy is refetched
    from the next level (also spurious refetches from check-bit flips).
``due``
    Detected, Unrecoverable Error: the error is signalled but the only
    up-to-date copy (or its address/state) is lost — a machine check.
``sdc``
    Silent Data Corruption: wrong data (or a wrongly-dropped dirty
    line) with no error signalled.  Only the harness, knowing ground
    truth, can label this.

The per-trial lifecycle and every mapping below are documented, with
the same vocabulary, in ``docs/reliability.md``.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Type

from repro.core.policy import (
    LineProtection,
    NonUniformPolicy,
    ProtectionDomain,
    ProtectionPolicy,
    RecoveryAction,
    UniformEccPolicy,
    UniformParityPolicy,
)
from repro.core.tag_protection import ProtectedTag, TagOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.reliability.kernel import LinePool


class FaultDomain(enum.Enum):
    """Which stored array the strike hit."""

    DATA = "data"
    TAG = "tag"
    STATUS = "status"
    CHECK = "check"


#: Stable sampling order (ties the campaign's determinism contract).
DOMAIN_ORDER: Tuple[FaultDomain, ...] = (
    FaultDomain.DATA,
    FaultDomain.TAG,
    FaultDomain.STATUS,
    FaultDomain.CHECK,
)


class TrialOutcome(enum.Enum):
    """End-to-end architectural outcome of one injected strike."""

    MASKED = "masked"
    CORRECTED = "corrected"
    REFETCHED = "refetched"
    DUE = "due"
    SDC = "sdc"

    @property
    def is_failure(self) -> bool:
        """Counts against the scheme (the AVF numerator)."""
        return self in (TrialOutcome.DUE, TrialOutcome.SDC)


#: Protection schemes a campaign can compare.
SCHEMES: Dict[str, Type[ProtectionPolicy]] = {
    "uniform-ecc": UniformEccPolicy,
    "non-uniform": NonUniformPolicy,
    "parity-only": UniformParityPolicy,
}


def scheme_policy(name: str) -> ProtectionPolicy:
    """Instantiate the policy a scheme name refers to."""
    try:
        return SCHEMES[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; known: {sorted(SCHEMES)}"
        ) from None


@dataclass(frozen=True)
class FaultModelConfig:
    """Per-scheme parameters of the strike model.

    ``dirty_fraction``
        P(the struck line is dirty) — the scheme's measured dirty
        residency (paper: 51.6% conventional, 19.6% full scheme), the
        quantity the campaign can also measure per benchmark.
    ``double_bit_fraction``
        P(a strike upsets two bits of the same codeword) — the
        multi-bit-upset tail.
    ``read_fraction``
        P(the struck line is demand-read before eviction/overwrite) —
        the architectural-masking derate.  Unread *clean* lines mask
        their faults; unread *dirty* lines are still checked on the
        write-back path.
    ``controller_refetch``
        The campaign's controller consults the dirty bit on a
        detected-uncorrectable error and refetches *clean* lines from
        the next level (both schemes — the paper's "clean data can
        always be refetched" argument, cf. ``repro.experiments.avf``).
        ``False`` reproduces the stricter line-level semantics of
        :meth:`repro.core.policy.LineProtection.access`, where only
        parity-guarded lines take the refetch path.
    ``scenario``
        Named correlated-fault scenario pack
        (:mod:`repro.reliability.scenarios`).  ``nominal`` keeps the
        historical Bernoulli trial stream bit-identical; any other
        scenario (adjacent bursts, row/column strikes, ...) switches
        trials to the generic scenario path and changes the checkpoint
        digest.
    ``ecc_codec``
        Registry name of the code in the ECC protection slot (default
        SECDED).  Swapping in ``dected`` or ``rs-symbol`` reruns the
        same campaign under a stronger geometry; non-default codecs
        also route through the generic scenario path.
    """

    line_bytes: int = 64
    tag_bits: int = 24
    #: valid + dirty + written (bit indices 0 / 1 / 2 below).
    status_bits: int = 3
    dirty_fraction: float = 0.5
    double_bit_fraction: float = 0.05
    read_fraction: float = 0.7
    controller_refetch: bool = True
    scenario: str = "nominal"
    ecc_codec: str = "secded"

    def __post_init__(self) -> None:
        if self.line_bytes % 8 != 0 or self.line_bytes <= 0:
            raise ValueError("line_bytes must be a positive multiple of 8")
        for name in ("dirty_fraction", "double_bit_fraction", "read_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.status_bits < 2:
            raise ValueError("status_bits must include valid and dirty")
        from repro.ecc import available_codecs
        from repro.reliability.scenarios import get_scenario

        get_scenario(self.scenario)  # raises ValueError with the listing
        if self.ecc_codec not in available_codecs():
            raise ValueError(
                f"unknown codec {self.ecc_codec!r}; "
                f"known: {available_codecs()}"
            )

    def codecs(self) -> Optional[dict]:
        """Domain-codec overrides for :class:`LineProtection` et al.

        ``None`` for the default SECDED slot, so every consumer keeps
        the exact historical code path (and trial stream) unless a
        different code was asked for.
        """
        if self.ecc_codec == "secded":
            return None
        return {ProtectionDomain.ECC: self.ecc_codec}


_VALID_BIT, _DIRTY_BIT = 0, 1  # status-bit layout; >=2 are heuristic bits


def domain_bits(
    policy: ProtectionPolicy, dirty: bool, config: FaultModelConfig
) -> Dict[FaultDomain, int]:
    """Stored bits per domain for a line of the given state.

    These weights make the strike model area-proportional: a domain is
    hit with probability (its bits) / (all stored bits of the line),
    which is exactly how a uniform strike over the SRAM arrays lands.
    """
    return {
        FaultDomain.DATA: config.line_bytes * 8,
        FaultDomain.TAG: config.tag_bits + 1,  # + its parity bit
        FaultDomain.STATUS: config.status_bits,
        FaultDomain.CHECK: policy.check_bits_per_line(
            config.line_bytes, dirty, codecs=config.codecs()
        ),
    }


def _choose_domain(
    rng: random.Random, weights: Dict[FaultDomain, int]
) -> FaultDomain:
    total = sum(weights[d] for d in DOMAIN_ORDER)
    roll = rng.random() * total
    acc = 0.0
    for domain in DOMAIN_ORDER:
        acc += weights[domain]
        if roll < acc:
            return domain
    return DOMAIN_ORDER[-1]  # pragma: no cover - float edge


_ACTION_TO_OUTCOME = {
    # A CLEAN_READ after injection means the codecs absorbed the flip
    # without architectural effect (e.g. a stale-parity flip shadowed
    # by ECC recovery): nothing was observed.
    RecoveryAction.CLEAN_READ: TrialOutcome.MASKED,
    RecoveryAction.CORRECTED_IN_PLACE: TrialOutcome.CORRECTED,
    RecoveryAction.REFETCHED: TrialOutcome.REFETCHED,
    RecoveryAction.DATA_LOSS: TrialOutcome.DUE,
    RecoveryAction.SILENT_CORRUPTION: TrialOutcome.SDC,
}

_TAG_TO_OUTCOME = {
    TagOutcome.OK: TrialOutcome.MASKED,
    TagOutcome.INVALIDATED_REFETCH: TrialOutcome.REFETCHED,
    TagOutcome.DATA_LOSS: TrialOutcome.DUE,
    # The tag silently names another address: a dirty line writes back
    # to the wrong place, a clean aliased hit returns wrong data.
    TagOutcome.SILENT_ALIAS: TrialOutcome.SDC,
}


def _build_line(
    policy: ProtectionPolicy, dirty: bool, config: FaultModelConfig,
    rng: random.Random, pool: "LinePool",
    codecs: Optional[dict] = None,
) -> LineProtection:
    """Construct a live line around a pooled payload.

    The payload comes from the pre-generated :class:`LinePool`, not the
    trial stream: both codes are GF(2)-linear, so a trial's outcome is a
    pure function of the injected *error pattern* and never of the
    payload bits.  Drawing only a pool index here (instead of 64–128
    payload bytes) keeps the per-trial random stream identical between
    this reference path and the batched kernel
    (:func:`repro.reliability.kernel.run_trials_batch`), which is what
    makes their outcome counts exactly equal under one shard seed.
    """
    payload = pool.payload_bytes(rng.randrange(pool.size))
    line = LineProtection(
        policy, payload, line_bytes=config.line_bytes, codecs=codecs
    )
    if dirty:
        line.write(payload)
    return line


def _observe(
    line: LineProtection, dirty: bool, config: FaultModelConfig,
    rng: random.Random,
) -> TrialOutcome:
    """Read the struck line the way the machine eventually would.

    With probability ``read_fraction`` the fault sits on the demand-read
    path.  Otherwise a clean line is evicted or overwritten unread (the
    fault is architecturally masked), while a dirty line still flows
    through the checked write-back path — the same decode-and-recover
    sequence as a read.
    """
    if not dirty and rng.random() >= config.read_fraction:
        return TrialOutcome.MASKED
    action, _ = line.access()
    if (
        config.controller_refetch
        and not dirty
        and action is RecoveryAction.DATA_LOSS
    ):
        # Detected-uncorrectable on a *clean* line: the line-level
        # decoder gives up, but the controller knows the line is clean
        # and refetches the pristine copy from the next level.
        return TrialOutcome.REFETCHED
    return _ACTION_TO_OUTCOME[action]


def _inject_data(
    policy: ProtectionPolicy, dirty: bool, flips: int,
    config: FaultModelConfig, rng: random.Random, pool: "LinePool",
) -> TrialOutcome:
    line = _build_line(policy, dirty, config, rng, pool)
    byte_idx = rng.randrange(config.line_bytes)
    line.flip(byte_idx, rng.randrange(8))
    if flips > 1:
        # A multi-bit upset stays within one 64-bit codeword — the
        # worst case for SECDED, which is exactly what must be counted.
        word_start = (byte_idx // 8) * 8
        line.flip(word_start + rng.randrange(8), rng.randrange(8))
    return _observe(line, dirty, config, rng)


def _inject_check(
    policy: ProtectionPolicy, dirty: bool, flips: int,
    config: FaultModelConfig, rng: random.Random, pool: "LinePool",
) -> TrialOutcome:
    line = _build_line(policy, dirty, config, rng, pool)
    # Choose the struck check structure in proportion to its bits —
    # the per-word widths come from the codecs actually guarding the
    # line (1 parity bit vs 8 SECDED bits for the default registry
    # codes), not from hardcoded knowledge of those two codes.
    parity_codec = line.codecs[ProtectionDomain.PARITY]
    ecc_codec = line.codecs[ProtectionDomain.ECC]
    parity_bits = (
        parity_codec.check_bits_per_word
        if line.parity_checks is not None
        else 0
    )
    ecc_bits = (
        ecc_codec.check_bits_per_word if line.ecc_checks is not None else 0
    )
    word = rng.randrange(config.line_bytes // 8)
    strike_ecc = rng.random() * (parity_bits + ecc_bits) < ecc_bits
    if strike_ecc:
        assert line.ecc_checks is not None
        line.ecc_checks[word] ^= 1 << rng.randrange(ecc_bits)
        if flips > 1:
            line.ecc_checks[word] ^= 1 << rng.randrange(ecc_bits)
    else:
        assert line.parity_checks is not None
        # A 1-bit-per-word code has only one target, so no rng draw —
        # this keeps the trial stream identical to the historical
        # parity/SECDED special-case (and to the batched kernel).
        line.parity_checks[word] ^= (
            1 << rng.randrange(parity_bits) if parity_bits > 1 else 1
        )
        if flips > 1:
            # One parity bit per word: the second upset bit of the
            # strike lands in the neighbouring word's parity column.
            other = (word + 1) % (config.line_bytes // 8)
            line.parity_checks[other] ^= 1
    return _observe(line, dirty, config, rng)


def _inject_tag(
    dirty: bool, flips: int, config: FaultModelConfig, rng: random.Random
) -> TrialOutcome:
    tag = ProtectedTag(rng.getrandbits(config.tag_bits), config.tag_bits)
    for bit in rng.sample(range(config.tag_bits), min(flips, config.tag_bits)):
        tag.flip(bit)
    # Tags are consulted on every subsequent access *and* at eviction
    # (the write-back needs the address), so there is no unread masking.
    return _TAG_TO_OUTCOME[tag.check(dirty)]


def _inject_status(
    dirty: bool, flips: int, config: FaultModelConfig, rng: random.Random
) -> TrialOutcome:
    """Status-bit strike; the bits share the tag's parity cover.

    An odd number of flips is parity-detected: recoverable on a clean
    line (invalidate + refetch), a DUE on a dirty line (its state is no
    longer trustworthy, and the data cannot be safely dropped *or*
    written back).  An even number is silent; the harm then depends on
    which bits flipped:

    * dirty bit on a dirty line — reads as clean, the modified data is
      silently discarded at eviction: SDC;
    * valid bit on a dirty line — the line vanishes with its data: SDC;
    * anything else (dirty bit on a clean line → spurious write-back of
      identical data; written bit → cleaning heuristic only): masked.
    """
    struck = rng.sample(
        range(config.status_bits), min(flips, config.status_bits)
    )
    if len(struck) % 2 == 1:
        return TrialOutcome.DUE if dirty else TrialOutcome.REFETCHED
    if dirty and (_DIRTY_BIT in struck or _VALID_BIT in struck):
        return TrialOutcome.SDC
    return TrialOutcome.MASKED


class _ScenarioPlan:
    """Precomputed per-(policy, config) state for scenario trials."""

    __slots__ = ("classes", "cdf", "codecs", "weights")

    def __init__(
        self, policy: ProtectionPolicy, config: FaultModelConfig
    ) -> None:
        from repro.reliability.scenarios import class_cdf, get_scenario

        scenario = get_scenario(config.scenario)
        self.classes = scenario.resolve(config.double_bit_fraction)
        self.cdf = class_cdf(self.classes)
        self.codecs = config.codecs()
        self.weights = {
            dirty: domain_bits(policy, dirty, config)
            for dirty in (False, True)
        }


_SCENARIO_PLANS: Dict[Tuple[str, FaultModelConfig], _ScenarioPlan] = {}


def _scenario_plan(
    policy: ProtectionPolicy, config: FaultModelConfig
) -> _ScenarioPlan:
    key = (policy.name, config)
    plan = _SCENARIO_PLANS.get(key)
    if plan is None:
        plan = _ScenarioPlan(policy, config)
        _SCENARIO_PLANS[key] = plan
    return plan


def _apply_data_masks(line: LineProtection, masks: Dict[int, int]) -> None:
    """XOR per-word error masks into the stored payload bit by bit."""
    for word, mask in masks.items():
        base = word * 8
        while mask:
            bit = (mask & -mask).bit_length() - 1
            line.flip(base + (bit >> 3), bit & 7)
            mask &= mask - 1


def _run_trial_scenario(
    policy: ProtectionPolicy,
    config: FaultModelConfig,
    rng: random.Random,
    pool: "LinePool",
) -> Tuple[TrialOutcome, FaultDomain, bool]:
    """One trial under the generic scenario path.

    Draw order (the cross-kernel determinism contract, see
    :mod:`repro.reliability.scenarios`): dirty roll → domain roll →
    class roll → burst length (burst classes only) → the shared
    samplers' domain-specific draws → read roll (clean lines only).
    The batched kernel replays this stream through the *same* sampler
    functions, so its trials are bit-identical by construction.
    """
    from repro.reliability import scenarios as sc

    plan = _scenario_plan(policy, config)
    dirty = rng.random() < config.dirty_fraction
    domain = _choose_domain(rng, plan.weights[dirty])
    cls = sc.draw_class(rng, plan.classes, plan.cdf)
    length = sc.draw_burst_length(rng, cls)
    if domain is FaultDomain.DATA:
        line = _build_line(policy, dirty, config, rng, pool, plan.codecs)
        masks = sc.data_error_masks(rng, cls, length, config.line_bytes)
        _apply_data_masks(line, masks)
        outcome = _observe(line, dirty, config, rng)
    elif domain is FaultDomain.CHECK:
        line = _build_line(policy, dirty, config, rng, pool, plan.codecs)
        parity_bits = (
            line.codecs[ProtectionDomain.PARITY].check_bits_per_word
            if line.parity_checks is not None
            else 0
        )
        ecc_bits = (
            line.codecs[ProtectionDomain.ECC].check_bits_per_word
            if line.ecc_checks is not None
            else 0
        )
        column, cmasks = sc.check_error_masks(
            rng, cls, length, config.line_bytes // 8, parity_bits, ecc_bits
        )
        target = (
            line.ecc_checks if column == "ecc" else line.parity_checks
        )
        assert target is not None
        for word, mask in cmasks.items():
            target[word] ^= mask
        outcome = _observe(line, dirty, config, rng)
    elif domain is FaultDomain.TAG:
        outcome = _inject_tag(dirty, sc.flips_for(cls, length), config, rng)
    else:
        outcome = _inject_status(
            dirty, sc.flips_for(cls, length), config, rng
        )
    return outcome, domain, dirty


def run_trial(
    policy: ProtectionPolicy,
    config: FaultModelConfig,
    rng: random.Random,
    pool: Optional["LinePool"] = None,
) -> Tuple[TrialOutcome, FaultDomain, bool]:
    """One strike: sample state, domain and multiplicity; classify.

    Returns ``(outcome, struck domain, line was dirty)``.  Consumes rng
    state in a fixed order, so a seeded rng replays the identical trial.
    This is the **reference kernel**: every trial exercises the real
    codec machinery end to end.  ``pool`` supplies the payloads (see
    :func:`_build_line`); when omitted the process-wide shared pool is
    used.  The batched kernel
    (:func:`repro.reliability.kernel.run_trials_batch`) replays the
    identical random stream ~30× faster.
    """
    if pool is None:
        from repro.reliability.kernel import LinePool

        pool = LinePool.shared(config.line_bytes)
    if config.scenario != "nominal" or config.ecc_codec != "secded":
        # Correlated scenarios (and non-default codecs) take the
        # generic path; the branch below is the historical nominal
        # stream, preserved bit for bit.
        return _run_trial_scenario(policy, config, rng, pool)
    dirty = rng.random() < config.dirty_fraction
    domain = _choose_domain(rng, domain_bits(policy, dirty, config))
    flips = 2 if rng.random() < config.double_bit_fraction else 1
    if domain is FaultDomain.DATA:
        outcome = _inject_data(policy, dirty, flips, config, rng, pool)
    elif domain is FaultDomain.CHECK:
        outcome = _inject_check(policy, dirty, flips, config, rng, pool)
    elif domain is FaultDomain.TAG:
        outcome = _inject_tag(dirty, flips, config, rng)
    else:
        outcome = _inject_status(dirty, flips, config, rng)
    return outcome, domain, dirty


def stored_bits_per_line(
    policy: ProtectionPolicy, config: FaultModelConfig, dirty_fraction: float
) -> float:
    """Expected stored bits per line, averaging check bits over state.

    The FIT conversion scales the raw per-bit strike rate by this (×
    the line count): non-uniform protection stores fewer vulnerable
    bits when the cache is mostly clean, and that area saving is part
    of the paper's reliability story.
    """
    per_state = {
        state: sum(domain_bits(policy, state, config).values())
        for state in (False, True)
    }
    return (
        dirty_fraction * per_state[True]
        + (1.0 - dirty_fraction) * per_state[False]
    )


__all__ = [
    "DOMAIN_ORDER",
    "FaultDomain",
    "FaultModelConfig",
    "SCHEMES",
    "TrialOutcome",
    "domain_bits",
    "run_trial",
    "scheme_policy",
    "stored_bits_per_line",
]
