"""JSONL checkpoints: an interrupted campaign resumes where it stopped.

A campaign is a deterministic schedule of independent **shards** (see
:mod:`repro.reliability.campaign`), so its durable state is simply the
set of completed shard results.  The checkpoint is a JSON-Lines file:

* line 1 — a ``header`` record carrying the schema version and a
  digest of everything that shapes the shard schedule (seed, model
  parameters, shard size, schemes).  Resuming under a *different*
  configuration would splice incompatible trials together, so a digest
  mismatch is a hard error, not a warning.
* every further line — one ``shard`` record: scheme, shard index, and
  its outcome counts.

Records are appended and flushed as each shard completes, so the file
is valid after a SIGINT at any point; a torn final line (the process
died mid-write) is detected and ignored on load.  Resume correctness —
the property the tests pin — is that *interrupt + resume* produces the
bit-identical aggregate of an uninterrupted run: shard seeds depend
only on (seed, scheme, index), completed shards are skipped by index,
and aggregation is an order-independent sum.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

#: Version 2: the per-trial random stream changed when payloads moved
#: from the trial stream to the pre-encoded line pool (PR 4) — a v1
#: checkpoint's shards would splice a different trial population into a
#: resumed campaign, so resuming one is refused rather than corrupted.
CHECKPOINT_VERSION = 2


class CheckpointError(ValueError):
    """The checkpoint file cannot be used with this campaign."""


def config_digest(payload: Dict[str, Any]) -> str:
    """Digest of the canonical campaign description (sorted JSON)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class CampaignCheckpoint:
    """Append-only JSONL store of completed shard results."""

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)
        self._fh = None

    # -- reading -----------------------------------------------------------

    def load(
        self, expected_digest: str
    ) -> Dict[Tuple[str, int], Dict[str, Any]]:
        """Completed shard records keyed by (scheme, shard index).

        Returns ``{}`` when the file does not exist yet.  Raises
        :class:`CheckpointError` on a version or configuration-digest
        mismatch.  A torn trailing line is skipped; any other malformed
        line is an error (the file is not ours to guess about).
        """
        if not self.path.exists():
            return {}
        lines = self.path.read_text(encoding="utf-8").splitlines()
        records = []
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn final line: the shard never completed
                raise CheckpointError(
                    f"{self.path}: malformed checkpoint line {i + 1}"
                ) from None
        if not records:
            return {}
        header = records[0]
        if header.get("type") != "header":
            raise CheckpointError(f"{self.path}: missing header record")
        if header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{self.path}: checkpoint version "
                f"{header.get('version')!r} != {CHECKPOINT_VERSION}"
            )
        if header.get("digest") != expected_digest:
            raise CheckpointError(
                f"{self.path}: campaign configuration changed since this "
                "checkpoint was written; delete it or restore the "
                "original flags to resume"
            )
        done: Dict[Tuple[str, int], Dict[str, Any]] = {}
        for record in records[1:]:
            if record.get("type") == "header":
                # Two fabric replicas sharing one checkpoint file can
                # race write_header's exists() check; an identical
                # duplicate header is harmless, a differing one is not.
                if (
                    record.get("version") == header.get("version")
                    and record.get("digest") == header.get("digest")
                ):
                    continue
                raise CheckpointError(
                    f"{self.path}: conflicting duplicate header record"
                )
            if record.get("type") != "shard":
                raise CheckpointError(
                    f"{self.path}: unexpected record type "
                    f"{record.get('type')!r}"
                )
            done[(record["scheme"], record["index"])] = record
        return done

    # -- writing -----------------------------------------------------------

    def _open(self) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")

    def write_header(self, digest: str, describe: Dict[str, Any]) -> None:
        """Write the header once (no-op if the file already has content)."""
        if self.path.exists() and self.path.stat().st_size > 0:
            return
        self._append(
            {
                "type": "header",
                "version": CHECKPOINT_VERSION,
                "digest": digest,
                "config": describe,
            }
        )

    def append_shard(self, record: Dict[str, Any]) -> None:
        self._append(dict(record, type="shard"))

    def _append(self, record: Dict[str, Any]) -> None:
        self._open()
        assert self._fh is not None
        self._fh.write(json.dumps(record, sort_keys=True))
        self._fh.write("\n")
        # Flush through to the OS so a SIGKILL right now loses at most
        # the (torn, skippable) line being written — never a prior one.
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignCheckpoint":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None


__all__ = [
    "CHECKPOINT_VERSION",
    "CampaignCheckpoint",
    "CheckpointError",
    "config_digest",
]
