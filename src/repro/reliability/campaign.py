"""The Monte Carlo campaign engine: shards, rounds, stopping, resume.

A campaign estimates each protection scheme's outcome rates by running
randomized injection trials (:mod:`repro.reliability.model`) in
**shards** — fixed-size batches that are the unit of parallelism,
checkpointing and reproducibility:

* **Deterministic seeding.** Shard ``i`` of scheme ``s`` always runs
  under ``shard_seed(seed, s, i)`` (a SHA-256 derivation), so any
  subset of shards can run anywhere, in any order, on any number of
  workers, and still produce the same trials.
* **Fan-out.** Rounds of shards go through
  :meth:`repro.experiments.pool.SweepEngine.map_tasks`, the same worker
  pool the figure sweeps use (``--jobs N``).
* **Checkpoint/resume.** Each completed shard's counts append to a
  JSONL checkpoint (:mod:`repro.reliability.checkpoint`); an
  interrupted campaign reloads them, finishes the partial round, and
  continues — producing the bit-identical aggregate of an
  uninterrupted run.
* **Statistical stopping.** With ``trials=None`` the campaign runs
  round by round until the target rate's Wilson half-width drops below
  the goal (:mod:`repro.reliability.stopping`).  Stopping decisions are
  made only at round boundaries from order-independent aggregates, so
  the stopping point is identical at any ``--jobs`` value and across
  interrupt/resume.

Aggregates convert to FIT / MTTF / AVF with confidence intervals via
:mod:`repro.reliability.estimates`; outcomes feed an optional
:class:`~repro.telemetry.tracing.EventTracer` (``campaign_outcome``
events) and :class:`~repro.telemetry.metrics.MetricsRegistry` counters.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.experiments.pool import SweepEngine
from repro.reliability.checkpoint import (
    CampaignCheckpoint,
    config_digest,
)
from repro.reliability.kernel import LinePool, run_trials_batch
from repro.reliability.estimates import (
    DEFAULT_RAW_FIT_PER_MBIT,
    ReliabilityEstimate,
    scheme_estimate,
)
from repro.reliability.model import (
    FaultDomain,
    FaultModelConfig,
    TrialOutcome,
    run_trial,
    scheme_policy,
)
from repro.reliability.stopping import StoppingRule
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import EventTracer

#: The paper's dirty-residency averages (Figures 1 and 7): what fraction
#: of struck lines are dirty under each scheme when no benchmark-specific
#: measurement is supplied.
DEFAULT_DIRTY_FRACTIONS: Dict[str, float] = {
    "uniform-ecc": 0.516,
    "parity-only": 0.516,
    "non-uniform": 0.196,
}

#: Per-trial outcome samples a shard carries back for event tracing.
SAMPLES_PER_SHARD = 32

#: Shard execution kernels.  ``batch`` classifies strikes against
#: pooled pre-encoded lines via syndrome-table lookups
#: (:mod:`repro.reliability.kernel`); ``reference`` builds a live
#: :class:`~repro.core.policy.LineProtection` per trial.  Those two
#: replay the identical random stream under one shard seed, so they
#: produce bit-identical shard results.  ``vector`` draws whole trial
#: blocks with ``numpy.random.Generator`` and classifies them with
#: table gathers (:mod:`repro.reliability.vector`, the ``[fast]``
#: extra): same fault model, same distribution — enforced by a
#: two-proportion statistical gate — but not the same per-trial stream.
KERNELS: Tuple[str, ...] = ("batch", "reference", "vector")


class CampaignAborted(RuntimeError):
    """The campaign stopped because ``should_abort`` returned True.

    Raised out of :meth:`CampaignEngine.run` at the next round boundary
    (or fabric wait-loop iteration) after a cancellation is observed;
    completed shards are already checkpointed, so a later identical
    request resumes rather than restarts.
    """


def shard_seed(master_seed: int, scheme: str, index: int) -> int:
    """The seed shard ``index`` of ``scheme`` always runs under.

    SHA-256 of ``(master_seed, scheme, index)`` — independent of worker
    count, execution order, interruption history and Python hash
    randomization.
    """
    blob = f"{master_seed}:{scheme}:{index}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


@dataclass(frozen=True)
class ShardSpec:
    """One shard's full execution recipe (picklable for the pool)."""

    scheme: str
    index: int
    trials: int
    seed: int
    model: FaultModelConfig
    sample_limit: int = SAMPLES_PER_SHARD
    #: ``batch`` or ``reference`` (see :data:`KERNELS`); either yields
    #: the same :class:`ShardResult` for the same spec.
    kernel: str = "batch"


@dataclass
class ShardResult:
    """Outcome counts of one executed shard."""

    scheme: str
    index: int
    trials: int
    seed: int
    #: ``{domain.value: {outcome.value: count}}`` — JSON-able.
    outcomes: Dict[str, Dict[str, int]]
    #: ``(trial offset, domain, dirty, outcome)`` head sample, for
    #: tracing; not persisted in checkpoints.
    samples: List[Tuple[int, str, bool, str]] = field(default_factory=list)

    def outcome_totals(self) -> Dict[TrialOutcome, int]:
        totals: Dict[TrialOutcome, int] = {}
        for per_domain in self.outcomes.values():
            for name, n in per_domain.items():
                outcome = TrialOutcome(name)
                totals[outcome] = totals.get(outcome, 0) + n
        return totals

    def as_record(self) -> Dict[str, Any]:
        """The checkpoint line for this shard."""
        return {
            "scheme": self.scheme,
            "index": self.index,
            "trials": self.trials,
            "seed": self.seed,
            "outcomes": self.outcomes,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "ShardResult":
        return cls(
            scheme=record["scheme"],
            index=record["index"],
            trials=record["trials"],
            seed=record["seed"],
            outcomes={
                domain: dict(per)
                for domain, per in record["outcomes"].items()
            },
        )


def run_shard(spec: ShardSpec) -> ShardResult:
    """Execute one shard to completion; pure function of the spec.

    Module-level so :meth:`SweepEngine.map_tasks` workers can pickle it.
    Dispatches on ``spec.kernel``: ``batch`` and ``reference`` consume
    the shard seed identically (bit-identical counts); ``vector`` seeds
    its own ``numpy.random.Generator`` from it, so its counts are
    deterministic per spec but only distribution-equivalent to the
    other kernels'.
    """
    policy = scheme_policy(spec.scheme)
    if spec.kernel == "vector" and (
        spec.model.scenario != "nominal" or spec.model.ecc_codec != "secded"
    ):
        # The vectorized kernel only implements the nominal Bernoulli
        # model with the default codecs.  Correlated scenarios fall
        # back to the batched kernel — which is bit-identical to the
        # reference oracle, so the vector kernel's distribution-
        # equivalence gate is trivially satisfied on this path (see
        # docs/reliability.md, "Scenario packs").
        spec = replace(spec, kernel="batch")
    if spec.kernel == "vector":
        from repro.reliability.vector import run_trials_vector

        outcomes, samples = run_trials_vector(
            policy,
            spec.model,
            spec.trials,
            spec.seed,
            sample_limit=spec.sample_limit,
        )
        return ShardResult(
            scheme=spec.scheme,
            index=spec.index,
            trials=spec.trials,
            seed=spec.seed,
            outcomes=outcomes,
            samples=samples,
        )
    if spec.kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {spec.kernel!r}; known: {list(KERNELS)}"
        )
    rng = random.Random(spec.seed)
    if spec.kernel == "batch":
        outcomes, samples = run_trials_batch(
            policy,
            spec.model,
            spec.trials,
            rng,
            sample_limit=spec.sample_limit,
        )
    else:
        pool = LinePool.shared(spec.model.line_bytes)
        outcomes = {}
        samples = []
        for trial in range(spec.trials):
            outcome, domain, dirty = run_trial(
                policy, spec.model, rng, pool
            )
            per_domain = outcomes.setdefault(domain.value, {})
            per_domain[outcome.value] = (
                per_domain.get(outcome.value, 0) + 1
            )
            if len(samples) < spec.sample_limit:
                samples.append(
                    (trial, domain.value, dirty, outcome.value)
                )
    return ShardResult(
        scheme=spec.scheme,
        index=spec.index,
        trials=spec.trials,
        seed=spec.seed,
        outcomes=outcomes,
        samples=samples,
    )


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one campaign.

    ``trials``
        Total trials per scheme; ``None`` (the CLI's ``--trials auto``)
        runs until ``stopping`` is satisfied on ``metric``.
    ``metric``
        The rate the stopping rule targets: an outcome name
        (``sdc``, ``due``, ...) or ``failure`` (SDC + DUE).
    ``dirty_fractions``
        Per-scheme P(struck line is dirty); unlisted schemes fall back
        to :data:`DEFAULT_DIRTY_FRACTIONS`, then to the model's own
        value.  The CLI fills this from a measured benchmark run.
    ``n_lines``
        Lines of the protected structure (the paper's 1 MB / 64 B L2 =
        16384) — only scales the FIT/MTTF conversion.
    ``kernel``
        Shard execution kernel (:data:`KERNELS`).  Excluded from the
        checkpoint digest, so checkpoints stay kernel-portable:
        ``batch`` and ``reference`` produce bit-identical shard
        results, and ``vector`` produces distribution-equivalent ones
        (the statistical gate in ``tests/reliability/test_vector.py``
        covers the mixed-kernel resume case too).
    """

    schemes: Tuple[str, ...] = ("uniform-ecc", "non-uniform")
    trials: Optional[int] = None
    trials_per_shard: int = 500
    shards_per_round: int = 8
    stopping: StoppingRule = StoppingRule()
    metric: str = "sdc"
    seed: int = 0
    model: FaultModelConfig = FaultModelConfig()
    dirty_fractions: Optional[Mapping[str, float]] = None
    raw_fit_per_mbit: float = DEFAULT_RAW_FIT_PER_MBIT
    n_lines: int = 16384
    kernel: str = "batch"

    def __post_init__(self) -> None:
        if not self.schemes:
            raise ValueError("campaign needs at least one scheme")
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; known: {list(KERNELS)}"
            )
        if self.kernel == "vector":
            from repro.reliability.vector import HAVE_NUMPY

            if not HAVE_NUMPY:
                raise ValueError(
                    "the 'vector' kernel needs numpy, which is not "
                    "installed; install the optional extra "
                    "(pip install -e .[fast]) or use kernel='batch'"
                )
        if self.trials is not None and self.trials < 1:
            raise ValueError("trials must be positive (or None for auto)")
        if self.trials_per_shard < 1 or self.shards_per_round < 1:
            raise ValueError("shard sizing must be positive")
        if self.metric != "failure":
            TrialOutcome(self.metric)  # raises on unknown names
        for scheme in self.schemes:
            scheme_policy(scheme)  # raises on unknown names

    def dirty_fraction_for(self, scheme: str) -> float:
        if self.dirty_fractions and scheme in self.dirty_fractions:
            return self.dirty_fractions[scheme]
        return DEFAULT_DIRTY_FRACTIONS.get(scheme, self.model.dirty_fraction)

    def model_for(self, scheme: str) -> FaultModelConfig:
        return replace(
            self.model, dirty_fraction=self.dirty_fraction_for(scheme)
        )

    def metric_successes(self, counts: Mapping[TrialOutcome, int]) -> int:
        if self.metric == "failure":
            return counts.get(TrialOutcome.SDC, 0) + counts.get(
                TrialOutcome.DUE, 0
            )
        return counts.get(TrialOutcome(self.metric), 0)

    def describe(self) -> Dict[str, Any]:
        """Canonical view of everything that shapes the shard schedule.

        This is what the checkpoint digest covers.  Post-processing
        knobs (``raw_fit_per_mbit``, ``n_lines``) are deliberately
        excluded: re-quoting FIT under a different raw rate must not
        invalidate a checkpoint.
        """
        return {
            "schemes": list(self.schemes),
            "trials": self.trials,
            "trials_per_shard": self.trials_per_shard,
            "shards_per_round": self.shards_per_round,
            "stopping": {
                "target_half_width": self.stopping.target_half_width,
                "min_trials": self.stopping.min_trials,
                "max_trials": self.stopping.max_trials,
                "z": self.stopping.z,
            },
            "metric": self.metric,
            "seed": self.seed,
            "model": {
                scheme: self._describe_model(self.model_for(scheme))
                for scheme in self.schemes
            },
        }

    @staticmethod
    def _describe_model(m: FaultModelConfig) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "line_bytes": m.line_bytes,
            "tag_bits": m.tag_bits,
            "status_bits": m.status_bits,
            "dirty_fraction": m.dirty_fraction,
            "double_bit_fraction": m.double_bit_fraction,
            "read_fraction": m.read_fraction,
            "controller_refetch": m.controller_refetch,
        }
        # Scenario and codec change the trial stream, so they belong in
        # the digest — but only as *extra* keys when non-default, so
        # every pre-scenario nominal checkpoint keeps its digest.
        if m.scenario != "nominal":
            entry["scenario"] = m.scenario
        if m.ecc_codec != "secded":
            entry["ecc_codec"] = m.ecc_codec
        return entry


@dataclass
class SchemeResult:
    """One scheme's aggregate over every completed shard."""

    scheme: str
    model: FaultModelConfig
    trials: int
    shards: int
    outcome_counts: Dict[TrialOutcome, int]
    domain_counts: Dict[FaultDomain, Dict[TrialOutcome, int]]
    estimate: ReliabilityEstimate
    #: Achieved Wilson half-width of the campaign's target metric.
    half_width: float
    #: Why the scheme stopped: ``target`` | ``budget`` | ``fixed``.
    stopped_by: str

    def rate(self, outcome: TrialOutcome) -> float:
        return (
            self.outcome_counts.get(outcome, 0) / self.trials
            if self.trials
            else 0.0
        )


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    config: CampaignConfig
    schemes: Dict[str, SchemeResult]
    #: Shards replayed from the checkpoint vs executed this run.
    resumed_shards: int
    executed_shards: int
    #: Shards executed by *other* fabric replicas and absorbed from the
    #: shared store (0 outside a fabric run).
    remote_shards: int = 0

    @property
    def total_trials(self) -> int:
        return sum(s.trials for s in self.schemes.values())


class _SchemeState:
    """Mutable per-scheme accumulation while the campaign runs.

    Reduction is deterministic by construction: aggregates always fold
    shard results in ascending shard-index order (:meth:`_ordered`),
    so a merged multi-replica campaign and a single-node ``--jobs N``
    run reduce the same shard set identically, whatever order the
    results arrived in.
    """

    def __init__(self, scheme: str) -> None:
        self.scheme = scheme
        self.shard_results: Dict[int, ShardResult] = {}
        self.stopped_by: Optional[str] = None

    def _ordered(self) -> List[ShardResult]:
        """Shard results in shard-index order — the reduction order."""
        return [
            self.shard_results[index]
            for index in sorted(self.shard_results)
        ]

    @property
    def shards_done(self) -> int:
        return len(self.shard_results)

    @property
    def trials(self) -> int:
        return sum(r.trials for r in self._ordered())

    def outcome_counts(self) -> Dict[TrialOutcome, int]:
        counts: Dict[TrialOutcome, int] = {}
        for result in self._ordered():
            for outcome, n in result.outcome_totals().items():
                counts[outcome] = counts.get(outcome, 0) + n
        return counts

    def domain_counts(self) -> Dict[FaultDomain, Dict[TrialOutcome, int]]:
        counts: Dict[FaultDomain, Dict[TrialOutcome, int]] = {}
        for result in self._ordered():
            for domain_name, per in result.outcomes.items():
                domain = FaultDomain(domain_name)
                acc = counts.setdefault(domain, {})
                for name, n in per.items():
                    outcome = TrialOutcome(name)
                    acc[outcome] = acc.get(outcome, 0) + n
        return counts

    def next_indices(self, count: int) -> List[int]:
        """The ``count`` lowest shard indices not yet completed."""
        indices: List[int] = []
        candidate = 0
        while len(indices) < count:
            if candidate not in self.shard_results:
                indices.append(candidate)
            candidate += 1
        return indices


class CampaignEngine:
    """Drives a campaign: scheduling, checkpointing, stopping, telemetry.

    ``engine``
        The :class:`SweepEngine` that fans shards out (its ``jobs``
        setting is the parallelism); a private sequential engine is
        built when omitted.
    ``checkpoint``
        Path or :class:`CampaignCheckpoint` for durable shard results;
        ``None`` runs without resume support.
    ``tracer`` / ``registry``
        Optional telemetry sinks: per-trial ``campaign_outcome`` events
        (head-sampled per shard) and per-scheme outcome counters.
    ``progress``
        Optional callback receiving JSON-able event dicts as the
        campaign advances: ``resume`` (checkpointed shards reloaded),
        ``shard`` (one shard completed, counters snapshot included) and
        ``round`` (a round boundary with per-scheme trial counts and
        achieved half-widths — the points where stopping decisions are
        made).  This is what the job service streams as NDJSON/SSE.
    ``coordinator``
        Optional shard-lease coordinator (duck-typed to
        :class:`repro.service.fabric.ShardCoordinator`).  When set,
        every round's shards are *leased* from a shared store instead
        of executed unconditionally: this replica runs the shards it
        wins, absorbs results other replicas publish, and steals back
        expired leases from dead replicas — so N engines pointed at one
        fabric cooperatively execute one campaign.  Because stopping
        decisions still happen at round boundaries over the merged
        (index-ordered) aggregate, the result is bit-identical to a
        single-node run.
    ``should_abort``
        Optional zero-arg callable polled at round boundaries and in
        the fabric wait loop; returning True raises
        :class:`CampaignAborted` (completed shards stay checkpointed).
    """

    def __init__(
        self,
        config: CampaignConfig,
        engine: Optional[SweepEngine] = None,
        checkpoint: Union[CampaignCheckpoint, str, None] = None,
        tracer: Optional[EventTracer] = None,
        registry: Optional[MetricsRegistry] = None,
        progress: Optional[Callable[[Dict[str, Any]], None]] = None,
        coordinator: Optional[Any] = None,
        should_abort: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.config = config
        self.engine = engine or SweepEngine()
        if checkpoint is None or isinstance(checkpoint, CampaignCheckpoint):
            self.checkpoint = checkpoint
        else:
            self.checkpoint = CampaignCheckpoint(checkpoint)
        self.tracer = tracer
        self.registry = registry if registry is not None else MetricsRegistry()
        self.progress = progress
        self.coordinator = coordinator
        self.should_abort = should_abort
        self.resumed_shards = 0
        self.executed_shards = 0
        self.remote_shards = 0

    def _emit_progress(self, event: Dict[str, Any]) -> None:
        if self.progress is not None:
            self.progress(event)

    def _abort_check(self) -> None:
        if self.should_abort is not None and self.should_abort():
            raise CampaignAborted("campaign canceled")

    # -- scheduling --------------------------------------------------------

    def _fixed_shard_plan(self) -> List[Tuple[int, int]]:
        """(index, trials) for fixed-``trials`` mode (last shard short)."""
        assert self.config.trials is not None
        total, per = self.config.trials, self.config.trials_per_shard
        n_shards = (total + per - 1) // per
        plan = []
        for index in range(n_shards):
            trials = min(per, total - index * per)
            plan.append((index, trials))
        return plan

    def _spec(self, scheme: str, index: int, trials: int) -> ShardSpec:
        return ShardSpec(
            scheme=scheme,
            index=index,
            trials=trials,
            seed=shard_seed(self.config.seed, scheme, index),
            model=self.config.model_for(scheme),
            kernel=self.config.kernel,
        )

    def _auto_round_specs(self, state: _SchemeState) -> List[ShardSpec]:
        """Shards to reach the next round boundary for one scheme.

        Stopping is only ever evaluated at multiples of
        ``shards_per_round`` completed shards, so a resumed partial
        round is first topped up to the boundary — that is what makes
        interrupt/resume bit-identical to an uninterrupted run.
        """
        per_round = self.config.shards_per_round
        into_round = state.shards_done % per_round
        need = per_round - into_round if into_round else per_round
        return [
            self._spec(state.scheme, index, self.config.trials_per_shard)
            for index in state.next_indices(need)
        ]

    def _check_auto_stop(self, state: _SchemeState) -> None:
        """At a round boundary: mark the scheme stopped if warranted."""
        if state.shards_done % self.config.shards_per_round:
            return  # mid-round (resume top-up pending): no decision yet
        counts = state.outcome_counts()
        trials = state.trials
        if trials == 0:
            return
        successes = self.config.metric_successes(counts)
        rule = self.config.stopping
        if trials >= rule.max_trials:
            state.stopped_by = "budget"
        elif rule.should_stop(successes, trials):
            state.stopped_by = "target"

    # -- execution ---------------------------------------------------------

    def run(self) -> CampaignResult:
        """Run (or resume) the campaign to its stopping point."""
        digest = config_digest(self.config.describe())
        states = {
            scheme: _SchemeState(scheme) for scheme in self.config.schemes
        }
        if self.checkpoint is not None:
            for (scheme, index), record in self.checkpoint.load(
                digest
            ).items():
                if scheme in states:
                    states[scheme].shard_results[index] = (
                        ShardResult.from_record(record)
                    )
                    self.resumed_shards += 1
            self.checkpoint.write_header(digest, self.config.describe())
            if self.resumed_shards:
                self._emit_progress({
                    "type": "resume",
                    "resumed_shards": self.resumed_shards,
                    "trials": {
                        scheme: state.trials
                        for scheme, state in states.items()
                    },
                })

        try:
            if self.config.trials is not None:
                self._run_fixed(states)
            else:
                self._run_auto(states)
        finally:
            if self.checkpoint is not None:
                self.checkpoint.close()
        return self._result(states)

    def _run_fixed(self, states: Dict[str, _SchemeState]) -> None:
        plan = self._fixed_shard_plan()
        specs: List[ShardSpec] = []
        for scheme in self.config.schemes:
            state = states[scheme]
            specs.extend(
                self._spec(scheme, index, trials)
                for index, trials in plan
                if index not in state.shard_results
            )
            state.stopped_by = "fixed"
        # Execute round-sized batches rather than one giant map_tasks
        # call: shard records reach the checkpoint between batches, so
        # an interrupt loses at most one round of work per scheme.
        per_batch = self.config.shards_per_round * len(self.config.schemes)
        for start in range(0, len(specs), per_batch):
            self._abort_check()
            self._execute(specs[start : start + per_batch], states)
            self._emit_round(states)

    def _run_auto(self, states: Dict[str, _SchemeState]) -> None:
        for state in states.values():
            self._check_auto_stop(state)
        while True:
            self._abort_check()
            specs: List[ShardSpec] = []
            for scheme in self.config.schemes:
                state = states[scheme]
                if state.stopped_by is None:
                    specs.extend(self._auto_round_specs(state))
            if not specs:
                break
            self._execute(specs, states)
            for state in states.values():
                if state.stopped_by is None:
                    self._check_auto_stop(state)
            self._emit_round(states)

    def _execute(
        self, specs: List[ShardSpec], states: Dict[str, _SchemeState]
    ) -> None:
        if not specs:
            return
        if self.coordinator is not None:
            self._execute_fabric(specs, states)
            return
        results = self.engine.map_tasks(
            run_shard, specs, phase="campaign-shard"
        )
        for result in sorted(results, key=lambda r: (r.scheme, r.index)):
            self._absorb(result, states, remote=False)

    def _execute_fabric(
        self, specs: List[ShardSpec], states: Dict[str, _SchemeState]
    ) -> None:
        """One round through the shared fabric: lease, run, merge, steal.

        Loops until every spec of the round has a result — executed
        here (leases this replica won), published by another replica
        (absorbed as ``remote``), or stolen back after the owning
        replica's lease expired / heartbeat went stale.  The round
        barrier is what keeps every replica's stopping decisions — and
        therefore the shard schedule itself — identical.
        """
        coordinator = self.coordinator
        pending: Dict[Tuple[str, int], ShardSpec] = {
            (spec.scheme, spec.index): spec for spec in specs
        }
        coordinator.announce(list(pending.values()))
        while pending:
            self._abort_check()
            coordinator.heartbeat()
            ordered = [pending[key] for key in sorted(pending)]
            mine, stolen = coordinator.lease(ordered)
            if stolen:
                self._emit_progress({
                    "type": "steal",
                    "shards": [[s.scheme, s.index] for s in stolen],
                })
            if mine:
                results = self.engine.map_tasks(
                    run_shard, mine, phase="campaign-shard"
                )
                for result in sorted(
                    results, key=lambda r: (r.scheme, r.index)
                ):
                    coordinator.complete(result)
                    self._absorb(result, states, remote=False)
                    pending.pop((result.scheme, result.index))
            remote = coordinator.completed(sorted(pending))
            for record in remote:
                result = ShardResult.from_record(record)
                self._absorb(result, states, remote=True)
                pending.pop((result.scheme, result.index))
            if pending and not mine and not remote:
                time.sleep(coordinator.poll_interval)

    def _absorb(
        self,
        result: ShardResult,
        states: Dict[str, _SchemeState],
        remote: bool,
    ) -> None:
        """Fold one completed shard into the running aggregates.

        Local results checkpoint here; remote ones do not — the replica
        that executed them already appended to the shared JSONL log.
        Telemetry counters absorb both, so every replica's counters
        describe the whole campaign, not just its own slice.
        """
        states[result.scheme].shard_results[result.index] = result
        if remote:
            self.remote_shards += 1
        else:
            self.executed_shards += 1
            if self.checkpoint is not None:
                self.checkpoint.append_shard(result.as_record())
        self._emit_telemetry(result)
        event = {
            "type": "shard",
            "scheme": result.scheme,
            "index": result.index,
            "trials": result.trials,
            "executed_shards": self.executed_shards,
            "resumed_shards": self.resumed_shards,
        }
        if remote:
            event["remote"] = True
            event["remote_shards"] = self.remote_shards
        self._emit_progress(event)

    def _emit_round(self, states: Dict[str, _SchemeState]) -> None:
        """A round boundary: per-scheme aggregates, from the telemetry
        counters' point of view the moment a stopping decision is made."""
        if self.progress is None:
            return
        schemes: Dict[str, Any] = {}
        for scheme, state in states.items():
            successes = self.config.metric_successes(
                state.outcome_counts()
            )
            schemes[scheme] = {
                "trials": state.trials,
                "shards": state.shards_done,
                "half_width": self.config.stopping.half_width(
                    successes, state.trials
                ),
                "stopped_by": state.stopped_by,
            }
        self._emit_progress({
            "type": "round",
            "schemes": schemes,
            "counters": self.registry.snapshot(),
        })

    def _emit_telemetry(self, result: ShardResult) -> None:
        base = f"campaign.{result.scheme}"
        self.registry.counter(f"{base}.shards").inc()
        self.registry.counter(f"{base}.trials").inc(result.trials)
        for outcome, n in result.outcome_totals().items():
            self.registry.counter(f"{base}.{outcome.value}").inc(n)
        if self.tracer is not None:
            start = result.index * self.config.trials_per_shard
            for offset, domain, dirty, outcome in result.samples:
                self.tracer.emit(
                    "campaign_outcome",
                    start + offset,
                    scheme=result.scheme,
                    domain=domain,
                    dirty=dirty,
                    outcome=outcome,
                )

    # -- results -----------------------------------------------------------

    def _result(self, states: Dict[str, _SchemeState]) -> CampaignResult:
        schemes: Dict[str, SchemeResult] = {}
        for scheme in self.config.schemes:
            state = states[scheme]
            counts = state.outcome_counts()
            trials = state.trials
            model = self.config.model_for(scheme)
            # The scenario's raw-BER scaling (e.g. low-voltage 4x) is a
            # FIT-quoting knob like raw_fit_per_mbit itself: applied
            # here, excluded from the checkpoint digest.
            from repro.reliability.scenarios import get_scenario

            ber_scale = get_scenario(model.scenario).ber_scale
            estimate = scheme_estimate(
                scheme,
                scheme_policy(scheme),
                model,
                counts,
                n_lines=self.config.n_lines,
                raw_fit_per_mbit=self.config.raw_fit_per_mbit * ber_scale,
                z=self.config.stopping.z,
            )
            successes = self.config.metric_successes(counts)
            schemes[scheme] = SchemeResult(
                scheme=scheme,
                model=model,
                trials=trials,
                shards=state.shards_done,
                outcome_counts=counts,
                domain_counts=state.domain_counts(),
                estimate=estimate,
                half_width=self.config.stopping.half_width(
                    successes, trials
                ),
                stopped_by=state.stopped_by or "fixed",
            )
        return CampaignResult(
            config=self.config,
            schemes=schemes,
            resumed_shards=self.resumed_shards,
            executed_shards=self.executed_shards,
            remote_shards=self.remote_shards,
        )


def run_campaign(
    config: CampaignConfig = CampaignConfig(),
    engine: Optional[SweepEngine] = None,
    checkpoint: Union[CampaignCheckpoint, str, None] = None,
    tracer: Optional[EventTracer] = None,
    registry: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> CampaignResult:
    """One-call campaign: build the engine, run it, return the result."""
    return CampaignEngine(
        config,
        engine=engine,
        checkpoint=checkpoint,
        tracer=tracer,
        registry=registry,
        progress=progress,
    ).run()


__all__ = [
    "DEFAULT_DIRTY_FRACTIONS",
    "KERNELS",
    "CampaignAborted",
    "CampaignConfig",
    "CampaignEngine",
    "CampaignResult",
    "SAMPLES_PER_SHARD",
    "SchemeResult",
    "ShardResult",
    "ShardSpec",
    "run_campaign",
    "run_shard",
    "shard_seed",
]
