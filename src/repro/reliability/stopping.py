"""Wilson score intervals and the sequential stopping rule.

A fault-injection campaign estimates Bernoulli rates (P(SDC | strike),
P(DUE | strike), ...).  Fixed trial counts either waste work (the rate
was easy to pin down) or under-deliver (the interval is still wide when
the budget runs out).  The campaign engine instead runs in rounds and
stops when the **Wilson score interval** of the target rate is tighter
than a requested half-width.

Wilson is the right interval here because injection outcomes are rare
events: the normal (Wald) interval collapses to width zero whenever a
round observes no SDCs, which would stop a campaign after one lucky
round.  The Wilson interval stays honestly wide at zero observed
successes (its upper bound is ~``z²/(n+z²)``), so the rule cannot stop
before enough trials have run to *bound* the rate, even at p = 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

#: Two-sided z for a 95% interval; campaigns quote everything at 95%.
Z95 = 1.959963984540054


def wilson_interval(
    successes: int, trials: int, z: float = Z95
) -> Tuple[float, float]:
    """Wilson score interval for a Bernoulli proportion.

    Returns ``(lo, hi)`` with ``0 <= lo <= p_hat <= hi <= 1``.  With
    ``trials == 0`` the interval is the uninformative ``(0, 1)``.
    """
    if successes < 0 or trials < 0 or successes > trials:
        raise ValueError("need 0 <= successes <= trials")
    if trials == 0:
        return 0.0, 1.0
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denom
    spread = (
        z * math.sqrt(p * (1.0 - p) / trials + z2 / (4 * trials * trials))
    ) / denom
    lo = max(0.0, centre - spread)
    hi = min(1.0, centre + spread)
    # Guard float noise at the boundaries: the interval must contain
    # the point estimate even when centre - spread ~ 1e-17 != 0.
    if successes == 0:
        lo = 0.0
    if successes == trials:
        hi = 1.0
    return lo, hi


def wilson_half_width(successes: int, trials: int, z: float = Z95) -> float:
    """Half the width of the Wilson interval (the stopping statistic)."""
    lo, hi = wilson_interval(successes, trials, z)
    return (hi - lo) / 2.0


def two_proportion_z(
    successes_a: int, trials_a: int, successes_b: int, trials_b: int
) -> float:
    """Pooled two-proportion z statistic for H0: p_a == p_b.

    The distribution-equivalence gate's statistic: the vector kernel
    cannot replay the batch kernel's Mersenne-Twister stream, so the two
    backends are compared *statistically* — per (domain, outcome) rate,
    this z must stay inside a bound for the kernels to count as
    equivalent.  Uses the pooled standard error
    ``sqrt(p̂(1-p̂)(1/n_a + 1/n_b))`` with
    ``p̂ = (x_a + x_b) / (n_a + n_b)``; under H0 the statistic is
    asymptotically standard normal.

    Degenerate inputs return 0.0 (no evidence of difference): either
    sample empty, or a pooled rate of exactly 0 or 1 — both samples
    then agree perfectly and the standard error is 0.
    """
    for successes, trials in ((successes_a, trials_a), (successes_b, trials_b)):
        if successes < 0 or trials < 0 or successes > trials:
            raise ValueError("need 0 <= successes <= trials in both samples")
    if trials_a == 0 or trials_b == 0:
        return 0.0
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    se = math.sqrt(
        pooled * (1.0 - pooled) * (1.0 / trials_a + 1.0 / trials_b)
    )
    if se == 0.0:
        return 0.0
    return (successes_a / trials_a - successes_b / trials_b) / se


def proportions_match(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    z_bound: float = 5.0,
) -> bool:
    """True when the two samples' rates sit within ``z_bound`` z-units.

    The acceptance form of :func:`two_proportion_z`.  The default bound
    is deliberately loose for a hypothesis test (|z| < 1.96 would be a
    5% false-alarm rate *per comparison*, and the gate makes hundreds):
    at 5.0 a same-distribution pair fails with probability < 1e-6 per
    comparison, while a genuinely mis-modelled branch (rates differing
    by a few percent at the gate's sample sizes) still lands far
    outside it.
    """
    return abs(
        two_proportion_z(successes_a, trials_a, successes_b, trials_b)
    ) <= z_bound


@dataclass(frozen=True)
class StoppingRule:
    """Stop when the target rate's Wilson half-width is small enough.

    ``target_half_width``
        Stop once ``wilson_half_width(successes, trials) <= target``
        (the acceptance criterion's ±1% is ``0.01``).
    ``min_trials``
        Never stop earlier, however tight the interval — guards the
        rule against tiny-sample flukes at extreme rates.
    ``max_trials``
        Hard budget: always stop at or beyond it, interval or not.
    ``z``
        Interval confidence (default 95%).
    """

    target_half_width: float = 0.01
    min_trials: int = 1_000
    max_trials: int = 1_000_000
    z: float = Z95

    def __post_init__(self) -> None:
        if not 0 < self.target_half_width < 1:
            raise ValueError("target_half_width must be in (0, 1)")
        if self.min_trials < 1 or self.max_trials < self.min_trials:
            raise ValueError("need 1 <= min_trials <= max_trials")

    def half_width(self, successes: int, trials: int) -> float:
        return wilson_half_width(successes, trials, self.z)

    def should_stop(self, successes: int, trials: int) -> bool:
        """Decision after a round, from the campaign-wide aggregate.

        Depends only on (successes, trials) — never on worker count or
        completion order — so the stopping point is deterministic for a
        fixed seed at any ``--jobs`` value.
        """
        if trials >= self.max_trials:
            return True
        if trials < self.min_trials:
            return False
        return self.half_width(successes, trials) <= self.target_half_width


__all__ = [
    "StoppingRule",
    "Z95",
    "proportions_match",
    "two_proportion_z",
    "wilson_half_width",
    "wilson_interval",
]
