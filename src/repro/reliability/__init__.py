"""Monte Carlo fault-injection campaigns with statistical stopping.

The paper's claim is comparative: non-uniform protection (parity on
clean lines, shared SECDED on dirty lines) matches a uniformly-ECC
cache's *effective* reliability at 59% less area.  Validating that
credibly needs large-scale randomized injection with quantified
confidence — HARP and Cerberus (PAPERS.md) both make the same point —
not a handful of fixed-trial loops.  This package is that harness:

* :mod:`repro.reliability.model` — the fault model: protection domains
  (data / tag / status / check arrays), per-trial lifecycle, and the
  outcome taxonomy (masked / corrected / refetch / DUE / SDC);
* :mod:`repro.reliability.kernel` — the batched injection kernel:
  pooled pre-encoded codewords and syndrome-table decoding give ~20×
  the reference path's trial throughput with bit-identical outcomes
  (``--kernel batch|reference``);
* :mod:`repro.reliability.vector` — the numpy-vectorized kernel
  (``--kernel vector``, the optional ``[fast]`` extra): whole-block
  draws and table gathers for another order of magnitude, with
  statistically-gated distribution equivalence instead of bit-identity;
* :mod:`repro.reliability.scenarios` — correlated-fault scenario packs
  (``--scenario nominal|burst-heavy|rowcol|low-voltage``): adjacent-bit
  burst PMFs, row/column strike classes and raw-BER scaling, with
  shared samplers that keep both exact kernels bit-identical;
* :mod:`repro.reliability.stopping` — Wilson score intervals and the
  sequential stopping rule (run until the SDC-rate interval is tight);
* :mod:`repro.reliability.estimates` — FIT / MTTF / AVF arithmetic with
  confidence intervals propagated from the trial counts;
* :mod:`repro.reliability.checkpoint` — JSONL shard checkpoints so an
  interrupted campaign resumes exactly where it stopped;
* :mod:`repro.reliability.campaign` — the engine: deterministic
  per-shard seeding, fan-out over
  :class:`repro.experiments.pool.SweepEngine` workers, telemetry.

See ``docs/reliability.md`` for the end-to-end methodology.
"""

from repro.reliability.campaign import (
    KERNELS,
    CampaignAborted,
    CampaignConfig,
    CampaignEngine,
    CampaignResult,
    SchemeResult,
    ShardResult,
    ShardSpec,
    run_campaign,
    run_shard,
    shard_seed,
)
from repro.reliability.checkpoint import (
    CampaignCheckpoint,
    CheckpointError,
)
from repro.reliability.kernel import (
    POOL_SIZE,
    LinePool,
    run_trials_batch,
)
from repro.reliability.estimates import (
    HOURS_PER_BILLION,
    RateEstimate,
    ReliabilityEstimate,
    fit_to_mttf_hours,
    mttf_interval,
    scheme_estimate,
)
from repro.reliability.vector import (
    HAVE_NUMPY,
    run_trials_vector,
)
from repro.reliability.model import (
    FaultDomain,
    FaultModelConfig,
    SCHEMES,
    TrialOutcome,
    domain_bits,
    run_trial,
    scheme_policy,
)
from repro.reliability.scenarios import (
    FaultClass,
    Scenario,
    available_scenarios,
    get_scenario,
    register_scenario,
)
from repro.reliability.stopping import (
    StoppingRule,
    proportions_match,
    two_proportion_z,
    wilson_half_width,
    wilson_interval,
)

__all__ = [
    "CampaignAborted",
    "CampaignCheckpoint",
    "CampaignConfig",
    "CampaignEngine",
    "CampaignResult",
    "CheckpointError",
    "FaultClass",
    "FaultDomain",
    "FaultModelConfig",
    "HAVE_NUMPY",
    "HOURS_PER_BILLION",
    "KERNELS",
    "LinePool",
    "POOL_SIZE",
    "RateEstimate",
    "ReliabilityEstimate",
    "SCHEMES",
    "Scenario",
    "SchemeResult",
    "ShardResult",
    "ShardSpec",
    "StoppingRule",
    "TrialOutcome",
    "available_scenarios",
    "domain_bits",
    "get_scenario",
    "register_scenario",
    "fit_to_mttf_hours",
    "mttf_interval",
    "proportions_match",
    "run_campaign",
    "run_shard",
    "run_trial",
    "run_trials_batch",
    "run_trials_vector",
    "scheme_estimate",
    "scheme_policy",
    "shard_seed",
    "two_proportion_z",
    "wilson_half_width",
    "wilson_interval",
]
