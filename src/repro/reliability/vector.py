"""The vectorized injection kernel: whole-block draws + table gathers.

The batched kernel (:mod:`repro.reliability.kernel`) is bound to the
Mersenne-Twister draw order of :class:`random.Random` — that is what
buys its *bit-identical* parity with the reference path, and what caps
it at a few hundred thousand trials/s of Python-level loop.  This
module trades that bit-identity for throughput: it draws strike
positions, domains and MBU tails for whole trial blocks with
``numpy.random.Generator`` and classifies the blocks with vectorized
gathers, aggregating outcome counts without materializing a single
per-trial object.

What makes the gathers sound is the same GF(2)-linearity the batched
kernel exploits, pushed one step further.  Outcomes are payload
independent (syndrome(stored) = syndrome(error)), and the error pattern
of a strike lives inside one 64-bit codeword (or one 8-bit check
column) — so the *entire* decode collapses into finite outcome tables
indexed by flip position(s):

* ``data1[dirty][p]`` / ``data2[dirty][p1][p2]`` — outcome of a
  single/double flip at word-relative bit position(s) ``p`` in the data
  array, per line state;
* ``check1[dirty][c]`` / ``check2[dirty][c1][c2]`` — likewise for
  flips in the SECDED check column;
* scalar entries for parity-column, tag and status strikes, whose
  outcomes depend only on (state, multiplicity) or a tiny position
  predicate.

Every table entry is produced by the *batched kernel's own* scalar
classification helpers (``_secded_action`` / ``_finish``), so the
deterministic part of this kernel is exact by construction — pinned by
enumeration tests in ``tests/reliability/test_vector.py``.  What cannot
be exact is the sampling: bulk drawing reorders the RNG stream, so
vector-vs-batch agreement is *distributional*, enforced by a
two-proportion z gate (:func:`repro.reliability.stopping.two_proportion_z`)
over a forced corner grid in the same test module.

numpy is an optional dependency (``pip install -e .[fast]``); this
module imports without it and raises a clean ``ReproError`` only when a
vector shard is actually requested.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.policy import (
    ProtectionDomain,
    ProtectionPolicy,
    RecoveryAction,
)
from repro.ecc.hamming import encode_word, syndrome_table_array
from repro.ecc.parity import _parity64, byte_parity_array
from repro.reliability.kernel import _finish, _plan_for, _secded_action
from repro.reliability.model import (
    DOMAIN_ORDER,
    FaultModelConfig,
    TrialOutcome,
)

try:  # pragma: no cover - trivially environment-dependent
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

#: Whether the optional ``[fast]`` extra (numpy) is importable here.
HAVE_NUMPY = np is not None

#: Fixed outcome code order; index = the uint8 stored in the tables.
OUTCOME_ORDER: Tuple[TrialOutcome, ...] = (
    TrialOutcome.MASKED,
    TrialOutcome.CORRECTED,
    TrialOutcome.REFETCHED,
    TrialOutcome.DUE,
    TrialOutcome.SDC,
)
_OUTCOME_CODE = {outcome: code for code, outcome in enumerate(OUTCOME_ORDER)}
_OUTCOME_VALUES = tuple(outcome.value for outcome in OUTCOME_ORDER)
_DOMAIN_VALUES = tuple(domain.value for domain in DOMAIN_ORDER)

#: Trials classified per block of bulk draws; bounds peak memory at a
#: few tens of MB while keeping the per-block numpy overhead amortized.
BLOCK_TRIALS = 1 << 18


def require_numpy() -> None:
    """Raise the facade's ``ReproError`` when numpy is unavailable."""
    if not HAVE_NUMPY:
        from repro.api import ReproError

        raise ReproError(
            "the 'vector' kernel needs numpy, which is not installed; "
            "install the optional extra (pip install -e .[fast]) or use "
            "--kernel batch"
        )


def _data_outcome_code(
    recovery: ProtectionDomain,
    dirty: bool,
    err: int,
    config: FaultModelConfig,
    parity: int = None,
    enc: int = None,
) -> int:
    """Scalar oracle for one data-array error pattern (word-relative).

    ``parity``/``enc`` accept the pattern's precomputed overall parity
    and syndrome (the plan builder gathers them from the ndarray table
    views in bulk); left as ``None`` they fall back to the scalar
    encode, so callers like the enumeration tests stay table-free.
    """
    if recovery is ProtectionDomain.PARITY:
        if _parity64(err):
            action = (
                RecoveryAction.DATA_LOSS if dirty else RecoveryAction.REFETCHED
            )
        elif err == 0:
            action = RecoveryAction.CLEAN_READ
        else:
            action = RecoveryAction.SILENT_CORRUPTION
    else:
        # SECDED over the struck codeword.  Linearity gives
        # syndrome = encode(err) and overall parity = parity(err), so
        # the batched kernel's classifier applies with check := 0.
        if parity is None:
            parity = _parity64(err)
        if enc is None:
            enc = encode_word(err)
        action = _secded_action(parity, enc, 0, err)
    return _OUTCOME_CODE[_finish(action, dirty, config)]


def _check_outcome_code(
    dirty: bool, check_err: int, config: FaultModelConfig
) -> int:
    """Scalar oracle for one SECDED-column error pattern."""
    # syndrome = check_err & 0x7F and overall parity = parity(check_err)
    # (parity(encode(w)) == parity(w) for every valid codeword), which
    # is _secded_action with enc := 0 and the error in the check byte.
    action = _secded_action(0, 0, check_err, 0)
    return _OUTCOME_CODE[_finish(action, dirty, config)]


class _VectorPlan:
    """Per-(policy, config) outcome tables and sampling constants.

    Everything deterministic about a trial is folded in here once; the
    hot loop only draws uniforms and gathers.  Indexing convention:
    axis 0 is the line state (0 = clean, 1 = dirty) so ``table[di]``
    broadcasts over a block's dirty mask.
    """

    __slots__ = (
        "total", "cum0", "cum1", "cum2", "p_ecc",
        "data1", "data2", "check1", "check2",
        "check_parity", "tag1", "tag2",
    )

    def __init__(self, policy: ProtectionPolicy, config: FaultModelConfig):
        kernel_plan = _plan_for(policy, config)
        states = (False, True)
        # Domain-choice thresholds, identical accumulation to the
        # batched kernel's plan (same floats, same order).
        self.total = np.array(
            [kernel_plan.total[d] for d in states], dtype=np.float64
        )
        cums = [kernel_plan.cum[d] for d in states]
        self.cum0 = np.array([c[0] for c in cums], dtype=np.float64)
        self.cum1 = np.array([c[1] for c in cums], dtype=np.float64)
        self.cum2 = np.array([c[2] for c in cums], dtype=np.float64)
        self.p_ecc = np.array(
            [
                (
                    kernel_plan.ecc_bits[d]
                    / (kernel_plan.parity_bits[d] + kernel_plan.ecc_bits[d])
                    if kernel_plan.parity_bits[d] + kernel_plan.ecc_bits[d]
                    else 0.0
                )
                for d in states
            ],
            dtype=np.float64,
        )

        self.data1 = np.zeros((2, 64), dtype=np.uint8)
        self.data2 = np.zeros((2, 64, 64), dtype=np.uint8)
        self.check1 = np.zeros((2, 8), dtype=np.uint8)
        self.check2 = np.zeros((2, 8, 8), dtype=np.uint8)
        self.check_parity = np.zeros(2, dtype=np.uint8)
        self.tag1 = np.zeros(2, dtype=np.uint8)
        self.tag2 = np.zeros(2, dtype=np.uint8)
        # Syndrome/parity of every 1- and 2-bit data error, gathered
        # from the ndarray views of the encode tables: linearity makes
        # the syndrome of (1<<p1)^(1<<p2) the XOR of two single-bit
        # gathers (p1 == p2 cancels to the zero pattern).
        bits = np.arange(64)
        byte_value = (1 << (bits % 8)).astype(np.intp)
        enc1 = syndrome_table_array()[bits // 8, byte_value]
        par1 = byte_parity_array()[byte_value]
        enc2 = enc1[:, None] ^ enc1[None, :]
        par2 = par1[:, None] ^ par1[None, :]
        for di, dirty in enumerate(states):
            recovery = kernel_plan.recovery[dirty]
            for p1 in range(64):
                self.data1[di, p1] = _data_outcome_code(
                    recovery, dirty, 1 << p1, config,
                    parity=int(par1[p1]), enc=int(enc1[p1]),
                )
                for p2 in range(64):
                    self.data2[di, p1, p2] = _data_outcome_code(
                        recovery, dirty, (1 << p1) ^ (1 << p2), config,
                        parity=int(par2[p1, p2]), enc=int(enc2[p1, p2]),
                    )
            for c1 in range(8):
                self.check1[di, c1] = _check_outcome_code(
                    dirty, 1 << c1, config
                )
                for c2 in range(8):
                    self.check2[di, c1, c2] = _check_outcome_code(
                        dirty, (1 << c1) ^ (1 << c2), config
                    )
            # A struck parity column: shadowed entirely when the line
            # recovers through ECC, otherwise detected stale parity.
            if recovery is ProtectionDomain.ECC:
                parity_action = RecoveryAction.CLEAN_READ
            else:
                parity_action = (
                    RecoveryAction.DATA_LOSS
                    if dirty
                    else RecoveryAction.REFETCHED
                )
            self.check_parity[di] = _OUTCOME_CODE[
                _finish(parity_action, dirty, config)
            ]
            # Tag strikes (model._inject_tag + ProtectedTag.check): one
            # flip is parity-detected, two distinct flips alias silently.
            self.tag1[di] = _OUTCOME_CODE[
                TrialOutcome.DUE if dirty else TrialOutcome.REFETCHED
            ]
            self.tag2[di] = _OUTCOME_CODE[
                TrialOutcome.SDC
                if config.tag_bits >= 2
                else (TrialOutcome.DUE if dirty else TrialOutcome.REFETCHED)
            ]


_VECTOR_PLANS: Dict[Tuple[str, FaultModelConfig], _VectorPlan] = {}


def _vector_plan(
    policy: ProtectionPolicy, config: FaultModelConfig
) -> _VectorPlan:
    key = (policy.name, config)
    plan = _VECTOR_PLANS.get(key)
    if plan is None:
        plan = _VECTOR_PLANS[key] = _VectorPlan(policy, config)
    return plan


def run_trials_vector(
    policy: ProtectionPolicy,
    config: FaultModelConfig,
    n: int,
    seed: int,
    sample_limit: int = 0,
    block_trials: int = BLOCK_TRIALS,
) -> Tuple[Dict[str, Dict[str, int]], List[Tuple[int, str, bool, str]]]:
    """Run ``n`` trials in vectorized blocks; aggregate outcome counts.

    Returns ``(outcomes, samples)`` in exactly the shapes
    :func:`repro.reliability.kernel.run_trials_batch` produces, so
    :func:`repro.reliability.campaign.run_shard` can dispatch on the
    kernel name alone.  Deterministic per ``seed`` (one
    ``numpy.random.Generator`` stream, fixed draw order), but **not**
    stream-compatible with the other kernels: the same shard seed gives
    the same *distribution*, not the same trials.
    """
    require_numpy()
    if n < 0:
        raise ValueError("trial count must be non-negative")
    plan = _vector_plan(policy, config)
    rng = np.random.default_rng(seed)
    counts = np.zeros(len(DOMAIN_ORDER) * len(OUTCOME_ORDER), dtype=np.int64)
    samples: List[Tuple[int, str, bool, str]] = []
    masked = np.uint8(_OUTCOME_CODE[TrialOutcome.MASKED])
    refetched = np.uint8(_OUTCOME_CODE[TrialOutcome.REFETCHED])
    due = np.uint8(_OUTCOME_CODE[TrialOutcome.DUE])
    sdc = np.uint8(_OUTCOME_CODE[TrialOutcome.SDC])
    done = 0
    while done < n:
        m = min(block_trials, n - done)
        # Per-trial state, domain and multiplicity (the same model the
        # scalar kernels sample trial by trial).
        dirty = rng.random(m) < config.dirty_fraction
        di = dirty.astype(np.intp)
        roll = rng.random(m) * plan.total[di]
        domain = (
            (roll >= plan.cum0[di]).astype(np.uint8)
            + (roll >= plan.cum1[di])
            + (roll >= plan.cum2[di])
        )
        double = rng.random(m) < config.double_bit_fraction

        # Data array: word-relative flip positions; an MBU's second
        # flip lands in the same codeword (p2 == p1 cancels to err 0).
        p1 = rng.integers(0, 64, m)
        p2 = rng.integers(0, 64, m)
        out_data = np.where(
            double, plan.data2[di, p1, p2], plan.data1[di, p1]
        )

        # Check array: parity column vs SECDED column in proportion to
        # their stored bits, then flip position(s) within the column.
        strike_ecc = rng.random(m) < plan.p_ecc[di]
        c1 = rng.integers(0, 8, m)
        c2 = rng.integers(0, 8, m)
        out_check = np.where(
            strike_ecc,
            np.where(double, plan.check2[di, c1, c2], plan.check1[di, c1]),
            plan.check_parity[di],
        )

        # Tag: outcome is a pure function of (state, multiplicity).
        out_tag = np.where(double, plan.tag2[di], plan.tag1[di])

        # Status: a double draws a distinct bit pair; silent harm only
        # when a dirty line's valid/dirty bit (indices 0/1) is struck.
        s = config.status_bits
        b1 = rng.integers(0, s, m)
        b2 = rng.integers(0, s - 1, m)
        b2 = b2 + (b2 >= b1)
        status_hit = dirty & ((b1 < 2) | (b2 < 2))
        out_status = np.where(
            double,
            np.where(status_hit, sdc, masked),
            np.where(dirty, due, refetched),
        )

        outcome = np.select(
            [domain == 0, domain == 1, domain == 2],
            [out_data, out_tag, out_status],
            default=out_check,
        ).astype(np.uint8)

        # Architectural masking: an unread *clean* line only hides data
        # and check strikes; tags/status are consulted at eviction too.
        unread = ~dirty & (rng.random(m) >= config.read_fraction)
        outcome = np.where(
            unread & ((domain == 0) | (domain == 3)), masked, outcome
        )

        counts += np.bincount(
            domain.astype(np.int64) * len(OUTCOME_ORDER) + outcome,
            minlength=counts.size,
        )
        if len(samples) < sample_limit:
            for i in range(min(sample_limit - len(samples), m)):
                samples.append(
                    (
                        done + i,
                        _DOMAIN_VALUES[int(domain[i])],
                        bool(dirty[i]),
                        _OUTCOME_VALUES[int(outcome[i])],
                    )
                )
        done += m

    outcomes: Dict[str, Dict[str, int]] = {}
    for d_idx, domain_value in enumerate(_DOMAIN_VALUES):
        per_domain: Dict[str, int] = {}
        for o_idx, outcome_value in enumerate(_OUTCOME_VALUES):
            count = int(counts[d_idx * len(OUTCOME_ORDER) + o_idx])
            if count:
                per_domain[outcome_value] = count
        if per_domain:
            outcomes[domain_value] = per_domain
    return outcomes, samples


__all__ = [
    "BLOCK_TRIALS",
    "HAVE_NUMPY",
    "OUTCOME_ORDER",
    "require_numpy",
    "run_trials_vector",
]
