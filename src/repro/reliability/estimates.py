"""FIT / MTTF / AVF arithmetic on top of campaign outcome counts.

A campaign measures *conditional* rates — P(outcome | a strike hit the
line's stored bits).  Turning those into device-level reliability
numbers takes two scale factors, both explicit here:

* the **raw strike rate**, quoted the way SRAM vendors do, in FIT per
  Mbit (failures per 10⁹ device-hours per 2²⁰ bits of storage); and
* the **stored bits** of the protected structure, which depend on the
  scheme and on how dirty the cache runs (non-uniform protection simply
  stores fewer bits when mostly clean).

Then, per scheme::

    strike_FIT  = raw_fit_per_mbit × total_bits / 2^20
    FIT(x)      = strike_FIT × P(x | strike)        x ∈ {SDC, DUE}
    MTTF        = 10⁹ / (FIT(SDC) + FIT(DUE)) hours
    AVF         = P(SDC | strike) + P(DUE | strike)

Confidence intervals: outcome probabilities carry Wilson 95% intervals
from the trial counts; FIT bounds scale them linearly and the MTTF
interval is the reciprocal of the FIT interval (monotone transform).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.core.policy import ProtectionPolicy
from repro.reliability.model import (
    FaultModelConfig,
    TrialOutcome,
    stored_bits_per_line,
)
from repro.reliability.stopping import Z95, wilson_interval

#: FIT is failures per billion device-hours.
HOURS_PER_BILLION = 1e9

#: A typical raw SRAM soft-error rate at ground level; campaigns only
#: use it as a scale factor, so comparisons never depend on it.
DEFAULT_RAW_FIT_PER_MBIT = 1000.0


@dataclass(frozen=True)
class RateEstimate:
    """A Bernoulli rate with its Wilson 95% interval."""

    successes: int
    trials: int
    value: float
    lo: float
    hi: float

    @property
    def half_width(self) -> float:
        return (self.hi - self.lo) / 2.0

    def scaled(self, factor: float) -> Tuple[float, float, float]:
        """(value, lo, hi) × factor — for the linear FIT conversion."""
        return self.value * factor, self.lo * factor, self.hi * factor

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:.4f} ± {self.half_width:.4f}"


def rate_estimate(successes: int, trials: int, z: float = Z95) -> RateEstimate:
    lo, hi = wilson_interval(successes, trials, z)
    value = successes / trials if trials else 0.0
    return RateEstimate(
        successes=successes, trials=trials, value=value, lo=lo, hi=hi
    )


def fit_to_mttf_hours(fit: float) -> float:
    """MTTF in hours for a failure rate given in FIT.

    The ``inf`` convention: a FIT of 0 — no failures *observed at that
    bound* — maps to MTTF ∞.  It is a statement about the point
    estimate or bound it came from, not a guarantee; the interval
    companion bound stays finite whenever the Wilson interval still
    admits a non-zero failure rate.
    """
    return HOURS_PER_BILLION / fit if fit > 0 else float("inf")


def mttf_interval(
    fit: Tuple[float, float, float],
) -> Tuple[float, float, float]:
    """``(value, lo, hi)`` MTTF hours from a ``(value, lo, hi)`` FIT.

    MTTF is the reciprocal of FIT (a monotone *decreasing* transform),
    so the FIT interval's bounds swap roles: FIT hi → MTTF lo, FIT lo →
    MTTF hi.  Degenerate campaigns hit the ``inf`` convention of
    :func:`fit_to_mttf_hours` — zero trials or zero observed failures
    give ``value == hi == inf`` with a finite ``lo`` (the Wilson upper
    bound on the failure rate is the only thing the data constrains) —
    and this helper *enforces* the ``lo <= value <= hi`` invariant by
    clamping, so downstream tables and JSON can never render an
    inverted interval even under float-noise at the edges.
    """
    value = fit_to_mttf_hours(fit[0])
    lo = fit_to_mttf_hours(fit[2])  # FIT hi → MTTF lo
    hi = fit_to_mttf_hours(fit[1])  # FIT lo → MTTF hi
    lo = min(lo, value)
    hi = max(hi, value)
    return value, lo, hi


@dataclass(frozen=True)
class ReliabilityEstimate:
    """Everything the campaign reports for one scheme."""

    scheme: str
    trials: int
    #: Conditional P(outcome | strike), per outcome, with Wilson CIs.
    rates: Mapping[TrialOutcome, RateEstimate]
    #: P(SDC ∨ DUE | strike) — the architectural vulnerability factor.
    avf: RateEstimate
    #: Expected stored bits of the protected structure.
    total_bits: float
    #: Strikes per 10⁹ hours on those bits.
    strike_fit: float
    fit_sdc: Tuple[float, float, float]  # (value, lo, hi)
    fit_due: Tuple[float, float, float]
    mttf_hours: Tuple[float, float, float]  # (value, lo, hi)

    def rate(self, outcome: TrialOutcome) -> RateEstimate:
        return self.rates[outcome]


def scheme_estimate(
    scheme: str,
    policy: ProtectionPolicy,
    model: FaultModelConfig,
    outcome_counts: Mapping[TrialOutcome, int],
    n_lines: int,
    raw_fit_per_mbit: float = DEFAULT_RAW_FIT_PER_MBIT,
    z: float = Z95,
) -> ReliabilityEstimate:
    """Convert one scheme's aggregate counts into the full estimate."""
    trials = sum(outcome_counts.get(o, 0) for o in TrialOutcome)
    rates: Dict[TrialOutcome, RateEstimate] = {
        o: rate_estimate(outcome_counts.get(o, 0), trials, z)
        for o in TrialOutcome
    }
    failures = outcome_counts.get(TrialOutcome.SDC, 0) + outcome_counts.get(
        TrialOutcome.DUE, 0
    )
    avf = rate_estimate(failures, trials, z)

    total_bits = n_lines * stored_bits_per_line(
        policy, model, model.dirty_fraction
    )
    strike_fit = raw_fit_per_mbit * total_bits / (1 << 20)
    fit_sdc = rates[TrialOutcome.SDC].scaled(strike_fit)
    fit_due = rates[TrialOutcome.DUE].scaled(strike_fit)
    fit_total = avf.scaled(strike_fit)
    mttf = mttf_interval(fit_total)
    return ReliabilityEstimate(
        scheme=scheme,
        trials=trials,
        rates=rates,
        avf=avf,
        total_bits=total_bits,
        strike_fit=strike_fit,
        fit_sdc=fit_sdc,
        fit_due=fit_due,
        mttf_hours=mttf,
    )


__all__ = [
    "DEFAULT_RAW_FIT_PER_MBIT",
    "HOURS_PER_BILLION",
    "RateEstimate",
    "ReliabilityEstimate",
    "fit_to_mttf_hours",
    "mttf_interval",
    "rate_estimate",
    "scheme_estimate",
]
