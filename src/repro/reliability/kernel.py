"""The batched injection kernel: pooled codewords + syndrome tables.

:func:`repro.reliability.model.run_trial` is the campaign's semantic
oracle: it builds a real :class:`~repro.core.policy.LineProtection`
(two codec objects, a full line encode, a full line decode) for every
strike — ~100 µs/trial, which bounds how tight a campaign's confidence
intervals can be (±0.1% needs ~10⁶ trials per scheme).

This module is the fast path.  Three observations make it possible:

1. **Outcomes are payload-independent.**  Parity and SECDED are
   GF(2)-linear, so what a decoder sees is a pure function of the
   injected *error pattern*: syndrome(stored) = syndrome(error), and
   "repaired == golden" holds exactly when the correction cancels the
   error.  No per-trial payload needs to exist.
2. **Pre-encoded lines can be reused.**  A :class:`LinePool` holds a
   fixed population of payloads with their parity and SECDED check
   bytes in flat ``bytearray`` buffers, encoded once.  A trial flips
   bits of a pooled line in place, classifies the strike, and flips
   them back — no construction, no re-encode.
3. **Decoding is eight table lookups.**  The per-byte
   :data:`repro.ecc.hamming.SYNDROME_TABLES` give a word's SECDED check
   bits as the XOR of eight 256-entry lookups;
   :data:`repro.ecc.parity.BYTE_PARITY` does the same for parity.

**Exact parity with the reference path.**  ``run_trials_batch`` draws
the same random variates in the same order as ``run_trial`` (state,
domain, multiplicity, pooled line index, flip positions, read roll),
and both source payloads from the same pool — so under one shard seed
the two kernels produce *identical* per-trial outcomes, not merely the
same distribution.  The campaign's checkpoints are therefore
kernel-portable: a file written under ``--kernel reference`` resumes
under ``--kernel batch`` bit-identically (pinned in
``tests/reliability/test_kernel.py``).

Numpy is deliberately not used here: exact parity binds the kernel to
the Mersenne-Twister draw order of :class:`random.Random`, which a
vectorized RNG cannot replay.  The flat buffers keep the door open.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.policy import (
    ProtectionDomain,
    ProtectionPolicy,
    RecoveryAction,
    domain_codec,
)
from repro.ecc.codec import Codec
from repro.ecc.events import CheckOutcome
from repro.ecc.hamming import _POS_TO_DATABIT, SYNDROME_TABLES, encode_word
from repro.ecc.parity import BYTE_PARITY, _parity64
from repro.reliability.scenarios import (
    check_error_masks,
    class_cdf,
    data_error_masks,
    draw_burst_length,
    draw_class,
    flips_for,
    get_scenario,
)
from repro.reliability.model import (
    DOMAIN_ORDER,
    FaultDomain,
    FaultModelConfig,
    TrialOutcome,
    _ACTION_TO_OUTCOME,
    _inject_status,
    _inject_tag,
    domain_bits,
)

#: Pooled lines per :class:`LinePool`.  Part of the determinism
#: contract: both kernels draw line indices as ``randrange(POOL_SIZE)``,
#: so changing this constant changes every seeded campaign.
POOL_SIZE = 256

#: Fixed seed for pool payload generation.  Pool contents are *not*
#: part of the per-trial random stream (outcomes are payload
#: independent); a constant keeps pools identical across processes.
POOL_SEED = 0x9E3779B97F4A7C15


class LinePool:
    """A fixed population of pre-encoded cache lines in flat buffers.

    ``payload`` holds ``size`` lines back to back; ``parity`` and
    ``ecc`` hold one check byte per 64-bit word (parity uses only bit
    0), regardless of which codes a given policy/state actually stores
    — selection happens per trial, so one pool serves every scheme.
    """

    _shared: Dict[Tuple[int, int], "LinePool"] = {}

    def __init__(
        self,
        line_bytes: int = 64,
        size: int = POOL_SIZE,
        seed: int = POOL_SEED,
    ) -> None:
        if line_bytes % 8 != 0 or line_bytes <= 0:
            raise ValueError("line_bytes must be a positive multiple of 8")
        if size < 1:
            raise ValueError("pool needs at least one line")
        self.line_bytes = line_bytes
        self.size = size
        #: ``randrange(size)`` draw width (see :func:`_randbelow`).
        self.k_size = size.bit_length()
        self.words_per_line = line_bytes // 8
        rng = random.Random(seed)
        self.payload = bytearray(rng.randbytes(size * line_bytes))
        n_words = size * self.words_per_line
        self.parity = bytearray(n_words)
        self.ecc = bytearray(n_words)
        view = memoryview(self.payload)
        for j in range(n_words):
            word = int.from_bytes(view[j * 8 : j * 8 + 8], "little")
            self.parity[j] = _parity64(word)
            self.ecc[j] = encode_word(word)

    @classmethod
    def shared(cls, line_bytes: int = 64, size: int = POOL_SIZE) -> "LinePool":
        """Process-wide memoised pool (workers build theirs once)."""
        key = (line_bytes, size)
        pool = cls._shared.get(key)
        if pool is None:
            pool = cls._shared[key] = cls(line_bytes=line_bytes, size=size)
        return pool

    def payload_bytes(self, index: int) -> bytes:
        """Copy of pooled line ``index``'s payload (for the slow path)."""
        if not 0 <= index < self.size:
            raise IndexError(f"pool index {index} out of range")
        start = index * self.line_bytes
        return bytes(self.payload[start : start + self.line_bytes])


class _KernelPlan:
    """Per-(policy, config) precomputation shared by every trial."""

    __slots__ = (
        "words", "cum", "total", "recovery", "parity_bits", "ecc_bits",
        "k_line", "k_words", "codec_by_domain", "classes", "cdf",
    )

    def __init__(self, policy: ProtectionPolicy, config: FaultModelConfig):
        self.words = config.line_bytes // 8
        self.k_line = config.line_bytes.bit_length()
        self.k_words = self.words.bit_length()
        codecs = config.codecs()
        #: The live codec guarding each slot (registry defaults unless
        #: the config overrides the ECC code) — the generic scenario
        #: path classifies error masks through these directly.
        self.codec_by_domain: Dict[ProtectionDomain, Codec] = {
            domain: domain_codec(domain, codecs)
            for domain in (ProtectionDomain.PARITY, ProtectionDomain.ECC)
        }
        self.classes = get_scenario(config.scenario).resolve(
            config.double_bit_fraction
        )
        self.cdf = class_cdf(self.classes)
        self.cum: Dict[bool, List[float]] = {}
        self.total: Dict[bool, float] = {}
        self.recovery: Dict[bool, ProtectionDomain] = {}
        self.parity_bits: Dict[bool, int] = {}
        self.ecc_bits: Dict[bool, int] = {}
        for dirty in (False, True):
            weights = domain_bits(policy, dirty, config)
            # Same float accumulation order as model._choose_domain, so
            # the roll-vs-cumulative comparisons are bit-identical.
            acc, cum = 0.0, []
            for domain in DOMAIN_ORDER:
                acc += weights[domain]
                cum.append(acc)
            self.cum[dirty] = cum
            self.total[dirty] = float(
                sum(weights[d] for d in DOMAIN_ORDER)
            )
            self.recovery[dirty] = policy.recovery_domain(dirty, codecs)
            domains = policy.domains_for(dirty)
            self.parity_bits[dirty] = (
                self.codec_by_domain[
                    ProtectionDomain.PARITY
                ].check_bits_per_word
                if ProtectionDomain.PARITY in domains
                else 0
            )
            self.ecc_bits[dirty] = (
                self.codec_by_domain[ProtectionDomain.ECC].check_bits_per_word
                if ProtectionDomain.ECC in domains
                else 0
            )


_PLANS: Dict[Tuple[str, FaultModelConfig], _KernelPlan] = {}


def _plan_for(policy: ProtectionPolicy, config: FaultModelConfig) -> _KernelPlan:
    key = (policy.name, config)
    plan = _PLANS.get(key)
    if plan is None:
        plan = _PLANS[key] = _KernelPlan(policy, config)
    return plan


def _randbelow(getrandbits, k: int, n: int) -> int:
    """Uniform int in ``[0, n)`` drawing exactly like ``randrange(n)``.

    This is CPython's ``Random._randbelow_with_getrandbits`` rejection
    scheme (``k = n.bit_length()``, unchanged since well before 3.9)
    with the ``randrange`` argument plumbing peeled off — the hot loop's
    single biggest cost.  Consuming the identical ``getrandbits`` calls
    is what keeps the batched kernel on the reference path's
    Mersenne-Twister stream (pinned by the parity tests, which compare
    final rng state as well as outcomes).
    """
    r = getrandbits(k)
    while r >= n:
        r = getrandbits(k)
    return r


def _secded_action(
    word_parity: int, enc: int, check: int, data_err: int
) -> RecoveryAction:
    """Classify one struck word under SECDED recovery.

    Mirrors :meth:`repro.ecc.hamming.SecDedCodec.check` +
    :meth:`repro.core.policy.LineProtection.access` (ECC domain) exactly:
    ``enc`` is the table-encode of the *corrupted* word, ``check`` the
    stored (possibly corrupted) check byte, ``data_err`` the injected
    error mask within the word (0 for pure check-bit strikes) —
    "repaired == golden" reduces to "the correction cancels the error".
    """
    syndrome = (check ^ enc) & 0x7F
    overall = word_parity ^ BYTE_PARITY[check]
    if syndrome == 0 and overall == 0:
        return (
            RecoveryAction.CLEAN_READ
            if data_err == 0
            else RecoveryAction.SILENT_CORRUPTION
        )
    if overall == 1:
        if syndrome == 0 or syndrome & (syndrome - 1) == 0:
            # A check bit itself is repaired; the data word is intact.
            return (
                RecoveryAction.CORRECTED_IN_PLACE
                if data_err == 0
                else RecoveryAction.SILENT_CORRUPTION
            )
        databit = _POS_TO_DATABIT.get(syndrome)
        if databit is None:
            return RecoveryAction.DATA_LOSS  # ≥3 flips: detected
        return (
            RecoveryAction.CORRECTED_IN_PLACE
            if data_err == 1 << databit
            else RecoveryAction.SILENT_CORRUPTION
        )
    return RecoveryAction.DATA_LOSS  # detected double-bit error


def _finish(
    action: RecoveryAction, dirty: bool, config: FaultModelConfig
) -> TrialOutcome:
    """The controller model of ``model._observe``, post-decode."""
    if (
        config.controller_refetch
        and not dirty
        and action is RecoveryAction.DATA_LOSS
    ):
        return TrialOutcome.REFETCHED
    return _ACTION_TO_OUTCOME[action]


def _data_trial(
    pool: LinePool,
    plan: _KernelPlan,
    dirty: bool,
    flips: int,
    config: FaultModelConfig,
    rng: random.Random,
) -> TrialOutcome:
    # Identical draw order to model._inject_data: line index, first
    # flip, optional second flip (same word), then the read roll.
    getrandbits = rng.getrandbits
    idx = _randbelow(getrandbits, pool.k_size, pool.size)
    byte_idx = _randbelow(getrandbits, plan.k_line, config.line_bytes)
    bit1 = _randbelow(getrandbits, 4, 8)
    word_start = byte_idx - byte_idx % 8
    rel1 = byte_idx - word_start
    if flips > 1:
        rel2 = _randbelow(getrandbits, 4, 8)
        bit2 = _randbelow(getrandbits, 4, 8)
    if not dirty and rng.random() >= config.read_fraction:
        return TrialOutcome.MASKED

    err = 1 << (rel1 * 8 + bit1)
    if flips > 1:
        err ^= 1 << (rel2 * 8 + bit2)
    recovery = plan.recovery[dirty]
    if recovery is ProtectionDomain.PARITY:
        # Only the struck word can mismatch; no decode needed beyond
        # the error's own parity (the code is linear).
        if _parity64(err):
            action = (
                RecoveryAction.DATA_LOSS
                if dirty
                else RecoveryAction.REFETCHED
            )
        elif err == 0:
            action = RecoveryAction.CLEAN_READ
        else:
            action = RecoveryAction.SILENT_CORRUPTION
        return _finish(action, dirty, config)

    # SECDED recovery: flip the pooled word in place, decode it via the
    # syndrome tables, restore the flips.
    buf = pool.payload
    base = idx * config.line_bytes + word_start
    buf[base + rel1] ^= 1 << bit1
    if flips > 1:
        buf[base + rel2] ^= 1 << bit2
    b0, b1, b2, b3, b4, b5, b6, b7 = buf[base : base + 8]
    t = SYNDROME_TABLES
    enc = (
        t[0][b0] ^ t[1][b1] ^ t[2][b2] ^ t[3][b3]
        ^ t[4][b4] ^ t[5][b5] ^ t[6][b6] ^ t[7][b7]
    )
    word_parity = BYTE_PARITY[b0 ^ b1 ^ b2 ^ b3 ^ b4 ^ b5 ^ b6 ^ b7]
    check = pool.ecc[idx * plan.words + word_start // 8]
    buf[base + rel1] ^= 1 << bit1
    if flips > 1:
        buf[base + rel2] ^= 1 << bit2
    action = _secded_action(word_parity, enc, check, err)
    return _finish(action, dirty, config)


def _check_trial(
    pool: LinePool,
    plan: _KernelPlan,
    dirty: bool,
    flips: int,
    config: FaultModelConfig,
    rng: random.Random,
) -> TrialOutcome:
    # Identical draw order to model._inject_check: line index, struck
    # word, column roll, flip bits (ECC column only), read roll.
    getrandbits = rng.getrandbits
    idx = _randbelow(getrandbits, pool.k_size, pool.size)
    parity_bits = plan.parity_bits[dirty]
    ecc_bits = plan.ecc_bits[dirty]
    word = _randbelow(getrandbits, plan.k_words, plan.words)
    strike_ecc = rng.random() * (parity_bits + ecc_bits) < ecc_bits
    if strike_ecc:
        check_err = 1 << _randbelow(getrandbits, 4, 8)
        if flips > 1:
            check_err ^= 1 << _randbelow(getrandbits, 4, 8)
    if not dirty and rng.random() >= config.read_fraction:
        return TrialOutcome.MASKED

    recovery = plan.recovery[dirty]
    if not strike_ecc:
        if recovery is ProtectionDomain.ECC:
            # Stale parity shadowed by intact ECC: nothing observed.
            action = RecoveryAction.CLEAN_READ
        else:
            # The struck parity word(s) mismatch against intact data.
            action = (
                RecoveryAction.DATA_LOSS
                if dirty
                else RecoveryAction.REFETCHED
            )
        return _finish(action, dirty, config)

    # Struck ECC column: a line storing ECC always recovers through it.
    pos = idx * plan.words + word
    pool.ecc[pos] ^= check_err
    check = pool.ecc[pos]
    pool.ecc[pos] ^= check_err
    base = idx * config.line_bytes + word * 8
    buf = pool.payload
    b0, b1, b2, b3, b4, b5, b6, b7 = buf[base : base + 8]
    t = SYNDROME_TABLES
    enc = (
        t[0][b0] ^ t[1][b1] ^ t[2][b2] ^ t[3][b3]
        ^ t[4][b4] ^ t[5][b5] ^ t[6][b6] ^ t[7][b7]
    )
    word_parity = BYTE_PARITY[b0 ^ b1 ^ b2 ^ b3 ^ b4 ^ b5 ^ b6 ^ b7]
    action = _secded_action(word_parity, enc, check, 0)
    return _finish(action, dirty, config)


#: CheckOutcome severity, mirroring ``LineCodec.check_line``'s worst-of
#: ordering (UNDETECTED classifies like DETECTED in ``access``).
_SEVERITY = {
    CheckOutcome.OK: 0,
    CheckOutcome.CORRECTED: 1,
    CheckOutcome.DETECTED: 2,
    CheckOutcome.UNDETECTED: 2,
}


def _classify_masks(
    codec: Codec,
    pairs: List[Tuple[int, int]],
    dirty: bool,
) -> RecoveryAction:
    """Classify a strike from its per-word (data, check) error masks.

    GF(2) linearity again: decoding the stored line is equivalent to
    decoding the pure error pattern against the all-zero codeword, so
    ``codec.check(e_data, e_check)`` per struck word plus the worst-of
    reduction of :meth:`repro.ecc.codec.LineCodec.check_line` and the
    recovery contract of :meth:`repro.core.policy.LineProtection.access`
    reproduce the reference path exactly — "repaired == golden" becomes
    "every residual is zero".
    """
    worst = 0
    residual = 0
    for e_data, e_check in pairs:
        result = codec.check(e_data, e_check)
        severity = _SEVERITY[result.outcome]
        if severity > worst:
            worst = severity
        residual |= result.data
    if worst == 2:
        if codec.corrects:
            # Beyond the code's correction power: signalled; _finish
            # decides whether the controller can refetch a clean line.
            return RecoveryAction.DATA_LOSS
        # Detect-only recovery refetches clean lines unconditionally
        # (the line-level path, independent of controller_refetch).
        return (
            RecoveryAction.DATA_LOSS if dirty else RecoveryAction.REFETCHED
        )
    if residual:
        return RecoveryAction.SILENT_CORRUPTION
    if worst == 1:
        return RecoveryAction.CORRECTED_IN_PLACE
    return RecoveryAction.CLEAN_READ


def _run_trials_scenario(
    policy: ProtectionPolicy,
    config: FaultModelConfig,
    n: int,
    rng: random.Random,
    pool: LinePool,
    sample_limit: int,
    plan: _KernelPlan,
) -> Tuple[Dict[str, Dict[str, int]], List[Tuple[int, str, bool, str]]]:
    """The batched kernel's generic scenario path.

    Calls the *same* sampler functions as
    :func:`repro.reliability.model._run_trial_scenario`, with the same
    rng, in the same order — bit-identical trial streams by
    construction rather than by draw replication.  Classification then
    runs on the pure error masks (no pooled-buffer mutation at all).
    """
    outcomes: Dict[str, Dict[str, int]] = {}
    samples: List[Tuple[int, str, bool, str]] = []
    rand = rng.random
    per = {
        domain.value: outcomes.setdefault(domain.value, {})
        for domain in DOMAIN_ORDER
    }
    value_of = {out: out.value for out in TrialOutcome}
    classes, cdf = plan.classes, plan.cdf
    for trial in range(n):
        dirty = rand() < config.dirty_fraction
        cum = plan.cum[dirty]
        roll = rand() * plan.total[dirty]
        cls = draw_class(rng, classes, cdf)
        length = draw_burst_length(rng, cls)
        if roll < cum[0]:
            domain_value = "data"
            rng.randrange(pool.size)  # pooled line index (outcome-inert)
            masks = data_error_masks(rng, cls, length, config.line_bytes)
            if not dirty and rand() >= config.read_fraction:
                outcome = TrialOutcome.MASKED
            else:
                codec = plan.codec_by_domain[plan.recovery[dirty]]
                action = _classify_masks(
                    codec, [(e, 0) for e in masks.values()], dirty
                )
                outcome = _finish(action, dirty, config)
        elif roll < cum[1]:
            domain_value = "tag"
            outcome = _inject_tag(
                dirty, flips_for(cls, length), config, rng
            )
        elif roll < cum[2]:
            domain_value = "status"
            outcome = _inject_status(
                dirty, flips_for(cls, length), config, rng
            )
        else:
            domain_value = "check"
            rng.randrange(pool.size)  # pooled line index (outcome-inert)
            column, cmasks = check_error_masks(
                rng, cls, length, plan.words,
                plan.parity_bits[dirty], plan.ecc_bits[dirty],
            )
            if not dirty and rand() >= config.read_fraction:
                outcome = TrialOutcome.MASKED
            else:
                recovery = plan.recovery[dirty]
                recovery_column = (
                    "ecc" if recovery is ProtectionDomain.ECC else "parity"
                )
                if column != recovery_column:
                    # Stale check bits of a column the recovery code
                    # never consults (e.g. parity shadowed by ECC).
                    action = RecoveryAction.CLEAN_READ
                else:
                    codec = plan.codec_by_domain[recovery]
                    action = _classify_masks(
                        codec, [(0, m) for m in cmasks.values()], dirty
                    )
                outcome = _finish(action, dirty, config)
        key = value_of[outcome]
        per_domain = per[domain_value]
        per_domain[key] = per_domain.get(key, 0) + 1
        if len(samples) < sample_limit:
            samples.append((trial, domain_value, dirty, key))
    for domain_value in tuple(outcomes):
        if not outcomes[domain_value]:
            del outcomes[domain_value]
    return outcomes, samples


def run_trials_batch(
    policy: ProtectionPolicy,
    config: FaultModelConfig,
    n: int,
    rng: random.Random,
    pool: Optional[LinePool] = None,
    sample_limit: int = 0,
) -> Tuple[Dict[str, Dict[str, int]], List[Tuple[int, str, bool, str]]]:
    """Run ``n`` trials against pooled lines; aggregate outcome counts.

    Returns ``(outcomes, samples)`` in exactly the shapes
    :func:`repro.reliability.campaign.run_shard` builds: outcome counts
    keyed ``{domain.value: {outcome.value: count}}`` plus the first
    ``sample_limit`` per-trial tuples for event tracing.  Consumes
    ``rng`` in the same order as ``n`` calls of
    :func:`repro.reliability.model.run_trial`, so the two kernels are
    interchangeable under one seed.
    """
    if pool is None:
        pool = LinePool.shared(config.line_bytes)
    if pool.line_bytes != config.line_bytes:
        raise ValueError("pool line size does not match the fault model")
    plan = _plan_for(policy, config)
    if config.scenario != "nominal" or config.ecc_codec != "secded":
        # Correlated scenarios and non-default codecs take the generic
        # mask-classification path; below is the historical nominal
        # fast path, preserved bit for bit.
        return _run_trials_scenario(
            policy, config, n, rng, pool, sample_limit, plan
        )
    outcomes: Dict[str, Dict[str, int]] = {}
    samples: List[Tuple[int, str, bool, str]] = []
    rand = rng.random
    dirty_fraction = config.dirty_fraction
    double_bit_fraction = config.double_bit_fraction
    # Hoisted per-domain count dicts and enum .value strings: the enum
    # descriptor lookups are measurable at ~300 ns/trial budgets.
    per_data = outcomes.setdefault(FaultDomain.DATA.value, {})
    per_tag = outcomes.setdefault(FaultDomain.TAG.value, {})
    per_status = outcomes.setdefault(FaultDomain.STATUS.value, {})
    per_check = outcomes.setdefault(FaultDomain.CHECK.value, {})
    value_of = {out: out.value for out in TrialOutcome}
    clean_cum = plan.cum[False]
    dirty_cum = plan.cum[True]
    clean_total = plan.total[False]
    dirty_total = plan.total[True]
    for trial in range(n):
        # Draw order per trial (the contract with run_trial): dirty
        # roll, domain roll, flips roll, then the injector's own draws.
        dirty = rand() < dirty_fraction
        if dirty:
            cum, roll = dirty_cum, rand() * dirty_total
        else:
            cum, roll = clean_cum, rand() * clean_total
        flips = 2 if rand() < double_bit_fraction else 1
        if roll < cum[0]:
            domain_value, per_domain = "data", per_data
            outcome = _data_trial(pool, plan, dirty, flips, config, rng)
        elif roll < cum[1]:
            domain_value, per_domain = "tag", per_tag
            outcome = _inject_tag(dirty, flips, config, rng)
        elif roll < cum[2]:
            domain_value, per_domain = "status", per_status
            outcome = _inject_status(dirty, flips, config, rng)
        else:
            domain_value, per_domain = "check", per_check
            outcome = _check_trial(pool, plan, dirty, flips, config, rng)
        key = value_of[outcome]
        per_domain[key] = per_domain.get(key, 0) + 1
        if len(samples) < sample_limit:
            samples.append((trial, domain_value, dirty, key))
    # Shards never saw some domain: drop its empty dict so aggregates
    # match the reference path's lazily-created mapping exactly.
    for domain_value in tuple(outcomes):
        if not outcomes[domain_value]:
            del outcomes[domain_value]
    return outcomes, samples


__all__ = [
    "POOL_SEED",
    "POOL_SIZE",
    "LinePool",
    "run_trials_batch",
]
