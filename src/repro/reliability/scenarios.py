"""Correlated-fault scenario packs: strike classes beyond Bernoulli.

The nominal fault model treats a strike as one flipped bit with a
scalar ``double_bit_fraction`` tail.  Field data (HARP's on-die ECC
profiles, Cerberus' cross-layer co-design argument — see PAPERS.md)
says real upsets also arrive as *adjacent-bit bursts* along a particle
track and as *row/column-correlated* multi-bit events, and that the
right protection code depends on which of those dominates.  This module
makes that a first-class axis: a **scenario** is a named mixture of
:class:`FaultClass` strike shapes plus a raw-BER scaling knob, selected
per campaign with ``repro reliability --scenario NAME``.

Determinism contract
--------------------
Both injection kernels (``reference`` and ``batch``) draw a scenario
trial through the *same* sampler functions below, in the same order:
dirty roll → domain roll → class roll (:func:`draw_class`) → burst
length (:func:`draw_burst_length`, burst classes only) → the
domain-specific position draws (:func:`data_error_masks` /
:func:`check_error_masks`).  Sharing the samplers — rather than
replicating their draw sequences — is what keeps the two kernels
bit-identical under one shard seed for every scenario, the same
property the nominal model pins.  Checkpoint digests fold the scenario
name in (``nominal`` keeps the historical digest), so shards from
different scenarios can never be spliced together.

The masks returned are *error patterns*: ``{word index: 64-bit mask}``
for data strikes, ``(column, {word index: column mask})`` for check
strikes.  The reference kernel XORs them into a live
:class:`~repro.core.policy.LineProtection`; the batched kernel decodes
them directly against the zero codeword (GF(2) linearity).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Strike-shape kinds a :class:`FaultClass` may take.
CLASS_KINDS = ("single", "word2", "burst", "column")


@dataclass(frozen=True)
class FaultClass:
    """One strike shape with its mixture weight.

    ``single``
        One flipped bit (the nominal model's base case).
    ``word2``
        Two random bits of one 64-bit codeword — the historical
        ``double_bit_fraction`` tail (the second draw may cancel the
        first, exactly as in the nominal model).
    ``burst``
        ``L`` *adjacent* bits along the array's bit order, ``L`` drawn
        per strike from ``burst_pmf``; bursts wrap and may straddle a
        word (or check-column) boundary — the MBU shape interleaving
        and symbol codes are designed against.
    ``column``
        The same bit offset upset in ``span_words`` consecutive words —
        a column/bitline failure correlated *across* codewords, the
        shape per-word codes cannot see as multi-bit.
    """

    kind: str
    weight: float
    #: ``((length, probability), ...)`` — burst classes only.
    burst_pmf: Tuple[Tuple[int, float], ...] = ()
    #: Words a column strike spans — column classes only.
    span_words: int = 4

    def __post_init__(self) -> None:
        if self.kind not in CLASS_KINDS:
            raise ValueError(
                f"unknown fault class kind {self.kind!r}; "
                f"known: {list(CLASS_KINDS)}"
            )
        if self.weight < 0.0:
            raise ValueError("fault class weight must be non-negative")
        if self.kind == "burst":
            if not self.burst_pmf:
                raise ValueError("burst class needs a burst_pmf")
            total = 0.0
            for length, probability in self.burst_pmf:
                if length < 2:
                    raise ValueError("burst lengths must be >= 2")
                if probability < 0.0:
                    raise ValueError("burst probabilities must be >= 0")
                total += probability
            if abs(total - 1.0) > 1e-9:
                raise ValueError("burst_pmf probabilities must sum to 1")
        if self.kind == "column" and self.span_words < 2:
            raise ValueError("column class needs span_words >= 2")


@dataclass(frozen=True)
class Scenario:
    """A named strike mixture plus its raw-rate scaling.

    ``ber_scale`` multiplies the campaign's ``raw_fit_per_mbit`` at
    estimate time (low-voltage operation raises the raw upset rate
    without changing per-strike shapes much); like the other
    FIT-quoting knobs it is *excluded* from checkpoint digests.
    ``from_double_bit_fraction`` marks the nominal scenario, whose
    class mixture is derived from the model's ``double_bit_fraction``
    instead of a fixed tuple.
    """

    name: str
    description: str
    classes: Tuple[FaultClass, ...] = ()
    ber_scale: float = 1.0
    from_double_bit_fraction: bool = False

    def __post_init__(self) -> None:
        if self.ber_scale <= 0.0:
            raise ValueError("ber_scale must be positive")
        if not self.from_double_bit_fraction:
            total = sum(cls.weight for cls in self.classes)
            if abs(total - 1.0) > 1e-9:
                raise ValueError(
                    f"scenario {self.name!r} class weights must sum to 1"
                )

    def resolve(
        self, double_bit_fraction: float
    ) -> Tuple[FaultClass, ...]:
        """The concrete class mixture for one model configuration."""
        if self.from_double_bit_fraction:
            return (
                FaultClass("single", 1.0 - double_bit_fraction),
                FaultClass("word2", double_bit_fraction),
            )
        return self.classes


# -- the scenario registry ----------------------------------------------------

_SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> None:
    """Register a scenario preset (idempotent re-register by name)."""
    if not scenario.name:
        raise ValueError("scenario name must be non-empty")
    _SCENARIOS[scenario.name] = scenario


def get_scenario(name: str) -> Scenario:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {available_scenarios()}"
        ) from None


def available_scenarios() -> List[str]:
    """Registered scenario names, ``nominal`` first then alphabetical."""
    return sorted(_SCENARIOS, key=lambda name: (name != "nominal", name))


register_scenario(Scenario(
    name="nominal",
    description=(
        "The paper's Bernoulli model: single strikes with the "
        "double_bit_fraction same-word tail.  Bit-identical to the "
        "pre-scenario trial stream."
    ),
    from_double_bit_fraction=True,
))

register_scenario(Scenario(
    name="burst-heavy",
    description=(
        "Deep-submicron MBU regime: nearly half of strikes are "
        "adjacent-bit bursts of 2-6 cells along a particle track."
    ),
    classes=(
        FaultClass("single", 0.50),
        FaultClass("burst", 0.45, burst_pmf=(
            (2, 0.50), (3, 0.25), (4, 0.15), (6, 0.10),
        )),
        FaultClass("word2", 0.05),
    ),
))

register_scenario(Scenario(
    name="rowcol",
    description=(
        "Row/column-correlated faults: bursts along a wordline plus "
        "bitline strikes repeating one bit offset across 4 consecutive "
        "words of the subarray."
    ),
    classes=(
        FaultClass("single", 0.40),
        FaultClass("burst", 0.30, burst_pmf=((2, 0.60), (4, 0.40))),
        FaultClass("column", 0.30, span_words=4),
    ),
))

register_scenario(Scenario(
    name="low-voltage",
    description=(
        "Near-threshold operation: 4x the raw upset rate and a heavier "
        "multi-bit tail (weakened cells upset in clusters)."
    ),
    ber_scale=4.0,
    classes=(
        FaultClass("single", 0.35),
        FaultClass("burst", 0.45, burst_pmf=(
            (2, 0.35), (3, 0.25), (4, 0.20), (6, 0.10), (8, 0.10),
        )),
        FaultClass("word2", 0.20),
    ),
))


# -- shared samplers (the cross-kernel determinism contract) ------------------


def class_cdf(classes: Tuple[FaultClass, ...]) -> List[float]:
    """Cumulative class weights, in the same float-accumulation order
    both kernels compare rolls against (cf. ``model._choose_domain``)."""
    acc, cdf = 0.0, []
    for cls in classes:
        acc += cls.weight
        cdf.append(acc)
    return cdf


def draw_class(
    rng: random.Random,
    classes: Tuple[FaultClass, ...],
    cdf: List[float],
) -> FaultClass:
    """One strike-class draw (always exactly one ``rng.random()``)."""
    roll = rng.random() * cdf[-1]
    for cls, bound in zip(classes, cdf):
        if roll < bound:
            return cls
    return classes[-1]  # pragma: no cover - float edge


def draw_burst_length(rng: random.Random, cls: FaultClass) -> int:
    """Burst-length draw; non-burst classes consume *no* rng state."""
    if cls.kind != "burst":
        return 0
    roll = rng.random()
    acc = 0.0
    for length, probability in cls.burst_pmf:
        acc += probability
        if roll < acc:
            return length
    return cls.burst_pmf[-1][0]  # pragma: no cover - float edge


def flips_for(cls: FaultClass, length: int) -> int:
    """Upset multiplicity for the tag/status arrays (no bit adjacency
    there worth modelling: the arrays are a few dozen bits wide)."""
    if cls.kind == "single":
        return 1
    if cls.kind == "word2":
        return 2
    if cls.kind == "burst":
        return length
    return cls.span_words


def data_error_masks(
    rng: random.Random,
    cls: FaultClass,
    length: int,
    line_bytes: int,
) -> Dict[int, int]:
    """Error pattern of one data-array strike: ``{word index: mask}``.

    Draw order per kind (fixed — both kernels replay it):

    * ``single``: byte, bit — the nominal model's own two draws;
    * ``word2``: byte, bit, second byte-in-word, second bit;
    * ``burst``: one start-bit draw; ``length`` adjacent bits of the
      line's little-endian bit order, wrapping at the line end;
    * ``column``: bit offset, start word; the offset repeats in
      ``span_words`` consecutive words (wrapping).
    """
    words = line_bytes // 8
    if cls.kind == "single":
        byte_idx = rng.randrange(line_bytes)
        bit = rng.randrange(8)
        return {byte_idx // 8: 1 << ((byte_idx % 8) * 8 + bit)}
    if cls.kind == "word2":
        byte_idx = rng.randrange(line_bytes)
        bit = rng.randrange(8)
        mask = 1 << ((byte_idx % 8) * 8 + bit)
        mask ^= 1 << (rng.randrange(8) * 8 + rng.randrange(8))
        return {byte_idx // 8: mask}
    if cls.kind == "burst":
        total = line_bytes * 8
        start = rng.randrange(total)
        masks: Dict[int, int] = {}
        for i in range(length):
            position = (start + i) % total
            word = position // 64
            masks[word] = masks.get(word, 0) | 1 << (position % 64)
        return masks
    offset = rng.randrange(64)
    start_word = rng.randrange(words)
    span = min(cls.span_words, words)
    return {(start_word + i) % words: 1 << offset for i in range(span)}


def check_error_masks(
    rng: random.Random,
    cls: FaultClass,
    length: int,
    words: int,
    parity_bits: int,
    ecc_bits: int,
) -> Tuple[str, Dict[int, int]]:
    """Error pattern of one check-array strike.

    Returns ``(column, {word index: column mask})`` with ``column`` in
    ``("parity", "ecc")``.  As in the nominal model, the struck column
    is chosen in proportion to its stored bits (one ``rng.random()``
    after the word draw), and a 1-bit-per-word column never draws a
    position.  Bursts run along the column's bit order across
    consecutive words; column strikes repeat one bit offset down
    ``span_words`` words of the chosen column.
    """
    word = rng.randrange(words)
    strike_ecc = rng.random() * (parity_bits + ecc_bits) < ecc_bits
    column = "ecc" if strike_ecc else "parity"
    col_bits = ecc_bits if strike_ecc else parity_bits
    if cls.kind == "single":
        mask = 1 << rng.randrange(col_bits) if col_bits > 1 else 1
        return column, {word: mask}
    if cls.kind == "word2":
        if col_bits > 1:
            mask = 1 << rng.randrange(col_bits)
            mask ^= 1 << rng.randrange(col_bits)
            return column, {word: mask}
        # One check bit per word: the second upset bit of the strike
        # lands in the neighbouring word's column entry.
        return column, {word: 1, (word + 1) % words: 1}
    if cls.kind == "burst":
        total = words * col_bits
        start = word * col_bits
        if col_bits > 1:
            start += rng.randrange(col_bits)
        masks: Dict[int, int] = {}
        for i in range(length):
            position = (start + i) % total
            struck = position // col_bits
            masks[struck] = masks.get(struck, 0) | 1 << (
                position % col_bits
            )
        return column, masks
    offset = rng.randrange(col_bits) if col_bits > 1 else 0
    span = min(cls.span_words, words)
    return column, {
        (word + i) % words: 1 << offset for i in range(span)
    }


__all__ = [
    "CLASS_KINDS",
    "FaultClass",
    "Scenario",
    "available_scenarios",
    "check_error_masks",
    "class_cdf",
    "data_error_masks",
    "draw_burst_length",
    "draw_class",
    "flips_for",
    "get_scenario",
    "register_scenario",
]
