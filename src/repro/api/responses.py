"""Response dataclasses: the facade's (and the wire's) output surface.

Every response exposes ``as_dict()`` returning plain JSON-able data —
the single serialization path shared by the CLI's ``--format json``
and the job service's result documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.api.requests import (
    AblateRequest,
    AreaRequest,
    AutotuneRequest,
    FiguresRequest,
    InjectRequest,
    IpcRequest,
    RecommendRequest,
    ReliabilityRequest,
    RunRequest,
    _as_dict,
)


@dataclass(frozen=True)
class RunResponse:
    """Measured quantities of one run, ready to render or serialize."""

    request: RunRequest
    benchmark: str
    #: ``"1M (32768 scaled cycles)"``-style label, None when no cleaning.
    cleaning_interval: Optional[str]
    refs: int
    cycles: int
    dirty_fraction: float
    peak_dirty_fraction: float
    writeback_fraction: float
    writeback_split: Dict[str, float]
    l2_miss_rate: float
    bus_utilization: float
    #: Traffic-aware variant counters; all stay 0 on the standard path.
    silent_writes: int = 0
    elided_ecc_updates: int = 0
    wb_bytes_raw: int = 0
    wb_bytes_compressed: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class IpcResponse:
    request: IpcRequest
    benchmark: str
    insts: int
    org_ipc: float
    ours_ipc: float
    org_cycles: int
    ours_cycles: int
    org_writeback_fraction: float
    ours_writeback_fraction: float
    #: 100 × (org − ours) / org, the paper's headline metric.
    ipc_loss_pct: float
    #: Memory-system energy of each run (:mod:`repro.cache.energy`).
    org_energy_uj: float = 0.0
    ours_energy_uj: float = 0.0
    #: Traffic-aware variant counters of the "ours" run; 0 on standard.
    silent_writes: int = 0
    elided_ecc_updates: int = 0
    wb_bytes_raw: int = 0
    wb_bytes_compressed: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class AreaResponse:
    request: AreaRequest
    #: (component, KiB) rows, ``total`` last — conventional scheme.
    conventional: Tuple[Tuple[str, float], ...]
    #: Same for the paper's proposed scheme.
    proposed: Tuple[Tuple[str, float], ...]
    #: Fractional area reduction (the paper's 0.59).
    reduction: float

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class InjectResponse:
    request: InjectRequest
    trials: int
    #: outcome name -> {"count": n, "rate": n / trials}.
    outcomes: Dict[str, Dict[str, float]]

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class FigureSection:
    """One renderable block of figure output.

    Exactly one of ``series`` (a ``{row: {column: value}}`` table) or
    ``text`` (a pre-rendered block, e.g. Table 1) is set; ``area``
    sections carry an :class:`AreaResponse` instead.
    """

    title: str
    series: Optional[Dict[str, Dict[str, float]]] = None
    text: Optional[str] = None
    area: Optional[AreaResponse] = None
    ndigits: int = 2

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class FiguresResponse:
    request: FiguresRequest
    sections: Tuple[FigureSection, ...]

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class AblateResponse:
    """One study's output, normalized to a renderable table.

    Most studies produce a ``{row: {column: value}}`` series; the
    ``ecc-entries`` study produces explicit headers + rows (mixed
    integer/float columns).  Exactly one of the two is set.
    """

    request: AblateRequest
    study: str
    series: Optional[Dict[str, Dict[str, float]]] = None
    headers: Optional[Tuple[str, ...]] = None
    rows: Optional[Tuple[Tuple[Any, ...], ...]] = None

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


@dataclass(frozen=True)
class ReliabilityResponse:
    """Everything one campaign produced, plus the rich result object.

    ``result`` is the engine's :class:`~repro.reliability.CampaignResult`
    (for table rendering and further analysis); ``as_dict`` serializes
    it via :func:`campaign_doc`.
    """

    request: ReliabilityRequest
    #: Measured per-scheme dirty fractions, when ``benchmark`` was set.
    dirty_fractions: Optional[Dict[str, float]]
    result: Any = field(repr=False)
    resumed_shards: int = 0
    executed_shards: int = 0
    #: Shards absorbed from other fabric replicas (0 outside a fabric).
    remote_shards: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "request": _as_dict(self.request),
            "dirty_fractions": self.dirty_fractions,
            "resumed_shards": self.resumed_shards,
            "executed_shards": self.executed_shards,
            "remote_shards": self.remote_shards,
            "campaign": campaign_doc(self.result),
        }


def campaign_doc(result) -> Dict[str, Any]:
    """JSON-able document of a :class:`~repro.reliability.CampaignResult`.

    The one serialization of campaign numbers: per-scheme trials,
    conditional outcome rates with Wilson half-widths, AVF, the FIT
    split and MTTF — exactly the quantities the rendered tables show.
    """
    schemes: Dict[str, Any] = {}
    for name, s in result.schemes.items():
        e = s.estimate
        schemes[name] = {
            "trials": s.trials,
            "shards": s.shards,
            "stopped_by": s.stopped_by,
            "half_width": s.half_width,
            "rates": {
                outcome.value: {
                    "value": r.value,
                    "lo": r.lo,
                    "hi": r.hi,
                    "count": r.successes,
                }
                for outcome, r in e.rates.items()
            },
            "avf": {"value": e.avf.value, "lo": e.avf.lo, "hi": e.avf.hi},
            "fit_sdc": list(e.fit_sdc),
            "fit_due": list(e.fit_due),
            "mttf_hours": [
                (None if v == float("inf") else v) for v in e.mttf_hours
            ],
            "outcome_counts": {
                outcome.value: n for outcome, n in s.outcome_counts.items()
            },
            "domain_counts": {
                domain.value: {o.value: n for o, n in per.items()}
                for domain, per in s.domain_counts.items()
            },
        }
    return {
        "schemes": schemes,
        "total_trials": result.total_trials,
        "resumed_shards": result.resumed_shards,
        "executed_shards": result.executed_shards,
        "remote_shards": getattr(result, "remote_shards", 0),
    }


@dataclass(frozen=True)
class AutotuneResponse:
    """An explored design grid with its per-benchmark Pareto fronts.

    ``points`` are JSON-able documents (one per evaluated design
    point: axes, label, per-objective values with Wilson bounds,
    ``on_front`` flag); ``fronts`` maps each benchmark to the indices
    of its non-dominated points within ``points``.  The raw
    :class:`~repro.autotune.PointMetrics` ride along un-serialized in
    ``metrics`` for the CLI and the recommender.
    """

    request: AutotuneRequest
    objectives: Tuple[str, ...]
    points: Tuple[Dict[str, Any], ...]
    #: benchmark -> ascending indices into ``points``.
    fronts: Dict[str, Tuple[int, ...]]
    executed: int
    cached: int
    metrics: Tuple[Any, ...] = field(default=(), repr=False)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "request": _as_dict(self.request),
            "objectives": list(self.objectives),
            "points": [dict(p) for p in self.points],
            "fronts": {
                name: list(front) for name, front in self.fronts.items()
            },
            "executed": self.executed,
            "cached": self.cached,
        }


@dataclass(frozen=True)
class RecommendResponse:
    """Budget-feasible scheme choices, one per benchmark.

    ``choices`` maps each benchmark to the chosen point's document
    (from ``autotune.points``) plus the budgets it was judged against.
    Infeasible budgets never reach this type — the executor raises
    :class:`~repro.api.requests.ReproError` with the best achievable
    numbers instead.
    """

    request: RecommendRequest
    autotune: AutotuneResponse
    #: benchmark -> {"index", "point", "fit_budget", "area_budget"}.
    choices: Dict[str, Dict[str, Any]]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "request": _as_dict(self.request),
            "choices": _as_dict(self.choices),
            "autotune": self.autotune.as_dict(),
        }


__all__ = [
    "AblateResponse",
    "AreaResponse",
    "AutotuneResponse",
    "FigureSection",
    "FiguresResponse",
    "InjectResponse",
    "IpcResponse",
    "RecommendResponse",
    "ReliabilityResponse",
    "RunResponse",
    "campaign_doc",
]
