"""Executors and the request-kind registry.

Every request kind the facade serves is one :func:`register_kind`
entry pairing a request dataclass with its executor — the CLI, the job
service and the tests all dispatch through :func:`execute`, so adding
a kind is one registration, not an if/elif edit in three layers.  The
registry also carries per-kind capabilities (does the executor take a
``SweepEngine``?  is it a resumable campaign?) that the job service
reads instead of hard-coding kind names.

:func:`request_key` gives every request a content-addressed identity
(folding in :func:`repro.experiments.pool.code_version`); plain
benchmark runs reuse the sweep cache's own
:func:`~repro.experiments.pool.cell_key`, so service-level dedupe and
the on-disk result cache agree about what "the same work" means.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api.requests import (
    ABLATIONS,
    AblateRequest,
    AreaRequest,
    AutotuneRequest,
    FIGURE_CHOICES,
    FiguresRequest,
    InjectRequest,
    IpcRequest,
    RecommendRequest,
    ReliabilityRequest,
    ReproError,
    RunRequest,
    _as_dict,
    _benchmark,
    _run_config,
)
from repro.api.responses import (
    AblateResponse,
    AreaResponse,
    AutotuneResponse,
    FigureSection,
    FiguresResponse,
    InjectResponse,
    IpcResponse,
    RecommendResponse,
    ReliabilityResponse,
    RunResponse,
)
from repro.experiments.pool import Cell, SweepEngine, cell_key, code_version
from repro.experiments.runner import interval_label

#: Wire-protocol version tag.  Every document the job service sends —
#: job, result, event, error — carries ``"schema": SCHEMA``, and
#: :class:`repro.service.client.ServiceClient` refuses anything else.
SCHEMA = "repro/v1"

#: Request kind -> (request class, executor).  The service's job types.
#: Populated by :func:`register_kind`; the tuple shape is public API.
KINDS: Dict[str, Tuple[type, Callable[..., Any]]] = {}

#: Kinds whose executor accepts an ``engine=`` SweepEngine kwarg.
ENGINE_KINDS: set = set()

#: Kinds that run as resumable campaigns (``progress=``, ``checkpoint=``
#: and fabric ``coordinator=`` / ``should_abort=`` kwargs).
CAMPAIGN_KINDS: set = set()

#: Kind -> kwargs producing a representative request, for kinds whose
#: zero-argument construction is invalid (e.g. recommend requires a
#: budget).  Consumed by :func:`default_doc` / ``GET /v1/kinds``.
EXAMPLE_KWARGS: Dict[str, dict] = {}


def register_kind(
    kind: str,
    request_cls: type,
    executor: Callable[..., Any],
    *,
    engine: bool = False,
    campaign: bool = False,
    example: dict = None,
) -> None:
    """Register one request kind with its executor and capabilities."""
    if kind in KINDS:
        raise ValueError(f"request kind {kind!r} already registered")
    KINDS[kind] = (request_cls, executor)
    if engine:
        ENGINE_KINDS.add(kind)
    if campaign:
        CAMPAIGN_KINDS.add(kind)
    if example is not None:
        EXAMPLE_KWARGS[kind] = dict(example)


def _enum_providers() -> Dict[str, List[str]]:
    """Registry-backed request fields -> their current valid values.

    One place renders every enumerable axis from its registry —
    variants, scenarios, codecs, kernels, schemes, objectives — so
    ``GET /v1/kinds`` (and the docs built from it) can never drift from
    what :mod:`repro.api.requests` actually accepts.
    """
    from repro.autotune import SCHEMES, available_objectives
    from repro.core.policy import available_variants
    from repro.ecc import available_codecs
    from repro.reliability.campaign import KERNELS
    from repro.reliability.scenarios import available_scenarios

    return {
        "variant": list(available_variants()),
        "variants": list(available_variants()),
        "scenario": list(available_scenarios()),
        "scenarios": list(available_scenarios()),
        "codec": list(available_codecs()),
        "codecs": list(available_codecs()),
        "kernel": list(KERNELS),
        "schemes": list(SCHEMES),
        "objectives": list(available_objectives()),
    }


def kind_enums(kind: str) -> Dict[str, List[str]]:
    """A kind's registry-backed fields and their valid values."""
    import dataclasses

    cls, _ = KINDS[kind]
    providers = _enum_providers()
    return {
        f.name: providers[f.name]
        for f in dataclasses.fields(cls)
        if f.name in providers
    }


def default_doc(kind: str) -> dict:
    """A kind's default (or minimal representative) request document.

    The document carries one extra, informational ``"enums"`` key
    mapping each registry-backed field to its valid values (from
    :func:`kind_enums`); strip it before POSTing the document back.
    """
    cls, _ = KINDS[kind]
    doc = cls(**EXAMPLE_KWARGS.get(kind, {})).as_dict()
    enums = kind_enums(kind)
    if enums:
        doc["enums"] = enums
    return doc


def execute(kind: str, request: Any, **kwargs: Any) -> Any:
    """Dispatch one request to its registered executor by kind name."""
    try:
        cls, func = KINDS[kind]
    except KeyError:
        raise ReproError(
            f"unknown request kind {kind!r}; known: {sorted(KINDS)}"
        ) from None
    if not isinstance(request, cls):
        raise ReproError(
            f"{kind} request must be {cls.__name__}, "
            f"got {type(request).__name__}"
        )
    return func(request, **kwargs)


def request_key(kind: str, request: Any) -> str:
    """Content-addressed identity of one request.

    A plain benchmark run *is* a sweep-cache cell, so its key is the
    cache's own :func:`~repro.experiments.pool.cell_key` — the service
    dedupes exactly where the on-disk result cache would hit.  Every
    other request hashes its canonical dict plus the source-tree
    version, so a code change never serves stale work.
    """
    if kind == "run" and isinstance(request, RunRequest) and not request.trace:
        return cell_key(
            Cell(
                request.benchmark,
                request.protection_config(),
                request.run_config(),
                variant=request.variant,
            )
        )
    payload = {
        "kind": kind,
        "request": _as_dict(request),
        "code": code_version(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _engine(engine: Optional[SweepEngine]) -> SweepEngine:
    return engine if engine is not None else SweepEngine()


# -- run ----------------------------------------------------------------------


def run(
    request: RunRequest,
    engine: Optional[SweepEngine] = None,
    tracer=None,
    profiler=None,
) -> RunResponse:
    """Execute one reference-mode run.

    ``tracer`` forces a live (uncached) simulation, since event traces
    cannot come out of the result cache.
    """
    from repro.experiments.runner import run_refs, run_trace
    from repro.workloads import load_trace

    config = request.run_config()
    protection = request.protection_config()
    if request.trace:
        path = Path(request.trace)
        if not path.exists():
            raise ReproError(f"trace file not found: {request.trace}")
        try:
            stream = load_trace(path)
        except (OSError, ValueError) as err:
            raise ReproError(
                f"unreadable trace {request.trace}: {err}"
            ) from None
        out = run_trace(
            stream, protection, config, label=request.trace,
            tracer=tracer, profiler=profiler, variant=request.variant,
        )
    else:
        _benchmark(request.benchmark)
        if tracer is not None:
            out = run_refs(
                request.benchmark, protection, config,
                tracer=tracer, profiler=profiler, variant=request.variant,
            )
        else:
            eng = _engine(engine)
            out = eng.run_refs(
                request.benchmark, protection, config,
                variant=request.variant,
            )
            if profiler is not None:
                profiler.merge(eng.profiler)

    label = None
    if protection is not None and protection.cleaning_interval is not None:
        geometry = config.geometry
        label = (
            f"{interval_label(protection.cleaning_interval)} "
            f"({geometry.scaled_interval(protection.cleaning_interval)} "
            f"scaled cycles)"
        )
    return RunResponse(
        request=request,
        benchmark=out.benchmark,
        cleaning_interval=label,
        refs=out.refs,
        cycles=out.cycles,
        dirty_fraction=out.dirty_fraction,
        peak_dirty_fraction=out.peak_dirty_fraction,
        writeback_fraction=out.writeback_fraction,
        writeback_split=dict(out.writeback_split),
        l2_miss_rate=out.l2_miss_rate,
        bus_utilization=out.bus_utilization,
        silent_writes=out.silent_writes,
        elided_ecc_updates=out.elided_ecc_updates,
        wb_bytes_raw=out.wb_bytes_raw,
        wb_bytes_compressed=out.wb_bytes_compressed,
    )


# -- ipc ----------------------------------------------------------------------


def ipc(
    request: IpcRequest, engine: Optional[SweepEngine] = None
) -> IpcResponse:
    """Run the paired org/ours CPU-mode comparison."""
    _benchmark(request.benchmark)
    if request.insts < 1:
        raise ReproError("insts must be positive")
    config = _run_config(request.refs, request.warmup, request.seed)
    eng = _engine(engine)
    org = eng.run_ipc(request.benchmark, None, config, n_insts=request.insts)
    ours = eng.run_ipc(
        request.benchmark, request.protection_config(), config,
        n_insts=request.insts, variant=request.variant,
    )
    loss = 100 * (org.ipc - ours.ipc) / org.ipc if org.ipc else 0.0
    return IpcResponse(
        request=request,
        benchmark=request.benchmark,
        insts=request.insts,
        org_ipc=org.ipc,
        ours_ipc=ours.ipc,
        org_cycles=org.result.cycles,
        ours_cycles=ours.result.cycles,
        org_writeback_fraction=org.writeback_fraction,
        ours_writeback_fraction=ours.writeback_fraction,
        ipc_loss_pct=loss,
        org_energy_uj=org.energy_uj,
        ours_energy_uj=ours.energy_uj,
        silent_writes=ours.silent_writes,
        elided_ecc_updates=ours.elided_ecc_updates,
        wb_bytes_raw=ours.wb_bytes_raw,
        wb_bytes_compressed=ours.wb_bytes_compressed,
    )


# -- area ---------------------------------------------------------------------


def area(request: AreaRequest = AreaRequest()) -> AreaResponse:
    from repro.experiments import area_table

    if request.ecc_entries < 1:
        raise ReproError("ecc_entries must be positive")
    conv, ours, red = area_table(ecc_entries_per_set=request.ecc_entries)
    return AreaResponse(
        request=request,
        conventional=tuple((name, kib) for name, _, kib in conv.rows()),
        proposed=tuple((name, kib) for name, _, kib in ours.rows()),
        reduction=red,
    )


# -- inject -------------------------------------------------------------------


def inject(request: InjectRequest, tracer=None) -> InjectResponse:
    from repro.ecc import CodewordError, FaultInjector, get_codec

    if request.trials < 1 or request.flips < 1:
        raise ReproError("trials and flips must be positive")
    try:
        codec = get_codec(request.codec)
    except CodewordError as err:
        raise ReproError(str(err)) from None
    injector = FaultInjector(codec, seed=request.seed, tracer=tracer)
    stats = injector.campaign(request.trials, request.flips)
    outcomes = {
        outcome.value: {"count": n, "rate": n / stats.trials}
        for outcome, n in sorted(
            stats.by_outcome.items(), key=lambda kv: kv[0].value
        )
    }
    return InjectResponse(
        request=request, trials=stats.trials, outcomes=outcomes
    )


# -- figures ------------------------------------------------------------------


def figures(
    request: FiguresRequest, engine: Optional[SweepEngine] = None
) -> FiguresResponse:
    """Regenerate the requested figures as structured sections.

    This is the whole of the old ``cmd_figures`` orchestration: which
    sweeps to run, how to title them, which suites feed which figure —
    the CLI and the service both just render the returned sections.
    """
    from repro.experiments import (
        figure1,
        figure3_4,
        figure5_6,
        figure7,
        figure8,
        interval_sweep,
        ipc_loss,
        table1,
    )

    wanted = request.fig
    if wanted not in FIGURE_CHOICES:
        raise ReproError(
            f"unknown figure {wanted!r}; choose from {list(FIGURE_CHOICES)}"
        )
    config = _run_config(request.refs, request.warmup, request.seed)
    eng = _engine(engine)
    sections: List[FigureSection] = []

    if wanted in ("all", "table1"):
        sections.append(
            FigureSection(
                title="Table 1: baseline configuration", text=table1()
            )
        )
    if wanted in ("all", "1"):
        f1 = figure1(config, engine=eng)
        sections.append(FigureSection(
            title="Figure 1: % dirty lines (conventional)",
            series={k: {"dirty %": v} for k, v in f1.items()},
        ))
    if wanted in ("all", "3", "4", "5", "6"):
        suites = {"3": ["fp"], "5": ["fp"], "4": ["int"], "6": ["int"]}.get(
            wanted, ["fp", "int"]
        )
        for suite in suites:
            sweep = interval_sweep(suite, config, engine=eng)
            if wanted in ("all", "3", "4"):
                fig = "3" if suite == "fp" else "4"
                sections.append(FigureSection(
                    title=f"Figure {fig}: dirty % vs interval ({suite})",
                    series=figure3_4(suite, config, sweep=sweep),
                ))
            if wanted in ("all", "5", "6"):
                fig = "5" if suite == "fp" else "6"
                sections.append(FigureSection(
                    title=f"Figure {fig}: writeback % vs interval ({suite})",
                    series=figure5_6(suite, config, sweep=sweep),
                ))
    if wanted in ("all", "7"):
        f7 = figure7(config, engine=eng)
        sections.append(FigureSection(
            title="Figure 7: % dirty lines (full scheme)",
            series={k: {"dirty %": v} for k, v in f7.items()},
        ))
    if wanted in ("all", "8"):
        sections.append(FigureSection(
            title="Figure 8: writeback split (full scheme)",
            series=figure8(config, engine=eng),
        ))
    if wanted in ("all", "ipc"):
        rows: Dict[str, Dict[str, float]] = {}
        for suite in ("fp", "int"):
            rows.update(ipc_loss(
                config, suite=suite, n_insts=request.refs * 2, engine=eng
            ))
        sections.append(FigureSection(
            title="IPC: org vs ours", series=rows, ndigits=3
        ))
    if wanted in ("all", "area"):
        sections.append(FigureSection(
            title="Protection area, 1MB 4-way 64B L2",
            area=area(AreaRequest(ecc_entries=request.ecc_area_entries)),
        ))
    return FiguresResponse(request=request, sections=tuple(sections))


# -- ablate -------------------------------------------------------------------


def ablate(
    request: AblateRequest, engine: Optional[SweepEngine] = None
) -> AblateResponse:
    import inspect

    import repro.experiments as experiments

    if request.study not in ABLATIONS:
        raise ReproError(
            f"unknown study {request.study!r}; "
            f"choose from {sorted(ABLATIONS)}"
        )
    for name in request.benchmarks or ():
        _benchmark(name)
    config = _run_config(request.refs, request.warmup, request.seed)
    func = getattr(experiments, ABLATIONS[request.study])
    kwargs: Dict[str, Any] = {"config": config}
    if request.benchmarks:
        kwargs["benchmarks"] = list(request.benchmarks)
    if "engine" in inspect.signature(func).parameters:
        kwargs["engine"] = _engine(engine)
    result = func(**kwargs)
    if request.study == "ecc-entries":
        return AblateResponse(
            request=request,
            study=request.study,
            headers=(
                "entries/set", "area KiB", "dirty %", "ECC-WB %",
                "total WB %",
            ),
            rows=tuple(
                (p.entries_per_set, p.area_kib, p.dirty_pct, p.ecc_wb_pct,
                 p.total_wb_pct)
                for p in result
            ),
        )
    return AblateResponse(
        request=request, study=request.study, series=result
    )


# -- reliability --------------------------------------------------------------


def reliability(
    request: ReliabilityRequest,
    engine: Optional[SweepEngine] = None,
    tracer=None,
    registry=None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    checkpoint: Optional[str] = None,
    coordinator=None,
    should_abort: Optional[Callable[[], bool]] = None,
) -> ReliabilityResponse:
    """Run (or resume) a campaign.

    ``checkpoint`` overrides ``request.checkpoint`` (the service passes
    a path derived from the request digest so identical campaigns share
    one resumable checkpoint file).  ``progress`` receives round-level
    event dicts from the engine (see
    :class:`repro.reliability.CampaignEngine`).  ``coordinator`` plugs
    a :class:`repro.service.fabric.ShardCoordinator` in so several
    service replicas lease disjoint shards of this one campaign;
    ``should_abort`` is polled at round boundaries (and in the fabric
    wait loop) to cancel cooperatively.
    """
    from repro.experiments.reliability import measured_dirty_fractions
    from repro.reliability import CampaignEngine, CheckpointError

    eng = _engine(engine)
    dirty_fractions = None
    if request.benchmark:
        _benchmark(request.benchmark)
        config = _run_config(request.refs, request.warmup, request.seed)
        dirty_fractions = measured_dirty_fractions(
            request.benchmark, config, engine=eng, variant=request.variant
        )
        if progress is not None:
            progress({
                "type": "dirty-fractions",
                "benchmark": request.benchmark,
                "dirty_fractions": dict(dirty_fractions),
            })

    campaign = request.campaign_config(dirty_fractions)
    try:
        result = CampaignEngine(
            campaign,
            engine=eng,
            checkpoint=checkpoint or request.checkpoint,
            tracer=tracer,
            registry=registry,
            progress=progress,
            coordinator=coordinator,
            should_abort=should_abort,
        ).run()
    except CheckpointError as err:
        raise ReproError(str(err)) from None
    return ReliabilityResponse(
        request=request,
        dirty_fractions=(
            dict(dirty_fractions) if dirty_fractions is not None else None
        ),
        result=result,
        resumed_shards=result.resumed_shards,
        executed_shards=result.executed_shards,
        remote_shards=result.remote_shards,
    )


# -- autotune -----------------------------------------------------------------


def autotune(
    request: AutotuneRequest,
    engine: Optional[SweepEngine] = None,
    tracer=None,
    registry=None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    checkpoint: Optional[str] = None,
    coordinator=None,
    should_abort: Optional[Callable[[], bool]] = None,
) -> AutotuneResponse:
    """Explore the design grid and compute per-benchmark Pareto fronts.

    ``checkpoint`` (the service passes ``<data>/checkpoints/<key>.jsonl``)
    becomes the per-point campaign checkpoint *directory* — one JSONL
    per design point under it — overriding ``request.checkpoint_dir``.
    ``coordinator`` is accepted for kind-capability uniformity but
    unused: the autotuner's unit of distribution is a whole point, not
    a campaign shard, and per-point sub-campaigns would collide on the
    fabric's ``(scheme, shard index)`` lease keys.  ``should_abort`` is
    polled between point batches; completed points stay cached.
    """
    from repro.autotune import (
        PointTask,
        expand_grid,
        explore,
        pareto_front,
        resolve_objectives,
    )

    del tracer, registry, coordinator  # unused; uniform executor surface
    eng = _engine(engine)
    points = expand_grid(
        request.benchmarks,
        request.schemes,
        request.codecs,
        request.intervals,
        request.ecc_entries,
        request.write_buffers,
        request.variants,
        request.scenarios,
    )
    specs = resolve_objectives(request.objectives)
    checkpoint_dir = request.checkpoint_dir
    if checkpoint:
        base = checkpoint
        if base.endswith(".jsonl"):
            base = base[: -len(".jsonl")]
        checkpoint_dir = base
    tasks = [
        PointTask(
            point=point,
            trials=request.trials,
            trials_per_shard=request.trials_per_shard,
            kernel=request.kernel,
            seed=request.seed,
            refs=request.refs,
            warmup=request.warmup,
            insts=request.insts,
            double_bit_fraction=request.double_bit_fraction,
            raw_fit=request.raw_fit,
            n_lines=request.n_lines,
            measure_ipc="ipc" in request.objectives,
        )
        for point in points
    ]
    metrics, executed, cached = explore(
        tasks,
        engine=eng,
        progress=progress,
        should_abort=should_abort,
        checkpoint_dir=checkpoint_dir,
    )

    intervals = [
        {spec.name: spec.interval(m) for spec in specs} for m in metrics
    ]
    fronts: Dict[str, Tuple[int, ...]] = {}
    on_front = set()
    for benchmark in request.benchmarks:
        indices = [
            i for i, m in enumerate(metrics)
            if m.point.benchmark == benchmark
        ]
        local = pareto_front(
            [intervals[i] for i in indices], list(request.objectives)
        )
        fronts[benchmark] = tuple(indices[i] for i in local)
        on_front.update(fronts[benchmark])

    docs = tuple(
        {
            **m.point.describe(),
            "label": m.point.label,
            "trials": m.trials,
            "dirty_pct": m.dirty_pct,
            "objectives": m.objective_doc(specs),
            "on_front": i in on_front,
        }
        for i, m in enumerate(metrics)
    )
    return AutotuneResponse(
        request=request,
        objectives=tuple(request.objectives),
        points=docs,
        fronts=fronts,
        executed=executed,
        cached=cached,
        metrics=tuple(metrics),
    )


# -- recommend ----------------------------------------------------------------


def recommend(
    request: RecommendRequest,
    engine: Optional[SweepEngine] = None,
    tracer=None,
    registry=None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    checkpoint: Optional[str] = None,
    coordinator=None,
    should_abort: Optional[Callable[[], bool]] = None,
) -> RecommendResponse:
    """Explore the grid, then pick a budget-feasible front point.

    Per benchmark: the front point with minimum area among those whose
    FIT Wilson 95% upper bound clears ``fit_budget`` and whose storage
    clears ``area_budget`` (:mod:`repro.autotune.recommend`).  Any
    benchmark without a feasible point raises :class:`ReproError`
    quoting the best achievable numbers.
    """
    from repro.autotune import recommend as select

    response = autotune(
        request,
        engine=engine,
        tracer=tracer,
        registry=registry,
        progress=progress,
        checkpoint=checkpoint,
        coordinator=coordinator,
        should_abort=should_abort,
    )
    choices: Dict[str, Dict[str, Any]] = {}
    infeasible = []
    for benchmark in request.benchmarks:
        chosen, best = select(
            response.metrics,
            response.fronts[benchmark],
            fit_budget=request.fit_budget,
            area_budget=request.area_budget,
        )
        if chosen is None:
            infeasible.append(
                f"{benchmark}: best achievable FIT (95% upper bound) "
                f"{best.get('min_fit_hi', float('nan')):.1f}, "
                f"smallest area {best.get('min_area_kib', float('nan')):.1f}"
                " KiB"
            )
            continue
        choices[benchmark] = {
            "index": chosen,
            "point": dict(response.points[chosen]),
            "fit_budget": request.fit_budget,
            "area_budget": request.area_budget,
        }
    if infeasible:
        raise ReproError(
            "no design point satisfies the stated budgets — "
            + "; ".join(infeasible)
        )
    return RecommendResponse(
        request=request, autotune=response, choices=choices
    )


# -- the registry -------------------------------------------------------------

register_kind("run", RunRequest, run, engine=True)
register_kind("ipc", IpcRequest, ipc, engine=True)
register_kind("area", AreaRequest, area)
register_kind("inject", InjectRequest, inject)
register_kind("figures", FiguresRequest, figures, engine=True)
register_kind("ablate", AblateRequest, ablate, engine=True)
register_kind(
    "reliability", ReliabilityRequest, reliability, engine=True,
    campaign=True,
)
# campaign=True gives autotune/recommend the service's checkpoint path
# and cooperative-abort hook; their executors ignore the fabric
# coordinator by design (see the autotune docstring).
register_kind(
    "autotune", AutotuneRequest, autotune, engine=True, campaign=True,
)
register_kind(
    "recommend", RecommendRequest, recommend, engine=True, campaign=True,
    example={"fit_budget": 1000.0},
)


__all__ = [
    "CAMPAIGN_KINDS",
    "ENGINE_KINDS",
    "EXAMPLE_KWARGS",
    "KINDS",
    "SCHEMA",
    "ablate",
    "area",
    "autotune",
    "default_doc",
    "execute",
    "figures",
    "inject",
    "ipc",
    "kind_enums",
    "recommend",
    "register_kind",
    "reliability",
    "request_key",
    "run",
]
