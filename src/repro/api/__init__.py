"""Typed facade over the experiment and campaign engines.

Every operation the CLI exposes — single runs, IPC comparisons, the
area accounting, figure regeneration, ablations, codec injection and
Monte Carlo reliability campaigns — is callable here as a pure
function: a **frozen request dataclass in, a result dataclass out, no
printing**.  The CLI (:mod:`repro.cli`), the job service
(:mod:`repro.service`) and the tests all consume this one layer, so a
number rendered in a terminal table, returned over HTTP and asserted in
a test is computed by the same code path.

The package splits along the wire protocol's own joints —

* :mod:`repro.api.requests` — frozen request dataclasses (JSON
  primitives in, :func:`request_from_dict` round-trip, every invalid
  input a :class:`ReproError`);
* :mod:`repro.api.responses` — response dataclasses with ``as_dict()``
  (the single serialization path shared by ``--format json`` and the
  service), plus :func:`campaign_doc`;
* :mod:`repro.api.dispatch` — the executors, the
  :func:`register_kind` request-kind registry behind :func:`execute`,
  :func:`request_key` content addressing and the wire :data:`SCHEMA`
  tag.

The full surface re-exports here: ``from repro import api`` and every
``api.RunRequest``-style attribute keep working unchanged.
"""

from repro.api.dispatch import (
    CAMPAIGN_KINDS,
    ENGINE_KINDS,
    EXAMPLE_KWARGS,
    KINDS,
    SCHEMA,
    ablate,
    area,
    autotune,
    default_doc,
    execute,
    figures,
    inject,
    ipc,
    recommend,
    register_kind,
    reliability,
    request_key,
    run,
)
from repro.api.requests import (
    ABLATIONS,
    AblateRequest,
    AreaRequest,
    AutotuneRequest,
    FIGURE_CHOICES,
    FiguresRequest,
    InjectRequest,
    IpcRequest,
    RecommendRequest,
    ReliabilityRequest,
    ReproError,
    RunRequest,
    request_from_dict,
)
from repro.api.responses import (
    AblateResponse,
    AreaResponse,
    AutotuneResponse,
    FigureSection,
    FiguresResponse,
    InjectResponse,
    IpcResponse,
    RecommendResponse,
    ReliabilityResponse,
    RunResponse,
    campaign_doc,
)

__all__ = [
    "ABLATIONS",
    "AblateRequest",
    "AblateResponse",
    "AreaRequest",
    "AreaResponse",
    "AutotuneRequest",
    "AutotuneResponse",
    "CAMPAIGN_KINDS",
    "ENGINE_KINDS",
    "EXAMPLE_KWARGS",
    "FIGURE_CHOICES",
    "FigureSection",
    "FiguresRequest",
    "FiguresResponse",
    "InjectRequest",
    "InjectResponse",
    "IpcRequest",
    "IpcResponse",
    "KINDS",
    "RecommendRequest",
    "RecommendResponse",
    "ReliabilityRequest",
    "ReliabilityResponse",
    "ReproError",
    "RunRequest",
    "RunResponse",
    "SCHEMA",
    "ablate",
    "area",
    "autotune",
    "campaign_doc",
    "execute",
    "figures",
    "inject",
    "ipc",
    "recommend",
    "default_doc",
    "register_kind",
    "reliability",
    "request_from_dict",
    "request_key",
    "run",
]
