"""Request dataclasses: the facade's (and the wire's) input surface.

Every operation the CLI and the job service expose is described by a
**frozen dataclass** whose fields are JSON primitives (ints, floats,
strings, tuples), so a request round-trips through
:func:`request_from_dict` / ``as_dict`` unchanged — that is the
service's wire format.  Invalid inputs raise :class:`ReproError`,
never a bare traceback; the CLI maps it to exit code 2 and the service
to an HTTP 400.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.protected_cache import ProtectionConfig
from repro.experiments.runner import RunConfig


class ReproError(Exception):
    """A request that cannot be executed (bad input, missing file).

    The facade's contract is that *invalid inputs* surface as this
    single exception type — the CLI turns it into exit code 2 on
    stderr, the service into an HTTP 400 — while genuine bugs still
    raise whatever they raise.
    """


def _as_dict(obj: Any) -> Any:
    """JSON-able view of a (possibly nested) dataclass."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _as_dict(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): _as_dict(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_as_dict(v) for v in obj]
    if isinstance(obj, float) and obj != obj:  # NaN: JSON-hostile
        return None
    return obj


def request_from_dict(cls: type, payload: Mapping[str, Any]) -> Any:
    """Build a request dataclass from a plain dict (the wire format).

    Unknown fields are a :class:`ReproError` — a misspelled option must
    fail loudly, not silently fall back to a default.  Lists arriving
    from JSON are converted to the tuples the frozen dataclasses carry.
    """
    if not isinstance(payload, Mapping):
        raise ReproError(f"{cls.__name__} payload must be an object")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - names)
    if unknown:
        raise ReproError(
            f"unknown {cls.__name__} field(s): {', '.join(unknown)}"
        )
    kwargs = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in payload.items()
    }
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as err:
        raise ReproError(f"bad {cls.__name__}: {err}") from None


def _run_config(refs: int, warmup: int, seed: int) -> RunConfig:
    if refs < 1 or warmup < 0:
        raise ReproError("refs must be positive and warmup non-negative")
    return RunConfig(n_refs=refs, warmup_refs=warmup, seed=seed)


def _benchmark(name: str) -> str:
    from repro.workloads import get_benchmark

    try:
        get_benchmark(name)
    except ValueError as err:
        raise ReproError(str(err)) from None
    return name


def _variant(name: str) -> str:
    from repro.core.policy import available_variants

    if name not in available_variants():
        raise ReproError(
            f"unknown variant {name!r}; "
            f"available variants: {', '.join(available_variants())}"
        )
    return name


# -- run ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunRequest:
    """One reference-mode run of a benchmark or trace file."""

    benchmark: str = "mesa"
    #: Path of a trace file to replay instead of ``benchmark``.
    trace: Optional[str] = None
    #: Cleaning interval in paper-nominal cycles; None disables cleaning.
    interval: Optional[int] = 1 << 20
    #: Shared ECC entries per set; None means unconstrained.
    ecc_entries: Optional[int] = 1
    refs: int = 60_000
    warmup: int = 20_000
    seed: int = 0
    #: Policy variant (:func:`repro.core.policy.available_variants`).
    variant: str = "standard"

    def __post_init__(self) -> None:
        _variant(self.variant)

    def protection_config(self) -> Optional[ProtectionConfig]:
        if self.interval is None and self.ecc_entries is None:
            return None
        return ProtectionConfig(
            cleaning_interval=self.interval,
            ecc_entries_per_set=self.ecc_entries,
        )

    def run_config(self) -> RunConfig:
        return _run_config(self.refs, self.warmup, self.seed)

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


# -- ipc ----------------------------------------------------------------------


@dataclass(frozen=True)
class IpcRequest:
    """Org-vs-ours IPC comparison of one benchmark."""

    benchmark: str = "mesa"
    insts: int = 120_000
    interval: Optional[int] = 1 << 20
    ecc_entries: Optional[int] = 1
    refs: int = 60_000
    warmup: int = 20_000
    seed: int = 0
    #: Policy variant (:func:`repro.core.policy.available_variants`).
    variant: str = "standard"

    def __post_init__(self) -> None:
        _variant(self.variant)

    def protection_config(self) -> Optional[ProtectionConfig]:
        if self.interval is None and self.ecc_entries is None:
            return None
        return ProtectionConfig(
            cleaning_interval=self.interval,
            ecc_entries_per_set=self.ecc_entries,
        )

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


# -- area ---------------------------------------------------------------------


@dataclass(frozen=True)
class AreaRequest:
    """The Section 5.2 protection-area accounting."""

    ecc_entries: int = 1

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


# -- inject -------------------------------------------------------------------


@dataclass(frozen=True)
class InjectRequest:
    """A codec-level fault-injection campaign.

    ``codec`` is any name in the :mod:`repro.ecc` registry, so codes
    added via :func:`repro.ecc.register_codec` are immediately
    injectable without touching this layer.
    """

    codec: str = "secded"
    trials: int = 1000
    flips: int = 1
    seed: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


# -- figures ------------------------------------------------------------------

FIGURE_CHOICES = (
    "all", "table1", "1", "3", "4", "5", "6", "7", "8", "ipc", "area",
)


@dataclass(frozen=True)
class FiguresRequest:
    """Regenerate one (or all) of the paper's figures and tables."""

    fig: str = "all"
    refs: int = 60_000
    warmup: int = 20_000
    seed: int = 0
    ecc_area_entries: int = 1

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


# -- ablate -------------------------------------------------------------------

#: Study name -> repro.experiments driver attribute.
ABLATIONS: Dict[str, str] = {
    "ecc-entries": "ablate_ecc_entries",
    "best-interval": "ablate_best_interval",
    "eager": "ablate_eager_writeback",
    "written-bit": "ablate_written_bit",
    "decay": "ablate_cleaning_policy",
    "replacement": "ablate_replacement",
    "write-buffer": "ablate_write_buffer",
    "cache-size": "ablate_cache_size",
    "energy": "ablate_energy",
}


@dataclass(frozen=True)
class AblateRequest:
    """Run one ablation study."""

    study: str = "best-interval"
    benchmarks: Optional[Tuple[str, ...]] = None
    refs: int = 60_000
    warmup: int = 20_000
    seed: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


# -- reliability --------------------------------------------------------------


@dataclass(frozen=True)
class ReliabilityRequest:
    """A Monte Carlo fault-injection campaign across schemes.

    ``trials=None`` is the CLI's ``--trials auto``: run until the
    Wilson half-width ``target`` is met on ``metric``.  ``benchmark``
    substitutes measured per-scheme dirty fractions for the paper's
    averages (``refs``/``warmup``/``seed`` shape that measurement run).
    ``checkpoint`` names a JSONL file completed shards persist to; the
    service fills it in automatically so campaigns survive restarts.
    ``scenario`` picks a correlated-fault scenario pack and ``codec``
    the code in the ECC slot (``repro.reliability.scenarios`` /
    ``docs/codecs.md``); both flow into the checkpoint digest when
    non-default.
    """

    schemes: Tuple[str, ...] = ("uniform-ecc", "non-uniform")
    trials: Optional[int] = None
    target: float = 0.01
    metric: str = "sdc"
    trials_per_shard: int = 500
    shards_per_round: int = 8
    max_trials: int = 1_000_000
    kernel: str = "batch"
    seed: int = 0
    double_bit_fraction: float = 0.05
    raw_fit: float = 1000.0
    n_lines: int = 16384
    benchmark: Optional[str] = None
    refs: int = 60_000
    warmup: int = 20_000
    checkpoint: Optional[str] = None
    scenario: str = "nominal"
    codec: str = "secded"
    #: Policy variant for the dirty-fraction measurement run.
    variant: str = "standard"

    def __post_init__(self) -> None:
        # Validate kernel, scenario and codec at request-construction
        # time: the CLI surfaces these as `error:` + exit 2 and the job
        # service as a 400 at POST /v1/jobs — not as a worker-side
        # failure after the job was accepted.  Each error enumerates
        # the valid values.
        from repro.reliability.campaign import KERNELS

        if self.kernel not in KERNELS:
            raise ReproError(
                f"unknown kernel {self.kernel!r}; "
                f"available backends: {', '.join(KERNELS)}"
            )
        if self.kernel == "vector":
            from repro.reliability.vector import require_numpy

            require_numpy()
        from repro.reliability.scenarios import available_scenarios

        if self.scenario not in available_scenarios():
            raise ReproError(
                f"unknown scenario {self.scenario!r}; "
                f"available scenarios: {', '.join(available_scenarios())}"
            )
        from repro.ecc import available_codecs

        if self.codec not in available_codecs():
            raise ReproError(
                f"unknown codec {self.codec!r}; "
                f"available codecs: {', '.join(available_codecs())}"
            )
        _variant(self.variant)

    def campaign_config(
        self, dirty_fractions: Optional[Mapping[str, float]] = None
    ):
        from repro.reliability import (
            CampaignConfig,
            FaultModelConfig,
            StoppingRule,
        )

        try:
            return CampaignConfig(
                schemes=tuple(self.schemes),
                trials=self.trials,
                trials_per_shard=self.trials_per_shard,
                shards_per_round=self.shards_per_round,
                stopping=StoppingRule(
                    target_half_width=self.target,
                    max_trials=self.max_trials,
                ),
                metric=self.metric,
                seed=self.seed,
                model=FaultModelConfig(
                    double_bit_fraction=self.double_bit_fraction,
                    scenario=self.scenario,
                    ecc_codec=self.codec,
                ),
                dirty_fractions=(
                    dict(dirty_fractions) if dirty_fractions else None
                ),
                raw_fit_per_mbit=self.raw_fit,
                n_lines=self.n_lines,
                kernel=self.kernel,
            )
        except ValueError as err:
            raise ReproError(str(err)) from None

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


# -- autotune -----------------------------------------------------------------


@dataclass(frozen=True)
class AutotuneRequest:
    """A Pareto-front exploration of the design grid.

    The grid is the cross product of the axis tuples (``benchmarks`` ×
    ``schemes`` × ``codecs`` × ``intervals`` × ``ecc_entries`` ×
    ``write_buffers`` × ``variants`` × ``scenarios``), canonicalized
    and de-duplicated by :func:`repro.autotune.expand_grid` — axes that
    do not apply to a scheme collapse, so baseline schemes do not
    multiply the grid.  Each point runs a reference-mode simulation
    plus a fixed-``trials`` campaign; ``objectives`` names the
    quantities the front is computed over
    (:func:`repro.autotune.available_objectives`).  ``checkpoint_dir``
    gives every point a private campaign checkpoint; the service fills
    it in from the job key automatically.
    """

    benchmarks: Tuple[str, ...] = ("mesa",)
    schemes: Tuple[str, ...] = ("non-uniform", "uniform-ecc")
    codecs: Tuple[str, ...] = ("secded", "dected")
    intervals: Tuple[int, ...] = (262144, 1048576)
    ecc_entries: Tuple[int, ...] = (1,)
    write_buffers: Tuple[int, ...] = (16,)
    variants: Tuple[str, ...] = ("standard",)
    scenarios: Tuple[str, ...] = ("nominal",)
    objectives: Tuple[str, ...] = ("area", "fit", "traffic")
    trials: int = 2000
    trials_per_shard: int = 500
    kernel: str = "batch"
    seed: int = 0
    refs: int = 60_000
    warmup: int = 20_000
    #: CPU-mode instructions, used only when ``ipc`` is an objective.
    insts: int = 120_000
    double_bit_fraction: float = 0.05
    raw_fit: float = 1000.0
    n_lines: int = 16384
    checkpoint_dir: Optional[str] = None

    def __post_init__(self) -> None:
        # Same contract as ReliabilityRequest: every axis value is
        # validated at construction time with an enumerating message,
        # so the CLI exits 2 and the service 400s before any work runs.
        from repro.autotune import SCHEMES, available_objectives
        from repro.autotune.pareto import OBJECTIVES
        from repro.ecc import available_codecs
        from repro.reliability.campaign import KERNELS
        from repro.reliability.scenarios import available_scenarios

        for axis, values in (
            ("benchmarks", self.benchmarks),
            ("schemes", self.schemes),
            ("codecs", self.codecs),
            ("intervals", self.intervals),
            ("ecc_entries", self.ecc_entries),
            ("write_buffers", self.write_buffers),
            ("variants", self.variants),
            ("scenarios", self.scenarios),
            ("objectives", self.objectives),
        ):
            if not values:
                raise ReproError(f"{axis} must not be empty")
        for name in self.benchmarks:
            _benchmark(name)
        for scheme in self.schemes:
            if scheme not in SCHEMES:
                raise ReproError(
                    f"unknown scheme {scheme!r}; "
                    f"available schemes: {', '.join(SCHEMES)}"
                )
        for codec in self.codecs:
            if codec not in available_codecs():
                raise ReproError(
                    f"unknown codec {codec!r}; "
                    f"available codecs: {', '.join(available_codecs())}"
                )
        for interval in self.intervals:
            if not isinstance(interval, int) or interval < 1:
                raise ReproError("intervals must be positive cycle counts")
        for entries in self.ecc_entries:
            if not isinstance(entries, int) or entries < 1:
                raise ReproError("ecc_entries must be positive")
        for wb in self.write_buffers:
            if not isinstance(wb, int) or wb < 1:
                raise ReproError("write_buffers must be positive")
        for variant in self.variants:
            _variant(variant)
        for scenario in self.scenarios:
            if scenario not in available_scenarios():
                raise ReproError(
                    f"unknown scenario {scenario!r}; available "
                    f"scenarios: {', '.join(available_scenarios())}"
                )
        for objective in self.objectives:
            if objective not in OBJECTIVES:
                raise ReproError(
                    f"unknown objective {objective!r}; available "
                    f"objectives: {', '.join(available_objectives())}"
                )
        if len(set(self.objectives)) < 2:
            raise ReproError(
                "autotune needs at least two distinct objectives "
                "(a one-objective front is just the minimum)"
            )
        if "ipc" in self.objectives:
            if self.insts < 1:
                raise ReproError("insts must be positive")
        if self.trials < 1:
            raise ReproError("trials must be positive")
        if self.trials_per_shard < 1:
            raise ReproError("trials_per_shard must be positive")
        if self.kernel not in KERNELS:
            raise ReproError(
                f"unknown kernel {self.kernel!r}; "
                f"available backends: {', '.join(KERNELS)}"
            )
        if self.kernel == "vector":
            from repro.reliability.vector import require_numpy

            require_numpy()
        if self.refs < 1 or self.warmup < 0:
            raise ReproError("refs must be positive and warmup non-negative")

    def as_dict(self) -> Dict[str, Any]:
        return _as_dict(self)


# -- recommend ----------------------------------------------------------------


@dataclass(frozen=True)
class RecommendRequest(AutotuneRequest):
    """An autotune exploration plus budget-driven scheme selection.

    Inherits every grid axis; at least one of ``fit_budget`` (total
    failure FIT the Wilson 95% *upper* bound must clear) and
    ``area_budget`` (protection KiB) must be set.  The recommender
    needs ``area`` and ``fit`` among the objectives to rank with.
    """

    fit_budget: Optional[float] = None
    area_budget: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fit_budget is None and self.area_budget is None:
            raise ReproError(
                "recommend needs --fit-budget and/or --area-budget"
            )
        if self.fit_budget is not None and self.fit_budget <= 0:
            raise ReproError("fit_budget must be positive")
        if self.area_budget is not None and self.area_budget <= 0:
            raise ReproError("area_budget must be positive")
        missing = {"area", "fit"} - set(self.objectives)
        if missing:
            raise ReproError(
                "recommend needs the 'area' and 'fit' objectives "
                f"(missing: {', '.join(sorted(missing))})"
            )


__all__ = [
    "ABLATIONS",
    "AblateRequest",
    "AreaRequest",
    "AutotuneRequest",
    "FIGURE_CHOICES",
    "FiguresRequest",
    "InjectRequest",
    "IpcRequest",
    "RecommendRequest",
    "ReliabilityRequest",
    "ReproError",
    "RunRequest",
    "request_from_dict",
]
