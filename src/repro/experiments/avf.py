"""Dirty-data exposure: the scheme's (unquantified-by-the-paper)
reliability *benefit*.

Under both the conventional design and the paper's scheme, dirty data
is protected by SECDED, whose residual failure is a double-bit error in
one protected word while the data is dirty — clean data can always be
refetched (with the controller knowing cleanliness, which the paper's
parity/dirty organisation makes explicit).  The probability of that
residual failure scales with **dirty exposure**: how many line-cycles
of dirty data the cache holds.

The paper's cleaning + ECC-array eviction cut the dirty population by
roughly 2.6× (51.6% → <25%/19.6%), and therefore cut this residual
failure exposure by the same factor — a reliability *improvement* on
top of the area saving.  This module quantifies it:

* :func:`dirty_exposure` — line-cycles of dirty data in a run;
* :func:`expected_uncorrectable` — expected residual (double-bit-in-a-
  word) events, Poisson model over per-word exposure;
* :func:`exposure_comparison` — org vs ours, per benchmark.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.protected_cache import ProtectionConfig
from repro.experiments.runner import RefRunOutput, RunConfig, run_refs
from repro.workloads.spec2000 import BENCHMARKS

#: Bits that must stay consistent per protected word: 64 data + 8 check.
CODEWORD_BITS = 72
WORDS_PER_LINE_DEFAULT = 8  # 64-byte lines


def dirty_exposure(out: RefRunOutput, n_lines: int) -> float:
    """Dirty line-cycles accumulated over the measured window."""
    return out.dirty_fraction * n_lines * out.cycles


def p_double_bit(flip_rate_per_bit_cycle: float, exposure_cycles: float) -> float:
    """P(>=2 flips in one codeword over an exposure), Poisson model.

    ``flip_rate_per_bit_cycle`` is the raw soft-error rate per bit per
    cycle (realistic magnitudes are ~1e-25..1e-20; any value works —
    results are used comparatively).
    """
    if flip_rate_per_bit_cycle < 0 or exposure_cycles < 0:
        raise ValueError("rates and exposures must be non-negative")
    lam = flip_rate_per_bit_cycle * CODEWORD_BITS * exposure_cycles
    return 1.0 - math.exp(-lam) * (1.0 + lam)


def expected_uncorrectable(
    out: RefRunOutput,
    n_lines: int,
    flip_rate_per_bit_cycle: float = 1e-12,
    words_per_line: int = WORDS_PER_LINE_DEFAULT,
) -> float:
    """Expected residual (uncorrectable-on-dirty) events in the run.

    Uses the measured dirty-episode statistics when available (episode
    count × P(double flip | mean episode)); falls back to treating the
    aggregate exposure as one episode per dirty line-lifetime otherwise.
    The default flip rate is deliberately large so expectations are
    numerically visible; only *ratios* between configurations matter.
    """
    exposure = dirty_exposure(out, n_lines)
    if exposure <= 0:
        return 0.0
    mean_episode = out.mean_dirty_episode_cycles
    if not mean_episode or mean_episode <= 0:
        # No episode ever completed (nothing was written back): the
        # open episodes span the whole measured window.
        mean_episode = float(out.cycles)
    episodes = exposure / mean_episode
    per_word = p_double_bit(flip_rate_per_bit_cycle, mean_episode)
    return episodes * words_per_line * per_word


def exposure_comparison(
    config: RunConfig = RunConfig(),
    benchmarks: Optional[List[str]] = None,
    cleaning_interval: int = 1 << 20,
    engine=None,
) -> Dict[str, Dict[str, float]]:
    """Dirty exposure of the conventional vs the protected L2.

    Returns, per benchmark: both exposures (in millions of dirty
    line-cycles), the exposure reduction factor, and the ratio of
    expected residual uncorrectable events.  An optional
    :class:`~repro.experiments.pool.SweepEngine` routes the runs through
    its worker pool and result cache.
    """
    names = benchmarks or sorted(BENCHMARKS)
    n_lines = config.geometry.hierarchy_config().l2.n_lines
    protection = ProtectionConfig(
        cleaning_interval=cleaning_interval, ecc_entries_per_set=1
    )
    run = engine.run_refs if engine is not None else run_refs
    out: Dict[str, Dict[str, float]] = {}
    for name in names:
        org = run(name, None, config)
        ours = run(name, protection, config)
        e_org = dirty_exposure(org, n_lines)
        e_ours = dirty_exposure(ours, n_lines)
        u_org = expected_uncorrectable(org, n_lines)
        u_ours = expected_uncorrectable(ours, n_lines)
        out[name] = {
            "org Mlc": e_org / 1e6,
            "ours Mlc": e_ours / 1e6,
            "exposure x": e_org / e_ours if e_ours > 0 else float("inf"),
            "events x": u_org / u_ours if u_ours > 0 else float("inf"),
        }
    return out
