"""Drivers that regenerate every table and figure of the paper.

Each function returns plain data (dict keyed by benchmark) so tests and
benchmarks can assert on shapes, plus the :mod:`report` helpers render
the paper-style tables.  Figure/Table numbering follows the paper:

* :func:`table1` — baseline processor configuration.
* :func:`figure1` — % dirty L2 lines per cycle, conventional cache.
* :func:`figure3_4` — dirty % vs cleaning interval (FP = Fig 3, INT = Fig 4).
* :func:`figure5_6` — write-back traffic vs interval (FP = Fig 5, INT = Fig 6).
* :func:`figure7` — dirty % under the full scheme (cleaning + shared ECC).
* :func:`figure8` — write-back traffic split WB / Clean-WB / ECC-WB.
* :func:`area_table` — the Section 5.2 54 KB vs 132 KB accounting.
* :func:`ipc_loss` — the Section 5.2 IPC-loss measurement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.hierarchy import default_l2_config
from repro.core.area import (
    AreaBreakdown,
    conventional_overhead,
    proposed_overhead,
    reduction,
)
from repro.core.protected_cache import ProtectionConfig
from repro.cpu.config import ProcessorConfig
from repro.experiments.pool import Cell, SweepEngine
from repro.experiments.runner import (
    RunConfig,
    interval_label,
)
from repro.workloads.spec2000 import (
    BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    BenchmarkSpec,
)

#: The interval the paper selects for its final scheme (Section 5.2).
CHOSEN_INTERVAL = 1 << 20  # 1M cycles (paper-nominal)


def _suite(suite: Optional[str]) -> List[BenchmarkSpec]:
    if suite == "fp":
        return FP_BENCHMARKS
    if suite == "int":
        return INT_BENCHMARKS
    if suite is None:
        return FP_BENCHMARKS + INT_BENCHMARKS
    raise ValueError(f"unknown suite {suite!r}; use 'fp', 'int' or None")


def table1(processor: Optional[ProcessorConfig] = None) -> str:
    """Render the Table 1 baseline-configuration block."""
    return (processor or ProcessorConfig()).describe()


def _engine(engine: Optional[SweepEngine]) -> SweepEngine:
    """Default engine: sequential, uncached — identical to direct runs."""
    return engine if engine is not None else SweepEngine()


def figure1(
    config: RunConfig = RunConfig(),
    engine: Optional[SweepEngine] = None,
) -> Dict[str, float]:
    """Fig. 1: % dirty lines per cycle in the conventional L2, per benchmark.

    The paper reports a 51.6% average with apsi/mesa/gap/parser high.
    """
    specs = _suite(None)
    cells = [Cell(spec.name, None, config) for spec in specs]
    outputs = _engine(engine).run_cells(cells)
    return {
        spec.name: 100.0 * out.dirty_fraction
        for spec, out in zip(specs, outputs)
    }


def interval_sweep(
    suite: str,
    config: RunConfig = RunConfig(),
    engine: Optional[SweepEngine] = None,
) -> Dict[str, Dict[str, "object"]]:
    """The cleaning-interval sweep behind Figures 3–6.

    Runs every benchmark of ``suite`` at each paper-nominal interval
    (cleaning only, no ECC-array constraint) plus the unmodified
    baseline ('org').  Returns {benchmark: {label: RefRunOutput}} so the
    dirty-residency figures (3/4) and the traffic figures (5/6) can both
    be projected from one set of simulations.  All cells of the grid are
    independent, so an ``engine`` with ``jobs > 1`` fans them out.
    """
    grid = config.geometry.paper_intervals
    cells: List[Cell] = []
    slots: List[Tuple[str, str]] = []
    for spec in _suite(suite):
        for paper_interval in grid:
            protection = ProtectionConfig(
                cleaning_interval=paper_interval, ecc_entries_per_set=None
            )
            cells.append(Cell(spec.name, protection, config))
            slots.append((spec.name, interval_label(paper_interval)))
        cells.append(Cell(spec.name, None, config))
        slots.append((spec.name, "org"))
    outputs = _engine(engine).run_cells(cells)
    out: Dict[str, Dict[str, object]] = {}
    for (bench, label), res in zip(slots, outputs):
        out.setdefault(bench, {})[label] = res
    return out


def figure3_4(
    suite: str,
    config: RunConfig = RunConfig(),
    sweep: Optional[Dict[str, Dict[str, "object"]]] = None,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """Figs. 3/4: dirty % per cleaning interval (cleaning only, no ECC array).

    Returns {benchmark: {interval label or 'org': dirty %}}.  Pass a
    precomputed :func:`interval_sweep` to avoid re-simulating.
    """
    sweep = sweep if sweep is not None else interval_sweep(suite, config, engine)
    return {
        bench: {label: 100.0 * res.dirty_fraction for label, res in row.items()}
        for bench, row in sweep.items()
    }


def figure5_6(
    suite: str,
    config: RunConfig = RunConfig(),
    sweep: Optional[Dict[str, Dict[str, "object"]]] = None,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """Figs. 5/6: write-backs as % of all loads/stores, per interval + org."""
    sweep = sweep if sweep is not None else interval_sweep(suite, config, engine)
    return {
        bench: {
            label: 100.0 * res.writeback_fraction for label, res in row.items()
        }
        for bench, row in sweep.items()
    }


def _ours() -> ProtectionConfig:
    """The paper's final configuration: 1M cleaning + 1-entry ECC array."""
    return ProtectionConfig(
        cleaning_interval=CHOSEN_INTERVAL, ecc_entries_per_set=1
    )


def figure7(
    config: RunConfig = RunConfig(),
    engine: Optional[SweepEngine] = None,
) -> Dict[str, float]:
    """Fig. 7: dirty % under the full scheme (the paper sees <25% everywhere)."""
    specs = _suite(None)
    outputs = _engine(engine).run_cells(
        [Cell(spec.name, _ours(), config) for spec in specs]
    )
    return {
        spec.name: 100.0 * out.dirty_fraction
        for spec, out in zip(specs, outputs)
    }


def figure8(
    config: RunConfig = RunConfig(),
    engine: Optional[SweepEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 8: write-back % split into WB / Clean-WB / ECC-WB, plus total."""
    specs = _suite(None)
    outputs = _engine(engine).run_cells(
        [Cell(spec.name, _ours(), config) for spec in specs]
    )
    out: Dict[str, Dict[str, float]] = {}
    for spec, res in zip(specs, outputs):
        row = {k: 100.0 * v for k, v in res.writeback_split.items()}
        row["total"] = 100.0 * res.writeback_fraction
        out[spec.name] = row
    return out


def area_table(
    ecc_entries_per_set: int = 1,
) -> Tuple[AreaBreakdown, AreaBreakdown, float]:
    """Section 5.2 area accounting on the paper's 1MB/4-way/64B L2.

    Returns (conventional, proposed, fractional reduction ≈ 0.59).
    """
    l2 = default_l2_config()
    conv = conventional_overhead(l2)
    ours = proposed_overhead(l2, ecc_entries_per_set=ecc_entries_per_set)
    return conv, ours, reduction(conv, ours)


def ipc_loss(
    config: RunConfig = RunConfig(),
    suite: Optional[str] = None,
    n_insts: Optional[int] = None,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """Section 5.2: IPC of org vs ours and the % loss, per benchmark.

    The paper reports 0.14% (FP) / 0.65% (INT) average loss.
    """
    specs = _suite(suite)
    cells: List[Cell] = []
    for spec in specs:
        cells.append(Cell(spec.name, None, config, mode="ipc", n_insts=n_insts))
        cells.append(
            Cell(spec.name, _ours(), config, mode="ipc", n_insts=n_insts)
        )
    outputs = _engine(engine).run_cells(cells)
    out: Dict[str, Dict[str, float]] = {}
    for spec, org, ours in zip(specs, outputs[0::2], outputs[1::2]):
        loss = (
            100.0 * (org.ipc - ours.ipc) / org.ipc if org.ipc > 0 else 0.0
        )
        out[spec.name] = {
            "IPC org": org.ipc,
            "IPC ours": ours.ipc,
            "loss %": loss,
        }
    return out
