"""Experiment harness: regenerates every table and figure of the paper.

:mod:`repro.experiments.runner` runs one benchmark under one protection
configuration (fast reference-stream mode for residency/traffic figures,
full CPU mode for IPC); :mod:`repro.experiments.figures` sweeps the
paper's parameter grids; :mod:`repro.experiments.report` renders the
paper-style tables.
"""

from repro.experiments.runner import (
    PAPER_GEOMETRY,
    SCALED_GEOMETRY,
    Geometry,
    IpcRunOutput,
    RefRunOutput,
    RunConfig,
    build_l2,
    run_ipc,
    run_refs,
    run_trace,
)
from repro.experiments.figures import (
    area_table,
    figure1,
    figure3_4,
    figure5_6,
    figure7,
    figure8,
    interval_sweep,
    ipc_loss,
    table1,
)
from repro.experiments.ablations import (
    ablate_best_interval,
    ablate_bus_width,
    ablate_cache_size,
    ablate_cleaning_policy,
    ablate_eager_writeback,
    ablate_ecc_entries,
    ablate_energy,
    ablate_replacement,
    ablate_write_buffer,
    ablate_written_bit,
)
from repro.experiments.related import (
    CoveragePoint,
    icr_coverage,
    kim_somani_coverage,
    related_work_table,
)
from repro.experiments.reliability import (
    ReliabilityConfig,
    ReliabilityResult,
    benchmark_campaigns,
    compare_policies,
    measured_dirty_fractions,
    reliability_campaign,
)
from repro.experiments.avf import (
    dirty_exposure,
    expected_uncorrectable,
    exposure_comparison,
    p_double_bit,
)
from repro.experiments.export import (
    config_metadata,
    load_json,
    regenerate_all,
    save_json,
)
from repro.experiments.pool import (
    Cell,
    ResultCache,
    SweepEngine,
    SweepStats,
    cell_key,
    code_version,
)
from repro.experiments.report import (
    render_bars,
    render_campaign,
    render_campaign_comparison,
    render_series,
    render_table,
)
from repro.experiments.stats import (
    SeedStats,
    dirty_fraction_stats,
    multi_seed,
    summarize,
    writeback_fraction_stats,
)

__all__ = [
    "Cell",
    "Geometry",
    "ResultCache",
    "SweepEngine",
    "SweepStats",
    "cell_key",
    "code_version",
    "ReliabilityConfig",
    "ReliabilityResult",
    "ablate_best_interval",
    "ablate_bus_width",
    "ablate_cache_size",
    "ablate_cleaning_policy",
    "ablate_eager_writeback",
    "ablate_ecc_entries",
    "ablate_energy",
    "ablate_replacement",
    "ablate_write_buffer",
    "ablate_written_bit",
    "CoveragePoint",
    "benchmark_campaigns",
    "compare_policies",
    "measured_dirty_fractions",
    "render_campaign",
    "render_campaign_comparison",
    "config_metadata",
    "icr_coverage",
    "kim_somani_coverage",
    "related_work_table",
    "load_json",
    "regenerate_all",
    "reliability_campaign",
    "save_json",
    "IpcRunOutput",
    "PAPER_GEOMETRY",
    "RefRunOutput",
    "RunConfig",
    "SCALED_GEOMETRY",
    "SeedStats",
    "dirty_exposure",
    "dirty_fraction_stats",
    "expected_uncorrectable",
    "exposure_comparison",
    "multi_seed",
    "p_double_bit",
    "render_bars",
    "summarize",
    "writeback_fraction_stats",
    "area_table",
    "build_l2",
    "figure1",
    "figure3_4",
    "figure5_6",
    "figure7",
    "figure8",
    "interval_sweep",
    "ipc_loss",
    "render_series",
    "render_table",
    "run_ipc",
    "run_refs",
    "run_trace",
    "table1",
]
