"""Multi-seed statistics for experiment robustness.

The synthetic workloads are seeded; any headline number should be
quoted with its across-seed spread.  :func:`multi_seed` reruns a
metric over several seeds and returns mean, sample standard deviation
and a normal-approximation confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from repro.core.protected_cache import ProtectionConfig
from repro.experiments.runner import RefRunOutput, RunConfig, run_refs


@dataclass(frozen=True)
class SeedStats:
    """Across-seed summary of one scalar metric."""

    values: tuple
    mean: float
    std: float
    #: Half-width of the ~95% normal-approximation confidence interval.
    ci95: float

    @property
    def n(self) -> int:
        return len(self.values)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} ± {self.ci95:.3f} (n={self.n})"


def summarize(values: Sequence[float]) -> SeedStats:
    """Mean / sample std / 95% CI of a sample."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(var)
        ci95 = 1.96 * std / math.sqrt(n)
    else:
        std, ci95 = 0.0, float("inf")
    return SeedStats(values=tuple(values), mean=mean, std=std, ci95=ci95)


def multi_seed(
    metric: Callable[[RefRunOutput], float],
    benchmark: str,
    protection: Optional[ProtectionConfig],
    config: RunConfig = RunConfig(),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> SeedStats:
    """Rerun ``benchmark`` over ``seeds``; summarise ``metric``.

    ``metric`` maps a :class:`RefRunOutput` to the scalar of interest,
    e.g. ``lambda out: out.dirty_fraction``.
    """
    values: List[float] = []
    for seed in seeds:
        out = run_refs(benchmark, protection, replace(config, seed=seed))
        values.append(metric(out))
    return summarize(values)


def dirty_fraction_stats(
    benchmark: str,
    protection: Optional[ProtectionConfig] = None,
    config: RunConfig = RunConfig(),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> SeedStats:
    """Across-seed dirty-residency statistics (the Figure 1/7 metric)."""
    return multi_seed(
        lambda out: out.dirty_fraction, benchmark, protection, config, seeds
    )


def writeback_fraction_stats(
    benchmark: str,
    protection: Optional[ProtectionConfig] = None,
    config: RunConfig = RunConfig(),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> SeedStats:
    """Across-seed write-back-traffic statistics (the Figure 5/6/8 metric)."""
    return multi_seed(
        lambda out: out.writeback_fraction, benchmark, protection, config,
        seeds,
    )
