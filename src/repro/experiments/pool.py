"""Parallel sweep engine with a content-addressed on-disk result cache.

The paper's evaluation is a large grid of *independent* simulations —
benchmark × cleaning interval × protection configuration for Figures
1/3–8 plus the ablations.  Every cell of that grid is a pure function of
its inputs (the synthetic workloads are seeded, the simulator has no
global state), so the grid can be

* **fanned out** over a :mod:`multiprocessing` pool (``jobs > 1``), and
* **memoised** on disk, keyed by a content hash of everything the cell
  depends on: geometry, protection knobs, workload, run configuration,
  simulation variant, and a hash of the simulator's own source code, so
  a code change invalidates every cached result automatically.

Determinism: a :class:`Cell` carries its seed inside its
:class:`~repro.experiments.runner.RunConfig` and each worker builds a
private hierarchy from scratch, so results are bit-for-bit identical
whatever the worker count or completion order — the pool reassembles
outputs by submission index, never by arrival.

Typical use::

    engine = SweepEngine(jobs=4, cache=True, progress=True)
    sweep = interval_sweep("fp", config, engine=engine)
    print(engine.summary())     # cells run / cached, wall time, refs/s
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.policy import get_variant
from repro.core.protected_cache import ProtectionConfig
from repro.experiments.runner import (
    RunConfig,
    run_ipc,
    run_refs_with_hierarchy,
)
from repro.telemetry.profiling import PhaseProfiler


@dataclass(frozen=True)
class Cell:
    """One independent simulation of the evaluation grid.

    ``protection.cleaning_interval`` is paper-nominal, exactly as the
    figure drivers pass it to :func:`~repro.experiments.runner.run_refs`.
    ``variant`` selects the L2 under test — any name in the variant
    registry (:func:`repro.core.policy.available_variants`);
    ``n_insts`` applies to ``mode="ipc"`` only.
    """

    benchmark: str
    protection: Optional[ProtectionConfig]
    config: RunConfig
    mode: str = "refs"  # "refs" | "ipc"
    variant: str = "standard"
    n_insts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in ("refs", "ipc"):
            raise ValueError(f"unknown cell mode {self.mode!r}")
        get_variant(self.variant)  # enumerating ValueError when unknown

    @property
    def label(self) -> str:
        parts = [self.benchmark]
        if self.protection is None:
            parts.append("org")
        else:
            parts.append(
                f"i={self.protection.cleaning_interval}"
                f"/e={self.protection.ecc_entries_per_set}"
            )
        if self.variant != "standard":
            parts.append(self.variant)
        if self.mode != "refs":
            parts.append(self.mode)
        return ":".join(parts)

    def describe(self) -> Dict[str, Any]:
        """Canonical JSON-able view of everything the result depends on."""
        geometry = self.config.geometry
        return {
            "benchmark": self.benchmark,
            "mode": self.mode,
            "variant": self.variant,
            "n_insts": self.n_insts,
            "protection": (
                None
                if self.protection is None
                else {
                    "cleaning_interval": self.protection.cleaning_interval,
                    "ecc_entries_per_set": self.protection.ecc_entries_per_set,
                }
            ),
            "run": {
                "n_refs": self.config.n_refs,
                "warmup_refs": self.config.warmup_refs,
                "seed": self.config.seed,
            },
            "geometry": {
                "name": geometry.name,
                "l1_bytes": geometry.l1_bytes,
                "l2_bytes": geometry.l2_bytes,
                "interval_scale": geometry.interval_scale,
                "paper_intervals": list(geometry.paper_intervals),
                "write_buffer_entries": geometry.write_buffer_entries,
            },
        }


# -- code-version fingerprint -------------------------------------------------

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro`` source file (memoised per process).

    Folding this into every cache key means any edit to the simulator —
    cache model, workloads, CPU, experiment runner — invalidates all
    cached results, so the cache can never serve numbers produced by a
    different version of the code.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


def cell_key(cell: Cell, version: Optional[str] = None) -> str:
    """Content-addressed cache key of one cell."""
    payload = {
        "cell": cell.describe(),
        "code": version if version is not None else code_version(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -- the on-disk result cache -------------------------------------------------

def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sweeps"


class ResultCache:
    """Pickle-per-key store under one directory, sharded by key prefix."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.directory.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """The cached result for ``key``, or None (misses and corrupt
        entries look the same: the cell is simply recomputed)."""
        path = self.path(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def put(self, key: str, value: Any) -> None:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # atomic: concurrent writers can't tear

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for path in self.directory.glob("*/*.pkl"):
            path.unlink(missing_ok=True)
            n += 1
        return n


# -- cell execution (top level so worker processes can pickle it) -------------

def execute_cell(cell: Cell) -> Any:
    """Run one cell to completion; pure function of the cell."""
    if cell.mode == "ipc":
        return run_ipc(
            cell.benchmark, cell.protection, cell.config,
            n_insts=cell.n_insts, variant=cell.variant,
        )
    hierarchy = build_cell_hierarchy(cell)
    return run_refs_with_hierarchy(
        cell.benchmark, hierarchy, cell.config, cell.protection
    )


def build_cell_hierarchy(cell: Cell):
    """The :class:`~repro.cache.hierarchy.MemoryHierarchy` a reference-mode
    cell runs against, for any variant.

    Split out of :func:`execute_cell` so callers that need the hierarchy
    *after* the run — the autotuner's energy accounting reads its event
    counters — can drive :func:`run_refs_with_hierarchy` themselves.
    The L2 under test comes from the variant registry
    (:func:`repro.core.policy.build_variant_l2`); the import is local to
    avoid an import cycle through the registered builders.
    """
    from repro.cache.hierarchy import MemoryHierarchy
    from repro.core.policy import build_variant_l2

    geometry = cell.config.geometry
    l2 = build_variant_l2(
        cell.variant, geometry, cell.protection, seed=cell.config.seed
    )
    return MemoryHierarchy(config=geometry.hierarchy_config(), l2=l2)


def _execute_indexed(item):
    """Pool payload: (index, cell) -> (index, result, worker wall-time)."""
    index, cell = item
    t0 = time.perf_counter()
    output = execute_cell(cell)
    return index, output, time.perf_counter() - t0


def _map_indexed(payload):
    """Pool payload for :meth:`SweepEngine.map_tasks`:
    (func, index, item) -> (index, result, worker wall-time)."""
    func, index, item = payload
    t0 = time.perf_counter()
    output = func(item)
    return index, output, time.perf_counter() - t0


def _work_units(output: Any) -> int:
    """Simulated work of one result, for throughput reporting."""
    refs = getattr(output, "refs", None)
    if refs is not None:
        return int(refs)
    result = getattr(output, "result", None)
    if result is not None:
        return int(getattr(result, "instructions", 0))
    return 0


# -- statistics ---------------------------------------------------------------

@dataclass
class CellRecord:
    """Per-cell accounting surfaced in reports."""

    label: str
    key: str
    wall_s: float
    refs: int
    cached: bool

    @property
    def refs_per_s(self) -> float:
        return self.refs / self.wall_s if self.wall_s > 0 else 0.0


@dataclass
class SweepStats:
    """Aggregate accounting of every cell an engine has run."""

    records: List[CellRecord] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def cells(self) -> int:
        return len(self.records)

    @property
    def cached(self) -> int:
        return sum(1 for r in self.records if r.cached)

    @property
    def executed(self) -> int:
        return self.cells - self.cached

    @property
    def refs(self) -> int:
        return sum(r.refs for r in self.records if not r.cached)

    @property
    def refs_per_s(self) -> float:
        busy = sum(r.wall_s for r in self.records if not r.cached)
        return self.refs / busy if busy > 0 else 0.0

    def summary(self) -> str:
        line = (
            f"sweep: {self.cells} cells "
            f"({self.executed} executed, {self.cached} cached), "
            f"{self.wall_s:.1f}s wall"
        )
        if self.executed:
            line += (
                f", {self.refs} refs at {self.refs_per_s:,.0f} refs/s per worker"
            )
        return line


# -- the engine ---------------------------------------------------------------

class SweepEngine:
    """Runs grids of :class:`Cell` in parallel with result caching.

    ``jobs``
        Worker processes; ``1`` (the default) runs inline in this
        process, which is also the reference for determinism tests.
    ``cache``
        ``None``/``False`` — no caching (the default, so library calls
        behave exactly like direct ``run_refs``); ``True`` — cache under
        :func:`default_cache_dir`; a path or :class:`ResultCache` — use
        that store.
    ``progress``
        Emit a one-line progress ticker to stderr as cells complete.
    ``on_cell``
        Optional callback invoked with each completed
        :class:`CellRecord` (cached hits included) as it lands — the
        hook the job service uses to stream per-cell progress events.
        Called from the submitting thread, never from pool workers.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Union[ResultCache, str, Path, bool, None] = None,
        progress: bool = False,
        on_cell: Optional[Callable[["CellRecord"], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        if cache is None or cache is False:
            self.cache: Optional[ResultCache] = None
        elif cache is True:
            self.cache = ResultCache()
        elif isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.progress = progress
        self.on_cell = on_cell
        self.stats = SweepStats()
        #: Wall-time accounting by engine phase (cache-lookup / execute).
        self.profiler = PhaseProfiler()

    # -- public API --------------------------------------------------------

    def run_cells(self, cells: Sequence[Cell]) -> List[Any]:
        """Run every cell; outputs are returned in submission order."""
        cells = list(cells)
        if not cells:
            return []
        t0 = time.perf_counter()
        version = code_version()
        keys = [cell_key(cell, version) for cell in cells]
        outputs: List[Any] = [None] * len(cells)
        pending: List[int] = []

        hits = 0
        with self.profiler.phase("cache-lookup", events=len(cells)):
            for i, key in enumerate(keys):
                hit = self.cache.get(key) if self.cache is not None else None
                if hit is not None:
                    outputs[i] = hit
                    hits += 1
                    self._record(cells[i], key, 0.0, hit, cached=True)
                    self._tick(hits, len(cells), cells[i], True)
                else:
                    pending.append(i)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                self._run_inline(cells, keys, outputs, pending)
            else:
                self._run_pool(cells, keys, outputs, pending)
        self.stats.wall_s += time.perf_counter() - t0
        self._tick_done()
        return outputs

    def run(self, cell: Cell) -> Any:
        """Run a single cell (through the cache, inline)."""
        return self.run_cells([cell])[0]

    def run_refs(
        self,
        benchmark: str,
        protection: Optional[ProtectionConfig],
        config: RunConfig,
        variant: str = "standard",
    ) -> Any:
        """Drop-in for :func:`repro.experiments.runner.run_refs`."""
        return self.run(Cell(benchmark, protection, config, variant=variant))

    def run_ipc(
        self,
        benchmark: str,
        protection: Optional[ProtectionConfig],
        config: RunConfig,
        n_insts: Optional[int] = None,
        variant: str = "standard",
    ) -> Any:
        """Drop-in for :func:`repro.experiments.runner.run_ipc`."""
        return self.run(
            Cell(
                benchmark, protection, config,
                mode="ipc", n_insts=n_insts, variant=variant,
            )
        )

    def map_tasks(
        self,
        func: Callable[[Any], Any],
        items: Sequence[Any],
        phase: str = "map",
    ) -> List[Any]:
        """Run ``func`` over ``items`` with the engine's worker pool.

        The generic sibling of :meth:`run_cells` for workloads that are
        not simulation cells (e.g. fault-injection shards): same jobs
        semantics (``jobs == 1`` runs inline, the determinism
        reference), results returned in submission order regardless of
        completion order, per-item worker wall time folded into the
        profiler under ``phase``.  No result caching — callers with
        durable state (campaign checkpoints) manage their own.

        ``func`` must be a module-level callable and ``items``
        picklable, so worker processes can receive them.
        """
        items = list(items)
        if not items:
            return []
        t0 = time.perf_counter()
        outputs: List[Any] = [None] * len(items)
        if self.jobs == 1 or len(items) == 1:
            for i, item in enumerate(items):
                t1 = time.perf_counter()
                outputs[i] = func(item)
                self.profiler.add(phase, time.perf_counter() - t1, 1)
        else:
            import multiprocessing

            with multiprocessing.Pool(
                processes=min(self.jobs, len(items))
            ) as pool:
                for i, output, wall in pool.imap_unordered(
                    _map_indexed,
                    [(func, i, item) for i, item in enumerate(items)],
                ):
                    outputs[i] = output
                    self.profiler.add(phase, wall, 1)
        self.stats.wall_s += time.perf_counter() - t0
        return outputs

    def summary(self) -> str:
        """Human-readable accounting of everything run so far."""
        text = self.stats.summary()
        if len(self.profiler):
            text += "\n" + self.profiler.summary()
        return text

    # -- internals ---------------------------------------------------------

    def _run_inline(self, cells, keys, outputs, pending) -> None:
        done = len(cells) - len(pending)
        for i in pending:
            t0 = time.perf_counter()
            output = execute_cell(cells[i])
            wall = time.perf_counter() - t0
            outputs[i] = output
            self._store(keys[i], output)
            self._record(cells[i], keys[i], wall, output, cached=False)
            done += 1
            self._tick(done, len(cells), cells[i], False, wall)

    def _run_pool(self, cells, keys, outputs, pending) -> None:
        import multiprocessing

        done = len(cells) - len(pending)
        with multiprocessing.Pool(processes=min(self.jobs, len(pending))) as pool:
            for i, output, wall in pool.imap_unordered(
                _execute_indexed, [(i, cells[i]) for i in pending]
            ):
                outputs[i] = output
                self._store(keys[i], output)
                self._record(cells[i], keys[i], wall, output, cached=False)
                done += 1
                self._tick(done, len(cells), cells[i], False, wall)

    def _store(self, key: str, output: Any) -> None:
        if self.cache is not None:
            self.cache.put(key, output)

    def _record(self, cell, key, wall, output, cached) -> None:
        refs = _work_units(output)
        if not cached:
            # Worker wall-time: under a pool this sums across processes,
            # so the events/s line reads as per-worker throughput.
            self.profiler.add("execute", wall, refs)
        record = CellRecord(
            label=cell.label,
            key=key,
            wall_s=wall,
            refs=refs,
            cached=cached,
        )
        self.stats.records.append(record)
        if self.on_cell is not None:
            self.on_cell(record)

    def _tick(self, done, total, cell, cached, wall: float = 0.0) -> None:
        if not self.progress:
            return
        status = "cache" if cached else f"{wall:.2f}s"
        sys.stderr.write(f"\r[{done}/{total}] {cell.label} ({status})\033[K")
        sys.stderr.flush()

    def _tick_done(self) -> None:
        if self.progress:
            sys.stderr.write("\n")
            sys.stderr.flush()


__all__ = [
    "Cell",
    "CellRecord",
    "ResultCache",
    "SweepEngine",
    "SweepStats",
    "build_cell_hierarchy",
    "cell_key",
    "code_version",
    "default_cache_dir",
    "execute_cell",
]
