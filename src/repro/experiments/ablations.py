"""Ablation studies over the paper's design choices (DESIGN.md §6).

Four studies the paper motivates but does not evaluate:

* :func:`ablate_ecc_entries` — size of the shared ECC array: the paper
  picks one entry per set; more entries trade area for less ECC-WB
  traffic and a higher dirty-residency cap.
* :func:`ablate_best_interval` — the paper notes "each benchmark will
  have different cleaning interval for best results" but uses a global
  1M; this finds each benchmark's best interval under a traffic budget.
* :func:`ablate_eager_writeback` — Lee et al.'s eager write-back [7] as
  an alternative dirty-line reducer.
* :func:`ablate_written_bit` — the value of the written bit itself:
  cleaning without the second-chance bit (clean any dirty line on
  sweep) versus the paper's design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.cache import AccessResult, CacheConfig, WritebackReason
from repro.cache.energy import EnergyParams, estimate_energy
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.area import proposed_overhead
from repro.core.protected_cache import ProtectedL2, ProtectionConfig
from repro.experiments.pool import Cell, SweepEngine
from repro.experiments.runner import (
    RunConfig,
    interval_label,
    run_refs_with_hierarchy,
)


def _engine(engine: Optional[SweepEngine]) -> SweepEngine:
    """Default engine: sequential, uncached — identical to direct runs."""
    return engine if engine is not None else SweepEngine()
from repro.workloads.spec2000 import BENCHMARKS


@dataclass
class EccEntriesPoint:
    """One point of the ECC-array-size ablation."""

    entries_per_set: int
    area_kib: float
    dirty_pct: float
    ecc_wb_pct: float
    total_wb_pct: float


def ablate_ecc_entries(
    benchmarks: Optional[List[str]] = None,
    entries_grid: tuple = (1, 2, 4),
    config: RunConfig = RunConfig(),
    cleaning_interval: int = 1 << 20,
    engine: Optional[SweepEngine] = None,
) -> List[EccEntriesPoint]:
    """Sweep the shared-ECC-array size, averaged over ``benchmarks``."""
    names = benchmarks or sorted(BENCHMARKS)
    points: List[EccEntriesPoint] = []
    paper_l2 = CacheConfig("l2", 1024 * 1024, 4, 64)
    cells = [
        Cell(
            name,
            ProtectionConfig(
                cleaning_interval=cleaning_interval,
                ecc_entries_per_set=entries,
            ),
            config,
        )
        for entries in entries_grid
        for name in names
    ]
    outputs = iter(_engine(engine).run_cells(cells))
    for entries in entries_grid:
        dirty, ecc_wb, total_wb = 0.0, 0.0, 0.0
        for name in names:
            out = next(outputs)
            dirty += out.dirty_fraction
            ecc_wb += out.writeback_split["ECC-WB"]
            total_wb += out.writeback_fraction
        n = len(names)
        points.append(
            EccEntriesPoint(
                entries_per_set=entries,
                area_kib=proposed_overhead(
                    paper_l2, ecc_entries_per_set=entries
                ).total_kib,
                dirty_pct=100.0 * dirty / n,
                ecc_wb_pct=100.0 * ecc_wb / n,
                total_wb_pct=100.0 * total_wb / n,
            )
        )
    return points


def ablate_best_interval(
    config: RunConfig = RunConfig(),
    traffic_budget_pct: float = 1.0,
    benchmarks: Optional[List[str]] = None,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-benchmark best cleaning interval under a traffic budget.

    Picks, for each benchmark, the smallest interval whose write-back
    traffic stays within ``traffic_budget_pct`` percentage points of the
    uncleaned baseline, and reports it with its dirty residency.
    """
    names = benchmarks or sorted(BENCHMARKS)
    intervals = config.geometry.paper_intervals
    cells: List[Cell] = []
    for name in names:
        cells.append(Cell(name, None, config))
        cells.extend(
            Cell(
                name,
                ProtectionConfig(
                    cleaning_interval=paper_interval, ecc_entries_per_set=None
                ),
                config,
            )
            for paper_interval in intervals
        )
    outputs = iter(_engine(engine).run_cells(cells))
    out: Dict[str, Dict[str, float]] = {}
    for name in names:
        org = next(outputs)
        best_label, best = None, None
        for paper_interval in intervals:
            res = next(outputs)
            over_budget = (
                100.0 * (res.writeback_fraction - org.writeback_fraction)
                > traffic_budget_pct
            )
            if over_budget:
                continue
            if best is None or res.dirty_fraction < best.dirty_fraction:
                best_label, best = interval_label(paper_interval), res
        if best is None:  # every interval blew the budget: take org
            best_label, best = "org", org
        out[name] = {
            "interval": best_label,
            "dirty %": 100.0 * best.dirty_fraction,
            "wb %": 100.0 * best.writeback_fraction,
            "org dirty %": 100.0 * org.dirty_fraction,
        }
    return out


def ablate_eager_writeback(
    config: RunConfig = RunConfig(),
    benchmarks: Optional[List[str]] = None,
    cleaning_interval: int = 1 << 20,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """Eager write-back [7] vs the paper's written-bit cleaning."""
    names = benchmarks or sorted(BENCHMARKS)
    out: Dict[str, Dict[str, float]] = {}
    cells: List[Cell] = []
    for name in names:
        cells.append(Cell(name, None, config, variant="eager"))
        cells.append(
            Cell(
                name,
                ProtectionConfig(
                    cleaning_interval=cleaning_interval,
                    ecc_entries_per_set=None,
                ),
                config,
            )
        )
    outputs = _engine(engine).run_cells(cells)
    for name, eager, cleaned in zip(names, outputs[0::2], outputs[1::2]):
        out[name] = {
            "eager dirty %": 100.0 * eager.dirty_fraction,
            "eager wb %": 100.0 * eager.writeback_fraction,
            "clean dirty %": 100.0 * cleaned.dirty_fraction,
            "clean wb %": 100.0 * cleaned.writeback_fraction,
        }
    return out


def ablate_bus_width(
    config: RunConfig = RunConfig(),
    benchmarks: Optional[List[str]] = None,
    widths: tuple = (4, 8, 16),
    n_insts: int = 60_000,
) -> Dict[str, Dict[str, float]]:
    """IPC cost of the scheme as a function of bus bandwidth.

    The paper's IPC argument is that extra write-backs only contend for
    the off-chip bus.  If so, the loss must shrink as the bus widens
    (fewer beats per transfer) and grow as it narrows — this sweep
    checks that mechanism directly.  Table 1's bus is 8 bytes wide.
    """
    from dataclasses import replace as dc_replace

    from repro.cache.mainmem import MemoryConfig
    from repro.core.protected_cache import ProtectedL2 as _P
    from repro.cpu.ooo import OoOCore
    from repro.workloads.mix import InstructionMixer, MixConfig
    from repro.workloads.spec2000 import get_benchmark, make_ref_stream
    import itertools as _it

    names = benchmarks or ["swim"]
    geometry = config.geometry
    out: Dict[str, Dict[str, float]] = {}
    for name in names:
        row: Dict[str, float] = {}
        for width in widths:
            hier_cfg = dc_replace(
                geometry.hierarchy_config(),
                memory=MemoryConfig(bus_width_bytes=width),
            )
            ipcs = {}
            for label, l2 in (
                ("org", None),
                (
                    "ours",
                    _P(
                        hier_cfg.l2,
                        ProtectionConfig(
                            cleaning_interval=geometry.scaled_interval(
                                1 << 20
                            ),
                            ecc_entries_per_set=1,
                        ),
                        seed=config.seed,
                    ),
                ),
            ):
                hierarchy = MemoryHierarchy(config=hier_cfg, l2=l2)
                spec = get_benchmark(name)
                stream = make_ref_stream(spec, geometry.l2_bytes,
                                         seed=config.seed)
                mixer = InstructionMixer(
                    MixConfig(fp_fraction=0.5 if spec.suite == "fp" else 0.1),
                    seed=config.seed,
                )
                core = OoOCore(hierarchy)
                res = core.run(_it.islice(mixer.expand(stream), n_insts))
                ipcs[label] = res.ipc
            loss = (
                100.0 * (ipcs["org"] - ipcs["ours"]) / ipcs["org"]
                if ipcs["org"]
                else 0.0
            )
            row[f"{width}B loss %"] = loss
        out[name] = row
    return out


def ablate_cleaning_policy(
    config: RunConfig = RunConfig(),
    benchmarks: Optional[List[str]] = None,
    cleaning_interval: int = 1 << 20,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """Written-bit cleaning vs decay-based cleaning [Kaxiras et al., 12].

    Both run without the ECC-array constraint so the comparison isolates
    the cleaning heuristic.  Decay cleans only fully-idle lines, so
    read-hot write-dead lines — which the written bit reclaims — stay
    dirty under decay.
    """
    names = benchmarks or sorted(BENCHMARKS)
    out: Dict[str, Dict[str, float]] = {}
    protection = ProtectionConfig(
        cleaning_interval=cleaning_interval, ecc_entries_per_set=None
    )
    cells: List[Cell] = []
    for name in names:
        cells.append(Cell(name, protection, config))
        cells.append(Cell(name, protection, config, variant="decay"))
    outputs = _engine(engine).run_cells(cells)
    for name, written, decay in zip(names, outputs[0::2], outputs[1::2]):
        out[name] = {
            "written dirty %": 100.0 * written.dirty_fraction,
            "written wb %": 100.0 * written.writeback_fraction,
            "decay dirty %": 100.0 * decay.dirty_fraction,
            "decay wb %": 100.0 * decay.writeback_fraction,
        }
    return out


def ablate_write_buffer(
    config: RunConfig = RunConfig(),
    benchmarks: Optional[List[str]] = None,
    depths: tuple = (1, 4, 16, 64),
) -> Dict[str, Dict[str, float]]:
    """Write-buffer depth sweep (Skadron & Clark [6] design space).

    The paper's baseline uses 16 fully-associative coalescing entries.
    Depth governs how many store blocks can merge before draining to
    the L2 — shallow buffers inflate L2 write traffic and, through it,
    the dirty-line population the protection scheme must manage.
    """
    from dataclasses import replace as dc_replace

    names = benchmarks or sorted(BENCHMARKS)
    out: Dict[str, Dict[str, float]] = {}
    base = config.geometry.hierarchy_config()
    for name in names:
        row: Dict[str, float] = {}
        for depth in depths:
            hier_cfg = dc_replace(base, write_buffer_entries=depth)
            hierarchy = MemoryHierarchy(config=hier_cfg)
            run_refs_with_hierarchy(name, hierarchy, config)
            wb = hierarchy.write_buffer.stats
            stores = wb.stores_seen
            row[f"coalesce@{depth}"] = (
                100.0 * wb.coalesced / stores if stores else 0.0
            )
        out[name] = row
    return out


def ablate_cache_size(
    config: RunConfig = RunConfig(),
    benchmarks: Optional[List[str]] = None,
    scale_factors: tuple = (0.5, 1.0, 2.0),
) -> Dict[str, Dict[str, float]]:
    """Dirty residency as a function of L2 capacity.

    The paper's Figure 1 premise is tied to the 1 MB capacity; this
    sweep shows how the dirty fraction moves when the cache shrinks
    (working sets spill, lines churn) or grows (resident dirty
    populations accumulate).  Working sets stay fixed at the reference
    geometry's scale, as a real machine's programs would.
    """
    from dataclasses import replace as dc_replace

    names = benchmarks or sorted(BENCHMARKS)
    out: Dict[str, Dict[str, float]] = {}
    geometry = config.geometry
    base = geometry.hierarchy_config()
    for name in names:
        row: Dict[str, float] = {}
        for factor in scale_factors:
            size = int(base.l2.size_bytes * factor)
            hier_cfg = dc_replace(base, l2=dc_replace(base.l2,
                                                      size_bytes=size))
            hierarchy = MemoryHierarchy(config=hier_cfg)
            spec_stream_l2 = geometry.l2_bytes  # workload scale unchanged
            from repro.workloads.spec2000 import make_ref_stream, get_benchmark

            stream = make_ref_stream(
                get_benchmark(name), spec_stream_l2, seed=config.seed
            )
            from repro.experiments.runner import run_ref_stream

            res = run_ref_stream(stream, hierarchy, config, label=name)
            row[f"{factor:g}x"] = 100.0 * res.dirty_fraction
        out[name] = row
    return out


def ablate_energy(
    config: RunConfig = RunConfig(),
    benchmarks: Optional[List[str]] = None,
    cleaning_interval: int = 1 << 20,
    params: EnergyParams = EnergyParams(),
) -> Dict[str, Dict[str, float]]:
    """Memory-system energy: conventional vs the paper's scheme.

    Each benchmark runs twice (same workload, same seed).  Reported per
    benchmark: total energy of each scheme in µJ, the protection-logic
    (coding) energy of each, and the net change in percent.  The
    proposed scheme trades less ECC-logic work (most lines only carry
    parity) against extra bus/DRAM energy from its additional
    write-backs — the balance the paper's interval choice manages.
    """
    from repro.core.protected_cache import ProtectionConfig as _PC

    names = benchmarks or sorted(BENCHMARKS)
    out: Dict[str, Dict[str, float]] = {}
    geometry = config.geometry
    for name in names:
        conv_h = MemoryHierarchy(config=geometry.hierarchy_config())
        run_refs_with_hierarchy(name, conv_h, config)
        conv = estimate_energy(conv_h, "conventional", params=params)

        protection = _PC(
            cleaning_interval=geometry.scaled_interval(cleaning_interval),
            ecc_entries_per_set=1,
        )
        from repro.core.protected_cache import ProtectedL2 as _P

        ours_h = MemoryHierarchy(
            config=geometry.hierarchy_config(),
            l2=_P(geometry.hierarchy_config().l2, protection,
                  seed=config.seed),
        )
        ours_out = run_refs_with_hierarchy(name, ours_h, config)
        ours = estimate_energy(
            ours_h, "proposed",
            dirty_fraction=ours_out.dirty_fraction, params=params,
        )

        coding_conv = conv.components["L2 ECC logic"]
        coding_ours = (
            ours.components["L2 ECC logic"]
            + ours.components["L2 parity logic"]
        )
        out[name] = {
            "conv uJ": conv.total_uj,
            "ours uJ": ours.total_uj,
            "conv coding uJ": coding_conv / 1000.0,
            "ours coding uJ": coding_ours / 1000.0,
            "delta %": (
                100.0 * (ours.total_nj - conv.total_nj) / conv.total_nj
                if conv.total_nj
                else 0.0
            ),
        }
    return out


def ablate_replacement(
    config: RunConfig = RunConfig(),
    benchmarks: Optional[List[str]] = None,
    policies: tuple = ("lru", "fifo", "random"),
) -> Dict[str, Dict[str, float]]:
    """L2 replacement-policy sensitivity of the dirty-residency metric.

    The paper assumes LRU.  This checks that its headline observation —
    roughly half the cache dirty, with the same outlier benchmarks — is
    not an artifact of the replacement policy.
    """
    from dataclasses import replace as dc_replace

    names = benchmarks or sorted(BENCHMARKS)
    out: Dict[str, Dict[str, float]] = {}
    base = config.geometry.hierarchy_config()
    for name in names:
        row: Dict[str, float] = {}
        for policy in policies:
            hier_cfg = dc_replace(base, l2=dc_replace(base.l2,
                                                      replacement=policy))
            hierarchy = MemoryHierarchy(config=hier_cfg)
            res = run_refs_with_hierarchy(name, hierarchy, config)
            row[policy] = 100.0 * res.dirty_fraction
        out[name] = row
    return out


class _NoWrittenBitL2(ProtectedL2):
    """Cleaning without the written bit: clean every dirty line on sweep."""

    def advance(self, cycle: int):
        if self.cleaning is None:
            return []
        result = AccessResult(hit=False, is_write=False)
        for set_idx in self.cleaning.due_sets(cycle):
            for way, line in enumerate(self.sets[set_idx]):
                if line.valid and line.dirty:
                    self._writeback_line(
                        set_idx, way, cycle, result, WritebackReason.CLEANING
                    )
        return result.writebacks


def ablate_written_bit(
    config: RunConfig = RunConfig(),
    benchmarks: Optional[List[str]] = None,
    cleaning_interval: int = 1 << 20,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """Quantify what the written bit buys.

    Without it, the sweep writes back every dirty line it visits —
    including lines still being actively written, which immediately
    re-dirty and inflate memory traffic.
    """
    names = benchmarks or sorted(BENCHMARKS)
    out: Dict[str, Dict[str, float]] = {}
    protection = ProtectionConfig(
        cleaning_interval=cleaning_interval, ecc_entries_per_set=None
    )
    cells: List[Cell] = []
    for name in names:
        cells.append(Cell(name, protection, config))
        cells.append(Cell(name, protection, config, variant="no-written-bit"))
    outputs = _engine(engine).run_cells(cells)
    for name, with_bit, without in zip(names, outputs[0::2], outputs[1::2]):
        out[name] = {
            "with dirty %": 100.0 * with_bit.dirty_fraction,
            "with wb %": 100.0 * with_bit.writeback_fraction,
            "without dirty %": 100.0 * without.dirty_fraction,
            "without wb %": 100.0 * without.writeback_fraction,
        }
    return out
