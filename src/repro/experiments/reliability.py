"""End-to-end reliability campaigns over protected lines.

The paper argues its non-uniform scheme keeps dirty data as safe as the
conventional uniformly-ECC cache while clean data, protected only by
parity, is still *recoverable* (refetch).  This module quantifies that
with payload-level fault injection: a population of
:class:`~repro.core.policy.LineProtection` lines goes through
write/clean/read generations while soft errors flip stored bits, and
every read's end-to-end outcome is classified.

Not a figure from the paper — an extension experiment (DESIGN.md §6)
that validates the protection-domain reasoning the paper relies on.

Two layers live here:

* the original single-process event-mix campaign
  (:func:`reliability_campaign` / :func:`compare_policies`), kept for
  its simple, directly-inspectable fault loop; and
* the bridge into :mod:`repro.reliability` — the sharded Monte Carlo
  campaign engine — which replaces assumed dirty fractions with
  *measured* per-benchmark residency (:func:`measured_dirty_fractions`)
  and runs one statistically-stopped campaign per benchmark
  (:func:`benchmark_campaigns`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.policy import (
    LineProtection,
    ProtectionPolicy,
    RecoveryAction,
)
from repro.core.protected_cache import ProtectionConfig
from repro.experiments.runner import RunConfig, run_refs


@dataclass(frozen=True)
class ReliabilityConfig:
    """Shape of one injection campaign."""

    n_lines: int = 64
    n_events: int = 5000
    line_bytes: int = 64
    #: Probability an event is a fault strike (vs. a write/clean/read).
    fault_rate: float = 0.10
    #: Probability a strike flips two bits of the same word (vs. one).
    double_bit_fraction: float = 0.15
    #: Probability a non-fault event is a write (dirtying the line).
    write_fraction: float = 0.3
    #: Probability a non-fault event is a cleaning write-back.
    clean_fraction: float = 0.1
    seed: int = 0


@dataclass
class ReliabilityResult:
    """Outcome counts of one campaign."""

    policy: str
    reads: int = 0
    faults_injected: int = 0
    by_action: Dict[RecoveryAction, int] = field(default_factory=dict)

    def record(self, action: RecoveryAction) -> None:
        self.reads += 1
        self.by_action[action] = self.by_action.get(action, 0) + 1

    def rate(self, action: RecoveryAction) -> float:
        return self.by_action.get(action, 0) / self.reads if self.reads else 0.0

    @property
    def unrecovered_rate(self) -> float:
        """Fraction of reads ending in data loss or silent corruption."""
        return self.rate(RecoveryAction.DATA_LOSS) + self.rate(
            RecoveryAction.SILENT_CORRUPTION
        )


def reliability_campaign(
    policy: ProtectionPolicy, config: ReliabilityConfig = ReliabilityConfig()
) -> ReliabilityResult:
    """Run one campaign of ``config.n_events`` against ``policy``.

    Event mix: fault strikes flip 1 or 2 bits of a random line's stored
    payload; writes dirty lines with fresh data; cleans write dirty
    lines back; the remaining events are reads, whose recovery outcome
    is recorded.
    """
    rng = random.Random(config.seed)
    lines: List[LineProtection] = [
        LineProtection(
            policy,
            bytes(rng.getrandbits(8) for _ in range(config.line_bytes)),
            line_bytes=config.line_bytes,
        )
        for _ in range(config.n_lines)
    ]
    result = ReliabilityResult(policy=policy.name)

    for _ in range(config.n_events):
        line = lines[rng.randrange(config.n_lines)]
        roll = rng.random()
        if roll < config.fault_rate:
            result.faults_injected += 1
            byte_idx = rng.randrange(config.line_bytes)
            line.flip(byte_idx, rng.randrange(8))
            if rng.random() < config.double_bit_fraction:
                # Second flip within the same 64-bit word.
                word_start = (byte_idx // 8) * 8
                line.flip(word_start + rng.randrange(8), rng.randrange(8))
        elif roll < config.fault_rate + config.write_fraction:
            line.write(
                bytes(rng.getrandbits(8) for _ in range(config.line_bytes))
            )
        elif roll < (
            config.fault_rate + config.write_fraction + config.clean_fraction
        ):
            if line.dirty:
                line.clean()
        else:
            action, _ = line.access()
            result.record(action)
    return result


def compare_policies(
    policies: Sequence[ProtectionPolicy],
    config: ReliabilityConfig = ReliabilityConfig(),
) -> Dict[str, ReliabilityResult]:
    """Run the same seeded campaign against each policy."""
    return {p.name: reliability_campaign(p, config) for p in policies}


# -- bridge into the sharded campaign engine -------------------------------


def measured_dirty_fractions(
    benchmark: str,
    config: RunConfig = RunConfig(),
    engine=None,
    cleaning_interval: int = 1 << 20,
    ecc_entries: int = 1,
    variant: str = "standard",
) -> Dict[str, float]:
    """Per-scheme P(struck line is dirty), measured from one benchmark.

    Runs the benchmark twice — unprotected (the conventional cache the
    ``uniform-ecc`` and ``parity-only`` schemes model) and under the
    paper's cleaning + shared-ECC protection (``non-uniform``) — and
    returns each scheme's measured average dirty residency, ready for
    :attr:`repro.reliability.CampaignConfig.dirty_fractions`.

    ``variant`` swaps the protected (non-uniform) run's L2 for a policy
    variant from the registry — e.g. ``silent-write`` lowers the dirty
    residency the campaign conditions on.  The unprotected baseline is
    always the standard cache.

    ``engine`` is an optional :class:`~repro.experiments.pool.SweepEngine`
    so the two runs share its cache and profiler with the campaign that
    follows.
    """
    protection = ProtectionConfig(
        cleaning_interval=cleaning_interval, ecc_entries_per_set=ecc_entries
    )
    if engine is not None:
        org = engine.run_refs(benchmark, None, config)
        ours = engine.run_refs(benchmark, protection, config, variant=variant)
    else:
        org = run_refs(benchmark, None, config)
        ours = run_refs(benchmark, protection, config, variant=variant)
    return {
        "uniform-ecc": org.dirty_fraction,
        "parity-only": org.dirty_fraction,
        "non-uniform": ours.dirty_fraction,
    }


def benchmark_campaigns(
    benchmarks: Sequence[str],
    run_config: RunConfig = RunConfig(),
    campaign_config=None,
    engine=None,
    checkpoint_dir: Optional[str] = None,
):
    """One statistically-stopped campaign per benchmark.

    For each benchmark, measure its dirty fractions
    (:func:`measured_dirty_fractions`), substitute them into
    ``campaign_config``, and run the sharded campaign.  Returns
    ``{benchmark: CampaignResult}`` — the per-benchmark
    conventional-vs-paper comparison EXPERIMENTS.md tabulates.

    ``checkpoint_dir``, when given, holds one resumable JSONL checkpoint
    per benchmark (``<dir>/<benchmark>.jsonl``).
    """
    from pathlib import Path

    from repro.reliability import CampaignConfig, run_campaign

    if campaign_config is None:
        campaign_config = CampaignConfig()
    results = {}
    for name in benchmarks:
        fractions = measured_dirty_fractions(name, run_config, engine=engine)
        cfg = replace(campaign_config, dirty_fractions=fractions)
        checkpoint = (
            str(Path(checkpoint_dir) / f"{name}.jsonl")
            if checkpoint_dir
            else None
        )
        results[name] = run_campaign(cfg, engine=engine, checkpoint=checkpoint)
    return results
