"""End-to-end reliability campaigns over protected lines.

The paper argues its non-uniform scheme keeps dirty data as safe as the
conventional uniformly-ECC cache while clean data, protected only by
parity, is still *recoverable* (refetch).  This module quantifies that
with payload-level fault injection: a population of
:class:`~repro.core.policy.LineProtection` lines goes through
write/clean/read generations while soft errors flip stored bits, and
every read's end-to-end outcome is classified.

Not a figure from the paper — an extension experiment (DESIGN.md §6)
that validates the protection-domain reasoning the paper relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.policy import (
    LineProtection,
    ProtectionPolicy,
    RecoveryAction,
)


@dataclass(frozen=True)
class ReliabilityConfig:
    """Shape of one injection campaign."""

    n_lines: int = 64
    n_events: int = 5000
    line_bytes: int = 64
    #: Probability an event is a fault strike (vs. a write/clean/read).
    fault_rate: float = 0.10
    #: Probability a strike flips two bits of the same word (vs. one).
    double_bit_fraction: float = 0.15
    #: Probability a non-fault event is a write (dirtying the line).
    write_fraction: float = 0.3
    #: Probability a non-fault event is a cleaning write-back.
    clean_fraction: float = 0.1
    seed: int = 0


@dataclass
class ReliabilityResult:
    """Outcome counts of one campaign."""

    policy: str
    reads: int = 0
    faults_injected: int = 0
    by_action: Dict[RecoveryAction, int] = field(default_factory=dict)

    def record(self, action: RecoveryAction) -> None:
        self.reads += 1
        self.by_action[action] = self.by_action.get(action, 0) + 1

    def rate(self, action: RecoveryAction) -> float:
        return self.by_action.get(action, 0) / self.reads if self.reads else 0.0

    @property
    def unrecovered_rate(self) -> float:
        """Fraction of reads ending in data loss or silent corruption."""
        return self.rate(RecoveryAction.DATA_LOSS) + self.rate(
            RecoveryAction.SILENT_CORRUPTION
        )


def reliability_campaign(
    policy: ProtectionPolicy, config: ReliabilityConfig = ReliabilityConfig()
) -> ReliabilityResult:
    """Run one campaign of ``config.n_events`` against ``policy``.

    Event mix: fault strikes flip 1 or 2 bits of a random line's stored
    payload; writes dirty lines with fresh data; cleans write dirty
    lines back; the remaining events are reads, whose recovery outcome
    is recorded.
    """
    rng = random.Random(config.seed)
    lines: List[LineProtection] = [
        LineProtection(
            policy,
            bytes(rng.getrandbits(8) for _ in range(config.line_bytes)),
            line_bytes=config.line_bytes,
        )
        for _ in range(config.n_lines)
    ]
    result = ReliabilityResult(policy=policy.name)

    for _ in range(config.n_events):
        line = lines[rng.randrange(config.n_lines)]
        roll = rng.random()
        if roll < config.fault_rate:
            result.faults_injected += 1
            byte_idx = rng.randrange(config.line_bytes)
            line.flip(byte_idx, rng.randrange(8))
            if rng.random() < config.double_bit_fraction:
                # Second flip within the same 64-bit word.
                word_start = (byte_idx // 8) * 8
                line.flip(word_start + rng.randrange(8), rng.randrange(8))
        elif roll < config.fault_rate + config.write_fraction:
            line.write(
                bytes(rng.getrandbits(8) for _ in range(config.line_bytes))
            )
        elif roll < (
            config.fault_rate + config.write_fraction + config.clean_fraction
        ):
            if line.dirty:
                line.clean()
        else:
            action, _ = line.access()
            result.record(action)
    return result


def compare_policies(
    policies: Sequence[ProtectionPolicy],
    config: ReliabilityConfig = ReliabilityConfig(),
) -> Dict[str, ReliabilityResult]:
    """Run the same seeded campaign against each policy."""
    return {p.name: reliability_campaign(p, config) for p in policies}
