"""Related-work comparison: protection coverage versus area.

The paper positions itself against two prior reliability schemes:

* Kim & Somani [9] protect only frequently-accessed lines — cheap, but
  coverage is whatever locality delivers;
* Zhang et al.'s in-cache replication [10] protects blocks that find a
  dead partner — coverage depends on dead-block availability and costs
  effective capacity;
* the paper's non-uniform scheme protects *every* line (parity
  everywhere, ECC for dirty data) at 59% less area than conventional
  full ECC.

These drivers measure the first two schemes' coverage on the synthetic
suite so the three-way comparison can be tabulated.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.cache import CacheConfig
from repro.core.area import ECC_BITS_PER_WORD
from repro.core.hotlines import coverage_for_stream
from repro.core.icr import IcrCache
from repro.experiments.runner import RunConfig
from repro.workloads.spec2000 import BENCHMARKS, get_benchmark, make_ref_stream


@dataclass
class CoveragePoint:
    """One scheme configuration: its area cost and measured coverage."""

    scheme: str
    detail: str
    area_kib: float
    coverage_pct: float


def hotline_area_kib(entries: int, line_bytes: int = 64) -> float:
    """Storage for [9]'s protection structure: ECC bits + a block tag
    per entry (tag estimated at 32 bits)."""
    words = line_bytes * 8 // 64
    bits_per_entry = words * ECC_BITS_PER_WORD + 32
    return entries * bits_per_entry / 8 / 1024


def kim_somani_coverage(
    benchmark: str,
    entries_grid: tuple = (256, 1024, 4096),
    config: RunConfig = RunConfig(),
) -> List[CoveragePoint]:
    """Coverage of hot-line-only protection for one benchmark."""
    points: List[CoveragePoint] = []
    for entries in entries_grid:
        stream = itertools.islice(
            make_ref_stream(get_benchmark(benchmark),
                            config.geometry.l2_bytes, seed=config.seed),
            config.n_refs,
        )
        stats = coverage_for_stream(stream, entries=entries)
        points.append(
            CoveragePoint(
                scheme="kim-somani",
                detail=f"{entries} entries",
                area_kib=hotline_area_kib(entries),
                coverage_pct=100.0 * stats.coverage,
            )
        )
    return points


def icr_coverage(
    benchmark: str,
    config: RunConfig = RunConfig(),
    dead_interval: Optional[int] = None,
) -> CoveragePoint:
    """Coverage of in-cache replication for one benchmark.

    The ICR cache reuses the experiment geometry's L1D shape; its area
    cost is nominally zero extra storage (replicas live in dead lines)
    but it consumes capacity — reported here as coverage only.
    """
    l1_bytes = config.geometry.l1_bytes
    cache = IcrCache(
        CacheConfig("l1d-icr", l1_bytes, 4, 32),
        dead_interval=dead_interval
        or max(64, config.geometry.scaled_interval(1 << 14)),
    )
    stream = itertools.islice(
        make_ref_stream(get_benchmark(benchmark),
                        config.geometry.l2_bytes, seed=config.seed),
        config.n_refs,
    )
    cycle = 0
    for ref in stream:
        cycle += 1 + ref.gap
        cache.access(ref.addr, ref.is_write, cycle)
    return CoveragePoint(
        scheme="icr",
        detail=f"dead@{cache.dead_interval}",
        area_kib=0.0,
        coverage_pct=100.0 * cache.stats.coverage,
    )


def traffic_energy_comparison(
    benchmarks: Optional[List[str]] = None,
    config: RunConfig = RunConfig(),
    variants: Optional[List[str]] = None,
    cleaning_interval: int = 1 << 20,
    ecc_entries: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Figures 5–8-style comparison of the traffic-aware variants.

    One reference-mode run per ``benchmark × variant`` under the
    paper's protection; rows are ``benchmark/variant`` and the columns
    extend the paper's write-back-traffic figures (5/6/8) with the
    bytes the write-back stream actually put on the bus and the
    memory-system energy of the measured window — the two quantities
    the silent-write and wb-compress variants exist to reduce.

    ``variants`` defaults to ``standard`` plus every registered
    traffic-aware variant (:func:`repro.core.policy.traffic_aware_variants`).
    """
    from repro.cache.energy import estimate_energy
    from repro.cache.hierarchy import MemoryHierarchy
    from repro.core.policy import build_variant_l2, traffic_aware_variants
    from repro.core.protected_cache import ProtectionConfig
    from repro.experiments.runner import run_refs_with_hierarchy

    names = benchmarks or sorted(BENCHMARKS)
    chosen = (
        list(variants) if variants
        else ["standard"] + traffic_aware_variants()
    )
    protection = ProtectionConfig(
        cleaning_interval=cleaning_interval,
        ecc_entries_per_set=ecc_entries,
    )
    out: Dict[str, Dict[str, float]] = {}
    for name in names:
        for variant in chosen:
            l2 = build_variant_l2(
                variant, config.geometry, protection, seed=config.seed
            )
            hierarchy = MemoryHierarchy(
                config=config.geometry.hierarchy_config(), l2=l2
            )
            run = run_refs_with_hierarchy(name, hierarchy, config, protection)
            dirty = min(max(run.dirty_fraction, 0.0), 1.0)
            energy = estimate_energy(hierarchy, "proposed", dirty)
            out[f"{name}/{variant}"] = {
                "traffic %": 100.0 * run.writeback_fraction,
                "dirty %": 100.0 * dirty,
                "WB bytes": float(hierarchy.memory.stats.bytes_written),
                "energy uJ": energy.total_uj,
            }
    return out


def related_work_table(
    benchmarks: Optional[List[str]] = None,
    config: RunConfig = RunConfig(),
) -> Dict[str, Dict[str, float]]:
    """Coverage (% of accesses protected) per scheme, per benchmark.

    The paper's scheme covers 100% of accesses by construction (every
    line carries at least parity, every dirty line full ECC), so its
    column is structural.
    """
    names = benchmarks or sorted(BENCHMARKS)
    out: Dict[str, Dict[str, float]] = {}
    for name in names:
        ks = kim_somani_coverage(name, entries_grid=(1024,), config=config)
        icr = icr_coverage(name, config=config)
        out[name] = {
            "kim-somani@1K": ks[0].coverage_pct,
            "icr": icr.coverage_pct,
            "ours": 100.0,
        }
    return out
