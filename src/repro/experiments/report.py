"""Paper-style ASCII rendering of experiment results."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _fmt(cell: Cell, ndigits: int = 2) -> str:
    if isinstance(cell, float):
        return f"{cell:.{ndigits}f}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    ndigits: int = 2,
    title: str = "",
) -> str:
    """Render an aligned text table with a header rule."""
    str_rows: List[List[str]] = [
        [_fmt(c, ndigits) for c in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    values: Dict[str, float],
    width: int = 50,
    unit: str = "%",
    title: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (the paper's figures are bars).

    Bars are scaled to the maximum value; zero/NaN-safe.
    """
    if not values:
        return title
    peak = max((v for v in values.values() if v == v), default=0.0)
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        if value != value:  # NaN
            bar, shown = "", "nan"
        else:
            filled = int(round(width * value / peak)) if peak > 0 else 0
            bar = "█" * filled
            shown = f"{value:.1f}{unit}"
        lines.append(f"{name.ljust(label_w)} |{bar} {shown}")
    return "\n".join(lines)


def render_snapshot(
    snapshot: Dict[str, Dict[str, float]],
    title: str = "",
    skip_zero: bool = True,
    ndigits: int = 4,
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as a counter table.

    One row per (component, counter); histogram summaries expand into
    dotted sub-keys.  Zero-valued counters are omitted by default so the
    table shows what actually happened.
    """
    rows: List[Sequence[Cell]] = []
    for group, values in snapshot.items():
        for key, value in values.items():
            if isinstance(value, dict):  # histogram summary
                items = [(f"{key}.{sub}", v) for sub, v in value.items()]
            else:
                items = [(key, value)]
            for name, v in items:
                if skip_zero and not v:
                    continue
                rows.append([group, name, v])
    return render_table(
        ["component", "counter", "value"], rows, ndigits=ndigits, title=title
    )


def _fmt_hours(hours: float) -> str:
    """MTTF cell: hours are unwieldy, so quote the natural magnitude."""
    if hours == float("inf"):
        return "inf"
    if hours >= 1e6:
        return f"{hours / 1e6:.2f}Mh"
    if hours >= 1e3:
        return f"{hours / 1e3:.1f}kh"
    return f"{hours:.0f}h"


def render_campaign(result, title: str = "") -> str:
    """Per-scheme table for a reliability ``CampaignResult``.

    One row per scheme: trial count, conditional outcome rates with
    their Wilson 95% half-widths, AVF, the FIT split and MTTF — the
    conventional-vs-paper comparison the campaign exists to make.
    """
    from repro.reliability.model import TrialOutcome

    headers = [
        "scheme", "trials", "sdc", "due", "corrected", "refetched",
        "avf", "FIT(sdc)", "FIT(due)", "MTTF", "stop",
    ]
    rows: List[Sequence[Cell]] = []
    for scheme in result.config.schemes:
        s = result.schemes[scheme]
        e = s.estimate

        def ci(outcome: "TrialOutcome") -> str:
            r = e.rates[outcome]
            return f"{r.value:.4f}±{r.half_width:.4f}"

        rows.append([
            scheme,
            s.trials,
            ci(TrialOutcome.SDC),
            ci(TrialOutcome.DUE),
            ci(TrialOutcome.CORRECTED),
            ci(TrialOutcome.REFETCHED),
            f"{e.avf.value:.4f}±{e.avf.half_width:.4f}",
            f"{e.fit_sdc[0]:.1f}",
            f"{e.fit_due[0]:.1f}",
            _fmt_hours(e.mttf_hours[0]),
            s.stopped_by,
        ])
    return render_table(headers, rows, title=title)


def render_campaign_comparison(
    per_benchmark: Dict[str, "object"], title: str = ""
) -> str:
    """Per-benchmark AVF/MTTF series across schemes.

    ``per_benchmark`` maps benchmark name to ``CampaignResult`` (the
    output of :func:`repro.experiments.reliability.benchmark_campaigns`);
    the table shows each scheme's AVF and MTTF side by side, plus the
    average row the paper-style tables carry.
    """
    series: Dict[str, Dict[str, float]] = {}
    for bench, result in per_benchmark.items():
        row: Dict[str, float] = {}
        for scheme, s in result.schemes.items():
            row[f"{scheme} avf"] = s.estimate.avf.value
            row[f"{scheme} MTTF Mh"] = s.estimate.mttf_hours[0] / 1e6
        series[bench] = row
    return render_series(series, ndigits=4, title=title)


def render_front(
    points: Sequence[Dict[str, object]],
    front: Sequence[int],
    objectives: Sequence[str],
    title: str = "",
    indices: "Sequence[int] | None" = None,
) -> str:
    """Pareto-front table for one benchmark of an autotune result.

    ``points`` are the JSON point documents of an
    ``AutotuneResponse``; ``front`` holds the benchmark's non-dominated
    indices and ``indices`` the full candidate set (default: every
    point).  Front members print first, marked ``*``; stochastic
    objectives show ``value [lo, hi]`` so the CI-aware dominance rule —
    A dominates B only when A's upper bound clears B's lower bound —
    can be read straight off the table.
    """
    front_set = set(front)
    candidates = range(len(points)) if indices is None else indices
    order = list(front) + [i for i in candidates if i not in front_set]

    def fmt(doc: Dict[str, object]) -> str:
        value, lo, hi = doc["value"], doc["lo"], doc["hi"]
        if value is None:
            return "inf"
        if lo == hi == value:
            return f"{value:.4g}"
        lo_s = "?" if lo is None else f"{lo:.4g}"
        hi_s = "inf" if hi is None else f"{hi:.4g}"
        return f"{value:.4g} [{lo_s}, {hi_s}]"

    rows: List[Sequence[Cell]] = []
    for i in order:
        doc = points[i]
        rows.append(
            ["*" if i in front_set else "", doc["label"]]
            + [fmt(doc["objectives"][name]) for name in objectives]
        )
    return render_table(
        ["", "design point"] + list(objectives), rows, title=title
    )


def render_series(
    series: Dict[str, Dict[str, float]],
    row_label: str = "benchmark",
    ndigits: int = 2,
    title: str = "",
    average_row: bool = True,
) -> str:
    """Render {row: {column: value}} as a table, optionally with averages.

    This matches how the paper presents its per-benchmark bar charts:
    one row per benchmark, one column per configuration, plus the
    arithmetic-mean row the text quotes.
    """
    rows = list(series.keys())
    columns: List[str] = []
    for per_row in series.values():
        for col in per_row:
            if col not in columns:
                columns.append(col)
    table_rows: List[List[Cell]] = []
    for row in rows:
        table_rows.append(
            [row] + [series[row].get(col, float("nan")) for col in columns]
        )
    if average_row and rows:
        avg: List[Cell] = ["average"]
        for col in columns:
            vals = [series[r][col] for r in rows if col in series[r]]
            avg.append(sum(vals) / len(vals) if vals else float("nan"))
        table_rows.append(avg)
    return render_table([row_label] + columns, table_rows, ndigits, title)
