"""Run one benchmark under one protection configuration.

Two run modes:

* **Reference mode** (:func:`run_refs`) — drives just the memory
  hierarchy with the benchmark's memory-reference stream, advancing the
  cycle clock by the instruction gaps.  Fast; used for the residency and
  traffic figures (1, 3–8).
* **CPU mode** (:func:`run_ipc`) — expands the stream into full
  instructions and runs the out-of-order core, so bus contention turns
  into IPC.  Used for the Section 5.2 performance-loss numbers.

Geometry scaling (DESIGN.md §5): Python cannot simulate the paper's
10^9-instruction runs, so the default geometry shrinks every capacity
(L1s, L2, working sets — which are specified relative to the L2 — and
cleaning intervals) by the same factor, preserving the residency and
lifetime relationships the figures depend on.  The paper's full
geometry remains available as ``PAPER_GEOMETRY``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.cache.hierarchy import (
    HierarchyConfig,
    MemoryHierarchy,
    default_l1d_config,
    default_l1i_config,
    default_l2_config,
)
from repro.core.protected_cache import ProtectedL2, ProtectionConfig
from repro.core.scrub import check_invariants
from repro.cpu.ooo import OoOCore, RunResult
from repro.cpu.config import ProcessorConfig
from repro.telemetry.profiling import PhaseProfiler
from repro.telemetry.tracing import EventTracer
from repro.workloads.mix import InstructionMixer, MixConfig
from repro.workloads.spec2000 import BenchmarkSpec, get_benchmark, make_ref_stream


@dataclass(frozen=True)
class Geometry:
    """A coherent scaling of the paper's memory-system capacities.

    ``interval_scale`` maps the paper's cleaning intervals (64K…4M
    cycles) onto this geometry; interval labels always use the paper's
    nominal values.
    """

    name: str
    l1_bytes: int
    l2_bytes: int
    interval_scale: float
    #: The paper's nominal cleaning intervals, in cycles.
    paper_intervals: Tuple[int, ...] = (65536, 262144, 1048576, 4194304)
    #: Write-buffer entries between the L2 and memory (Table 1: 16).
    #: A sweep axis for the autotuner; the write-buffer ablation varies
    #: the same knob through :class:`~repro.cache.hierarchy.HierarchyConfig`.
    write_buffer_entries: int = 16

    def _naive_scaled(self, paper_interval: int) -> int:
        return max(1, int(paper_interval * self.interval_scale))

    def _grid_scaled(self) -> Tuple[int, ...]:
        """Scaled values of the nominal grid, forced strictly increasing.

        Extreme scale factors can collapse neighbouring grid points onto
        the same scaled value (e.g. everything to 1), after which a
        scaled interval could no longer be mapped back to one nominal
        label.  Collapsed points are nudged up by the minimum needed to
        keep the grid injective; ordinary scales (1, 1/32, ...) are
        unaffected.
        """
        scaled: List[int] = []
        prev = 0
        for p in self.paper_intervals:
            s = max(prev + 1, self._naive_scaled(p))
            scaled.append(s)
            prev = s
        return tuple(scaled)

    def scaled_interval(self, paper_interval: int) -> int:
        if paper_interval in self.paper_intervals:
            idx = self.paper_intervals.index(paper_interval)
            return self._grid_scaled()[idx]
        return self._naive_scaled(paper_interval)

    def nominal_interval(self, scaled: int) -> int:
        """Inverse of :meth:`scaled_interval`: paper-nominal cycles.

        Grid points map back exactly; off-grid values are inverted
        arithmetically (best effort for ad-hoc intervals).
        """
        grid = self._grid_scaled()
        if scaled in grid:
            return self.paper_intervals[grid.index(scaled)]
        if self.interval_scale > 0:
            return max(1, round(scaled / self.interval_scale))
        return scaled

    def interval_label_for(self, scaled: int) -> str:
        """The paper's nominal label for a *scaled* interval (``64K``...)."""
        return interval_label(self.nominal_interval(scaled))

    def interval_grid(self) -> List[Tuple[str, int]]:
        """(paper label, scaled cycles) for the sweep figures."""
        return [
            (interval_label(p), self.scaled_interval(p))
            for p in self.paper_intervals
        ]

    def hierarchy_config(self) -> HierarchyConfig:
        l1i = replace(default_l1i_config(), size_bytes=self.l1_bytes)
        l1d = replace(default_l1d_config(), size_bytes=self.l1_bytes)
        l2 = replace(default_l2_config(), size_bytes=self.l2_bytes)
        return HierarchyConfig(
            l1i=l1i, l1d=l1d, l2=l2,
            write_buffer_entries=self.write_buffer_entries,
        )


def interval_label(cycles: int) -> str:
    """Render a cleaning interval the way the paper does (64K, 1M, ...)."""
    if cycles % (1 << 20) == 0:
        return f"{cycles >> 20}M"
    if cycles % (1 << 10) == 0:
        return f"{cycles >> 10}K"
    return str(cycles)


#: The paper's exact Table 1 geometry (slow in Python; for spot checks).
PAPER_GEOMETRY = Geometry(
    name="paper", l1_bytes=32 * 1024, l2_bytes=1024 * 1024, interval_scale=1.0
)

#: Default: capacities scaled by 1/16 (a 64 KB L2 of 1K lines) and
#: cleaning intervals by 1/32, which keeps the line-lifetime vs
#: cleaning-interval ratios of the paper's 10^9-instruction runs intact
#: at trace lengths Python can simulate in seconds (calibrated against
#: the paper's "256K interval → ~2K dirty lines, 1M → ~4K" anchors).
SCALED_GEOMETRY = Geometry(
    name="scaled",
    l1_bytes=2 * 1024,
    l2_bytes=64 * 1024,
    interval_scale=1.0 / 32.0,
)


@dataclass(frozen=True)
class RunConfig:
    """How much work one run does."""

    geometry: Geometry = SCALED_GEOMETRY
    #: Memory references measured (after warm-up).
    n_refs: int = 120_000
    #: Memory references used to warm the hierarchy before measuring.
    warmup_refs: int = 40_000
    seed: int = 0


@dataclass
class RefRunOutput:
    """Measured quantities of one reference-mode run."""

    benchmark: str
    protection: Optional[ProtectionConfig]
    cycles: int
    refs: int
    dirty_fraction: float
    peak_dirty_fraction: float
    #: Write-backs as a fraction of all loads/stores (paper Figs 5/6/8).
    writeback_fraction: float
    #: Same, split by cause: WB / Clean-WB / ECC-WB.
    writeback_split: Dict[str, float]
    l2_miss_rate: float
    bus_utilization: float
    #: Mean dirty-episode length (first write to write-back), cycles.
    mean_dirty_episode_cycles: float = 0.0
    #: Traffic-aware variant counters; all stay 0 on the standard path.
    silent_writes: int = 0
    elided_ecc_updates: int = 0
    wb_bytes_raw: int = 0
    wb_bytes_compressed: int = 0
    #: ``MetricsRegistry.snapshot()`` of the hierarchy at run end.
    snapshot: Optional[Dict[str, Dict[str, float]]] = None


@dataclass
class IpcRunOutput:
    """Measured quantities of one CPU-mode run."""

    benchmark: str
    protection: Optional[ProtectionConfig]
    result: RunResult
    writeback_fraction: float
    dirty_fraction: float
    #: Traffic-aware variant counters; all stay 0 on the standard path.
    silent_writes: int = 0
    elided_ecc_updates: int = 0
    wb_bytes_raw: int = 0
    wb_bytes_compressed: int = 0
    #: Memory-system energy of the run (:mod:`repro.cache.energy`).
    energy_uj: float = 0.0
    #: ``MetricsRegistry.snapshot()`` of the hierarchy at run end.
    snapshot: Optional[Dict[str, Dict[str, float]]] = None

    @property
    def ipc(self) -> float:
        return self.result.ipc


def build_l2(
    geometry: Geometry, protection: Optional[ProtectionConfig], seed: int = 0
) -> SetAssociativeCache:
    """The L2 under test: plain (conventional) or the paper's protected L2.

    ``protection.cleaning_interval`` is given in *paper-nominal* cycles
    and scaled to the geometry here.
    """
    l2_cfg = geometry.hierarchy_config().l2
    if protection is None:
        return SetAssociativeCache(l2_cfg, seed=seed)
    scaled = ProtectionConfig(
        cleaning_interval=(
            geometry.scaled_interval(protection.cleaning_interval)
            if protection.cleaning_interval is not None
            else None
        ),
        ecc_entries_per_set=protection.ecc_entries_per_set,
    )
    return ProtectedL2(l2_cfg, scaled, seed=seed)


def _build_hierarchy(
    config: RunConfig, protection: Optional[ProtectionConfig]
) -> MemoryHierarchy:
    geometry = config.geometry
    l2 = build_l2(geometry, protection, seed=config.seed)
    return MemoryHierarchy(config=geometry.hierarchy_config(), l2=l2)


def _variant_hierarchy(
    config: RunConfig,
    protection: Optional[ProtectionConfig],
    variant: str,
) -> MemoryHierarchy:
    """A hierarchy around the variant registry's L2 (or the standard one).

    The ``standard`` variant routes through :func:`_build_hierarchy`
    unchanged, so default-path runs are bit-identical to a world without
    the variant registry.
    """
    if variant == "standard":
        return _build_hierarchy(config, protection)
    from repro.core.policy import build_variant_l2

    l2 = build_variant_l2(
        variant, config.geometry, protection, seed=config.seed
    )
    return MemoryHierarchy(config=config.geometry.hierarchy_config(), l2=l2)


def _reset_measurement(hierarchy: MemoryHierarchy, cycle: int) -> None:
    """Zero every counter after warm-up, keeping cache contents.

    Every stats holder in the hierarchy registered itself into
    ``hierarchy.registry`` at construction, so the measurement boundary
    is one registry call; component-specific boundary work (the
    dirty-episode clamp, restarting the residency integrator) lives in
    each component's own ``reset``.
    """
    hierarchy.reset_measurement(cycle)


def run_refs(
    benchmark: str,
    protection: Optional[ProtectionConfig],
    config: RunConfig = RunConfig(),
    tracer: Optional[EventTracer] = None,
    profiler: Optional[PhaseProfiler] = None,
    variant: str = "standard",
) -> RefRunOutput:
    """Reference-mode run of one benchmark under one protection config."""
    hierarchy = _variant_hierarchy(config, protection, variant)
    return run_refs_with_hierarchy(
        benchmark, hierarchy, config, protection,
        tracer=tracer, profiler=profiler,
    )


def run_refs_with_hierarchy(
    benchmark: str,
    hierarchy: MemoryHierarchy,
    config: RunConfig = RunConfig(),
    protection: Optional[ProtectionConfig] = None,
    tracer: Optional[EventTracer] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> RefRunOutput:
    """Reference-mode run against a caller-supplied hierarchy.

    Used by the ablation experiments to measure non-standard L2s (e.g.
    the eager-writeback baseline) under identical workload conditions.
    """
    spec: BenchmarkSpec = get_benchmark(benchmark)
    stream = make_ref_stream(spec, config.geometry.l2_bytes, seed=config.seed)
    return run_ref_stream(
        stream, hierarchy, config, benchmark, protection,
        tracer=tracer, profiler=profiler,
    )


def run_ref_stream(
    stream,
    hierarchy: MemoryHierarchy,
    config: RunConfig = RunConfig(),
    label: str = "trace",
    protection: Optional[ProtectionConfig] = None,
    tracer: Optional[EventTracer] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> RefRunOutput:
    """Drive a hierarchy with an explicit reference stream.

    The first ``config.warmup_refs`` references warm the caches with
    statistics discarded; the next ``config.n_refs`` are measured.  A
    shorter stream (e.g. a user trace file) simply ends early — the
    measured counts are whatever it contained.

    ``tracer`` (opt-in) records structured events from every cache
    level; ``profiler`` (opt-in) accounts wall time to the warm-up and
    measurement phases.
    """
    if tracer is not None:
        hierarchy.attach_tracer(tracer)
    if profiler is None:
        # A throwaway profiler keeps the code single-path; the cost is
        # two perf_counter pairs per run, not per reference.
        profiler = PhaseProfiler()
    # Sequences must behave like generators: islice over a list would
    # *replay* the warm-up references in the measured window.
    stream = iter(stream)
    cycle = 0
    load, store = hierarchy.load, hierarchy.store
    with profiler.phase("warmup") as rec:
        for ref in itertools.islice(stream, config.warmup_refs):
            cycle += 1 + ref.gap
            if ref.is_write:
                store(ref.addr, cycle)
            else:
                load(ref.addr, cycle)
        rec.events += (
            hierarchy.stats.loads_stores + hierarchy.stats.ifetches
        )

    _reset_measurement(hierarchy, cycle)
    start_cycle = cycle
    with profiler.phase("measure") as rec:
        for ref in itertools.islice(stream, config.n_refs):
            cycle += 1 + ref.gap
            if ref.is_write:
                store(ref.addr, cycle)
            else:
                load(ref.addr, cycle)
        # Stats were zeroed at the boundary, so this is the measured count.
        rec.events += (
            hierarchy.stats.loads_stores + hierarchy.stats.ifetches
        )

    check_invariants(hierarchy.l2)
    l2 = hierarchy.l2
    elapsed = cycle - start_cycle
    refs = hierarchy.stats.loads_stores
    split = {
        "WB": l2.stats.writebacks_replacement / refs if refs else 0.0,
        "Clean-WB": l2.stats.writebacks_cleaning / refs if refs else 0.0,
        "ECC-WB": l2.stats.writebacks_ecc_eviction / refs if refs else 0.0,
    }
    return RefRunOutput(
        benchmark=label,
        protection=protection,
        cycles=elapsed,
        refs=refs,
        dirty_fraction=l2.dirty.average_dirty_fraction(cycle),
        peak_dirty_fraction=l2.dirty.peak_dirty / l2.config.n_lines,
        writeback_fraction=hierarchy.writeback_fraction(),
        writeback_split=split,
        l2_miss_rate=l2.stats.miss_rate,
        bus_utilization=hierarchy.memory.utilization(elapsed),
        mean_dirty_episode_cycles=l2.stats.mean_dirty_episode_cycles,
        silent_writes=l2.stats.silent_writes,
        elided_ecc_updates=l2.stats.elided_ecc_updates,
        wb_bytes_raw=l2.stats.wb_bytes_raw,
        wb_bytes_compressed=l2.stats.wb_bytes_compressed,
        snapshot=hierarchy.snapshot(),
    )


def run_trace(
    stream,
    protection: Optional[ProtectionConfig],
    config: RunConfig = RunConfig(),
    label: str = "trace",
    tracer: Optional[EventTracer] = None,
    profiler: Optional[PhaseProfiler] = None,
    variant: str = "standard",
) -> RefRunOutput:
    """Reference-mode run of an arbitrary trace (e.g. from a file)."""
    hierarchy = _variant_hierarchy(config, protection, variant)
    return run_ref_stream(
        stream, hierarchy, config, label, protection,
        tracer=tracer, profiler=profiler,
    )


def run_ipc(
    benchmark: str,
    protection: Optional[ProtectionConfig],
    config: RunConfig = RunConfig(),
    n_insts: Optional[int] = None,
    processor: Optional[ProcessorConfig] = None,
    variant: str = "standard",
) -> IpcRunOutput:
    """CPU-mode run: full out-of-order timing, returns IPC and traffic.

    ``variant`` selects the L2 under test from the variant registry
    (:func:`repro.core.policy.available_variants`); ``standard`` is the
    plain/protected L2 the paper evaluates.
    """
    spec = get_benchmark(benchmark)
    hierarchy = _variant_hierarchy(config, protection, variant)
    stream = make_ref_stream(spec, config.geometry.l2_bytes, seed=config.seed)
    mix = MixConfig(fp_fraction=0.5 if spec.suite == "fp" else 0.1)
    mixer = InstructionMixer(mix, seed=config.seed)
    core = OoOCore(hierarchy, config=processor)

    if n_insts is None:
        n_insts = config.n_refs * 3
    insts = itertools.islice(mixer.expand(stream), n_insts)
    result = core.run(insts)

    check_invariants(hierarchy.l2)
    l2 = hierarchy.l2
    dirty = l2.dirty.average_dirty_fraction(hierarchy.clock)
    # Charge the unprotected baseline as the conventional (uniform-ECC)
    # design and any protected L2 as the paper's proposed scheme — the
    # same pairing compare_schemes uses for the org/ours tables.
    from repro.cache.energy import estimate_energy

    if protection is None and variant == "standard":
        energy = estimate_energy(hierarchy, "conventional", 1.0)
    else:
        energy = estimate_energy(
            hierarchy, "proposed", min(max(dirty, 0.0), 1.0)
        )
    return IpcRunOutput(
        benchmark=benchmark,
        protection=protection,
        result=result,
        writeback_fraction=hierarchy.writeback_fraction(),
        dirty_fraction=dirty,
        silent_writes=l2.stats.silent_writes,
        elided_ecc_updates=l2.stats.elided_ecc_updates,
        wb_bytes_raw=l2.stats.wb_bytes_raw,
        wb_bytes_compressed=l2.stats.wb_bytes_compressed,
        energy_uj=energy.total_uj,
        snapshot=hierarchy.snapshot(),
    )
