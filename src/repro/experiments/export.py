"""Structured export of experiment results.

Everything the figure drivers produce is plain nested dicts of floats;
this module stamps them with the run configuration, serialises to JSON
and offers :func:`regenerate_all` — the one-call driver behind
``python -m repro figures --json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.experiments.figures import (
    area_table,
    figure1,
    figure3_4,
    figure5_6,
    figure7,
    figure8,
    interval_sweep,
    ipc_loss,
)
from repro.experiments.pool import SweepEngine
from repro.experiments.runner import RunConfig

PathLike = Union[str, Path]


def config_metadata(config: RunConfig) -> Dict[str, Any]:
    """The provenance block attached to every export."""
    return {
        "geometry": {
            "name": config.geometry.name,
            "l1_bytes": config.geometry.l1_bytes,
            "l2_bytes": config.geometry.l2_bytes,
            "interval_scale": config.geometry.interval_scale,
        },
        "n_refs": config.n_refs,
        "warmup_refs": config.warmup_refs,
        "seed": config.seed,
    }


def regenerate_all(
    config: RunConfig = RunConfig(),
    include_ipc: bool = True,
    ipc_insts: Optional[int] = None,
    engine: Optional["SweepEngine"] = None,
) -> Dict[str, Any]:
    """Regenerate every figure/table of the paper; return one document.

    The document maps figure names to their data plus a ``config``
    provenance block.  This is the expensive full sweep (~all of the
    paper's evaluation); size it via ``config``, and pass a
    :class:`~repro.experiments.pool.SweepEngine` to parallelise and
    cache the grid.
    """
    doc: Dict[str, Any] = {"config": config_metadata(config)}

    doc["figure1"] = figure1(config, engine=engine)
    for suite, (fig_d, fig_t) in (("fp", ("figure3", "figure5")),
                                  ("int", ("figure4", "figure6"))):
        sweep = interval_sweep(suite, config, engine=engine)
        doc[fig_d] = figure3_4(suite, config, sweep=sweep)
        doc[fig_t] = figure5_6(suite, config, sweep=sweep)
    doc["figure7"] = figure7(config, engine=engine)
    doc["figure8"] = figure8(config, engine=engine)

    conv, ours, red = area_table()
    doc["area"] = {
        "conventional_kib": conv.total_kib,
        "proposed_kib": ours.total_kib,
        "reduction": red,
        "conventional_components": dict(conv.components),
        "proposed_components": dict(ours.components),
    }

    if include_ipc:
        doc["ipc"] = {}
        for suite in ("fp", "int"):
            doc["ipc"].update(
                ipc_loss(config, suite=suite, n_insts=ipc_insts,
                         engine=engine)
            )
    return doc


def save_json(document: Dict[str, Any], path: PathLike) -> None:
    """Write an export document as indented JSON."""
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read back an export document."""
    return json.loads(Path(path).read_text())
