"""Pick a scheme from a Pareto front under FIT and area budgets.

The recommender answers the deployment question the paper leaves to
the reader: *given this reliability target and this silicon budget,
which (code, interval, ways, policy) should I build?*

Feasibility is judged **conservatively**: a point satisfies a FIT
budget only if its Wilson 95% *upper* bound does (a design is not
"reliable enough" on the strength of its point estimate), and an area
budget by its (deterministic) storage exactly.  Among feasible points
the recommendation is the front point with minimum area, tie-broken by
FIT point estimate and then label — a total order, so the choice is
deterministic.

A useful consequence of the conservative rule: whenever *any* point is
feasible, a feasible point exists **on the front** — if a feasible
point were dominated, its dominator has ``fit.hi ≤`` the feasible
point's ``fit.lo ≤`` its ``hi`` and area no larger, so the dominator
is feasible too.  Infeasible budgets therefore report the best
achievable numbers rather than a near-miss point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.autotune.explore import PointMetrics


def feasible(
    metrics: PointMetrics,
    fit_budget: Optional[float],
    area_budget: Optional[float],
) -> bool:
    """Whether one point satisfies the stated budgets (None = no bound)."""
    if fit_budget is not None and metrics.fit[2] > fit_budget:
        return False
    if area_budget is not None and metrics.area_kib > area_budget:
        return False
    return True


def recommend(
    metrics: Sequence[PointMetrics],
    front: Sequence[int],
    fit_budget: Optional[float] = None,
    area_budget: Optional[float] = None,
) -> Tuple[Optional[int], Dict[str, float]]:
    """``(chosen index, best-achievable numbers)`` for one benchmark.

    ``front`` indexes into ``metrics``.  The chosen index is None when
    no point is feasible; ``best`` always carries the minimum
    achievable FIT upper bound and area over the *whole* grid, which
    is what an infeasibility error should quote.
    """
    best: Dict[str, float] = {}
    if metrics:
        best["min_fit_hi"] = min(m.fit[2] for m in metrics)
        best["min_area_kib"] = min(m.area_kib for m in metrics)
    candidates: List[int] = [
        i for i in front
        if feasible(metrics[i], fit_budget, area_budget)
    ]
    if not candidates:
        return None, best
    chosen = min(
        candidates,
        key=lambda i: (
            metrics[i].area_kib,
            metrics[i].fit[0],
            metrics[i].point.label,
        ),
    )
    return chosen, best


__all__ = ["feasible", "recommend"]
