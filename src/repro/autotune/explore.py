"""Design-grid expansion and point evaluation for the autotuner.

A **design point** is one coordinate of the paper's co-design space:
scheme × codec × cleaning interval × shared-ECC ways × write-buffer
depth × policy variant × fault scenario, measured on one benchmark.
Evaluating a point runs

1. a reference-mode simulation (the sweep :class:`~repro.experiments.pool.Cell`
   machinery, including ablation-variant L2s) for dirty residency,
   write traffic and the hierarchy counters the energy model reads;
2. a fixed-trials Monte Carlo campaign
   (:class:`~repro.reliability.CampaignEngine`) under the measured
   dirty fraction, the point's scenario pack and its ECC codec, for
   FIT/MTTF with Wilson intervals;
3. the area model (:mod:`repro.core.area`) at the FIT conversion's own
   cache geometry, and optionally a CPU-mode run for IPC.

:func:`evaluate_point` is a module-level pure function of its
:class:`PointTask`, so :meth:`~repro.experiments.pool.SweepEngine.map_tasks`
can fan points across worker processes — results are bit-identical at
any ``--jobs`` value.  :func:`explore` adds point-level content
addressing on top of the engine's :class:`~repro.experiments.pool.ResultCache`
(the same store the figure sweeps share), which is what makes an
interrupted grid resumable and a repeated grid a warm-cache no-op.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.autotune.pareto import ObjectiveSpec
from repro.experiments.pool import (
    Cell,
    SweepEngine,
    build_cell_hierarchy,
    code_version,
)
from repro.experiments.runner import (
    RunConfig,
    SCALED_GEOMETRY,
    interval_label,
    run_ipc,
    run_refs_with_hierarchy,
)

#: Campaign schemes the grid may sweep.  ``non-uniform`` is the paper's
#: design (and the only scheme the interval/ways/variant axes apply to);
#: the other two are the baselines it is traded against.
SCHEMES: Tuple[str, ...] = ("non-uniform", "uniform-ecc", "parity-only")


@dataclass(frozen=True)
class DesignPoint:
    """One coordinate of the design grid, in canonical form.

    Axes that do not apply to a scheme are collapsed to their canonical
    value by :func:`expand_grid` (e.g. a ``uniform-ecc`` point carries
    no cleaning interval), so two spellings of the same design share
    one cache entry and appear once per front.
    """

    benchmark: str
    scheme: str
    codec: str
    #: Cleaning interval in paper-nominal cycles (non-uniform only).
    interval: Optional[int]
    #: Shared ECC entries per set (non-uniform only).
    ecc_entries: Optional[int]
    #: Write-buffer entries between L2 and memory.
    write_buffer: int
    #: Policy variant (:func:`repro.core.policy.available_variants`).
    variant: str
    #: Correlated-fault scenario pack.
    scenario: str

    @property
    def label(self) -> str:
        parts = [self.scheme, self.codec]
        if self.interval is not None:
            parts.append(interval_label(self.interval))
        if self.ecc_entries is not None and self.ecc_entries != 1:
            parts.append(f"e{self.ecc_entries}")
        if self.write_buffer != 16:
            parts.append(f"wb{self.write_buffer}")
        if self.variant != "standard":
            parts.append(self.variant)
        if self.scenario != "nominal":
            parts.append(self.scenario)
        return "/".join(parts)

    def describe(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "codec": self.codec,
            "interval": self.interval,
            "ecc_entries": self.ecc_entries,
            "write_buffer": self.write_buffer,
            "variant": self.variant,
            "scenario": self.scenario,
        }


@dataclass(frozen=True)
class PointTask:
    """Everything one point's evaluation depends on (picklable).

    ``checkpoint`` (a per-point campaign JSONL path, or None) is the
    one field *excluded* from the cache key — where a result is
    persisted must not change what the result is.
    """

    point: DesignPoint
    trials: int
    trials_per_shard: int
    kernel: str
    seed: int
    refs: int
    warmup: int
    insts: int
    double_bit_fraction: float
    raw_fit: float
    n_lines: int
    measure_ipc: bool
    checkpoint: Optional[str] = None

    def describe(self) -> Dict[str, Any]:
        """Canonical cache-key payload; excludes ``checkpoint``."""
        return {
            "point": self.point.describe(),
            "trials": self.trials,
            "trials_per_shard": self.trials_per_shard,
            "kernel": self.kernel,
            "seed": self.seed,
            "refs": self.refs,
            "warmup": self.warmup,
            "insts": self.insts,
            "double_bit_fraction": self.double_bit_fraction,
            "raw_fit": self.raw_fit,
            "n_lines": self.n_lines,
            "measure_ipc": self.measure_ipc,
        }


@dataclass(frozen=True)
class PointMetrics:
    """Every objective measurement of one evaluated design point."""

    point: DesignPoint
    #: Protection storage at the FIT conversion's cache geometry.
    area_kib: float
    #: Total failure FIT (SDC + DUE), ``(value, lo, hi)`` Wilson 95%.
    fit: Tuple[float, float, float]
    #: ``(value, lo, hi)``; ``inf`` when no failures were observed.
    mttf_hours: Tuple[float, float, float]
    #: Memory-system energy of the measured window.
    energy_uj: float
    #: None unless the task asked for the (slow) CPU-mode run.
    ipc: Optional[float]
    #: Write-backs as % of loads/stores.
    traffic_pct: float
    #: Average dirty residency, %.
    dirty_pct: float
    trials: int

    def objective_doc(
        self, specs: Sequence[ObjectiveSpec]
    ) -> Dict[str, Dict[str, Optional[float]]]:
        """Raw (un-negated) per-objective values with bounds, JSON-able."""
        doc: Dict[str, Dict[str, Optional[float]]] = {}
        for spec in specs:
            raw = getattr(self, spec.attr)
            if spec.stochastic:
                value, lo, hi = raw
            else:
                value = lo = hi = float(raw)
            doc[spec.name] = {
                "value": _finite(value),
                "lo": _finite(lo),
                "hi": _finite(hi),
            }
        return doc


def _finite(x: float) -> Optional[float]:
    """JSON-able float: ``inf``/NaN (e.g. MTTF with 0 failures) → None."""
    return x if x == x and abs(x) != float("inf") else None


def point_key(task: PointTask, version: Optional[str] = None) -> str:
    """Content-addressed identity of one point evaluation.

    Same digest family as :func:`repro.experiments.pool.cell_key` —
    SHA-256 of the canonical JSON payload plus the source-tree version
    — but in its own ``autotune-point`` namespace, so autotune entries
    and sweep cells can share one :class:`ResultCache` directory
    without key collisions.
    """
    payload = {
        "autotune-point": task.describe(),
        "code": version if version is not None else code_version(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def expand_grid(
    benchmarks: Sequence[str],
    schemes: Sequence[str],
    codecs: Sequence[str],
    intervals: Sequence[int],
    ecc_entries: Sequence[int],
    write_buffers: Sequence[int],
    variants: Sequence[str],
    scenarios: Sequence[str],
) -> List[DesignPoint]:
    """The canonical, de-duplicated cross product of the grid axes.

    Canonicalization rules (applied before de-duplication, preserving
    first-seen order):

    * ``uniform-ecc`` / ``parity-only`` have no cleaning interval, no
      shared-ECC ways and no policy variant — those axes collapse;
      ``parity-only`` additionally has no ECC slot, so its codec axis
      collapses to ``secded`` (the value is unused).
    * variants whose registry spec sets ``collapses_interval`` (e.g.
      ``eager``, which replaces periodic cleaning with eager
      write-backs) have their interval axis collapsed.
    """
    points: List[DesignPoint] = []
    seen = set()
    for benchmark in benchmarks:
        for scheme in schemes:
            for codec in codecs:
                for interval in intervals:
                    for entries in ecc_entries:
                        for wb in write_buffers:
                            for variant in variants:
                                for scenario in scenarios:
                                    point = _canonical(
                                        benchmark, scheme, codec,
                                        interval, entries, wb, variant,
                                        scenario,
                                    )
                                    if point not in seen:
                                        seen.add(point)
                                        points.append(point)
    return points


def _canonical(
    benchmark: str,
    scheme: str,
    codec: str,
    interval: Optional[int],
    entries: Optional[int],
    write_buffer: int,
    variant: str,
    scenario: str,
) -> DesignPoint:
    from repro.core.policy import get_variant

    if scheme != "non-uniform":
        interval, entries, variant = None, None, "standard"
        if scheme == "parity-only":
            codec = "secded"
    elif get_variant(variant).collapses_interval:
        interval = None
    return DesignPoint(
        benchmark=benchmark,
        scheme=scheme,
        codec=codec,
        interval=interval,
        ecc_entries=entries,
        write_buffer=write_buffer,
        variant=variant,
        scenario=scenario,
    )


# -- point evaluation (top level so worker processes can pickle it) -----------


def evaluate_point(task: PointTask) -> PointMetrics:
    """Evaluate one design point end to end; pure function of the task."""
    from repro.cache.energy import EnergyParams, estimate_energy
    from repro.core.protected_cache import ProtectionConfig

    point = task.point
    protection = None
    if point.scheme == "non-uniform":
        protection = ProtectionConfig(
            cleaning_interval=point.interval,
            ecc_entries_per_set=point.ecc_entries,
        )
    geometry = replace(
        SCALED_GEOMETRY, write_buffer_entries=point.write_buffer
    )
    config = RunConfig(
        geometry=geometry,
        n_refs=task.refs,
        warmup_refs=task.warmup,
        seed=task.seed,
    )
    cell = Cell(
        point.benchmark, protection, config, variant=point.variant
    )
    hierarchy = build_cell_hierarchy(cell)
    out = run_refs_with_hierarchy(
        point.benchmark, hierarchy, config, protection
    )
    dirty = min(max(out.dirty_fraction, 0.0), 1.0)

    estimate = _campaign_estimate(task, dirty)
    fit = estimate.avf.scaled(estimate.strike_fit)

    area_kib = _point_area_kib(point, task.n_lines)
    ecc_scale = _codec_check_bits(point.codec) / 8.0
    if point.scheme == "uniform-ecc":
        energy = estimate_energy(
            hierarchy, "conventional", 1.0,
            EnergyParams(ecc_per_word=0.06 * ecc_scale),
        )
    elif point.scheme == "parity-only":
        # No ECC slot at all: zero its per-word energy instead of
        # teaching the energy model a third scheme.
        energy = estimate_energy(
            hierarchy, "proposed", 0.0, EnergyParams(ecc_per_word=0.0)
        )
    else:
        energy = estimate_energy(
            hierarchy, "proposed", dirty,
            EnergyParams(ecc_per_word=0.06 * ecc_scale),
        )

    ipc = None
    if task.measure_ipc:
        ipc = run_ipc(
            point.benchmark, protection, config,
            n_insts=task.insts, variant=point.variant,
        ).ipc

    return PointMetrics(
        point=point,
        area_kib=area_kib,
        fit=fit,
        mttf_hours=estimate.mttf_hours,
        energy_uj=energy.total_uj,
        ipc=ipc,
        traffic_pct=100.0 * out.writeback_fraction,
        dirty_pct=100.0 * dirty,
        trials=estimate.trials,
    )


def _campaign_estimate(task: PointTask, dirty_fraction: float):
    """The point's fixed-trials Monte Carlo estimate."""
    from repro.reliability import (
        CampaignConfig,
        CampaignEngine,
        FaultModelConfig,
    )

    point = task.point
    campaign = CampaignConfig(
        schemes=(point.scheme,),
        trials=task.trials,
        trials_per_shard=task.trials_per_shard,
        metric="failure",
        seed=task.seed,
        model=FaultModelConfig(
            double_bit_fraction=task.double_bit_fraction,
            scenario=point.scenario,
            ecc_codec=point.codec,
        ),
        dirty_fractions={point.scheme: dirty_fraction},
        raw_fit_per_mbit=task.raw_fit,
        n_lines=task.n_lines,
        kernel=task.kernel,
    )
    result = CampaignEngine(campaign, checkpoint=task.checkpoint).run()
    return result.schemes[point.scheme].estimate


def _codec_check_bits(codec: str) -> int:
    from repro.ecc import get_codec

    return get_codec(codec).check_bits_per_word


def _point_area_kib(point: DesignPoint, n_lines: int) -> float:
    """Protection storage of the point, at the FIT model's geometry.

    The cache geometry is the paper's 64 B-line L2 scaled to the FIT
    conversion's ``n_lines``, so the area and reliability objectives
    always describe the same structure.
    """
    from repro.cache.hierarchy import default_l2_config
    from repro.core.area import conventional_overhead, proposed_overhead

    base = default_l2_config()
    l2 = replace(base, size_bytes=n_lines * base.line_bytes)
    if point.scheme == "uniform-ecc":
        return conventional_overhead(l2, ecc_codec=point.codec).total_kib
    breakdown = proposed_overhead(
        l2,
        ecc_entries_per_set=point.ecc_entries or 1,
        ecc_codec=point.codec,
    )
    if point.scheme == "parity-only":
        # Parity everywhere, nothing else: no shared ECC array and no
        # written bit (there is no selective-ECC path to steer).
        kept = {
            name: bits
            for name, bits in breakdown.components.items()
            if name not in ("ECC array", "written bits")
        }
        return sum(kept.values()) / 8 / 1024
    return breakdown.total_kib


# -- the explore loop ---------------------------------------------------------


def explore(
    tasks: Sequence[PointTask],
    engine: Optional[SweepEngine] = None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    should_abort: Optional[Callable[[], bool]] = None,
    checkpoint_dir: Optional[str] = None,
) -> Tuple[List[PointMetrics], int, int]:
    """Evaluate every task; returns ``(metrics, executed, cached)``.

    Results come back in task order whatever the engine's ``jobs``
    setting.  With a caching engine each point is content-addressed via
    :func:`point_key`, so re-running a grid (or resuming an interrupted
    one) only executes the missing points.  ``checkpoint_dir`` gives
    each *executed* point a private campaign checkpoint
    (``<dir>/<key>.jsonl``) so even a mid-point interruption resumes at
    shard granularity.  ``should_abort`` is polled between batches;
    aborting raises :class:`~repro.reliability.CampaignAborted` with
    every completed point already in the cache.
    """
    from repro.reliability import CampaignAborted

    eng = engine if engine is not None else SweepEngine()
    tasks = list(tasks)
    version = code_version()
    outputs: List[Optional[PointMetrics]] = [None] * len(tasks)
    pending: List[int] = []

    cached = 0
    for i, task in enumerate(tasks):
        key = point_key(task, version)
        hit = eng.cache.get(key) if eng.cache is not None else None
        if isinstance(hit, PointMetrics):
            outputs[i] = hit
            cached += 1
            if progress is not None:
                progress({
                    "type": "point",
                    "label": task.point.label,
                    "benchmark": task.point.benchmark,
                    "cached": True,
                    "done": cached,
                    "total": len(tasks),
                })
        else:
            pending.append(i)

    # Batches of a few points per worker: large enough to keep the pool
    # busy, small enough that aborts and progress stay responsive.
    batch = max(1, eng.jobs) * 2
    done = cached
    for start in range(0, len(pending), batch):
        if should_abort is not None and should_abort():
            raise CampaignAborted("autotune aborted")
        indices = pending[start:start + batch]
        batch_tasks = []
        for i in indices:
            task = tasks[i]
            if checkpoint_dir is not None and task.checkpoint is None:
                path = Path(checkpoint_dir)
                path.mkdir(parents=True, exist_ok=True)
                task = replace(
                    task,
                    checkpoint=str(
                        path / f"{point_key(task, version)}.jsonl"
                    ),
                )
            batch_tasks.append(task)
        results = eng.map_tasks(evaluate_point, batch_tasks, phase="autotune")
        for i, metrics in zip(indices, results):
            outputs[i] = metrics
            eng_cache_put(eng, point_key(tasks[i], version), metrics)
            done += 1
            if progress is not None:
                progress({
                    "type": "point",
                    "label": tasks[i].point.label,
                    "benchmark": tasks[i].point.benchmark,
                    "cached": False,
                    "done": done,
                    "total": len(tasks),
                })
    return list(outputs), len(pending), cached  # type: ignore[arg-type]


def eng_cache_put(engine: SweepEngine, key: str, value: Any) -> None:
    if engine.cache is not None:
        engine.cache.put(key, value)


__all__ = [
    "DesignPoint",
    "PointMetrics",
    "PointTask",
    "SCHEMES",
    "evaluate_point",
    "expand_grid",
    "explore",
    "point_key",
]
