"""CI-aware Pareto dominance over design-point objectives.

Every objective value is carried as an **interval** ``(value, lo, hi)``
normalized to *minimization*: deterministic quantities (area, energy,
traffic) are zero-width (``lo == value == hi``), Monte Carlo quantities
(FIT, MTTF) carry their Wilson 95% bounds, and maximize-direction
objectives (IPC, MTTF) are negated — ``(v, lo, hi) → (-v, -hi, -lo)`` —
so one dominance rule covers everything.

The rule ("a point only dominates if its interval clears the other's"):

    A dominates B  ⇔  ∀ objectives: A.hi ≤ B.lo
                      and ∃ objective: A.hi < B.lo

For zero-width intervals this reduces exactly to classical weak
dominance with one strict inequality.  For stochastic objectives, two
points whose confidence intervals overlap are *incomparable* — neither
is dropped — so the front never discards a design on statistical noise.

The relation is a strict partial order: transitivity follows from
``A.hi ≤ B.lo ≤ B.hi ≤ C.lo`` (every interval satisfies ``lo ≤ hi``),
so the non-dominated set is well-defined: :func:`pareto_front` is
idempotent and order-invariant, which the property tests in
``tests/autotune/test_pareto.py`` enforce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

#: (value, lo, hi), already normalized to "smaller is better".
Interval = Tuple[float, float, float]


@dataclass(frozen=True)
class ObjectiveSpec:
    """One optimizable quantity of a design point.

    ``attr`` names the :class:`~repro.autotune.explore.PointMetrics`
    attribute holding the measurement: a float for deterministic
    objectives, a ``(value, lo, hi)`` tuple for stochastic ones.
    """

    name: str
    #: Column header in rendered fronts, with units.
    label: str
    attr: str
    maximize: bool = False
    #: Whether the measurement carries a Monte Carlo Wilson interval.
    stochastic: bool = False

    def interval(self, metrics: Any) -> Interval:
        """The objective's minimize-normalized interval for one point."""
        raw = getattr(metrics, self.attr)
        if self.stochastic:
            value, lo, hi = raw
        else:
            value = lo = hi = float(raw)
        if lo > hi:  # defensive: a malformed interval must not invert
            lo, hi = hi, lo
        if self.maximize:
            return (-value, -hi, -lo)
        return (value, lo, hi)


#: The objective catalogue.  ``fit``/``mttf`` are the campaign's total
#: failure rate (SDC + DUE) with its Wilson interval; everything else is
#: deterministic given the seed.
OBJECTIVES: Dict[str, ObjectiveSpec] = {
    spec.name: spec
    for spec in (
        ObjectiveSpec(
            name="area", label="area KiB", attr="area_kib",
        ),
        ObjectiveSpec(
            name="fit", label="FIT", attr="fit", stochastic=True,
        ),
        ObjectiveSpec(
            name="mttf", label="MTTF h", attr="mttf_hours",
            maximize=True, stochastic=True,
        ),
        ObjectiveSpec(
            name="energy", label="energy uJ", attr="energy_uj",
        ),
        ObjectiveSpec(
            name="ipc", label="IPC", attr="ipc", maximize=True,
        ),
        ObjectiveSpec(
            name="traffic", label="WB %", attr="traffic_pct",
        ),
    )
}


def available_objectives() -> Tuple[str, ...]:
    """Registered objective names, in catalogue order."""
    return tuple(OBJECTIVES)


def resolve_objectives(names: Sequence[str]) -> List[ObjectiveSpec]:
    """Specs for ``names``; unknown names raise ``ValueError``."""
    specs = []
    for name in names:
        try:
            specs.append(OBJECTIVES[name])
        except KeyError:
            raise ValueError(
                f"unknown objective {name!r}; "
                f"available objectives: {', '.join(OBJECTIVES)}"
            ) from None
    return specs


def dominates(
    a: Mapping[str, Interval],
    b: Mapping[str, Interval],
    objectives: Sequence[str],
) -> bool:
    """Whether point ``a``'s intervals clear point ``b``'s everywhere.

    ``a`` / ``b`` map objective names to minimize-normalized intervals
    (:meth:`ObjectiveSpec.interval`).  Comparisons are exact float
    comparisons — no epsilon — so the relation, and with it the front,
    is bit-stable across worker counts and platforms.
    """
    strict = False
    for name in objectives:
        a_hi = a[name][2]
        b_lo = b[name][1]
        if a_hi > b_lo:
            return False
        if a_hi < b_lo:
            strict = True
    return strict


def pareto_front(
    points: Sequence[Mapping[str, Interval]],
    objectives: Sequence[str],
) -> List[int]:
    """Indices of the non-dominated points, ascending.

    O(n²) pairwise — the design grids here are tens to hundreds of
    points, and the simple form keeps the determinism argument trivial.
    Duplicate points never dominate each other (no strict objective),
    so equal designs all stay on the front.
    """
    n = len(points)
    front: List[int] = []
    for i in range(n):
        if not any(
            j != i and dominates(points[j], points[i], objectives)
            for j in range(n)
        ):
            front.append(i)
    return front


__all__ = [
    "Interval",
    "OBJECTIVES",
    "ObjectiveSpec",
    "available_objectives",
    "dominates",
    "pareto_front",
    "resolve_objectives",
]
