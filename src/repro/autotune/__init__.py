"""Multi-objective scheme autotuner: Pareto fronts over the design grid.

The paper's argument is a trade — spend less *area* on ECC, buy the
reliability back with cleaning policy — and this package searches that
trade as a whole instead of scoring one configuration at a time:

* :mod:`repro.autotune.explore` expands the design grid (scheme ×
  codec × cleaning interval × ECC ways × write-buffer depth × policy
  variant × scenario) and evaluates each point through the existing
  sweep pool and campaign engine, with content-addressed point caching;
* :mod:`repro.autotune.pareto` computes the non-dominated set per
  workload under **CI-aware dominance** — a point only dominates when
  its Wilson interval clears the other's;
* :mod:`repro.autotune.recommend` picks a front point under FIT/area
  budgets, conservatively (the 95% upper bound must clear the budget).

The facade entry points are :func:`repro.api.autotune` and
:func:`repro.api.recommend`; ``repro autotune`` / ``repro recommend``
render them, and the job service serves them (``docs/autotune.md``).
"""

from repro.autotune.explore import (
    DesignPoint,
    PointMetrics,
    PointTask,
    SCHEMES,
    evaluate_point,
    expand_grid,
    explore,
    point_key,
)
from repro.autotune.pareto import (
    OBJECTIVES,
    ObjectiveSpec,
    available_objectives,
    dominates,
    pareto_front,
    resolve_objectives,
)
from repro.autotune.recommend import feasible, recommend

__all__ = [
    "DesignPoint",
    "OBJECTIVES",
    "ObjectiveSpec",
    "PointMetrics",
    "PointTask",
    "SCHEMES",
    "available_objectives",
    "dominates",
    "evaluate_point",
    "expand_grid",
    "explore",
    "feasible",
    "pareto_front",
    "point_key",
    "recommend",
    "resolve_objectives",
]
