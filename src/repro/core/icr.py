"""In-cache replication: the Zhang et al. [10] comparator.

ICR enhances data-cache reliability by *replicating* active blocks into
blocks predicted dead (using a decay-style dead-block predictor, the
same generational insight the paper's cleaning exploits).  A fault in a
replicated block's primary copy recovers from the replica.

The model here captures the mechanism at its essential granularity:

* every line carries a decay clock; a line untouched for
  ``dead_interval`` cycles is *dead*;
* an access to a live line tries to maintain a replica in a dead line
  of the same set (the paper's vertical replication, simplified);
* replicas are invalidated when their host line is re-activated by a
  demand fill or when the primary is written (the replica is rewritten
  too — counted as replica-update work);
* the figure of merit is replication coverage: the fraction of accesses
  whose line had a valid replica at access time.

Contrast with the reproduced paper's scheme: ICR protects a *subset*
of blocks (those lucky enough to find a dead partner) and sacrifices
effective capacity, where non-uniform ECC protects everything without
displacing data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.cache import CacheConfig
from repro.cache.line import CacheLine
from repro.cache.replacement import LruPolicy


@dataclass
class IcrStats:
    accesses: int = 0
    covered_accesses: int = 0
    replicas_created: int = 0
    replicas_displaced: int = 0
    replica_updates: int = 0

    @property
    def coverage(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.covered_accesses / self.accesses


class IcrCache:
    """Set-associative cache with dead-block replication."""

    def __init__(self, config: CacheConfig, dead_interval: int = 4096) -> None:
        if dead_interval <= 0:
            raise ValueError("dead_interval must be positive")
        self.config = config
        self.dead_interval = dead_interval
        self.n_sets = config.n_sets
        self.ways = config.ways
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._index_mask = self.n_sets - 1
        self.sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(config.ways)]
            for _ in range(self.n_sets)
        ]
        #: Per set: primary way -> replica way.
        self._replicas: List[Dict[int, int]] = [{} for _ in range(self.n_sets)]
        self._policy = LruPolicy()
        self._stamp = 0
        self.stats = IcrStats()

    # -- helpers -------------------------------------------------------------

    def _locate(self, addr: int):
        block = addr >> self._offset_bits
        return block & self._index_mask, block >> (self.n_sets.bit_length() - 1)

    def _is_dead(self, line: CacheLine, cycle: int) -> bool:
        return (
            not line.valid
            or cycle - line.last_touch_cycle >= self.dead_interval
        )

    def _replica_of(self, set_idx: int, way: int) -> Optional[int]:
        return self._replicas[set_idx].get(way)

    def _drop_replica_hosted_by(self, set_idx: int, way: int) -> None:
        """Way is being reused for real data: forget any replica it held."""
        replicas = self._replicas[set_idx]
        for primary, host in list(replicas.items()):
            if host == way:
                del replicas[primary]
                self.stats.replicas_displaced += 1

    # -- main access path ------------------------------------------------------

    def access(self, addr: int, is_write: bool, cycle: int) -> bool:
        """One access; returns True when the line had a live replica."""
        self.stats.accesses += 1
        set_idx, tag = self._locate(addr)
        ways = self.sets[set_idx]
        self._stamp += 1

        way = None
        for w, line in enumerate(ways):
            if line.valid and line.tag == tag:
                way = w
                break
        if way is None:
            way = self._fill(set_idx, tag, cycle)
        line = ways[way]
        line.lru_stamp = self._stamp
        line.last_touch_cycle = cycle
        if is_write:
            line.record_write()

        covered = False
        replica = self._replica_of(set_idx, way)
        if replica is not None:
            covered = True
            self.stats.covered_accesses += 1
            if is_write:
                self.stats.replica_updates += 1
        else:
            self._try_replicate(set_idx, way, cycle)
        return covered

    def _fill(self, set_idx: int, tag: int, cycle: int) -> int:
        ways = self.sets[set_idx]
        way = self._policy.choose_victim(ways)
        self._drop_replica_hosted_by(set_idx, way)
        self._replicas[set_idx].pop(way, None)  # old primary's replica link
        ways[way].fill(tag, cycle, self._stamp)
        return way

    def _try_replicate(self, set_idx: int, way: int, cycle: int) -> None:
        """Host a replica of ``way`` in a dead line of the same set."""
        ways = self.sets[set_idx]
        taken_hosts = set(self._replicas[set_idx].values())
        for host, line in enumerate(ways):
            if host == way or host in taken_hosts:
                continue
            if self._is_dead(line, cycle):
                self._replicas[set_idx][way] = host
                self.stats.replicas_created += 1
                return

    # -- queries ----------------------------------------------------------------

    def replicated_fraction(self) -> float:
        """Fraction of valid lines currently backed by a replica."""
        valid = replicated = 0
        for set_idx, ways in enumerate(self.sets):
            for way, line in enumerate(ways):
                if line.valid:
                    valid += 1
                    if way in self._replicas[set_idx]:
                        replicated += 1
        return replicated / valid if valid else 0.0
