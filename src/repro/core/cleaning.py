"""The paper's dirty-line cleaning FSM (Figure 2).

Hardware view: a cycle counter plus a latch holding the next cache set
number.  Every ``interval / n_sets`` cycles the logic visits the latched
set, examines each line's (dirty, written) pair and either cleans the
line (``dirty=1, written=0`` — predicted write-dead) or resets its
written bit (``written=1`` — still being modified, second chance).  The
latch then advances, so each individual line is revisited once per
*cleaning interval* — the paper's 64K…4M-cycle parameter.

This module implements only the sweep schedule; the per-line actions
live in :meth:`repro.core.protected_cache.ProtectedL2.advance` because
they mutate cache state.
"""

from __future__ import annotations

from typing import Dict, Iterator


class CleaningLogic:
    """Sweep scheduler: which sets are due for a cleaning check.

    The schedule is exact in the long run even when ``interval`` is not
    a multiple of ``n_sets``: elapsed cycles are accounted in units of
    ``1 / n_sets`` cycles so no drift accumulates.
    """

    def __init__(self, n_sets: int, interval_cycles: int) -> None:
        if n_sets <= 0:
            raise ValueError("n_sets must be positive")
        if interval_cycles <= 0:
            raise ValueError("cleaning interval must be positive")
        self.n_sets = n_sets
        self.interval_cycles = interval_cycles
        #: Next set the latch points at.
        self.next_set = 0
        self._last_cycle = 0
        #: Accumulated time in units of 1/n_sets cycles.
        self._tick_balance = 0
        #: Total set checks issued (for reporting).
        self.checks = 0

    #: :class:`~repro.telemetry.metrics.StatsSource` identity.
    labels = {"component": "cleaning-fsm"}

    @property
    def cycles_per_set_check(self) -> float:
        """Average cycles between consecutive set visits."""
        return self.interval_cycles / self.n_sets

    def as_dict(self) -> Dict[str, int]:
        return {"checks": self.checks, "next_set": self.next_set}

    def reset(self, cycle: int = 0) -> None:
        """Zero the check counter; the sweep latch keeps its position."""
        self.checks = 0

    def due_sets(self, cycle: int) -> Iterator[int]:
        """Yield every set due for a check in (last cycle, ``cycle``].

        Cycles must be non-decreasing across calls.  If the simulator
        jumps far ahead, at most two full sweeps are issued for the gap —
        re-checking an unchanged set more often than that is idempotent
        (cleaning an already-clean cache), so capping keeps long idle
        gaps cheap without changing observable state.
        """
        if cycle < self._last_cycle:
            raise ValueError("cleaning clock moved backwards")
        self._tick_balance += (cycle - self._last_cycle) * self.n_sets
        self._last_cycle = cycle
        cap = 2 * self.n_sets
        issued = 0
        while self._tick_balance >= self.interval_cycles and issued < cap:
            self._tick_balance -= self.interval_cycles
            current = self.next_set
            self.next_set = (current + 1) % self.n_sets
            self.checks += 1
            issued += 1
            yield current
        if issued == cap:
            # Discard the remainder of an over-long idle gap.
            self._tick_balance %= self.interval_cycles
