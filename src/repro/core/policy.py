"""Protection policies and payload-level line protection.

A :class:`ProtectionPolicy` states which code guards a line in a given
state.  The paper's scheme is :class:`NonUniformPolicy` — parity on
every line, ECC added while dirty — against the conventional
:class:`UniformEccPolicy` baseline.

:class:`LineProtection` binds a policy to a real payload and real codecs
(:mod:`repro.ecc`) so the reliability experiments can inject faults and
observe end-to-end recovery: a clean line that fails parity is refetched
from the next level; a dirty line relies on ECC correction; a dirty line
with a double-bit error is data loss.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.ecc.codec import Codec, LineCodec, get_codec
from repro.ecc.events import CheckOutcome


class ProtectionDomain(enum.Enum):
    """Which code currently guards a line."""

    NONE = "none"
    PARITY = "parity"
    ECC = "ecc"


#: The codec (by registry name, :func:`repro.ecc.get_codec`) each
#: protection domain stores.  This is the single point tying the
#: abstract domains to concrete codes: swapping SECDED for DECTED (or a
#: chip-kill symbol code) means changing this mapping or passing
#: ``codecs=`` to the consumers — the policies, the area arithmetic and
#: the fault model all follow the codec's own ``check_bits_per_word``
#: and ``corrects`` contract instead of hardcoding parity/SECDED facts.
DOMAIN_CODECS: dict = {
    ProtectionDomain.PARITY: "parity",
    ProtectionDomain.ECC: "secded",
}


def domain_codec(
    domain: ProtectionDomain,
    codecs: Optional[dict] = None,
) -> Codec:
    """The :class:`Codec` guarding ``domain`` (override via ``codecs``).

    ``codecs`` maps :class:`ProtectionDomain` to either a codec name or
    a ready :class:`Codec` instance; unlisted domains fall back to
    :data:`DOMAIN_CODECS`.
    """
    chosen = None
    if codecs is not None:
        chosen = codecs.get(domain)
    if chosen is None:
        chosen = DOMAIN_CODECS[domain]
    if isinstance(chosen, Codec):
        return chosen
    return get_codec(chosen)


class ProtectionPolicy(abc.ABC):
    """Maps line state to protection domains and per-line check bits."""

    name: str

    @abc.abstractmethod
    def domains_for(self, dirty: bool) -> Tuple[ProtectionDomain, ...]:
        """Codes stored for a line in the given state."""

    def check_bits_per_line(
        self,
        line_bytes: int,
        dirty: bool,
        codecs: Optional[dict] = None,
    ) -> int:
        """Total protection bits stored for one line in the given state.

        ``codecs`` overrides the registry defaults per domain (see
        :func:`domain_codec`) so the same policy can be costed with,
        e.g., DECTED or a symbol code in the ECC slot.
        """
        words = line_bytes // 8
        return sum(
            domain_codec(domain, codecs).check_bits_per_word * words
            for domain in self.domains_for(dirty)
            if domain is not ProtectionDomain.NONE
        )

    def recovery_domain(
        self, dirty: bool, codecs: Optional[dict] = None
    ) -> ProtectionDomain:
        """The strongest code available for recovery in the given state."""
        domains = self.domains_for(dirty)
        correcting = [
            d for d in domains
            if d is not ProtectionDomain.NONE
            and domain_codec(d, codecs).corrects
        ]
        if correcting:
            return correcting[0]
        for domain in domains:
            if domain is not ProtectionDomain.NONE:
                return domain
        return ProtectionDomain.NONE


class UniformEccPolicy(ProtectionPolicy):
    """Conventional baseline: SECDED on every line (12.5% area)."""

    name = "uniform-ecc"

    def domains_for(self, dirty: bool) -> Tuple[ProtectionDomain, ...]:
        return (ProtectionDomain.ECC,)


class UniformParityPolicy(ProtectionPolicy):
    """Parity-only (the L1 arrays in POWER4/Itanium)."""

    name = "uniform-parity"

    def domains_for(self, dirty: bool) -> Tuple[ProtectionDomain, ...]:
        return (ProtectionDomain.PARITY,)


class NonUniformPolicy(ProtectionPolicy):
    """The paper's scheme: parity always, ECC while dirty."""

    name = "non-uniform"

    def domains_for(self, dirty: bool) -> Tuple[ProtectionDomain, ...]:
        if dirty:
            return (ProtectionDomain.PARITY, ProtectionDomain.ECC)
        return (ProtectionDomain.PARITY,)


class RecoveryAction(enum.Enum):
    """End-to-end result of reading a (possibly corrupted) line."""

    CLEAN_READ = "clean-read"
    CORRECTED_IN_PLACE = "corrected"
    #: Parity caught an error on a clean line; re-fetched from below.
    REFETCHED = "refetched"
    #: Error detected on a dirty line beyond ECC's correction power.
    DATA_LOSS = "data-loss"
    #: Corrupted data returned with no error signalled.
    SILENT_CORRUPTION = "silent-corruption"

    @property
    def recovered(self) -> bool:
        return self in (
            RecoveryAction.CLEAN_READ,
            RecoveryAction.CORRECTED_IN_PLACE,
            RecoveryAction.REFETCHED,
        )


class LineProtection:
    """One cache line's payload plus its live protection metadata.

    Used by the fault-injection experiments: holds the stored payload
    (which faults corrupt), the golden copy (ground truth, also what a
    refetch from the next memory level returns for a *clean* line), and
    the check bits the active policy mandates.
    """

    def __init__(
        self,
        policy: ProtectionPolicy,
        payload: bytes,
        line_bytes: int = 64,
        codecs: Optional[dict] = None,
    ) -> None:
        if len(payload) != line_bytes:
            raise ValueError(f"payload must be {line_bytes} bytes")
        self.policy = policy
        self.line_bytes = line_bytes
        #: The codecs actually guarding each domain (default: the
        #: registry codes in :data:`DOMAIN_CODECS`; override to study a
        #: different geometry, e.g. DECTED in the ECC domain).
        self.codecs = {
            domain: domain_codec(domain, codecs)
            for domain in (ProtectionDomain.PARITY, ProtectionDomain.ECC)
        }
        self._parity = LineCodec(
            self.codecs[ProtectionDomain.PARITY], line_bytes
        )
        self._ecc = LineCodec(self.codecs[ProtectionDomain.ECC], line_bytes)
        self.dirty = False
        self.payload = bytearray(payload)
        #: Ground truth: what memory holds (clean) or what was written (dirty).
        self.golden = bytes(payload)
        self.parity_checks: Optional[List[int]] = None
        self.ecc_checks: Optional[List[int]] = None
        self._encode()

    def _storage_for(self, domain: ProtectionDomain):
        """(line codec, stored checks) for one protection domain."""
        if domain is ProtectionDomain.ECC:
            return self._ecc, self.ecc_checks
        return self._parity, self.parity_checks

    def _encode(self) -> None:
        """Regenerate check bits for the current payload and state."""
        domains = self.policy.domains_for(self.dirty)
        stored = bytes(self.payload)
        self.parity_checks = (
            self._parity.encode_line(stored)
            if ProtectionDomain.PARITY in domains
            else None
        )
        self.ecc_checks = (
            self._ecc.encode_line(stored)
            if ProtectionDomain.ECC in domains
            else None
        )

    # -- state transitions ---------------------------------------------------

    def write(self, payload: bytes) -> None:
        """Store new data: the line becomes dirty (memory copy now stale)."""
        if len(payload) != self.line_bytes:
            raise ValueError(f"payload must be {self.line_bytes} bytes")
        self.payload = bytearray(payload)
        self.golden = bytes(payload)
        self.dirty = True
        self._encode()

    def clean(self) -> bytes:
        """Write the line back: returns the data sent to memory.

        After cleaning, the line keeps its payload but drops to the
        clean-state protection domain (ECC bits are surrendered).
        """
        data = bytes(self.payload)
        self.dirty = False
        self._encode()
        return data

    def flip(self, byte_idx: int, bit_idx: int) -> None:
        """Inject a fault: flip one stored payload bit (not the golden copy)."""
        if not 0 <= byte_idx < self.line_bytes or not 0 <= bit_idx < 8:
            raise ValueError("flip target out of range")
        self.payload[byte_idx] ^= 1 << bit_idx

    # -- access --------------------------------------------------------------

    def access(self) -> Tuple[RecoveryAction, bytes]:
        """Read the line end-to-end: check, recover, return (action, data).

        The recovery behaviour follows the recovery codec's *contract*,
        not its identity: a correcting code (``codec.corrects``) repairs
        in place and only loses data beyond its correction power; a
        detect-only code refetches clean lines and loses dirty ones.
        """
        # Resolve the recovery domain against the codecs *this line*
        # actually stores: with a detect-only code in the ECC slot the
        # strongest recovery really is the parity column.
        domain = self.policy.recovery_domain(self.dirty, self.codecs)
        stored = bytes(self.payload)

        if (
            domain is not ProtectionDomain.NONE
            and self.codecs[domain].corrects
        ):
            line_codec, checks = self._storage_for(domain)
            assert checks is not None
            outcome, repaired, _ = line_codec.check_line(stored, checks)
            if outcome is CheckOutcome.OK:
                action = (
                    RecoveryAction.CLEAN_READ
                    if repaired == self.golden
                    else RecoveryAction.SILENT_CORRUPTION
                )
                return action, repaired
            if outcome is CheckOutcome.CORRECTED:
                self.payload = bytearray(repaired)
                action = (
                    RecoveryAction.CORRECTED_IN_PLACE
                    if repaired == self.golden
                    else RecoveryAction.SILENT_CORRUPTION
                )
                return action, repaired
            # Uncorrectable on a dirty line: the only up-to-date copy is lost.
            return RecoveryAction.DATA_LOSS, stored

        if domain is not ProtectionDomain.NONE:
            line_codec, checks = self._storage_for(domain)
            assert checks is not None
            outcome, _, _ = line_codec.check_line(stored, checks)
            if outcome is CheckOutcome.OK:
                action = (
                    RecoveryAction.CLEAN_READ
                    if stored == self.golden
                    else RecoveryAction.SILENT_CORRUPTION
                )
                return action, stored
            if self.dirty:
                # Parity detected an error but the only up-to-date copy
                # is the corrupted one: unrecoverable.  This is exactly
                # why the paper insists dirty lines carry ECC.
                return RecoveryAction.DATA_LOSS, stored
            # Clean line, parity mismatch: refetch pristine data from below.
            self.payload = bytearray(self.golden)
            self._encode()
            return RecoveryAction.REFETCHED, bytes(self.payload)

        action = (
            RecoveryAction.CLEAN_READ
            if stored == self.golden
            else RecoveryAction.SILENT_CORRUPTION
        )
        return action, stored


# -- the variant registry -----------------------------------------------------
#
# Mirrors the codec registry (:func:`repro.ecc.register_codec`) and the
# scenario registry (:func:`repro.reliability.register_scenario`): every
# simulation variant — which concrete L2 a sweep cell, an autotune point
# or an API request runs against — is one registration here, and every
# consumer (CLI help, service 400s, the grid canonicalizer, the cell
# builder) enumerates or builds from the registry instead of keeping its
# own list.


@dataclass(frozen=True)
class VariantSpec:
    """One registered simulation variant.

    ``build(geometry, protection, seed)`` returns the L2 under test
    (``protection`` is paper-nominal; builders scale it themselves).
    ``needs_interval`` — the variant is meaningless without a cleaning
    interval (the cell builder rejects ``protection=None``).
    ``collapses_interval`` — the interval axis cannot affect the variant
    (the autotuner's canonicalizer drops it, e.g. for ``eager``).
    ``traffic_aware`` — the variant exists to reduce write traffic
    (silent-write elision, write-back compression); the traffic figures
    and smoke tests select variants by this flag.
    """

    name: str
    description: str
    build: Callable[..., Any]
    needs_interval: bool = False
    collapses_interval: bool = False
    traffic_aware: bool = False


_VARIANTS: Dict[str, VariantSpec] = {}


def register_variant(spec: VariantSpec) -> None:
    """Register a variant (idempotent re-register by name)."""
    if not spec.name:
        raise ValueError("variant name must be non-empty")
    _VARIANTS[spec.name] = spec


def get_variant(name: str) -> VariantSpec:
    try:
        return _VARIANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown variant {name!r}; known: {available_variants()}"
        ) from None


def available_variants() -> List[str]:
    """Registered variant names, ``standard`` first then alphabetical."""
    return sorted(_VARIANTS, key=lambda name: (name != "standard", name))


def traffic_aware_variants() -> List[str]:
    """The registered variants whose point is traffic reduction."""
    return [n for n in available_variants() if _VARIANTS[n].traffic_aware]


def build_variant_l2(
    name: str, geometry, protection, seed: int = 0
) -> Any:
    """Build the L2 a variant runs against (the one cell-builder entry).

    ``geometry`` is a :class:`repro.experiments.runner.Geometry`;
    ``protection`` is the *paper-nominal*
    :class:`~repro.core.protected_cache.ProtectionConfig` (or ``None``
    for the unprotected baseline) — scaling to the geometry happens
    inside the builders, exactly as the figure drivers expect.
    """
    spec = get_variant(name)
    if spec.needs_interval and (
        protection is None or protection.cleaning_interval is None
    ):
        raise ValueError(f"variant {name!r} needs a cleaning interval")
    return spec.build(geometry, protection, seed)


def _scaled_protection(geometry, protection):
    """Paper-nominal protection scaled onto ``geometry``."""
    from repro.core.protected_cache import ProtectionConfig

    return ProtectionConfig(
        cleaning_interval=geometry.scaled_interval(
            protection.cleaning_interval
        ),
        ecc_entries_per_set=protection.ecc_entries_per_set,
    )


# Builders import lazily: the registry lives below the cache layer but
# builds classes from layers above it (runner, ablations, traffic).

def _build_standard(geometry, protection, seed):
    from repro.experiments.runner import build_l2

    return build_l2(geometry, protection, seed=seed)


def _build_eager(geometry, protection, seed):
    from repro.core.eager import EagerL2

    return EagerL2(geometry.hierarchy_config().l2, seed=seed)


def _build_decay(geometry, protection, seed):
    from repro.core.decay import DecayCleaningL2

    return DecayCleaningL2(
        geometry.hierarchy_config().l2,
        _scaled_protection(geometry, protection),
        seed=seed,
    )


def _build_no_written_bit(geometry, protection, seed):
    from repro.experiments.ablations import _NoWrittenBitL2

    return _NoWrittenBitL2(
        geometry.hierarchy_config().l2,
        _scaled_protection(geometry, protection),
        seed=seed,
    )


def _build_silent_write(geometry, protection, seed):
    from repro.core.traffic import SilentWriteL2

    return SilentWriteL2(
        geometry.hierarchy_config().l2,
        _scaled_protection(geometry, protection),
        seed=seed,
    )


def _build_wb_compress(geometry, protection, seed):
    from repro.core.traffic import CompressedWritebackL2

    return CompressedWritebackL2(
        geometry.hierarchy_config().l2,
        _scaled_protection(geometry, protection),
        seed=seed,
    )


register_variant(VariantSpec(
    name="standard",
    description=(
        "plain or paper-protected L2 exactly as the figure drivers "
        "build it"
    ),
    build=_build_standard,
))
register_variant(VariantSpec(
    name="eager",
    description="eager write-back comparator (Lee et al. [7])",
    build=_build_eager,
    collapses_interval=True,
))
register_variant(VariantSpec(
    name="decay",
    description="cache-decay cleaning comparator (idle dirty lines only)",
    build=_build_decay,
    needs_interval=True,
))
register_variant(VariantSpec(
    name="no-written-bit",
    description="cleaning ablation: sweep without the written bit",
    build=_build_no_written_bit,
    needs_interval=True,
))
register_variant(VariantSpec(
    name="silent-write",
    description=(
        "protected L2 with silent-write elision: stores that rewrite "
        "the held value skip the write, the dirty transition and the "
        "ECC update"
    ),
    build=_build_silent_write,
    needs_interval=True,
    traffic_aware=True,
))
register_variant(VariantSpec(
    name="wb-compress",
    description=(
        "protected L2 with frequent-value/zero-line write-back "
        "compression: dirty lines leave the cache at their compressed "
        "size"
    ),
    build=_build_wb_compress,
    needs_interval=True,
    traffic_aware=True,
))
