"""Traffic-aware protection variants: silent-write elision and
write-back compression.

The paper's area argument is a traffic argument in disguise: every
dirty line costs an ECC entry *and* a write-back, so any store that
does not really change memory state pays twice for nothing.  Two
related-work techniques attack that from opposite ends:

* **Silent-write elision** (Kishani et al., "Using Silent Writes in
  Low-Power Traffic-Aware ECC") — a large fraction of stores rewrite
  the value the line already holds.  Detecting them (compare the
  incoming payload with the stored line) lets the cache skip the write,
  the clean->dirty transition and the ECC encode entirely.
* **Write-back compression** — frequent-value / zero-line coding
  shrinks the bytes a dirty line pushes onto the off-chip bus, cutting
  bus energy without touching correctness.

The simulator is trace-driven and address-only (lines carry no
payload), so both classes layer a *deterministic value-tag model* on
top: every block has a value tag, a store draws — from an RNG that is a
pure function of the cache seed and the access order — whether it
rewrites the held tag (a silent store) or produces a fresh one, and the
"compare payload against stored state" rule becomes exact tag equality.
The calibrated default (``silent_fraction=0.35``) matches the
redundant-store fractions the silent-write literature reports;
``docs/traffic.md`` documents the detection rule and the accounting.

Both variants are opt-in subclasses of :class:`ProtectedL2` selected
through the variant registry (``silent-write`` / ``wb-compress`` in
:mod:`repro.core.policy`); the nominal path is untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cache.cache import (
    AccessResult,
    CacheConfig,
    Writeback,
    WritebackReason,
    WritePolicy,
)
from repro.cache.line import CacheLine
from repro.core.protected_cache import ProtectedL2, ProtectionConfig


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of the value-tag traffic model.

    ``silent_fraction``
        Probability a store rewrites the value its line already holds
        (Kishani et al. report 30–45% across SPEC; 0.35 is the
        calibrated default).  ``1.0`` makes every store silent, ``0.0``
        reduces the variant to a plain :class:`ProtectedL2` — both are
        the determinism anchors the tests assert against.
    ``zero_line_fraction`` / ``frequent_value_fraction``
        Fraction of blocks whose content compresses as an all-zero line
        or as frequent-value-table hits; the remainder is incompressible.
    ``zero_line_ratio`` / ``frequent_value_ratio``
        Compression ratios of the two compressible classes (a 64-byte
        zero line leaves as an 8-byte code word at ratio 8).
    """

    silent_fraction: float = 0.35
    zero_line_fraction: float = 0.10
    frequent_value_fraction: float = 0.25
    zero_line_ratio: int = 8
    frequent_value_ratio: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.silent_fraction <= 1.0:
            raise ValueError("silent_fraction must be in [0, 1]")
        if not 0.0 <= self.zero_line_fraction <= 1.0:
            raise ValueError("zero_line_fraction must be in [0, 1]")
        if not 0.0 <= self.frequent_value_fraction <= 1.0:
            raise ValueError("frequent_value_fraction must be in [0, 1]")
        if self.zero_line_fraction + self.frequent_value_fraction > 1.0:
            raise ValueError("compressible fractions must sum to <= 1")
        if self.zero_line_ratio < 1 or self.frequent_value_ratio < 1:
            raise ValueError("compression ratios must be >= 1")


class SilentWriteL2(ProtectedL2):
    """Protected L2 that detects and elides silent writes.

    A store whose incoming value tag equals the stored tag is *silent*:
    the payload, the dirty bit, the written bit and the ECC state are
    all already correct, so the write is dropped.  On a clean line that
    elides the clean->dirty transition and the shared-ECC-array claim
    (``elided_ecc_updates``); on a dirty line it elides the re-encode
    and leaves the written bit alone, so the cleaning FSM retires the
    line on schedule instead of granting it another interval.

    The scheme invariant is preserved by construction: a silent write
    never changes the dirty bit, so ECC-array ownership (exactly the
    dirty ways, checked by :func:`repro.core.scrub.check_invariants`)
    is untouched.
    """

    def __init__(
        self,
        config: CacheConfig,
        protection: Optional[ProtectionConfig] = None,
        seed: int = 0,
        traffic: Optional[TrafficConfig] = None,
    ) -> None:
        super().__init__(config, protection, seed=seed)
        self.traffic = traffic or TrafficConfig()
        #: Store-value stream: a pure function of (seed, store order).
        self._value_rng = random.Random((seed << 1) ^ 0x511E)
        #: Value tag of every block ever stored to; a block's single
        #: up-to-date copy (in cache or in memory) carries this tag.
        self._value_tags: Dict[int, int] = {}
        self._next_tag = 1

    def _handle_write(
        self,
        line: CacheLine,
        set_idx: int,
        way: int,
        cycle: int,
        result: AccessResult,
    ) -> None:
        if self.config.write_policy is WritePolicy.WRITE_THROUGH:
            super()._handle_write(line, set_idx, way, cycle, result)
            return
        block = self.block_addr(set_idx, line.tag)
        stored = self._value_tags.get(block, 0)
        if self._value_rng.random() < self.traffic.silent_fraction:
            incoming = stored  # the store rewrites the held value
        else:
            incoming = self._next_tag
            self._next_tag += 1
        if incoming == stored:
            # Silent write: nothing in the line changes, so the write,
            # the ECC encode and (on a clean line) the dirty transition
            # and ECC-entry claim are all elided.
            self.stats.silent_writes += 1
            self.stats.elided_ecc_updates += 1
            if not line.dirty:
                self.stats.elided_dirty_transitions += 1
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(
                    "silent_write", cycle, cache=self.config.name,
                    set=set_idx, way=way, addr=block, dirty=line.dirty,
                )
            return
        self._value_tags[block] = incoming
        super()._handle_write(line, set_idx, way, cycle, result)


class CompressedWritebackL2(ProtectedL2):
    """Protected L2 whose write-backs leave at their compressed size.

    A frequent-value / zero-line filter on the write-back stream:
    each departing dirty line is classified — deterministically by
    block address, so the same block always compresses the same way —
    as an all-zero line, a frequent-value line, or incompressible, and
    the :class:`~repro.cache.cache.Writeback` it emits carries the
    compressed byte count.  The hierarchy charges main memory (and so
    the bus-energy model) those bytes; ``wb_bytes_raw`` versus
    ``wb_bytes_compressed`` report the reduction.
    """

    def __init__(
        self,
        config: CacheConfig,
        protection: Optional[ProtectionConfig] = None,
        seed: int = 0,
        traffic: Optional[TrafficConfig] = None,
    ) -> None:
        super().__init__(config, protection, seed=seed)
        self.traffic = traffic or TrafficConfig()
        self._compress_seed = seed & 0xFFFFFFFF

    def compressed_line_bytes(self, addr: int) -> int:
        """Compressed size of the line holding ``addr``, in bytes."""
        line_bytes = self.config.line_bytes
        block = addr >> self._offset_bits
        # Knuth multiplicative hash: an address-stable content class.
        h = ((block * 2654435761) ^ self._compress_seed) & 0xFFFFFFFF
        u = h / 4294967296.0
        cfg = self.traffic
        if u < cfg.zero_line_fraction:
            return max(1, line_bytes // cfg.zero_line_ratio)
        if u < cfg.zero_line_fraction + cfg.frequent_value_fraction:
            return max(1, line_bytes // cfg.frequent_value_ratio)
        return line_bytes

    def compression_ratio(self) -> float:
        """Raw over compressed write-back bytes (1.0 before any WB)."""
        if self.stats.wb_bytes_compressed == 0:
            return 1.0
        return self.stats.wb_bytes_raw / self.stats.wb_bytes_compressed

    def _writeback_line(
        self,
        set_idx: int,
        way: int,
        cycle: int,
        result: AccessResult,
        reason: WritebackReason,
    ) -> None:
        super()._writeback_line(set_idx, way, cycle, result, reason)
        wb = result.writebacks[-1]
        raw = self.config.line_bytes
        compressed = self.compressed_line_bytes(wb.addr)
        self.stats.wb_bytes_raw += raw
        self.stats.wb_bytes_compressed += compressed
        result.writebacks[-1] = Writeback(
            addr=wb.addr, reason=wb.reason, bytes=compressed
        )
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "wb_compress", cycle, cache=self.config.name,
                addr=wb.addr, raw_bytes=raw, compressed_bytes=compressed,
            )


__all__ = ["CompressedWritebackL2", "SilentWriteL2", "TrafficConfig"]
