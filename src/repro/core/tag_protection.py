"""Tag-array protection semantics.

Both the conventional design and the paper's scheme guard each L2 tag
(and its status bits) with a 1-bit parity code, "as in Itanium
processor" — 2 KB each for the 16K-line L2.  This module models what a
tag-parity error *means* end to end:

* On a **clean** line, a detected tag error is recoverable: the line's
  identity is untrustworthy, so the controller invalidates it and the
  next access refetches from below.  A read of that address simply
  misses.
* On a **dirty** line, the only up-to-date copy's *address* is lost —
  the data cannot be written back anywhere trustworthy.  That is data
  loss, exactly parallel to the data-array argument for ECC on dirty
  lines.  (Real designs accept this residual risk for single-bit tag
  parity, in both the conventional and proposed schemes; the paper's
  area accounting includes the same 1-bit tag parity for both.)

An undetected (even-weight) tag flip silently aliases the line to a
different address — classified here so campaigns can count it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ecc.parity import _parity64


class TagOutcome(enum.Enum):
    """End-to-end result of accessing a line via a (possibly hit) tag."""

    OK = "ok"
    #: Clean line, parity caught the flip: invalidate + refetch.
    INVALIDATED_REFETCH = "invalidated-refetch"
    #: Dirty line, parity caught the flip: the write-back address is lost.
    DATA_LOSS = "data-loss"
    #: Even number of flips: the tag silently names another address.
    SILENT_ALIAS = "silent-alias"


@dataclass
class ProtectedTag:
    """One tag field with its parity bit."""

    tag: int
    tag_bits: int = 24

    def __post_init__(self) -> None:
        if not 0 <= self.tag < (1 << self.tag_bits):
            raise ValueError("tag out of range for tag_bits")
        self.stored = self.tag
        self.parity = _parity64(self.tag)

    def flip(self, bit: int) -> None:
        """Soft error: flip one stored tag bit."""
        if not 0 <= bit < self.tag_bits:
            raise ValueError("tag bit out of range")
        self.stored ^= 1 << bit

    def check(self, dirty: bool) -> TagOutcome:
        """Classify the stored tag's state for a line of given dirtiness."""
        if _parity64(self.stored) != self.parity:
            return (
                TagOutcome.DATA_LOSS if dirty
                else TagOutcome.INVALIDATED_REFETCH
            )
        if self.stored != self.tag:
            return TagOutcome.SILENT_ALIAS
        return TagOutcome.OK

    def repair(self) -> None:
        """Refetch path: restore the true tag (new fill from below)."""
        self.stored = self.tag
        self.parity = _parity64(self.tag)
