"""Integrity checks over a protected L2's state.

These validate the invariants the paper's design relies on (and which
our tests assert after every workload):

1. At most ``entries_per_set`` dirty lines per set — otherwise some
   dirty line would have no ECC protection.
2. ECC entry ownership matches dirtiness exactly: every dirty line owns
   an entry and every owned entry belongs to a valid dirty line (this is
   what lets the hardware identify the line of an evicted ECC entry by
   its dirty bit alone).
3. The incremental dirty-count integrator matches a full scan.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.core.protected_cache import ProtectedL2


class IntegrityError(AssertionError):
    """A protected-cache invariant was violated."""


def check_invariants(cache: SetAssociativeCache) -> None:
    """Raise :class:`IntegrityError` on any invariant violation."""
    actual_dirty = cache.dirty_line_count()
    if actual_dirty != cache.dirty.dirty_count:
        raise IntegrityError(
            f"dirty integrator {cache.dirty.dirty_count} != scan {actual_dirty}"
        )

    if not isinstance(cache, ProtectedL2) or cache.ecc_array is None:
        return

    per_set_cap = cache.ecc_array.entries_per_set
    for set_idx, ways in enumerate(cache.sets):
        dirty_ways = {
            w for w, line in enumerate(ways) if line.valid and line.dirty
        }
        if len(dirty_ways) > per_set_cap:
            raise IntegrityError(
                f"set {set_idx}: {len(dirty_ways)} dirty lines exceed "
                f"{per_set_cap} ECC entries"
            )
        owners = set(cache.ecc_array.owners(set_idx))
        if owners != dirty_ways:
            raise IntegrityError(
                f"set {set_idx}: ECC owners {sorted(owners)} != dirty ways "
                f"{sorted(dirty_ways)}"
            )
