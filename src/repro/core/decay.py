"""Decay-based cleaning: the cache-decay [12] alternative to written bits.

The paper's written-bit heuristic is inspired by Kaxiras et al.'s cache
decay, which turns off lines untouched for a decay interval.  A natural
alternative cleaning policy, then, is *access* decay: write back a dirty
line that has not been touched (read **or** written) for a full
interval.  Compared to the paper's design:

* decay needs a per-line time record (Kaxiras use 2-bit hierarchical
  counters ≈ 2 bits/line) versus the paper's single written bit;
* decay will not clean a line that is still being *read* frequently but
  never written again — exactly the lines the paper's heuristic
  reclaims (read-hot, write-dead), so it leaves more ECC entries
  occupied;
* decay is more conservative about traffic: a line gets cleaned only
  when fully idle.

Used by the cleaning-policy ablation.
"""

from __future__ import annotations

from repro.cache.cache import AccessResult, WritebackReason
from repro.core.protected_cache import ProtectedL2


class DecayCleaningL2(ProtectedL2):
    """Protected L2 whose sweep cleans fully-idle dirty lines instead.

    A visited dirty line is written back when its last access (of any
    kind) is at least one cleaning interval old; the written bit is
    ignored.
    """

    def advance(self, cycle: int):
        if self.cleaning is None:
            return []
        interval = self.cleaning.interval_cycles
        result = AccessResult(hit=False, is_write=False)
        for set_idx in self.cleaning.due_sets(cycle):
            for way, line in enumerate(self.sets[set_idx]):
                if not line.valid or not line.dirty:
                    continue
                if cycle - line.last_touch_cycle >= interval:
                    self._writeback_line(
                        set_idx, way, cycle, result, WritebackReason.CLEANING
                    )
        return result.writebacks
