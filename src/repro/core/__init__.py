"""The paper's contribution: area-efficient error protection for the L2.

Three cooperating techniques (Section 3 of the paper):

* **Non-uniform protection** (:mod:`repro.core.policy`): parity on every
  line, SECDED ECC only on dirty lines.
* **Dirty-line cleaning** (:mod:`repro.core.cleaning`): a written-bit
  heuristic plus a set-sweeping FSM that writes back write-dead dirty
  lines.
* **Shared ECC array** (:mod:`repro.core.ecc_array`): one ECC entry per
  set instead of one per line, enforced by ECC-entry-eviction
  write-backs.

:class:`~repro.core.protected_cache.ProtectedL2` integrates all three
into a drop-in replacement for the plain L2 of
:mod:`repro.cache.hierarchy`, and :mod:`repro.core.area` reproduces the
paper's 59% area-overhead reduction arithmetic.
"""

from repro.core.area import (
    AreaBreakdown,
    codec_area_table,
    conventional_overhead,
    li_et_al_overhead,
    proposed_overhead,
    reduction,
)
from repro.core.cleaning import CleaningLogic
from repro.core.decay import DecayCleaningL2
from repro.core.ecc_array import SharedEccArray
from repro.core.eager import EagerL2
from repro.core.hotlines import HotLineTable
from repro.core.icr import IcrCache
from repro.core.policy import (
    DOMAIN_CODECS,
    LineProtection,
    NonUniformPolicy,
    ProtectionDomain,
    ProtectionPolicy,
    UniformEccPolicy,
    UniformParityPolicy,
    VariantSpec,
    available_variants,
    build_variant_l2,
    domain_codec,
    get_variant,
    register_variant,
    traffic_aware_variants,
)
from repro.core.protected_cache import ProtectedL2, ProtectionConfig
from repro.core.scrub import IntegrityError, check_invariants
from repro.core.tag_protection import ProtectedTag, TagOutcome
from repro.core.traffic import (
    CompressedWritebackL2,
    SilentWriteL2,
    TrafficConfig,
)

__all__ = [
    "AreaBreakdown",
    "DOMAIN_CODECS",
    "CleaningLogic",
    "CompressedWritebackL2",
    "DecayCleaningL2",
    "EagerL2",
    "HotLineTable",
    "IcrCache",
    "IntegrityError",
    "LineProtection",
    "NonUniformPolicy",
    "ProtectedL2",
    "ProtectedTag",
    "ProtectionConfig",
    "ProtectionDomain",
    "ProtectionPolicy",
    "SharedEccArray",
    "SilentWriteL2",
    "TagOutcome",
    "TrafficConfig",
    "UniformEccPolicy",
    "UniformParityPolicy",
    "VariantSpec",
    "available_variants",
    "build_variant_l2",
    "check_invariants",
    "codec_area_table",
    "conventional_overhead",
    "domain_codec",
    "get_variant",
    "li_et_al_overhead",
    "proposed_overhead",
    "reduction",
    "register_variant",
    "traffic_aware_variants",
]
