"""The shared ECC array (Section 3.3, Figure 2 right).

Conventionally every cache way has its own ECC-bits array.  The paper
keeps one small ECC array for *all* ways: each cache set owns
``entries_per_set`` ECC entries (one, in the paper's configuration), so
at most that many lines per set may be dirty at a time.  A write that
needs an entry in a set whose entries are all taken *evicts* one entry,
which forces the dirty line it protected to be written back (the paper's
ECC-WB traffic) — the line stays resident but clean, protected by parity
alone.

This module is pure bookkeeping: who owns which entry.  The forced
write-backs are performed by :class:`repro.core.protected_cache.ProtectedL2`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.telemetry.metrics import StatsSourceMixin


@dataclass
class EccArrayStats(StatsSourceMixin):
    labels = {"component": "ecc-array"}

    allocations: int = 0
    releases: int = 0
    #: Entry evictions = forced ECC-WB write-backs.
    evictions: int = 0


class SharedEccArray:
    """Per-set ECC entry ownership with FIFO entry replacement."""

    labels = {"component": "ecc-array"}

    def __init__(self, n_sets: int, entries_per_set: int = 1) -> None:
        if n_sets <= 0 or entries_per_set <= 0:
            raise ValueError("n_sets and entries_per_set must be positive")
        self.n_sets = n_sets
        self.entries_per_set = entries_per_set
        #: Per set, the way indices owning an entry, in allocation (FIFO) order.
        self._owners: List[List[int]] = [[] for _ in range(n_sets)]
        self.stats = EccArrayStats()

    # -- queries -----------------------------------------------------------

    def owners(self, set_idx: int) -> List[int]:
        """Way indices currently holding an ECC entry in ``set_idx``."""
        return list(self._owners[set_idx])

    def holds(self, set_idx: int, way: int) -> bool:
        return way in self._owners[set_idx]

    def free_entries(self, set_idx: int) -> int:
        return self.entries_per_set - len(self._owners[set_idx])

    @property
    def total_entries(self) -> int:
        return self.n_sets * self.entries_per_set

    def used_entries(self) -> int:
        return sum(len(o) for o in self._owners)

    def as_dict(self) -> Dict[str, int]:
        d = self.stats.as_dict()
        d["used_entries"] = self.used_entries()
        return d

    def reset(self, cycle: int = 0) -> None:
        """Zero the counters; entry ownership is state, not statistics."""
        self.stats.reset(cycle)

    # -- mutations ---------------------------------------------------------

    def allocate(self, set_idx: int, way: int) -> Optional[int]:
        """Grant ``way`` an entry in ``set_idx``.

        Returns the way whose entry was evicted to make room, or None if
        a free entry existed.  Allocating for a way that already owns an
        entry is an error (the caller should have updated in place).
        """
        owners = self._owners[set_idx]
        if way in owners:
            raise ValueError(
                f"way {way} already owns an ECC entry in set {set_idx}"
            )
        evicted: Optional[int] = None
        if len(owners) >= self.entries_per_set:
            evicted = owners.pop(0)
            self.stats.evictions += 1
        owners.append(way)
        self.stats.allocations += 1
        return evicted

    def release(self, set_idx: int, way: int) -> bool:
        """Drop ``way``'s entry (line cleaned or evicted); False if absent."""
        owners = self._owners[set_idx]
        if way not in owners:
            return False
        owners.remove(way)
        self.stats.releases += 1
        return True
