"""Hot-line-only protection: the Kim & Somani [9] comparator.

Kim & Somani protect only *frequently accessed* cache lines, using a
small separate protection structure, on the observation that a small
portion of the cache receives most accesses.  The paper under
reproduction contrasts itself directly: "In contrast, our scheme
provides error protection for all cache lines in the context of larger
L2/L3 caches."

This module models the essence of [9]: an N-entry table tracks the most
recently/frequently used lines; only lines with a table entry carry
ECC.  Its figure of merit is *coverage* — the fraction of accesses (and
of resident dirty data) that is actually protected — as a function of
the table size, i.e. of area.  The reproduction's related-work bench
plots coverage vs area against the paper's scheme, which achieves 100%
coverage by construction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class HotLineStats:
    accesses: int = 0
    covered_accesses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of accesses that touched a protected line."""
        if self.accesses == 0:
            return 0.0
        return self.covered_accesses / self.accesses


class HotLineTable:
    """MRU-managed table of protected block addresses.

    ``touch`` is called on every cache access: a hit refreshes the
    entry; a miss inserts the block, evicting the least recently used
    entry when full (modelling [9]'s limited protection circuits).
    The access is *covered* when the block already had an entry — newly
    inserted lines were unprotected until now, so a strike preceding
    this access would have been unseen.
    """

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError("table needs at least one entry")
        self.entries = entries
        self._table: "OrderedDict[int, bool]" = OrderedDict()
        self.stats = HotLineStats()

    def __len__(self) -> int:
        return len(self._table)

    def covers(self, block: int) -> bool:
        """Non-mutating: is ``block`` currently protected?"""
        return block in self._table

    def touch(self, block: int) -> bool:
        """Record an access to ``block``; return True if it was covered."""
        self.stats.accesses += 1
        if block in self._table:
            self._table.move_to_end(block)
            self.stats.covered_accesses += 1
            return True
        if len(self._table) >= self.entries:
            self._table.popitem(last=False)
            self.stats.evictions += 1
        self._table[block] = True
        self.stats.insertions += 1
        return False

    def protected_blocks(self) -> set:
        return set(self._table)


def coverage_for_stream(refs, entries: int, line_bytes: int = 64) -> HotLineStats:
    """Run a reference stream through an N-entry hot-line table."""
    table = HotLineTable(entries)
    shift = line_bytes.bit_length() - 1
    for ref in refs:
        table.touch(ref.addr >> shift)
    return table.stats
