"""The paper's protected L2: cleaning + shared ECC array in one cache.

:class:`ProtectedL2` extends the generic write-back cache with the three
Section-3 techniques.  All configurations used in the paper's evaluation
are expressible:

* Figure 1 baseline — ``ProtectionConfig(cleaning_interval=None,
  ecc_entries_per_set=None)`` (equivalently, a plain cache): dirty
  residency of the conventional design.
* Figures 3–6 — cleaning enabled, unconstrained ECC (sweep the interval).
* Figures 7–8 — cleaning *and* the 1-entry-per-set shared ECC array.

The class maintains the scheme's central invariant: the number of dirty
lines in a set never exceeds the set's ECC entries, and exactly the
dirty lines own entries (checked by :mod:`repro.core.scrub`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.cache import (
    AccessResult,
    CacheConfig,
    SetAssociativeCache,
    WritebackReason,
    WritePolicy,
)
from repro.cache.line import CacheLine
from repro.core.cleaning import CleaningLogic
from repro.core.ecc_array import SharedEccArray
from repro.core.policy import NonUniformPolicy


@dataclass
class ProtectionConfig:
    """Knobs of the paper's scheme.

    ``cleaning_interval``
        Per-line check period in cycles (the paper sweeps 64K…4M);
        ``None`` disables cleaning.
    ``ecc_entries_per_set``
        Size of the shared ECC array in entries per set (the paper uses
        1, i.e. a 32 KB array for the 1 MB L2); ``None`` removes the
        constraint (an ECC entry per line, as when studying cleaning
        alone in Figures 3–6).
    """

    cleaning_interval: Optional[int] = 1_000_000
    ecc_entries_per_set: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.cleaning_interval is not None and self.cleaning_interval <= 0:
            raise ValueError("cleaning_interval must be positive or None")
        if self.ecc_entries_per_set is not None and self.ecc_entries_per_set <= 0:
            raise ValueError("ecc_entries_per_set must be positive or None")


class ProtectedL2(SetAssociativeCache):
    """Write-back L2 with non-uniform protection, cleaning and shared ECC."""

    def __init__(
        self,
        config: CacheConfig,
        protection: Optional[ProtectionConfig] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(config, seed=seed)
        self.protection = protection or ProtectionConfig()
        self.protection_policy = NonUniformPolicy()
        self.cleaning: Optional[CleaningLogic] = None
        if self.protection.cleaning_interval is not None:
            self.cleaning = CleaningLogic(
                n_sets=self.n_sets,
                interval_cycles=self.protection.cleaning_interval,
            )
        self.ecc_array: Optional[SharedEccArray] = None
        if self.protection.ecc_entries_per_set is not None:
            self.ecc_array = SharedEccArray(
                n_sets=self.n_sets,
                entries_per_set=self.protection.ecc_entries_per_set,
            )

    # -- background cleaning sweep -------------------------------------------

    def advance(self, cycle: int):
        """Run all cleaning checks due by ``cycle`` (Figure 2 FSM).

        For each visited set: a line with ``dirty=1, written=0`` is
        predicted write-dead and written back (Clean-WB); a line with
        ``written=1`` has its written bit reset — it gets one more
        interval to prove it has stopped being written.
        """
        if self.cleaning is None:
            return []
        result = AccessResult(hit=False, is_write=False)
        for set_idx in self.cleaning.due_sets(cycle):
            for way, line in enumerate(self.sets[set_idx]):
                if not line.valid or not line.dirty:
                    continue
                if line.written:
                    line.written = False
                else:
                    self._writeback_line(
                        set_idx, way, cycle, result, WritebackReason.CLEANING
                    )
        return result.writebacks

    # -- write path with ECC-entry allocation ----------------------------------

    def _handle_write(
        self,
        line: CacheLine,
        set_idx: int,
        way: int,
        cycle: int,
        result: AccessResult,
    ) -> None:
        if self.config.write_policy is WritePolicy.WRITE_THROUGH:
            # Write-through lines never turn dirty, so they need neither
            # cleaning nor an ECC entry — forward like the base cache.
            super()._handle_write(line, set_idx, way, cycle, result)
            return
        if not line.dirty and self.ecc_array is not None:
            # The line is about to turn dirty and must own an ECC entry.
            self._claim_ecc_entry(set_idx, way, cycle, result)
        self._mark_dirty(line, set_idx, way, cycle)

    def _claim_ecc_entry(
        self, set_idx: int, way: int, cycle: int, result: AccessResult
    ) -> None:
        """Allocate an ECC entry for ``way``, evicting another if needed.

        Eviction forces the displaced dirty line to be written back to
        memory right now — it can no longer be ECC-protected (ECC-WB).
        """
        assert self.ecc_array is not None
        evicted_way = self.ecc_array.allocate(set_idx, way)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "ecc_claim", cycle, cache=self.config.name, set=set_idx,
                way=way,
            )
            if evicted_way is not None:
                tracer.emit(
                    "ecc_evict", cycle, cache=self.config.name, set=set_idx,
                    evicted_way=evicted_way, for_way=way,
                )
        if evicted_way is None:
            return
        victim = self.sets[set_idx][evicted_way]
        if not (victim.valid and victim.dirty):
            raise AssertionError(
                "ECC array evicted an entry not owned by a dirty line"
            )
        self._writeback_line(
            set_idx, evicted_way, cycle, result, WritebackReason.ECC_EVICTION
        )

    # -- every clean transition releases the line's ECC entry ------------------

    def _writeback_line(
        self,
        set_idx: int,
        way: int,
        cycle: int,
        result: AccessResult,
        reason: WritebackReason,
    ) -> None:
        super()._writeback_line(set_idx, way, cycle, result, reason)
        if self.ecc_array is not None and reason is not WritebackReason.ECC_EVICTION:
            released = self.ecc_array.release(set_idx, way)
            if not released:
                raise AssertionError(
                    f"dirty line (set {set_idx}, way {way}) had no ECC entry"
                )

    # -- telemetry --------------------------------------------------------------

    def reset(self, cycle: int = 0) -> None:
        """Measurement boundary covering the scheme's own counters too."""
        super().reset(cycle)
        if self.ecc_array is not None:
            self.ecc_array.reset(cycle)
        if self.cleaning is not None:
            self.cleaning.reset(cycle)

    # -- reporting --------------------------------------------------------------

    def writeback_breakdown(self) -> dict:
        """Write-back counts by cause (the paper's Figure 8 partition)."""
        return {
            "WB": self.stats.writebacks_replacement,
            "Clean-WB": self.stats.writebacks_cleaning,
            "ECC-WB": self.stats.writebacks_ecc_eviction,
        }


__all__ = ["ProtectedL2", "ProtectionConfig"]
