"""Eager write-back baseline (Lee, Tyson & Farrens [7]).

Comparator for the ablation benchmarks: instead of the paper's
written-bit cleaning, a dirty line is written back as soon as it reaches
the LRU position of its set (it is then the next replacement candidate,
so its write-back is performed early to smooth bus traffic).  The line
stays resident and clean.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.cache import (
    AccessResult,
    CacheConfig,
    SetAssociativeCache,
    WritebackReason,
)
from repro.cache.line import CacheLine


class EagerL2(SetAssociativeCache):
    """Write-back L2 with eager write-back of LRU dirty lines."""

    def __init__(self, config: CacheConfig, seed: int = 0) -> None:
        if config.replacement.lower() != "lru":
            raise ValueError("eager write-back is defined for LRU caches")
        super().__init__(config, seed=seed)

    def access(self, addr: int, is_write: bool, cycle: int) -> AccessResult:
        result = super().access(addr, is_write, cycle)
        set_idx, _ = self.locate(addr)
        self._eagerly_clean_lru(set_idx, cycle, result)
        return result

    def _eagerly_clean_lru(
        self, set_idx: int, cycle: int, result: AccessResult
    ) -> None:
        """Write back the set's LRU line if it is dirty."""
        way = self._lru_way(set_idx)
        if way is None:
            return
        line = self.sets[set_idx][way]
        if line.dirty:
            self._writeback_line(
                set_idx, way, cycle, result, WritebackReason.EAGER
            )

    def _lru_way(self, set_idx: int) -> Optional[int]:
        """Index of the least-recently-used valid way, or None if any invalid."""
        ways = self.sets[set_idx]
        victim: Optional[int] = None
        oldest = None
        for i, line in enumerate(ways):
            if not line.valid:
                return None  # set not full: no replacement pressure yet
            if oldest is None or line.lru_stamp < oldest:
                victim, oldest = i, line.lru_stamp
        return victim

    def lru_dirty_line(self, set_idx: int) -> Optional[CacheLine]:
        """The dirty LRU line of ``set_idx`` if one exists (for tests)."""
        way = self._lru_way(set_idx)
        if way is None:
            return None
        line = self.sets[set_idx][way]
        return line if line.dirty else None
