"""Area-overhead model (Section 5.2 arithmetic).

Reproduces the paper's accounting exactly for the default 1 MB / 4-way /
64 B-line L2 with a 4K-entry shared ECC array:

* conventional: 128 KB data ECC + 4 KB tag/status protection = 132 KB
* proposed: 16 KB data parity + 2 KB written bits + 2 KB tag parity
  + 2 KB status parity + 32 KB ECC array = 54 KB

→ a 59% reduction.  All quantities are parameterised over the cache
geometry so the model generalises to other L2/L3 configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cache.cache import CacheConfig

#: SECDED check bits per 64 data bits (Itanium-style, 12.5%).
ECC_BITS_PER_WORD = 8
#: Parity bits per 64 data bits.
PARITY_BITS_PER_WORD = 1
DATA_WORD_BITS = 64


@dataclass(frozen=True)
class AreaBreakdown:
    """Protection storage, by component, in bits."""

    scheme: str
    components: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bits(self) -> int:
        return sum(self.components.values())

    @property
    def total_kib(self) -> float:
        return self.total_bits / 8 / 1024

    def component_kib(self, name: str) -> float:
        return self.components[name] / 8 / 1024

    def rows(self):
        """(name, bits, KiB) rows plus a total row, for reporting."""
        out = [
            (name, bits, bits / 8 / 1024)
            for name, bits in self.components.items()
        ]
        out.append(("total", self.total_bits, self.total_kib))
        return out


def _words_per_line(config: CacheConfig) -> int:
    return (config.line_bytes * 8) // DATA_WORD_BITS


def _ecc_bits_per_word(ecc_codec: str) -> int:
    """Check bits per 64-bit word of the code in the ECC slot.

    The default answers from the module constant (no registry import on
    the paper's own path); any other name is resolved through the codec
    registry, so the area tables follow the same ``check_bits_per_word``
    contract as the fault model.
    """
    if ecc_codec == "secded":
        return ECC_BITS_PER_WORD
    from repro.ecc import get_codec

    return get_codec(ecc_codec).check_bits_per_word


def conventional_overhead(
    config: CacheConfig,
    tag_status_bits_per_line: int = 2,
    ecc_codec: str = "secded",
) -> AreaBreakdown:
    """Protection storage of the conventional uniformly-ECC L2.

    ``tag_status_bits_per_line`` reproduces the paper's "4 KB for the
    tag array and status bits" for the 16K-line default geometry.
    ``ecc_codec`` re-costs the design with a different code in the ECC
    slot (e.g. ``dected``, ``rs-symbol``) via its registered
    ``check_bits_per_word``.
    """
    lines = config.n_lines
    words = _words_per_line(config)
    return AreaBreakdown(
        scheme="conventional",
        components={
            "data ECC": lines * words * _ecc_bits_per_word(ecc_codec),
            "tag+status protection": lines * tag_status_bits_per_line,
        },
    )


def proposed_overhead(
    config: CacheConfig,
    ecc_entries_per_set: int = 1,
    ecc_codec: str = "secded",
) -> AreaBreakdown:
    """Protection storage of the paper's scheme.

    Per line: data parity (1 bit / 64 data bits), one written bit, one
    tag-parity bit and one status-parity bit.  Plus the shared ECC array
    of ``ecc_entries_per_set`` full-line entries per set, sized by
    ``ecc_codec``'s check-bit geometry (default SECDED).
    """
    lines = config.n_lines
    words = _words_per_line(config)
    ecc_entry_bits = words * _ecc_bits_per_word(ecc_codec)
    return AreaBreakdown(
        scheme="proposed",
        components={
            "data parity": lines * words * PARITY_BITS_PER_WORD,
            "written bits": lines,
            "tag parity": lines,
            "status parity": lines,
            "ECC array": config.n_sets * ecc_entries_per_set * ecc_entry_bits,
        },
    )


def codec_area_table(config: CacheConfig):
    """(codec, check bits/word, data-array KiB, overhead %) per codec.

    The per-codec storage cost of protecting every data word of the
    cache — the area column of the "which code for which scenario"
    comparison in ``docs/codecs.md``.
    """
    from repro.ecc import available_codecs, get_codec

    lines = config.n_lines
    words = _words_per_line(config)
    rows = []
    for name in available_codecs():
        bits = get_codec(name).check_bits_per_word
        total = lines * words * bits
        rows.append((
            name,
            bits,
            total / 8 / 1024,
            100.0 * bits / DATA_WORD_BITS,
        ))
    return rows


def li_et_al_overhead(
    config: CacheConfig, tag_status_bits_per_line: int = 2
) -> AreaBreakdown:
    """Protection storage of Li et al.'s scheme [11] applied at this level.

    Li et al. use parity for clean lines and ECC for dirty lines with
    periodic write-back — but keep a *full per-line ECC array* (their
    goal is energy, not area).  The paper's related-work section makes
    exactly this point: "Their scheme, however, does not provide area
    reduction."  With both code arrays plus written bits present, the
    overhead exceeds the conventional design's.
    """
    lines = config.n_lines
    words = _words_per_line(config)
    return AreaBreakdown(
        scheme="li-et-al",
        components={
            "data parity": lines * words * PARITY_BITS_PER_WORD,
            "data ECC": lines * words * ECC_BITS_PER_WORD,
            "written bits": lines,
            "tag+status protection": lines * tag_status_bits_per_line,
        },
    )


def reduction(conventional: AreaBreakdown, proposed: AreaBreakdown) -> float:
    """Fractional area-overhead reduction (the paper reports 0.59)."""
    if conventional.total_bits == 0:
        raise ValueError("conventional overhead is zero")
    return 1.0 - proposed.total_bits / conventional.total_bits
