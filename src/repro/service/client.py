"""Stdlib HTTP client for the repro job service.

Thin ``urllib`` wrapper speaking the :mod:`repro.service.server` wire
protocol: submit a request document, follow its NDJSON progress stream,
fetch the result document.  Used by the CI smoke script and the tests;
any HTTP client works equally well.

The wire protocol is versioned: every response body and streamed event
must carry ``"schema": "repro/v1"`` (:data:`repro.api.SCHEMA`).  A
document without it — or with a version this client does not speak — is
a :class:`repro.api.ReproError`, not a silent best-effort parse; the
tag is stripped before the document is returned, so callers compare
payloads against the facade's ``as_dict()`` output unchanged.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.api import SCHEMA, ReproError


class ServiceError(Exception):
    """An HTTP-level failure, carrying the server's error text."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


def _check_schema(doc: Any) -> Any:
    """Validate and strip the ``repro/v1`` envelope tag."""
    if not isinstance(doc, dict):
        return doc
    schema = doc.get("schema")
    if schema != SCHEMA:
        raise ReproError(
            f"service response schema {schema!r} is not {SCHEMA!r}; "
            "refusing to parse a document from an incompatible server"
        )
    return {key: value for key, value in doc.items() if key != "schema"}


class ServiceClient:
    """Client for one service base URL (e.g. ``http://127.0.0.1:8642``)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request_status(
        self,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> tuple:
        """(HTTP status, decoded JSON body); raises on 4xx/5xx."""
        request = urllib.request.Request(
            self.base_url + path,
            data=None if body is None else json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
            method="GET" if body is None else "POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            ) as response:
                return response.status, _check_schema(
                    json.loads(response.read())
                )
        except urllib.error.HTTPError as err:
            raw = err.read()
            try:
                message = json.loads(raw).get("error", raw.decode())
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = raw.decode(errors="replace")
            raise ServiceError(err.code, message) from None

    def _request(
        self,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self._request_status(path, body, timeout)[1]

    # -- endpoints ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("/v1/health")

    def healthz(self) -> Dict[str, Any]:
        return self._request("/v1/healthz")

    def workers(self) -> Dict[str, Any]:
        """Fabric worker registry: every replica on this data dir."""
        return self._request("/v1/workers")

    def kinds(self) -> Dict[str, Any]:
        return self._request("/v1/kinds")["kinds"]

    def submit(
        self, kind: str, request: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """Submit one request; returns ``{"job": {...}, "created": bool}``."""
        return self._request(
            "/v1/jobs", body={"kind": kind, "request": dict(request or {})}
        )

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request(f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation; returns the (possibly already
        terminal) job document."""
        return self._request(f"/v1/jobs/{job_id}/cancel", body={})

    def jobs(self) -> Any:
        return self._request("/v1/jobs")["jobs"]

    def stream_events(
        self, job_id: str, start: int = 0
    ) -> Iterator[Dict[str, Any]]:
        """Follow a job's NDJSON progress stream until it terminates."""
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/events?start={start}"
        )
        with urllib.request.urlopen(request) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield _check_schema(json.loads(line))

    def result(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job finishes; returns its result document.

        Raises :class:`ServiceError` (status 500) if the job failed, or
        :class:`TimeoutError` if it is still running after ``timeout``.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still pending after {timeout}s"
                )
            wait = min(remaining, 10.0)
            status, doc = self._request_status(
                f"/v1/jobs/{job_id}/result?wait={wait:.1f}",
                timeout=wait + self.timeout,
            )
            if status == 200:
                return doc
            time.sleep(min(poll, max(deadline - time.monotonic(), 0)))

    def run_to_completion(
        self,
        kind: str,
        request: Optional[Mapping[str, Any]] = None,
        timeout: float = 300.0,
    ) -> Dict[str, Any]:
        """Submit, wait, and return the result document."""
        job_id = self.submit(kind, request)["job"]["id"]
        return self.result(job_id, timeout=timeout)


__all__ = ["ServiceClient", "ServiceError"]
