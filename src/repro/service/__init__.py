"""Long-running job service over the :mod:`repro.api` facade.

``repro serve`` turns the facade into a stdlib-only HTTP job server:
clients POST request documents (run / ipc / sweep / figure / ablation /
reliability-campaign), the service dedupes them against
content-addressed request keys (identical concurrent submissions share
one execution), streams progress as NDJSON or SSE events sourced from
the engines' telemetry hooks, and survives restarts — simulation cells
persist in the shared on-disk result cache and campaigns resume from
their JSONL checkpoints.

Several replicas pointed at one ``--data-dir`` form a **fabric**: a
shared SQLite store (:mod:`repro.service.fabric`) registers workers,
caches finished result documents cluster-wide, and lets concurrently
running reliability campaigns lease shards from each other (with
lease-expiry work stealing when a replica dies) — the merged estimate
stays bit-identical to a single-node run.

* :mod:`repro.service.jobs` — the :class:`Job` model and deduplicating
  :class:`JobStore` worker pool;
* :mod:`repro.service.fabric` — the shared :class:`FabricStore` and
  per-campaign :class:`ShardCoordinator`;
* :mod:`repro.service.server` — the HTTP endpoints
  (:class:`ReproService`);
* :mod:`repro.service.client` — a stdlib client
  (:class:`ServiceClient`).

See ``docs/service.md`` for the protocol and examples.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.fabric import (
    FabricStore,
    ShardCoordinator,
    default_replica_id,
)
from repro.service.jobs import JOB_STATES, Job, JobStore, default_data_dir
from repro.service.server import ReproService

__all__ = [
    "FabricStore",
    "JOB_STATES",
    "Job",
    "JobStore",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "ShardCoordinator",
    "default_data_dir",
    "default_replica_id",
]
