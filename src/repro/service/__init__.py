"""Long-running job service over the :mod:`repro.api` facade.

``repro serve`` turns the facade into a stdlib-only HTTP job server:
clients POST request documents (run / ipc / sweep / figure / ablation /
reliability-campaign), the service dedupes them against
content-addressed request keys (identical concurrent submissions share
one execution), streams progress as NDJSON or SSE events sourced from
the engines' telemetry hooks, and survives restarts — simulation cells
persist in the shared on-disk result cache and campaigns resume from
their JSONL checkpoints.

* :mod:`repro.service.jobs` — the :class:`Job` model and deduplicating
  :class:`JobStore` worker pool;
* :mod:`repro.service.server` — the HTTP endpoints
  (:class:`ReproService`);
* :mod:`repro.service.client` — a stdlib client
  (:class:`ServiceClient`).

See ``docs/service.md`` for the protocol and examples.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JOB_STATES, Job, JobStore, default_data_dir
from repro.service.server import ReproService

__all__ = [
    "JOB_STATES",
    "Job",
    "JobStore",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "default_data_dir",
]
