"""HTTP front end: stdlib ``ThreadingHTTPServer`` over a :class:`JobStore`.

Endpoints (all JSON unless noted):

========================  =====================================================
``POST /v1/jobs``         submit ``{"kind": ..., "request": {...}}`` →
                          202 ``{"job": {...}, "created": bool}``; ``created``
                          false means an identical job already existed (the
                          submission was deduplicated onto it)
``GET /v1/jobs``          list all job documents
``GET /v1/jobs/<id>``     one job document (plus ``result`` once done)
``GET /v1/jobs/<id>/result``  the result document; ``?wait=SECONDS`` blocks
                          until the job is terminal; 202 while pending,
                          500 + error text if the job failed
``GET /v1/jobs/<id>/events``  progress stream, NDJSON by default
                          (``application/x-ndjson``, one event per line) or
                          SSE (``text/event-stream``) when the client sends
                          ``Accept: text/event-stream`` or ``?sse=1``;
                          ``?start=N`` replays from event seq N; the stream
                          always ends with the terminal ``state`` event
``POST /v1/jobs/<id>/cancel``  request cancellation (local + cluster-wide
                          through the fabric); 404 when neither this
                          replica nor the fabric knows the id
``GET /v1/kinds``         known request kinds with their default documents
``GET /v1/health``        liveness + job counts (``/v1/healthz`` is an
                          alias, plus this replica's fabric identity)
``GET /v1/workers``       fabric worker registry: every replica sharing
                          this data dir, with heartbeat liveness
========================  =====================================================

Every JSON response body — and every streamed event line — carries the
wire version tag ``"schema": "repro/v1"`` (:data:`repro.api.SCHEMA`);
clients reject documents without it (see
:class:`repro.service.client.ServiceClient`).

Bad requests (unknown kind/field/benchmark — anything
:class:`repro.api.ReproError`) are HTTP 400 with ``{"error": ...}``;
unknown job ids are 404; a canceled job's result is 409.  The server is
plain stdlib: HTTP/1.0 with ``Connection: close``, one thread per
connection, so streaming a long-running campaign never blocks other
clients.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro import api
from repro.service.jobs import Job, JobStore

#: Request-body size cap (a request document is small; anything larger
#: is a mistake or abuse).
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request; ``store`` is injected by :class:`ReproService`."""

    store: JobStore  # class attribute, set per-service
    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.0"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        pass  # quiet by default; telemetry belongs to the job events

    def _send_json(self, status: int, doc: Any) -> None:
        if isinstance(doc, dict):
            doc = dict(doc, schema=api.SCHEMA)
        body = json.dumps(doc, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise api.ReproError("request body too large")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            doc = json.loads(raw or b"{}")
        except json.JSONDecodeError as err:
            raise api.ReproError(f"request body is not JSON: {err}") from None
        if not isinstance(doc, dict):
            raise api.ReproError("request body must be a JSON object")
        return doc

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        query = {
            key: values[-1]
            for key, values in parse_qs(parsed.query).items()
        }
        return parsed.path.rstrip("/"), query

    def _job_or_404(self, job_id: str) -> Optional[Job]:
        job = self.store.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
        return job

    # -- verbs -------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        path, _ = self._route()
        try:
            if path == "/v1/jobs":
                doc = self._read_body()
                kind = doc.get("kind")
                if not isinstance(kind, str):
                    raise api.ReproError("missing request kind")
                request = doc.get("request") or {}
                job, created = self.store.submit(kind, request)
                self._send_json(
                    202, {"job": job.describe(), "created": created}
                )
            elif path.startswith("/v1/jobs/") and path.endswith("/cancel"):
                job_id = path[len("/v1/jobs/"): -len("/cancel")]
                job, known = self.store.cancel(job_id)
                if not known:
                    self._error(404, f"unknown job {job_id!r}")
                elif job is not None:
                    self._send_json(200, {"job": job.describe()})
                else:
                    # Another replica owns the local record; the fabric
                    # carries the cancel to it.
                    self._send_json(200, {
                        "job": {"id": job_id, "state": "canceled"},
                    })
            else:
                self._error(404, f"unknown path {path!r}")
        except api.ReproError as err:
            self._error(400, str(err))

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path, query = self._route()
        if path in ("/v1/health", "/v1/healthz"):
            jobs = self.store.list()
            self._send_json(200, {
                "ok": True,
                "replica_id": self.store.replica_id,
                "jobs": len(jobs),
                "running": sum(1 for j in jobs if j.state == "running"),
            })
        elif path == "/v1/workers":
            self._send_json(200, {
                "replica_id": self.store.replica_id,
                "workers": self.store.fabric.workers(),
            })
        elif path == "/v1/kinds":
            self._send_json(200, {
                "kinds": {
                    kind: api.default_doc(kind)
                    for kind in sorted(api.KINDS)
                },
            })
        elif path == "/v1/jobs":
            self._send_json(
                200, {"jobs": [job.describe() for job in self.store.list()]}
            )
        elif path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                job = self._job_or_404(rest[: -len("/events")])
                if job is not None:
                    self._stream_events(job, query)
            elif rest.endswith("/result"):
                job = self._job_or_404(rest[: -len("/result")])
                if job is not None:
                    self._send_result(job, query)
            else:
                job = self._job_or_404(rest)
                if job is not None:
                    doc = job.describe()
                    result = job.result_doc()
                    if result is not None:
                        doc["result"] = result
                    self._send_json(200, doc)
        else:
            self._error(404, f"unknown path {path!r}")

    # -- job views ---------------------------------------------------------

    def _send_result(self, job: Job, query: Dict[str, str]) -> None:
        wait = float(query.get("wait", 0) or 0)
        if wait > 0:
            job.wait(timeout=wait)
        if job.state == "error":
            self._error(500, job.error or "job failed")
        elif job.state == "canceled":
            self._send_json(409, {"state": "canceled"})
        elif job.state != "done":
            self._send_json(202, {"state": job.state})
        else:
            self._send_json(200, job.result_doc())

    def _stream_events(self, job: Job, query: Dict[str, str]) -> None:
        """NDJSON (default) or SSE progress stream until terminal."""
        sse = (
            query.get("sse") == "1"
            or "text/event-stream" in (self.headers.get("Accept") or "")
        )
        start = int(query.get("start", 0) or 0)
        self.send_response(200)
        self.send_header(
            "Content-Type",
            "text/event-stream" if sse else "application/x-ndjson",
        )
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        try:
            for event in job.iter_events(start=start):
                line = json.dumps(
                    dict(event, schema=api.SCHEMA), sort_keys=True
                )
                if sse:
                    payload = f"data: {line}\n\n".encode()
                else:
                    payload = line.encode() + b"\n"
                self.wfile.write(payload)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; the job keeps running


class ReproService:
    """The assembled service: one :class:`JobStore` behind one listener.

    ``port=0`` binds an ephemeral port (``.port`` reports the real
    one), which is what the tests and the CI smoke script use.  Use
    :meth:`start` for a background thread or :meth:`serve_forever` to
    block (the CLI's ``repro serve``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        data_dir: Optional[str] = None,
        workers: int = 2,
        jobs: int = 1,
        store: Optional[JobStore] = None,
        replica_id: Optional[str] = None,
    ) -> None:
        self.store = store or JobStore(
            data_dir=data_dir, workers=workers, jobs=jobs,
            replica_id=replica_id,
        )
        handler = type("BoundHandler", (_Handler,), {"store": self.store})
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True
        self.host, self.port = self.server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def data_dir(self):
        return self.store.data_dir

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproService":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.server.serve_forever()

    def shutdown(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self.store.close()


__all__ = ["MAX_BODY_BYTES", "ReproService"]
