"""Job model and deduplicating job store for the repro service.

A **job** is one facade request (:mod:`repro.api`) executing
asynchronously.  Jobs are identified by :func:`repro.api.request_key` —
the same content-addressed digest family the sweep result cache uses —
so two identical submissions *are* the same job: the second submitter
attaches to the first's progress stream and result instead of paying
for a second execution.

Durability lives below the store, not in it:

* every job's sweep engine shares one on-disk
  :class:`~repro.experiments.pool.ResultCache` under
  ``<data_dir>/cache``, so finished simulation cells survive restarts;
* every reliability campaign checkpoints to
  ``<data_dir>/checkpoints/<job key>.jsonl``, so a campaign interrupted
  by a crash or restart resumes from its completed shards when the same
  request is submitted to a fresh store — bit-identical to an
  uninterrupted run (round-boundary stopping, deterministic shard
  seeds);
* every store joins the :class:`~repro.service.fabric.FabricStore` at
  ``<data_dir>/fabric.db``: finished result documents are cached
  cluster-wide (any replica serves any previously computed job), and
  reliability campaigns running on several replicas at once lease
  shards from each other instead of duplicating work.

The store's own job *records* are in-memory: a restart forgets them but
no completed *work*.
"""

from __future__ import annotations

import os
import queue
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro import api
from repro.experiments.pool import SweepEngine
from repro.reliability.campaign import CampaignAborted
from repro.service.fabric import (
    FabricStore,
    ShardCoordinator,
    default_replica_id,
)

#: Job lifecycle; ``done``, ``error`` and ``canceled`` are terminal.
JOB_STATES = ("queued", "running", "done", "error", "canceled")

_TERMINAL = ("done", "error", "canceled")


def default_data_dir() -> Path:
    """``$REPRO_SERVICE_DIR`` or ``~/.cache/repro-service``."""
    env = os.environ.get("REPRO_SERVICE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-service"


class _StoredResult:
    """A result document recalled from the fabric's cluster-wide cache.

    Quacks like a response object (``as_dict``) so a cache-served job
    is indistinguishable from a locally computed one downstream.
    """

    def __init__(self, doc: Dict[str, Any]) -> None:
        self._doc = doc

    def as_dict(self) -> Dict[str, Any]:
        return self._doc


class Job:
    """One deduplicated unit of facade work plus its progress log.

    All mutable state is guarded by ``self.cond``; progress events are
    append-only dicts with a monotonically increasing ``seq``, so any
    number of streamers can follow one job from any offset.
    """

    def __init__(self, key: str, kind: str, request: Any) -> None:
        self.key = key
        self.kind = kind
        self.request = request
        self.state = "queued"
        self.result: Any = None
        self.error: Optional[str] = None
        self.events: List[Dict[str, Any]] = []
        self.submissions = 1
        self.cancel_requested = False
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.cond = threading.Condition()

    # -- state -------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in _TERMINAL

    def emit(self, event: Mapping[str, Any]) -> None:
        """Append one progress event (thread-safe, wakes streamers)."""
        with self.cond:
            record = dict(event)
            record["seq"] = len(self.events)
            self.events.append(record)
            self.cond.notify_all()

    def _start(self) -> bool:
        """Transition to ``running``; False if the job was canceled
        while still queued (the worker must skip it)."""
        with self.cond:
            if self.finished:
                return False
            self.state = "running"
            self.started_at = time.time()
            self.events.append(
                {"seq": len(self.events), "type": "state", "state": "running"}
            )
            self.cond.notify_all()
            return True

    def _finish(self, state: str, result: Any = None,
                error: Optional[str] = None) -> bool:
        """Terminal transition; the final ``state`` event is appended
        under the same lock so streamers always see it last.  A second
        finish (e.g. cancel racing completion) is a no-op."""
        with self.cond:
            if self.finished:
                return False
            self.state = state
            self.result = result
            self.error = error
            self.finished_at = time.time()
            event: Dict[str, Any] = {
                "seq": len(self.events), "type": "state", "state": state,
            }
            if error is not None:
                event["error"] = error
            self.events.append(event)
            self.cond.notify_all()
            return True

    def cancel(self) -> bool:
        """Request cancellation; False if the job already finished.

        A still-queued job finishes ``canceled`` immediately; a running
        campaign observes the flag at its next round-boundary abort
        poll.  Non-campaign kinds cannot abort mid-execution — the flag
        is recorded but the job may still complete.
        """
        with self.cond:
            if self.finished:
                return False
            self.cancel_requested = True
            queued = self.state == "queued"
        if queued:
            self._finish("canceled")
        return True

    def wait(self, timeout: Optional[float] = None) -> str:
        """Block until the job is terminal (or ``timeout``); returns state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cond:
            while not self.finished:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self.cond.wait(remaining if remaining is not None else 0.5)
            return self.state

    def iter_events(self, start: int = 0) -> Iterator[Dict[str, Any]]:
        """Yield events from ``start`` until the terminal state event.

        Safe to call from any number of threads, before, during or
        after execution — a finished job replays its full log.  The
        job's condition is held only to snapshot a batch, never across
        a ``yield``: a consumer draining events arbitrarily slowly
        blocks nobody.
        """
        index = start
        while True:
            with self.cond:
                while index >= len(self.events) and not self.finished:
                    self.cond.wait(0.5)
                batch = self.events[index:]
            for event in batch:
                yield event
                index += 1
                if (
                    event.get("type") == "state"
                    and event.get("state") in _TERMINAL
                ):
                    return
            with self.cond:
                if self.finished and index >= len(self.events):
                    return

    # -- documents ---------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """The job's JSON document (result served separately)."""
        with self.cond:
            return {
                "id": self.key,
                "kind": self.kind,
                "state": self.state,
                "request": self.request.as_dict(),
                "submissions": self.submissions,
                "events": len(self.events),
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "error": self.error,
            }

    def result_doc(self) -> Optional[Dict[str, Any]]:
        with self.cond:
            return None if self.result is None else self.result.as_dict()


class JobStore:
    """Deduplicating queue + worker pool executing facade requests.

    ``workers``
        Executor threads; ``0`` starts none — callers drain the queue
        themselves with :meth:`run_pending` (the deterministic test
        mode).
    ``jobs``
        Worker *processes* each job's :class:`SweepEngine` may fan out
        to (the CLI's ``--jobs``).
    ``engine_factory``
        Override engine construction, e.g. to inject a failing engine
        in tests.  Called with the :class:`Job`; must return a
        :class:`SweepEngine`-compatible object.
    ``replica_id``
        This store's identity in the fabric (worker registry, shard
        lease ownership).  Defaults to a unique per-instance id.
    ``lease_duration`` / ``worker_timeout`` / ``lease_batch``
        Fabric work-stealing knobs: how long a shard lease lasts
        without a heartbeat, when a silent replica counts as dead, and
        how many shards one lease call takes (None = a whole round —
        the single-replica fast path).
    """

    def __init__(
        self,
        data_dir: Optional[os.PathLike] = None,
        workers: int = 2,
        jobs: int = 1,
        engine_factory: Optional[Callable[[Job], Any]] = None,
        replica_id: Optional[str] = None,
        lease_duration: float = 30.0,
        worker_timeout: float = 60.0,
        lease_batch: Optional[int] = None,
    ) -> None:
        if workers < 0 or jobs < 1:
            raise ValueError("workers must be >= 0 and jobs >= 1")
        self.data_dir = Path(data_dir) if data_dir else default_data_dir()
        self.cache_dir = self.data_dir / "cache"
        self.checkpoint_dir = self.data_dir / "checkpoints"
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.jobs_per_engine = jobs
        self.engine_factory = engine_factory
        self.replica_id = replica_id or default_replica_id()
        self.lease_batch = lease_batch
        self.fabric = FabricStore(
            self.data_dir,
            lease_duration=lease_duration,
            worker_timeout=worker_timeout,
        )
        self.fabric.register_worker(self.replica_id)
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._closed = threading.Event()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop,
            name=f"repro-heartbeat-{self.replica_id}",
            daemon=True,
        )
        self._heartbeat_thread.start()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def _heartbeat_loop(self) -> None:
        interval = max(
            0.05,
            min(1.0, self.fabric.lease_duration / 4,
                self.fabric.worker_timeout / 4),
        )
        while not self._closed.wait(interval):
            try:
                self.fabric.heartbeat(self.replica_id)
            except Exception:
                # A transiently locked fabric.db must not kill the
                # heartbeat thread; the next beat retries.
                pass

    # -- submission --------------------------------------------------------

    def submit(
        self, kind: str, payload: Mapping[str, Any]
    ) -> Tuple[Job, bool]:
        """Submit one request; returns ``(job, created)``.

        ``created`` is False when an identical request (same
        :func:`repro.api.request_key`) is already queued, running or
        done — the caller shares that job.  A previously *failed* or
        *canceled* key is retried with a fresh job.  A key any replica
        already finished is served straight from the fabric's result
        cache without executing.

        ``self._lock`` guards only the job-dict lookup/insert;
        request parsing, fabric I/O and per-job counters happen
        outside it, so a slow consumer of one job's event stream can
        never stall an unrelated submission.
        """
        try:
            cls, _ = api.KINDS[kind]
        except KeyError:
            raise api.ReproError(
                f"unknown request kind {kind!r}; known: {sorted(api.KINDS)}"
            ) from None
        request = api.request_from_dict(cls, payload)
        key = api.request_key(kind, request)
        cached = self.fabric.cached_result(key)
        with self._lock:
            existing = self._jobs.get(key)
            if existing is not None and existing.state not in (
                "error", "canceled",
            ):
                share = True
            else:
                job = Job(key, kind, request)
                self._jobs[key] = job
                share = False
        if share:
            with existing.cond:
                existing.submissions += 1
            self.fabric.record_job(key, kind, request.as_dict())
            return existing, False
        self.fabric.record_job(key, kind, request.as_dict())
        if cached is not None:
            job.emit({"type": "cached", "source": "fabric"})
            job._finish("done", result=_StoredResult(cached))
            return job, True
        self._queue.put(job)
        return job, True

    def get(self, key: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(key)

    def list(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created_at)

    def cancel(self, key: str) -> Tuple[Optional[Job], bool]:
        """Cancel a job locally and cluster-wide.

        Returns ``(job, known)``: ``job`` is this replica's record (None
        when another replica owns it), ``known`` is False only when
        neither this replica nor the fabric has ever seen the key.
        """
        job = self.get(key)
        fabric_known = self.fabric.cancel_job(key) or (
            self.fabric.job_state(key) is not None
        )
        if job is not None:
            job.cancel()
        return job, job is not None or fabric_known

    # -- execution ---------------------------------------------------------

    def run_pending(self) -> int:
        """Drain the queue in the calling thread (``workers=0`` mode)."""
        n = 0
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return n
            if job is None:
                continue
            self._execute(job)
            n += 1

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._execute(job)

    def _engine(self, job: Job) -> Any:
        if self.engine_factory is not None:
            return self.engine_factory(job)
        return SweepEngine(
            jobs=self.jobs_per_engine,
            cache=self.cache_dir,
            on_cell=lambda record: job.emit({
                "type": "cell",
                "label": record.label,
                "cached": record.cached,
                "wall_s": record.wall_s,
                "refs": record.refs,
            }),
        )

    def checkpoint_path(self, key: str) -> Path:
        """Where a reliability job's shards persist — derived from the
        request digest, so identical campaigns share one resumable
        file across submissions, service restarts *and* replicas."""
        return self.checkpoint_dir / f"{key}.jsonl"

    def _should_abort(self, job: Job) -> Callable[[], bool]:
        def check() -> bool:
            if job.cancel_requested:
                return True
            return self.fabric.job_state(job.key) == "canceled"
        return check

    def _execute(self, job: Job) -> None:
        if not job._start():
            return  # canceled while queued
        self.fabric.set_job_state(job.key, "running")
        try:
            kwargs: Dict[str, Any] = {}
            if job.kind in api.ENGINE_KINDS:
                kwargs["engine"] = self._engine(job)
            if job.kind in api.CAMPAIGN_KINDS:
                kwargs["progress"] = job.emit
                kwargs["checkpoint"] = str(self.checkpoint_path(job.key))
                kwargs["coordinator"] = ShardCoordinator(
                    self.fabric,
                    job.key,
                    self.replica_id,
                    lease_batch=self.lease_batch,
                )
                kwargs["should_abort"] = self._should_abort(job)
            result = api.execute(job.kind, job.request, **kwargs)
        except CampaignAborted:
            self.fabric.release_worker_leases(self.replica_id)
            self.fabric.set_job_state(job.key, "canceled")
            job._finish("canceled")
        except api.ReproError as err:
            self.fabric.release_worker_leases(self.replica_id)
            self.fabric.set_job_state(job.key, "error", error=str(err))
            job._finish("error", error=str(err))
        except Exception:
            err = traceback.format_exc(limit=8)
            self.fabric.release_worker_leases(self.replica_id)
            self.fabric.set_job_state(job.key, "error", error=err)
            job._finish("error", error=err)
        else:
            if job._finish("done", result=result):
                self.fabric.store_result(job.key, result.as_dict())
                self.fabric.set_job_state(job.key, "done")

    def close(self) -> None:
        """Stop the worker threads (queued jobs are abandoned), leave
        the fabric: deregister, return any held shard leases."""
        self._closed.set()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5)
        self._heartbeat_thread.join(timeout=5)
        try:
            self.fabric.remove_worker(self.replica_id)
        except Exception:
            pass  # a wedged fabric.db must not block shutdown


__all__ = ["JOB_STATES", "Job", "JobStore", "default_data_dir"]
