"""Job model and deduplicating job store for the repro service.

A **job** is one facade request (:mod:`repro.api`) executing
asynchronously.  Jobs are identified by :func:`repro.api.request_key` —
the same content-addressed digest family the sweep result cache uses —
so two identical submissions *are* the same job: the second submitter
attaches to the first's progress stream and result instead of paying
for a second execution.

Durability lives below the store, not in it:

* every job's sweep engine shares one on-disk
  :class:`~repro.experiments.pool.ResultCache` under
  ``<data_dir>/cache``, so finished simulation cells survive restarts;
* every reliability campaign checkpoints to
  ``<data_dir>/checkpoints/<job key>.jsonl``, so a campaign interrupted
  by a crash or restart resumes from its completed shards when the same
  request is submitted to a fresh store — bit-identical to an
  uninterrupted run (round-boundary stopping, deterministic shard
  seeds).

The store itself is in-memory: a restart forgets job *records* but no
completed *work*.
"""

from __future__ import annotations

import os
import queue
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro import api
from repro.experiments.pool import SweepEngine

#: Job lifecycle; ``done`` and ``error`` are terminal.
JOB_STATES = ("queued", "running", "done", "error")


def default_data_dir() -> Path:
    """``$REPRO_SERVICE_DIR`` or ``~/.cache/repro-service``."""
    env = os.environ.get("REPRO_SERVICE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-service"


class Job:
    """One deduplicated unit of facade work plus its progress log.

    All mutable state is guarded by ``self.cond``; progress events are
    append-only dicts with a monotonically increasing ``seq``, so any
    number of streamers can follow one job from any offset.
    """

    def __init__(self, key: str, kind: str, request: Any) -> None:
        self.key = key
        self.kind = kind
        self.request = request
        self.state = "queued"
        self.result: Any = None
        self.error: Optional[str] = None
        self.events: List[Dict[str, Any]] = []
        self.submissions = 1
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.cond = threading.Condition()

    # -- state -------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in ("done", "error")

    def emit(self, event: Mapping[str, Any]) -> None:
        """Append one progress event (thread-safe, wakes streamers)."""
        with self.cond:
            record = dict(event)
            record["seq"] = len(self.events)
            self.events.append(record)
            self.cond.notify_all()

    def _start(self) -> None:
        with self.cond:
            self.state = "running"
            self.started_at = time.time()
            self.events.append(
                {"seq": len(self.events), "type": "state", "state": "running"}
            )
            self.cond.notify_all()

    def _finish(self, state: str, result: Any = None,
                error: Optional[str] = None) -> None:
        """Terminal transition; the final ``state`` event is appended
        under the same lock so streamers always see it last."""
        with self.cond:
            self.state = state
            self.result = result
            self.error = error
            self.finished_at = time.time()
            event: Dict[str, Any] = {
                "seq": len(self.events), "type": "state", "state": state,
            }
            if error is not None:
                event["error"] = error
            self.events.append(event)
            self.cond.notify_all()

    def wait(self, timeout: Optional[float] = None) -> str:
        """Block until the job is terminal (or ``timeout``); returns state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cond:
            while not self.finished:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self.cond.wait(remaining if remaining is not None else 0.5)
            return self.state

    def iter_events(self, start: int = 0) -> Iterator[Dict[str, Any]]:
        """Yield events from ``start`` until the terminal state event.

        Safe to call from any number of threads, before, during or
        after execution — a finished job replays its full log.
        """
        index = start
        while True:
            with self.cond:
                while index >= len(self.events) and not self.finished:
                    self.cond.wait(0.5)
                batch = self.events[index:]
            for event in batch:
                yield event
                index += 1
                if (
                    event.get("type") == "state"
                    and event.get("state") in ("done", "error")
                ):
                    return
            with self.cond:
                if self.finished and index >= len(self.events):
                    return

    # -- documents ---------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """The job's JSON document (result served separately)."""
        with self.cond:
            return {
                "id": self.key,
                "kind": self.kind,
                "state": self.state,
                "request": self.request.as_dict(),
                "submissions": self.submissions,
                "events": len(self.events),
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "error": self.error,
            }

    def result_doc(self) -> Optional[Dict[str, Any]]:
        with self.cond:
            return None if self.result is None else self.result.as_dict()


class JobStore:
    """Deduplicating queue + worker pool executing facade requests.

    ``workers``
        Executor threads; ``0`` starts none — callers drain the queue
        themselves with :meth:`run_pending` (the deterministic test
        mode).
    ``jobs``
        Worker *processes* each job's :class:`SweepEngine` may fan out
        to (the CLI's ``--jobs``).
    ``engine_factory``
        Override engine construction, e.g. to inject a failing engine
        in tests.  Called with the :class:`Job`; must return a
        :class:`SweepEngine`-compatible object.
    """

    def __init__(
        self,
        data_dir: Optional[os.PathLike] = None,
        workers: int = 2,
        jobs: int = 1,
        engine_factory: Optional[Callable[[Job], Any]] = None,
    ) -> None:
        if workers < 0 or jobs < 1:
            raise ValueError("workers must be >= 0 and jobs >= 1")
        self.data_dir = Path(data_dir) if data_dir else default_data_dir()
        self.cache_dir = self.data_dir / "cache"
        self.checkpoint_dir = self.data_dir / "checkpoints"
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.jobs_per_engine = jobs
        self.engine_factory = engine_factory
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission --------------------------------------------------------

    def submit(
        self, kind: str, payload: Mapping[str, Any]
    ) -> Tuple[Job, bool]:
        """Submit one request; returns ``(job, created)``.

        ``created`` is False when an identical request (same
        :func:`repro.api.request_key`) is already queued, running or
        done — the caller shares that job.  A previously *failed* key
        is retried with a fresh job.
        """
        try:
            cls, _ = api.KINDS[kind]
        except KeyError:
            raise api.ReproError(
                f"unknown request kind {kind!r}; known: {sorted(api.KINDS)}"
            ) from None
        request = api.request_from_dict(cls, payload)
        key = api.request_key(kind, request)
        with self._lock:
            existing = self._jobs.get(key)
            if existing is not None and existing.state != "error":
                with existing.cond:
                    existing.submissions += 1
                return existing, False
            job = Job(key, kind, request)
            self._jobs[key] = job
        self._queue.put(job)
        return job, True

    def get(self, key: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(key)

    def list(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created_at)

    # -- execution ---------------------------------------------------------

    def run_pending(self) -> int:
        """Drain the queue in the calling thread (``workers=0`` mode)."""
        n = 0
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return n
            if job is None:
                continue
            self._execute(job)
            n += 1

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._execute(job)

    def _engine(self, job: Job) -> Any:
        if self.engine_factory is not None:
            return self.engine_factory(job)
        return SweepEngine(
            jobs=self.jobs_per_engine,
            cache=self.cache_dir,
            on_cell=lambda record: job.emit({
                "type": "cell",
                "label": record.label,
                "cached": record.cached,
                "wall_s": record.wall_s,
                "refs": record.refs,
            }),
        )

    def checkpoint_path(self, key: str) -> Path:
        """Where a reliability job's shards persist — derived from the
        request digest, so identical campaigns share one resumable
        file across submissions *and* service restarts."""
        return self.checkpoint_dir / f"{key}.jsonl"

    def _execute(self, job: Job) -> None:
        job._start()
        try:
            kwargs: Dict[str, Any] = {}
            if job.kind in ("run", "ipc", "figures", "ablate"):
                kwargs["engine"] = self._engine(job)
            elif job.kind == "reliability":
                kwargs["engine"] = self._engine(job)
                kwargs["progress"] = job.emit
                kwargs["checkpoint"] = str(self.checkpoint_path(job.key))
            result = api.execute(job.kind, job.request, **kwargs)
        except api.ReproError as err:
            job._finish("error", error=str(err))
        except Exception:
            job._finish("error", error=traceback.format_exc(limit=8))
        else:
            job._finish("done", result=result)

    def close(self) -> None:
        """Stop the worker threads (queued jobs are abandoned)."""
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5)


__all__ = ["JOB_STATES", "Job", "JobStore", "default_data_dir"]
