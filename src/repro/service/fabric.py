"""Shared SQLite fabric: cluster jobs, shard leases, worker registry.

N ``repro serve`` replicas pointed at one ``--data-dir`` cooperate
through this store (``<data_dir>/fabric.db``, WAL mode, stdlib
:mod:`sqlite3`).  It holds four tables:

* ``jobs`` — every request ever submitted anywhere in the cluster,
  keyed by :func:`repro.api.request_key`, with its lifecycle state and
  cluster-wide submission count;
* ``results`` — the serialized result document of each finished job,
  so *any* replica serves a job *any* replica computed (the
  cluster-wide result cache);
* ``shards`` — one row per campaign shard, the work-stealing unit:
  ``pending`` → ``leased`` (owner + expiry) → ``done`` (with the
  shard's outcome record);
* ``workers`` — replica registrations with heartbeats, so leases held
  by a dead replica are recognizable and reclaimable.

Correctness leans on the campaign engine's determinism, not on the
store: shard seeds depend only on (seed, scheme, index), so a shard
executes identically on any replica, and a lease that expires while
its owner is merely slow costs a duplicate execution — never a wrong
answer (``complete_shard`` is idempotent; duplicate records are
bit-identical).  Every read-modify-write runs under ``BEGIN
IMMEDIATE`` with a connection per operation, so the store is safe
across threads and processes.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Shard lifecycle inside the fabric store.
SHARD_STATES = ("pending", "leased", "done")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    key TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    request TEXT NOT NULL,
    state TEXT NOT NULL,
    error TEXT,
    created_at REAL NOT NULL,
    finished_at REAL,
    submissions INTEGER NOT NULL DEFAULT 1
);
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    doc TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS shards (
    job_key TEXT NOT NULL,
    scheme TEXT NOT NULL,
    idx INTEGER NOT NULL,
    state TEXT NOT NULL DEFAULT 'pending',
    owner TEXT,
    lease_expires REAL,
    record TEXT,
    PRIMARY KEY (job_key, scheme, idx)
);
CREATE TABLE IF NOT EXISTS workers (
    replica_id TEXT PRIMARY KEY,
    started_at REAL NOT NULL,
    last_heartbeat REAL NOT NULL,
    pid INTEGER,
    host TEXT
);
"""


def default_replica_id() -> str:
    """``<hostname>-<pid>-<4 hex>`` — unique even for two stores in
    one process (tests run exactly that)."""
    return "{}-{}-{}".format(
        socket.gethostname(), os.getpid(), uuid.uuid4().hex[:4]
    )


class FabricStore:
    """The shared persistent store behind one cluster data dir."""

    def __init__(
        self,
        data_dir: os.PathLike,
        lease_duration: float = 30.0,
        worker_timeout: float = 60.0,
    ) -> None:
        if lease_duration <= 0 or worker_timeout <= 0:
            raise ValueError("lease_duration and worker_timeout must be > 0")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.data_dir / "fabric.db"
        self.lease_duration = lease_duration
        self.worker_timeout = worker_timeout
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    def _connect(self) -> sqlite3.Connection:
        # A connection per operation: sqlite3 connections are not
        # thread-safe, and WAL + busy_timeout make short transactions
        # from many replicas cheap enough that pooling isn't worth the
        # locking it would reintroduce.
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        return conn

    # -- workers -------------------------------------------------------------

    def register_worker(self, replica_id: str) -> None:
        now = time.time()
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "INSERT INTO workers "
                "(replica_id, started_at, last_heartbeat, pid, host) "
                "VALUES (?, ?, ?, ?, ?) "
                "ON CONFLICT(replica_id) DO UPDATE SET "
                "started_at = excluded.started_at, "
                "last_heartbeat = excluded.last_heartbeat, "
                "pid = excluded.pid, host = excluded.host",
                (replica_id, now, now, os.getpid(), socket.gethostname()),
            )

    def heartbeat(self, replica_id: str) -> None:
        """Refresh liveness and extend this replica's active leases —
        a slow shard on a live replica should not look abandoned."""
        now = time.time()
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "UPDATE workers SET last_heartbeat = ? WHERE replica_id = ?",
                (now, replica_id),
            )
            conn.execute(
                "UPDATE shards SET lease_expires = ? "
                "WHERE owner = ? AND state = 'leased'",
                (now + self.lease_duration, replica_id),
            )

    def remove_worker(self, replica_id: str) -> None:
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "DELETE FROM workers WHERE replica_id = ?", (replica_id,)
            )
            conn.execute(
                "UPDATE shards SET state = 'pending', owner = NULL, "
                "lease_expires = NULL "
                "WHERE owner = ? AND state = 'leased'",
                (replica_id,),
            )

    def workers(self) -> List[Dict[str, Any]]:
        now = time.time()
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT replica_id, started_at, last_heartbeat, pid, host "
                "FROM workers ORDER BY started_at"
            ).fetchall()
        return [
            {
                "replica_id": r[0],
                "started_at": r[1],
                "last_heartbeat": r[2],
                "pid": r[3],
                "host": r[4],
                "alive": now - r[2] <= self.worker_timeout,
            }
            for r in rows
        ]

    # -- jobs ----------------------------------------------------------------

    def record_job(
        self, key: str, kind: str, request: Dict[str, Any]
    ) -> None:
        """Record a submission: insert the job or bump its cluster-wide
        submission count.  A previously failed/canceled job re-enters
        ``queued`` (the retry semantics the local store already has)."""
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT state FROM jobs WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO jobs "
                    "(key, kind, request, state, created_at) "
                    "VALUES (?, ?, ?, 'queued', ?)",
                    (key, kind, json.dumps(request, sort_keys=True),
                     time.time()),
                )
            else:
                retry = row[0] in ("error", "canceled")
                conn.execute(
                    "UPDATE jobs SET submissions = submissions + 1, "
                    "state = CASE WHEN ? THEN 'queued' ELSE state END, "
                    "error = CASE WHEN ? THEN NULL ELSE error END "
                    "WHERE key = ?",
                    (retry, retry, key),
                )

    def set_job_state(
        self, key: str, state: str, error: Optional[str] = None
    ) -> None:
        terminal = state in ("done", "error", "canceled")
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "UPDATE jobs SET state = ?, error = ?, finished_at = ? "
                "WHERE key = ?",
                (state, error, time.time() if terminal else None, key),
            )

    def job_state(self, key: str) -> Optional[str]:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT state FROM jobs WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else row[0]

    def cancel_job(self, key: str) -> bool:
        """Mark a non-terminal job canceled; every replica running it
        observes the state at its next abort poll.  Returns False for
        unknown or already-terminal jobs."""
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            cur = conn.execute(
                "UPDATE jobs SET state = 'canceled', finished_at = ? "
                "WHERE key = ? AND state IN ('queued', 'running')",
                (time.time(), key),
            )
            return cur.rowcount > 0

    # -- results (cluster-wide cache) ----------------------------------------

    def store_result(self, key: str, doc: Dict[str, Any]) -> None:
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "INSERT OR REPLACE INTO results (key, doc, created_at) "
                "VALUES (?, ?, ?)",
                (key, json.dumps(doc, sort_keys=True), time.time()),
            )

    def cached_result(self, key: str) -> Optional[Dict[str, Any]]:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT doc FROM results WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else json.loads(row[0])

    # -- shards --------------------------------------------------------------

    def ensure_shards(
        self, job_key: str, keys: Sequence[Tuple[str, int]]
    ) -> None:
        """Announce a round's shards (idempotent: whichever replica
        announces first wins; the rest INSERT OR IGNORE)."""
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.executemany(
                "INSERT OR IGNORE INTO shards (job_key, scheme, idx) "
                "VALUES (?, ?, ?)",
                [(job_key, scheme, idx) for scheme, idx in keys],
            )

    def lease_shards(
        self,
        job_key: str,
        keys: Sequence[Tuple[str, int]],
        replica_id: str,
        limit: Optional[int] = None,
    ) -> Tuple[List[Tuple[str, int]], List[Tuple[str, int]]]:
        """Lease up to ``limit`` of the offered shards (None = all).

        Two passes inside one transaction: ``pending`` shards first
        (normal work distribution), then **stealing** — ``leased``
        shards whose lease expired or whose owner's heartbeat is stale
        or gone.  Returns ``(leased, stolen)`` with stolen ⊆ leased.
        """
        if not keys or (limit is not None and limit <= 0):
            return [], []
        now = time.time()
        placeholders = ",".join(["(?,?)"] * len(keys))
        flat: List[Any] = [v for pair in keys for v in pair]
        budget = len(keys) if limit is None else limit
        leased: List[Tuple[str, int]] = []
        stolen: List[Tuple[str, int]] = []
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            rows = conn.execute(
                "SELECT scheme, idx FROM shards "
                "WHERE job_key = ? AND state = 'pending' "
                f"AND (scheme, idx) IN (VALUES {placeholders}) "
                "ORDER BY scheme, idx LIMIT ?",
                [job_key] + flat + [budget],
            ).fetchall()
            leased.extend((r[0], r[1]) for r in rows)
            if len(leased) < budget:
                stale = conn.execute(
                    "SELECT s.scheme, s.idx FROM shards s "
                    "LEFT JOIN workers w ON w.replica_id = s.owner "
                    "WHERE s.job_key = ? AND s.state = 'leased' "
                    "AND s.owner != ? "
                    f"AND (s.scheme, s.idx) IN (VALUES {placeholders}) "
                    "AND (s.lease_expires < ? OR w.replica_id IS NULL "
                    "     OR w.last_heartbeat < ?) "
                    "ORDER BY s.scheme, s.idx LIMIT ?",
                    [job_key, replica_id] + flat
                    + [now, now - self.worker_timeout,
                       budget - len(leased)],
                ).fetchall()
                stolen.extend((r[0], r[1]) for r in stale)
            for scheme, idx in leased + stolen:
                conn.execute(
                    "UPDATE shards SET state = 'leased', owner = ?, "
                    "lease_expires = ? "
                    "WHERE job_key = ? AND scheme = ? AND idx = ?",
                    (replica_id, now + self.lease_duration,
                     job_key, scheme, idx),
                )
        return leased + stolen, stolen

    def complete_shard(
        self, job_key: str, record: Dict[str, Any]
    ) -> None:
        """Publish one shard's outcome record (idempotent — duplicate
        executions of a deterministic shard write identical records)."""
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "UPDATE shards SET state = 'done', owner = NULL, "
                "lease_expires = NULL, record = ? "
                "WHERE job_key = ? AND scheme = ? AND idx = ?",
                (json.dumps(record, sort_keys=True), job_key,
                 record["scheme"], record["index"]),
            )

    def done_shards(
        self, job_key: str, keys: Sequence[Tuple[str, int]]
    ) -> List[Dict[str, Any]]:
        """Outcome records of the offered shards that are ``done``."""
        if not keys:
            return []
        placeholders = ",".join(["(?,?)"] * len(keys))
        flat: List[Any] = [v for pair in keys for v in pair]
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT record FROM shards "
                "WHERE job_key = ? AND state = 'done' "
                f"AND (scheme, idx) IN (VALUES {placeholders}) "
                "ORDER BY scheme, idx",
                [job_key] + flat,
            ).fetchall()
        return [json.loads(r[0]) for r in rows]

    def release_worker_leases(self, replica_id: str) -> int:
        """Return a replica's unfinished leases to ``pending`` (graceful
        failure path — don't make peers wait out the lease clock)."""
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            cur = conn.execute(
                "UPDATE shards SET state = 'pending', owner = NULL, "
                "lease_expires = NULL "
                "WHERE owner = ? AND state = 'leased'",
                (replica_id,),
            )
            return cur.rowcount


class ShardCoordinator:
    """One campaign's view of the fabric, as the engine consumes it.

    :class:`~repro.reliability.campaign.CampaignEngine` drives this
    per-round: ``announce`` the round's shards, ``lease`` a batch, run
    them, ``complete`` each, absorb peers' results via ``completed``,
    repeat until the round closes.  ``lease_batch=None`` leases every
    offered shard at once — a single replica then behaves exactly like
    a plain local run (one ``map_tasks`` call per round); smaller
    batches interleave replicas within a round.
    """

    def __init__(
        self,
        store: FabricStore,
        job_key: str,
        replica_id: str,
        lease_batch: Optional[int] = None,
        poll_interval: float = 0.05,
    ) -> None:
        self.store = store
        self.job_key = job_key
        self.replica_id = replica_id
        self.lease_batch = lease_batch
        self.poll_interval = poll_interval

    def announce(self, specs: Sequence[Any]) -> None:
        self.store.ensure_shards(
            self.job_key, [(s.scheme, s.index) for s in specs]
        )

    def lease(
        self, specs: Sequence[Any]
    ) -> Tuple[List[Any], List[Any]]:
        """Lease from the offered specs; returns ``(mine, stolen)``
        as spec objects (stolen ⊆ mine)."""
        by_key = {(s.scheme, s.index): s for s in specs}
        leased, stolen = self.store.lease_shards(
            self.job_key,
            sorted(by_key),
            self.replica_id,
            limit=self.lease_batch,
        )
        return (
            [by_key[k] for k in leased],
            [by_key[k] for k in stolen],
        )

    def complete(self, result: Any) -> None:
        self.store.complete_shard(self.job_key, result.as_record())

    def completed(
        self, keys: Sequence[Tuple[str, int]]
    ) -> List[Dict[str, Any]]:
        return self.store.done_shards(self.job_key, keys)

    def heartbeat(self) -> None:
        self.store.heartbeat(self.replica_id)

    def canceled(self) -> bool:
        return self.store.job_state(self.job_key) == "canceled"


__all__ = [
    "FabricStore",
    "SHARD_STATES",
    "ShardCoordinator",
    "default_replica_id",
]
