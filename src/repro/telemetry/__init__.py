"""Unified telemetry for the simulator: metrics, tracing, profiling.

* :mod:`repro.telemetry.metrics` — the :class:`StatsSource` protocol all
  component stats follow, plus a :class:`MetricsRegistry` giving one
  ``snapshot()`` / ``reset(cycle)`` boundary for a whole hierarchy.
* :mod:`repro.telemetry.tracing` — opt-in ring-buffered structured
  event tracing (dirty transitions, ECC-array traffic, cleaning
  write-backs, injected-error outcomes) with JSONL export.
* :mod:`repro.telemetry.profiling` — per-phase wall time and
  events-per-second accounting for runs and sweeps.

This package is dependency-free within ``repro``: every simulator
component may import it without cycles.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsSource,
    StatsSourceMixin,
    flatten_snapshot,
    mean_snapshots,
)
from repro.telemetry.profiling import PhaseProfiler, PhaseRecord
from repro.telemetry.tracing import (
    EVENT_FIELDS,
    SCHEMA_VERSION,
    EventTracer,
    TraceSchemaError,
    load_jsonl,
    validate_event,
)

__all__ = [
    "Counter",
    "EVENT_FIELDS",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "PhaseRecord",
    "SCHEMA_VERSION",
    "StatsSource",
    "StatsSourceMixin",
    "TraceSchemaError",
    "flatten_snapshot",
    "load_jsonl",
    "mean_snapshots",
    "validate_event",
]
