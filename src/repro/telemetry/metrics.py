"""Metrics registry: one place every component's counters live.

The simulator used to keep six ad-hoc stats dataclasses, each with its
own reset convention — the drift that produced the PR 1
``_reset_measurement`` bug.  This module defines the one contract every
stats holder follows (:class:`StatsSource`) and a
:class:`MetricsRegistry` that components register into, so a
measurement boundary is a single ``registry.reset(cycle)`` and a report
is a single ``registry.snapshot()``.

The registry also carries free-standing instruments (counters, gauges,
histograms) for quantities that do not belong to any component's stats
dataclass, e.g. event-tracer drop counts or per-phase work totals.
"""

from __future__ import annotations

import dataclasses
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

Number = Union[int, float]


@runtime_checkable
class StatsSource(Protocol):
    """The contract every stats holder in the simulator follows.

    ``labels``
        Identity of the source (component kind, instance name) for
        report grouping; values are strings.
    ``as_dict()``
        Flat name -> number view of every counter, including derived
        quantities worth reporting.
    ``reset(cycle)``
        Zero every counter in place.  ``cycle`` is the simulation time
        of the measurement boundary; sources with time-based state
        (integrators, episode clocks) restart from it, plain event
        counters ignore it.
    """

    @property
    def labels(self) -> Mapping[str, str]: ...

    def as_dict(self) -> Dict[str, Number]: ...

    def reset(self, cycle: int = 0) -> None: ...


class StatsSourceMixin:
    """Default :class:`StatsSource` behaviour for stats dataclasses.

    ``as_dict`` enumerates the dataclass fields; ``reset`` restores each
    field to its declared default.  Subclasses override ``labels`` (a
    class attribute) and may extend ``as_dict`` with derived values.
    """

    labels: Mapping[str, str] = {}

    def as_dict(self) -> Dict[str, Number]:
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)  # type: ignore[arg-type]
        }

    def reset(self, cycle: int = 0) -> None:
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            if f.default is not dataclasses.MISSING:
                setattr(self, f.name, f.default)
            elif f.default_factory is not dataclasses.MISSING:
                setattr(self, f.name, f.default_factory())


# -- free-standing instruments -------------------------------------------------


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def as_value(self) -> Number:
        return self.value


class Gauge:
    """Last-written value (occupancy, level, fraction)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: Number) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0

    def as_value(self) -> Number:
        return self.value


class Histogram:
    """Power-of-two-bucketed distribution of a nonnegative quantity.

    Buckets are ``[0], [1], [2,3], [4,7], ...``: ``observe(v)`` lands in
    bucket ``v.bit_length()``.  Tracks count / total / min / max exactly,
    so the mean is exact and the shape is approximate — enough for
    latency- and episode-length style telemetry without keeping samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: Number) -> None:
        if value < 0:
            raise ValueError("histograms track nonnegative quantities")
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_value(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": 0 if self.min is None else self.min,
            "max": 0 if self.max is None else self.max,
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named registry of stats sources and free-standing instruments.

    Components register their stats holders under a dotted path name
    (``"l2"``, ``"l2.ecc_array"``); experiments interact only with the
    registry: ``snapshot()`` for a point-in-time view, ``reset(cycle)``
    for a measurement boundary.  Extra work a component must do at the
    boundary beyond zeroing counters (the dirty-episode clamp, restarting
    an integrator) lives in that component's own ``reset`` — the
    registry has no component-specific knowledge.
    """

    #: Reserved snapshot group for free-standing instruments.
    METRICS_GROUP = "metrics"

    def __init__(self) -> None:
        self._sources: Dict[str, StatsSource] = {}
        self._instruments: Dict[str, Instrument] = {}
        self._reset_hooks: List[Callable[[int], None]] = []

    # -- registration ------------------------------------------------------

    def register_source(self, name: str, source: StatsSource) -> StatsSource:
        """Register ``source`` under ``name``; duplicate names are bugs."""
        if name == self.METRICS_GROUP:
            raise ValueError(f"{name!r} is reserved for instruments")
        if name in self._sources:
            raise ValueError(f"stats source {name!r} already registered")
        self._sources[name] = source
        return source

    def unregister_source(self, name: str) -> None:
        self._sources.pop(name, None)

    def on_reset(self, hook: Callable[[int], None]) -> None:
        """Run ``hook(cycle)`` at every measurement boundary."""
        self._reset_hooks.append(hook)

    def _instrument(self, name: str, factory) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = factory(name)
        elif not isinstance(inst, factory):
            raise ValueError(
                f"instrument {name!r} is a {type(inst).__name__}, "
                f"not a {factory.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter called ``name``."""
        return self._instrument(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the gauge called ``name``."""
        return self._instrument(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the histogram called ``name``."""
        return self._instrument(name, Histogram)  # type: ignore[return-value]

    # -- queries -----------------------------------------------------------

    @property
    def sources(self) -> Mapping[str, StatsSource]:
        return dict(self._sources)

    def labels(self) -> Dict[str, Mapping[str, str]]:
        """Identity labels of every registered source."""
        return {name: dict(src.labels) for name, src in self._sources.items()}

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Point-in-time view: {source name: {counter: value}}.

        Free-standing instruments appear under the reserved
        ``"metrics"`` group.  The result is plain data (JSON-able) and
        detached from the live counters.
        """
        snap: Dict[str, Dict[str, Any]] = {
            name: dict(source.as_dict())
            for name, source in self._sources.items()
        }
        if self._instruments:
            snap[self.METRICS_GROUP] = {
                name: inst.as_value()
                for name, inst in self._instruments.items()
            }
        return snap

    def flatten(self) -> Dict[str, Number]:
        """Dotted-key flat view: ``{"l2.read_hits": 3, ...}``."""
        return flatten_snapshot(self.snapshot())

    # -- the measurement boundary -----------------------------------------

    def reset(self, cycle: int = 0) -> None:
        """Zero every source and instrument at simulation time ``cycle``."""
        for source in self._sources.values():
            source.reset(cycle)
        for inst in self._instruments.values():
            inst.reset()
        for hook in self._reset_hooks:
            hook(cycle)


def flatten_snapshot(
    snapshot: Mapping[str, Mapping[str, Any]], sep: str = "."
) -> Dict[str, Number]:
    """Flatten a nested snapshot into dotted scalar keys."""
    flat: Dict[str, Number] = {}
    for group, values in snapshot.items():
        for key, value in values.items():
            if isinstance(value, Mapping):  # histogram summaries
                for sub, v in value.items():
                    flat[f"{group}{sep}{key}{sep}{sub}"] = v
            else:
                flat[f"{group}{sep}{key}"] = value
    return flat


def mean_snapshots(
    snapshots: List[Mapping[str, Mapping[str, Any]]],
) -> Dict[str, Dict[str, float]]:
    """Element-wise mean of several snapshots (e.g. across seeds).

    A counter missing from some snapshots averages as zero there;
    histogram summaries are averaged field-wise.
    """
    out: Dict[str, Dict[str, Any]] = {}
    n = len(snapshots)
    if n == 0:
        return out
    for snap in snapshots:
        for group, values in snap.items():
            acc = out.setdefault(group, {})
            for key, value in values.items():
                if isinstance(value, Mapping):
                    sub_acc = acc.setdefault(key, {})
                    for sub, v in value.items():
                        sub_acc[sub] = sub_acc.get(sub, 0.0) + v / n
                else:
                    acc[key] = acc.get(key, 0.0) + value / n
    return out


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsSource",
    "StatsSourceMixin",
    "flatten_snapshot",
    "mean_snapshots",
]
