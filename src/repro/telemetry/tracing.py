"""Structured event tracing: typed, ring-buffered, JSONL-exportable.

Aggregate counters answer "how many Clean-WBs"; an error-protection
study also needs "which line, which set, which FSM transition" (HARP
and Cerberus both live on such logs).  :class:`EventTracer` records
typed events into a bounded ring buffer and exports them as JSON Lines.

Tracing is strictly opt-in: components hold ``_tracer = None`` until a
tracer is attached, and every emission site is guarded by a single
``is not None`` check on the *cold* paths only (dirty transitions,
write-backs, ECC-array traffic — never the per-access hot loop), so a
disabled tracer costs nothing measurable.

Event schema (``SCHEMA_VERSION`` = 1) — every event carries ``type``
and ``cycle`` plus its type's fields:

``dirty_transition``
    A line changed dirty state.  ``dirty=true`` on the write that
    soiled it (``reason="write"``); ``dirty=false`` when it was cleaned
    (``reason`` names the write-back cause).
``writeback``
    A dirty line pushed toward the next memory level; ``reason`` is one
    of ``replacement | cleaning | ecc-eviction | eager | flush``
    (``cleaning`` is the paper's cleaning-FSM write-back).
``ecc_claim``
    A line turning dirty claimed a shared-ECC-array entry.
``ecc_evict``
    A claim displaced another line's entry, forcing that line's
    ECC-WB (``evicted_way``); ``for_way`` is the claimant.
``error_outcome``
    One fault-injection trial's classified decoder outcome;
    ``cycle`` is the trial index.
``campaign_outcome``
    One reliability-campaign trial's end-to-end outcome (scheme,
    struck domain, line dirtiness, taxonomy class); ``cycle`` is the
    campaign-global trial index.  Shards head-sample these, so a
    campaign's trace is representative, not exhaustive.
``silent_write``
    A store rewrote the value its line already held and was elided
    (silent-write variant); ``dirty`` is the line's state at the time.
``wb_compress``
    A departing dirty line was compressed on the write-back path
    (wb-compress variant): raw versus on-bus byte counts.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

SCHEMA_VERSION = 1

#: Legal ``reason`` values (mirrors ``WritebackReason`` without the import).
WRITEBACK_REASONS = frozenset(
    {"replacement", "cleaning", "ecc-eviction", "eager", "flush"}
)

#: Required fields per event type (beyond ``type`` and ``cycle``).
EVENT_FIELDS: Dict[str, Dict[str, type]] = {
    "dirty_transition": {
        "cache": str,
        "set": int,
        "way": int,
        "addr": int,
        "dirty": bool,
        "reason": str,
    },
    "writeback": {
        "cache": str,
        "set": int,
        "way": int,
        "addr": int,
        "reason": str,
    },
    "ecc_claim": {"cache": str, "set": int, "way": int},
    "ecc_evict": {
        "cache": str,
        "set": int,
        "evicted_way": int,
        "for_way": int,
    },
    "error_outcome": {"codec": str, "trial": int, "flips": int, "outcome": str},
    "campaign_outcome": {
        "scheme": str,
        "domain": str,
        "dirty": bool,
        "outcome": str,
    },
    "silent_write": {
        "cache": str,
        "set": int,
        "way": int,
        "addr": int,
        "dirty": bool,
    },
    "wb_compress": {
        "cache": str,
        "addr": int,
        "raw_bytes": int,
        "compressed_bytes": int,
    },
}


class TraceSchemaError(ValueError):
    """An event does not conform to the trace schema."""


def _check_type(value: Any, expected: type) -> bool:
    if expected is int:
        # bool is an int subclass; an int field must not hold a bool.
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, expected)


def validate_event(event: Mapping[str, Any]) -> None:
    """Raise :class:`TraceSchemaError` unless ``event`` fits the schema."""
    etype = event.get("type")
    if etype not in EVENT_FIELDS:
        raise TraceSchemaError(f"unknown event type {etype!r}")
    cycle = event.get("cycle")
    if not _check_type(cycle, int) or cycle < 0:
        raise TraceSchemaError(f"{etype}: cycle must be a nonnegative int")
    fields = EVENT_FIELDS[etype]
    for name, expected in fields.items():
        if name not in event:
            raise TraceSchemaError(f"{etype}: missing field {name!r}")
        if not _check_type(event[name], expected):
            raise TraceSchemaError(
                f"{etype}: field {name!r} must be {expected.__name__}, "
                f"got {type(event[name]).__name__}"
            )
    extra = set(event) - set(fields) - {"type", "cycle"}
    if extra:
        raise TraceSchemaError(f"{etype}: unexpected fields {sorted(extra)}")
    if "reason" in fields and etype == "writeback":
        if event["reason"] not in WRITEBACK_REASONS:
            raise TraceSchemaError(
                f"writeback: unknown reason {event['reason']!r}"
            )


class EventTracer:
    """Bounded ring buffer of trace events.

    ``capacity``
        Events retained; older events are dropped (and counted in
        ``dropped``) once the buffer is full.  Per-type totals in
        ``counts`` keep counting past the drop horizon.
    ``types``
        Optional allow-list of event types to record; ``None`` records
        everything in :data:`EVENT_FIELDS`.
    """

    def __init__(
        self,
        capacity: int = 65536,
        types: Optional[Iterable[str]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._buffer: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        if types is not None:
            unknown = set(types) - set(EVENT_FIELDS)
            if unknown:
                raise ValueError(f"unknown event types {sorted(unknown)}")
            self.types: Optional[frozenset] = frozenset(types)
        else:
            self.types = None
        self.counts: Dict[str, int] = {}
        self.dropped = 0
        self.enabled = True

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def total(self) -> int:
        """Events emitted (recorded + dropped)."""
        return sum(self.counts.values())

    def emit(self, type: str, cycle: int, **fields: Any) -> None:
        """Record one event; silently drops disabled/filtered types."""
        if not self.enabled:
            return
        if self.types is not None and type not in self.types:
            return
        buffer = self._buffer
        if len(buffer) == self.capacity:
            self.dropped += 1
        event = {"type": type, "cycle": cycle}
        event.update(fields)
        buffer.append(event)
        self.counts[type] = self.counts.get(type, 0) + 1

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()
        self.counts.clear()
        self.dropped = 0

    # -- JSONL -------------------------------------------------------------

    def export_jsonl(self, path: Union[str, "os.PathLike"]) -> int:
        """Write the retained events as JSON Lines; returns events written."""
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for event in self._buffer:
                fh.write(json.dumps(event, separators=(",", ":")))
                fh.write("\n")
                n += 1
        return n

    def summary(self) -> str:
        """One line: per-type counts plus drops."""
        parts = [f"{t}={n}" for t, n in sorted(self.counts.items())]
        line = f"trace: {self.total} events ({', '.join(parts) or 'none'})"
        if self.dropped:
            line += f", {self.dropped} dropped (ring capacity {self.capacity})"
        return line


def load_jsonl(path: Union[str, "os.PathLike"]) -> List[Dict[str, Any]]:
    """Read a JSONL trace back into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


__all__ = [
    "EVENT_FIELDS",
    "EventTracer",
    "SCHEMA_VERSION",
    "TraceSchemaError",
    "WRITEBACK_REASONS",
    "load_jsonl",
    "validate_event",
]
