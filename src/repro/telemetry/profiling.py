"""Lightweight phase profiling: wall time and throughput per phase.

A :class:`PhaseProfiler` accumulates (wall seconds, work units) per
named phase — warm-up vs measurement inside one run, cache-lookup vs
execute inside a sweep — and renders events-per-second summaries.  It
is plain accounting on top of ``time.perf_counter``; no signals, no
threads, safe to leave attached.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator


@dataclass
class PhaseRecord:
    """Accumulated cost of one named phase."""

    name: str
    wall_s: float = 0.0
    #: Work units processed in the phase (refs, cells, events...).
    events: int = 0
    calls: int = 0

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "wall_s": self.wall_s,
            "events": self.events,
            "calls": self.calls,
            "events_per_s": self.events_per_s,
        }


class PhaseProfiler:
    """Accumulates wall time and work counts per named phase."""

    def __init__(self) -> None:
        self._phases: Dict[str, PhaseRecord] = {}

    def __len__(self) -> int:
        return len(self._phases)

    def __contains__(self, name: str) -> bool:
        return name in self._phases

    @property
    def phases(self) -> Dict[str, PhaseRecord]:
        return dict(self._phases)

    def record(self, name: str) -> PhaseRecord:
        """The (created-on-demand) record for ``name``."""
        rec = self._phases.get(name)
        if rec is None:
            rec = self._phases[name] = PhaseRecord(name)
        return rec

    def add(self, name: str, wall_s: float, events: int = 0) -> PhaseRecord:
        """Fold one finished stretch of work into phase ``name``."""
        rec = self.record(name)
        rec.wall_s += wall_s
        rec.events += events
        rec.calls += 1
        return rec

    @contextmanager
    def phase(self, name: str, events: int = 0) -> Iterator[PhaseRecord]:
        """Time a ``with`` block as one call of phase ``name``.

        The yielded record can be updated in-block (e.g. bump
        ``rec.events`` as work is discovered); ``events`` passed here
        are added up-front.
        """
        rec = self.record(name)
        rec.events += events
        rec.calls += 1
        t0 = time.perf_counter()
        try:
            yield rec
        finally:
            rec.wall_s += time.perf_counter() - t0

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Plain-data view, insertion (phase-creation) ordered."""
        return {name: rec.as_dict() for name, rec in self._phases.items()}

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's phases into this one."""
        for name, rec in other._phases.items():
            mine = self.record(name)
            mine.wall_s += rec.wall_s
            mine.events += rec.events
            mine.calls += rec.calls

    def summary(self) -> str:
        """One line per phase: wall seconds, events, events/s."""
        if not self._phases:
            return "profile: no phases recorded"
        lines = []
        for rec in self._phases.values():
            line = f"  {rec.name}: {rec.wall_s:.3f}s"
            if rec.events:
                line += f", {rec.events} events at {rec.events_per_s:,.0f}/s"
            lines.append(line)
        return "profile:\n" + "\n".join(lines)


__all__ = ["PhaseProfiler", "PhaseRecord"]
