"""Performance-regression gate over the kernel-throughput artifact.

Compares the JSON written by ``benchmarks/bench_reliability_throughput.py``
against the committed baseline (``BENCH_reliability.json`` at the repo
root) and exits non-zero when any floor is violated:

* **absolute throughput** — each backend's current trials/s must stay
  within ``--tolerance`` (default 30%) of the baseline's, so a kernel
  regression cannot land silently even if it stays "fast enough";
* **speedup ratios** — batch must remain at least ``--min-speedup``
  (default 10×) faster than the reference path and vector at least
  ``--min-vector-speedup`` (default 5×) faster than batch, *measured in
  the same run* — machine-independent bounds that hold on slow CI
  runners where absolute numbers drift;
* **scenario rows** — each correlated-fault preset's batch throughput
  is gated with the same tolerance, for every scenario both artifacts
  measured.  A baseline predating the ``scenarios`` section skips
  those floors gracefully rather than failing;
* **autotune explorer** (schema v4) — the Pareto explorer's cold-pass
  cells/s is held to the same tolerance floor against the baseline,
  and its warm-cache re-run must stay at least
  ``--min-autotune-speedup`` (default 5×) faster than the cold pass,
  measured in the same run — a point-cache bug degrades that ratio to
  ~1× long before any absolute rate drifts;
* **runner throughput** (schema v5) — the reference-stream runner's
  standard-variant refs/s is floored against the baseline (the nominal
  path must not pay for the traffic-aware machinery), and the
  silent-write variant's in-run detection overhead must stay under
  ``--max-runner-overhead`` (default 5%).

The ``vector`` backend is gated only when the current run measured it
(numpy installed); a current run without it is a graceful skip, never a
failure, so the stdlib-only configuration stays green.

Both files are **validated before anything is dereferenced**: a schema
bump or a missing key produces ``FAIL:`` lines (all violations, not
just the first) plus the ``make bench-baseline`` hint and exit code 1 —
never a KeyError traceback.

Usage (what ``make bench-perf`` runs):

    python scripts/check_bench.py \
        --current benchmarks/results/BENCH_reliability.json \
        --baseline BENCH_reliability.json

Refreshing the baseline after an intentional change: ``make
bench-baseline``, then commit the updated root JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The artifact schema this gate understands (see the benchmark module).
SCHEMA = 5

#: Keys every artifact must carry before any gate math runs.
REQUIRED_KERNEL_KEYS = {
    "reference": ("trials_per_s",),
    "batch": ("trials_per_s", "speedup_vs_reference"),
}

#: Keys a ``vector`` entry must carry *when present*.
VECTOR_KERNEL_KEYS = ("trials_per_s", "speedup_vs_batch")

#: Keys the (v4-mandatory) ``autotune`` section must carry.
AUTOTUNE_KEYS = ("cells_per_s_cold", "cells_per_s_warm", "warm_speedup")

#: Keys the (v5-mandatory) ``runner`` section must carry.
RUNNER_KEYS = (
    "standard_refs_per_s", "silent_write_refs_per_s", "overhead_pct"
)

REGENERATE_HINT = "regenerate the baseline with `make bench-baseline`"


def _load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        sys.exit(f"FAIL: benchmark file not found: {path}")
    except json.JSONDecodeError as exc:
        sys.exit(f"FAIL: {path} is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        sys.exit(f"FAIL: {path} must contain a JSON object")
    return doc


def validate(doc: dict, label: str) -> list:
    """Structural violations of one artifact (empty == usable).

    Runs *before* any gate dereferences the documents, so stale or
    hand-edited artifacts fail with actionable messages instead of
    tracebacks.
    """
    problems = []
    schema = doc.get("schema")
    if schema != SCHEMA:
        problems.append(
            f"{label}: schema {schema!r} does not match the expected "
            f"{SCHEMA!r} — {REGENERATE_HINT}"
        )
    kernels = doc.get("kernels")
    if not isinstance(kernels, dict):
        problems.append(
            f"{label}: missing per-backend 'kernels' section — "
            f"{REGENERATE_HINT}"
        )
        return problems
    for kernel, keys in REQUIRED_KERNEL_KEYS.items():
        entry = kernels.get(kernel)
        if not isinstance(entry, dict):
            problems.append(
                f"{label}: kernels[{kernel!r}] entry is missing — "
                f"{REGENERATE_HINT}"
            )
            continue
        for key in keys:
            if not isinstance(entry.get(key), (int, float)):
                problems.append(
                    f"{label}: kernels[{kernel!r}][{key!r}] is missing "
                    f"or not a number — {REGENERATE_HINT}"
                )
    vector = kernels.get("vector")
    if vector is not None:
        if not isinstance(vector, dict):
            problems.append(
                f"{label}: kernels['vector'] must be an object — "
                f"{REGENERATE_HINT}"
            )
        else:
            for key in VECTOR_KERNEL_KEYS:
                if not isinstance(vector.get(key), (int, float)):
                    problems.append(
                        f"{label}: kernels['vector'][{key!r}] is missing "
                        f"or not a number — {REGENERATE_HINT}"
                    )
    # The scenarios section is optional (a pre-v3 baseline may lack
    # it) but must be well-formed when present.
    scenarios = doc.get("scenarios")
    if scenarios is not None:
        if not isinstance(scenarios, dict):
            problems.append(
                f"{label}: 'scenarios' must be an object — "
                f"{REGENERATE_HINT}"
            )
        else:
            for name, entry in scenarios.items():
                if not isinstance(entry, dict) or not isinstance(
                    entry.get("batch_trials_per_s"), (int, float)
                ):
                    problems.append(
                        f"{label}: scenarios[{name!r}]"
                        f"['batch_trials_per_s'] is missing or not a "
                        f"number — {REGENERATE_HINT}"
                    )
    # The autotune section is mandatory from schema v4 on: the schema
    # check above already flags older artifacts, so this only has to
    # reject a v4 document with a malformed or missing section.
    autotune = doc.get("autotune")
    if not isinstance(autotune, dict):
        problems.append(
            f"{label}: missing 'autotune' section — {REGENERATE_HINT}"
        )
    else:
        for key in AUTOTUNE_KEYS:
            if not isinstance(autotune.get(key), (int, float)):
                problems.append(
                    f"{label}: autotune[{key!r}] is missing or not a "
                    f"number — {REGENERATE_HINT}"
                )
    # The runner section is mandatory from schema v5 on, same logic.
    runner = doc.get("runner")
    if not isinstance(runner, dict):
        problems.append(
            f"{label}: missing 'runner' section — {REGENERATE_HINT}"
        )
    else:
        for key in RUNNER_KEYS:
            if not isinstance(runner.get(key), (int, float)):
                problems.append(
                    f"{label}: runner[{key!r}] is missing or not a "
                    f"number — {REGENERATE_HINT}"
                )
    return problems


def check(
    current: dict,
    baseline: dict,
    tolerance: float,
    min_speedup: float,
    min_vector_speedup: float,
    min_autotune_speedup: float,
    max_runner_overhead: float,
) -> list:
    """Gate violations between two *validated* artifacts (empty == pass)."""
    problems = []
    cur = current["kernels"]
    base = baseline["kernels"]

    for kernel in ("reference", "batch") + (
        ("vector",) if "vector" in cur and "vector" in base else ()
    ):
        floor = base[kernel]["trials_per_s"] * (1.0 - tolerance)
        got = cur[kernel]["trials_per_s"]
        if got < floor:
            problems.append(
                f"{kernel} throughput {got:,.0f} trials/s is below the "
                f"floor {floor:,.0f} (baseline "
                f"{base[kernel]['trials_per_s']:,.0f} minus "
                f"{tolerance:.0%} tolerance)"
            )

    if cur["batch"]["speedup_vs_reference"] < min_speedup:
        problems.append(
            f"batch/reference speedup "
            f"{cur['batch']['speedup_vs_reference']:.1f}x is below the "
            f"{min_speedup:.1f}x floor"
        )
    if "vector" in cur:
        if cur["vector"]["speedup_vs_batch"] < min_vector_speedup:
            problems.append(
                f"vector/batch speedup "
                f"{cur['vector']['speedup_vs_batch']:.1f}x is below the "
                f"{min_vector_speedup:.1f}x floor"
            )

    # Scenario floors: only for presets both artifacts measured.
    cur_scenarios = current.get("scenarios") or {}
    base_scenarios = baseline.get("scenarios") or {}
    for name in sorted(set(cur_scenarios) & set(base_scenarios)):
        floor = base_scenarios[name]["batch_trials_per_s"] * (
            1.0 - tolerance
        )
        got = cur_scenarios[name]["batch_trials_per_s"]
        if got < floor:
            problems.append(
                f"scenario {name!r} batch throughput {got:,.0f} "
                f"trials/s is below the floor {floor:,.0f} (baseline "
                f"{base_scenarios[name]['batch_trials_per_s']:,.0f} "
                f"minus {tolerance:.0%} tolerance)"
            )

    # Autotune explorer: the cold pass gets the same tolerance floor;
    # the warm/cold ratio is gated within the current run only (the
    # warm pass is pure cache lookups — its absolute rate is too noisy
    # to floor against a baseline, but the ratio is machine-free).
    cold_floor = baseline["autotune"]["cells_per_s_cold"] * (
        1.0 - tolerance
    )
    cold = current["autotune"]["cells_per_s_cold"]
    if cold < cold_floor:
        problems.append(
            f"autotune cold-pass throughput {cold:,.1f} cells/s is "
            f"below the floor {cold_floor:,.1f} (baseline "
            f"{baseline['autotune']['cells_per_s_cold']:,.1f} minus "
            f"{tolerance:.0%} tolerance)"
        )
    warm_speedup = current["autotune"]["warm_speedup"]
    if warm_speedup < min_autotune_speedup:
        problems.append(
            f"autotune warm-cache speedup {warm_speedup:.1f}x is below "
            f"the {min_autotune_speedup:.1f}x floor"
        )

    # Runner: the nominal path's absolute rate holds the tolerance
    # floor against the baseline; the silent-write detection's cost is
    # a same-run ratio (machine-free) held under the overhead ceiling.
    runner_floor = baseline["runner"]["standard_refs_per_s"] * (
        1.0 - tolerance
    )
    runner_rate = current["runner"]["standard_refs_per_s"]
    if runner_rate < runner_floor:
        problems.append(
            f"runner standard-path throughput {runner_rate:,.0f} refs/s "
            f"is below the floor {runner_floor:,.0f} (baseline "
            f"{baseline['runner']['standard_refs_per_s']:,.0f} minus "
            f"{tolerance:.0%} tolerance)"
        )
    overhead = current["runner"]["overhead_pct"]
    if overhead > max_runner_overhead:
        problems.append(
            f"silent-write detection overhead {overhead:.1f}% exceeds "
            f"the {max_runner_overhead:.1f}% ceiling"
        )
    return problems


def _summary_line(label: str, doc: dict) -> str:
    kernels = doc["kernels"]
    parts = [
        f"reference {kernels['reference']['trials_per_s']:,.0f}",
        f"batch {kernels['batch']['trials_per_s']:,.0f} "
        f"({kernels['batch']['speedup_vs_reference']:.1f}x)",
    ]
    if "vector" in kernels:
        parts.append(
            f"vector {kernels['vector']['trials_per_s']:,.0f} "
            f"({kernels['vector']['speedup_vs_batch']:.1f}x batch)"
        )
    autotune = doc["autotune"]
    runner = doc["runner"]
    return (
        f"{label}: " + ", ".join(parts) + " trials/s; autotune "
        f"{autotune['cells_per_s_cold']:,.1f} cells/s cold "
        f"({autotune['warm_speedup']:.0f}x warm); runner "
        f"{runner['standard_refs_per_s']:,.0f} refs/s "
        f"({runner['overhead_pct']:.1f}% detection overhead)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    root = Path(__file__).resolve().parent.parent
    parser.add_argument(
        "--current",
        default=str(root / "benchmarks" / "results" / "BENCH_reliability.json"),
        help="JSON produced by this run's benchmark",
    )
    parser.add_argument(
        "--baseline",
        default=str(root / "BENCH_reliability.json"),
        help="committed baseline JSON",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop below the baseline (default 0.30)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="required batch/reference speedup in the current run",
    )
    parser.add_argument(
        "--min-vector-speedup",
        type=float,
        default=5.0,
        help="required vector/batch speedup when vector was measured",
    )
    parser.add_argument(
        "--min-autotune-speedup",
        type=float,
        default=5.0,
        help="required autotune warm-cache/cold speedup in the current "
             "run",
    )
    parser.add_argument(
        "--max-runner-overhead",
        type=float,
        default=5.0,
        help="allowed silent-write detection overhead (%% of standard "
             "refs/s) in the current run",
    )
    args = parser.parse_args(argv)

    current = _load(args.current)
    baseline = _load(args.baseline)

    # Structure first — nothing below may touch a key this rejected.
    problems = validate(current, "current") + validate(baseline, "baseline")
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1

    problems = check(
        current,
        baseline,
        args.tolerance,
        args.min_speedup,
        args.min_vector_speedup,
        args.min_autotune_speedup,
        args.max_runner_overhead,
    )

    print(_summary_line("current ", current))
    print(_summary_line("baseline", baseline))
    if "vector" not in current["kernels"]:
        print("note: vector backend not measured (numpy absent); skipped")
    elif "vector" not in baseline["kernels"]:
        print("note: baseline has no vector entry; vector floor skipped")
    if not baseline.get("scenarios"):
        print("note: baseline has no scenario rows; scenario floors skipped")
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print("PASS: kernel throughput within the regression gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
