"""Performance-regression gate over the kernel-throughput artifact.

Compares the JSON written by ``benchmarks/bench_reliability_throughput.py``
against the committed baseline (``BENCH_reliability.json`` at the repo
root) and exits non-zero when either floor is violated:

* **absolute throughput** — current batch trials/s must stay within
  ``--tolerance`` (default 30%) of the baseline's, so a kernel
  regression cannot land silently even if it stays "fast enough";
* **speedup ratio** — batch must remain at least ``--min-speedup``
  (default 10×) faster than the reference path *measured in the same
  run*, a machine-independent bound that holds on slow CI runners where
  absolute numbers drift.

Usage (what ``make bench-perf`` runs):

    python scripts/check_bench.py \
        --current benchmarks/results/BENCH_reliability.json \
        --baseline BENCH_reliability.json

Refreshing the baseline after an intentional change: ``make
bench-baseline``, then commit the updated root JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        sys.exit(f"FAIL: benchmark file not found: {path}")
    except json.JSONDecodeError as exc:
        sys.exit(f"FAIL: {path} is not valid JSON: {exc}")


def check(
    current: dict,
    baseline: dict,
    tolerance: float,
    min_speedup: float,
) -> list:
    """Return a list of human-readable violations (empty == pass)."""
    problems = []
    floor = baseline["batch_trials_per_s"] * (1.0 - tolerance)
    got = current["batch_trials_per_s"]
    if got < floor:
        problems.append(
            f"batch throughput {got:,.0f} trials/s is below the floor "
            f"{floor:,.0f} (baseline {baseline['batch_trials_per_s']:,.0f} "
            f"minus {tolerance:.0%} tolerance)"
        )
    if current["speedup"] < min_speedup:
        problems.append(
            f"batch/reference speedup {current['speedup']:.1f}x is below "
            f"the {min_speedup:.1f}x floor"
        )
    if current.get("schema") != baseline.get("schema"):
        problems.append(
            f"schema mismatch: current {current.get('schema')!r} vs "
            f"baseline {baseline.get('schema')!r} — regenerate the "
            "baseline with `make bench-baseline`"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    root = Path(__file__).resolve().parent.parent
    parser.add_argument(
        "--current",
        default=str(root / "benchmarks" / "results" / "BENCH_reliability.json"),
        help="JSON produced by this run's benchmark",
    )
    parser.add_argument(
        "--baseline",
        default=str(root / "BENCH_reliability.json"),
        help="committed baseline JSON",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop below the baseline (default 0.30)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="required batch/reference speedup in the current run",
    )
    args = parser.parse_args(argv)

    current = _load(args.current)
    baseline = _load(args.baseline)
    problems = check(current, baseline, args.tolerance, args.min_speedup)

    print(
        f"current : batch {current['batch_trials_per_s']:,.0f} trials/s, "
        f"reference {current['reference_trials_per_s']:,.0f} trials/s, "
        f"speedup {current['speedup']:.1f}x"
    )
    print(
        f"baseline: batch {baseline['batch_trials_per_s']:,.0f} trials/s "
        f"(floor at -{args.tolerance:.0%}: "
        f"{baseline['batch_trials_per_s'] * (1 - args.tolerance):,.0f}), "
        f"min speedup {args.min_speedup:.1f}x"
    )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print("PASS: kernel throughput within the regression gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
