#!/usr/bin/env python
"""Docs-consistency gate: every CLI verb and flag appears in the docs.

Introspects the real argparse tree (``repro.cli.build_parser``) — not a
hand-maintained list — and requires that every subcommand name and every
long option of every subcommand is mentioned somewhere in the documentation
corpus (README.md, EXPERIMENTS.md, docs/*.md).  A flag added to the CLI
without a line of documentation fails CI here, which is how the docs tree
stays honest as the surface grows.

Usage: python scripts/check_docs.py  (exit 0 = consistent)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: Documentation files whose union forms the corpus.
DOC_GLOBS = ("README.md", "EXPERIMENTS.md", "docs/*.md")


def doc_corpus() -> str:
    chunks = []
    for pattern in DOC_GLOBS:
        for path in sorted(REPO.glob(pattern)):
            chunks.append(path.read_text(encoding="utf-8"))
    return "\n".join(chunks)


def api_doc_text() -> str:
    """The registry-reference document (``docs/api.md``) alone."""
    return (REPO / "docs" / "api.md").read_text(encoding="utf-8")


def registry_names() -> dict:
    """``{registry: [registered names]}`` from the live registries.

    Everything a request can select by name — policy variants, fault
    scenarios, ECC codecs — must be enumerated in ``docs/api.md``; a
    name registered without a docs mention fails CI here, exactly like
    an undocumented CLI flag.
    """
    from repro.core.policy import available_variants
    from repro.ecc import available_codecs
    from repro.reliability.scenarios import available_scenarios

    return {
        "variant": list(available_variants()),
        "scenario": list(available_scenarios()),
        "codec": list(available_codecs()),
    }


def check_registries(names: dict, api_text: str) -> list:
    """``FAIL:`` lines for registered names missing from docs/api.md."""
    failures = []
    for registry, entries in sorted(names.items()):
        for name in entries:
            if name not in api_text:
                failures.append(
                    f"FAIL: {registry} {name!r} is not in docs/api.md"
                )
    return failures


def cli_surface() -> dict:
    """``{verb: [long options]}`` from the live parser."""
    from repro.cli import build_parser

    parser = build_parser()
    surface = {}
    for action in parser._actions:
        if not isinstance(action, argparse._SubParsersAction):
            continue
        for verb, sub in action.choices.items():
            flags = []
            for sub_action in sub._actions:
                flags.extend(
                    opt for opt in sub_action.option_strings
                    if opt.startswith("--")
                )
            surface[verb] = flags
    return surface


def check(surface: dict, corpus: str) -> list:
    """``FAIL:`` lines for every verb/flag missing from the corpus.

    Pure so tests can hand in a synthetic surface/corpus pair; the
    ``FAIL:`` prefix is the machine-greppable contract CI and the unit
    tests key on.
    """
    failures = []
    for verb, flags in sorted(surface.items()):
        if verb not in corpus:
            failures.append(f"FAIL: verb {verb!r} is not documented")
        for flag in flags:
            if flag not in corpus:
                failures.append(
                    f"FAIL: {verb}: flag {flag} is not documented"
                )
    return failures


def main() -> int:
    surface = cli_surface()
    names = registry_names()
    failures = check(surface, doc_corpus())
    failures += check_registries(names, api_doc_text())
    n_flags = sum(len(f) for f in surface.values())
    n_names = sum(len(v) for v in names.values())
    if failures:
        print("docs are out of sync with the CLI/registry surface:")
        for line in failures:
            print(line)
        print(
            f"\n(checked {n_flags} flags across {len(surface)} verbs "
            f"against {', '.join(DOC_GLOBS)}, and {n_names} registered "
            f"names against docs/api.md)"
        )
        return 1
    print(
        f"docs OK: {len(surface)} verbs, {n_flags} flags, "
        f"{n_names} registered names all documented"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
