#!/usr/bin/env python
"""CI smoke test for the autotune Pareto explorer.

Explores a tiny grid (3 schemes x 1 codec x 1 interval, 2 objectives)
four ways and asserts the invariants the feature's acceptance rests on:

* the front is genuinely non-dominated — no front member dominates
  another, and every off-front point is dominated by a front member;
* the full response document is **bit-identical** between ``--jobs 1``
  and ``--jobs 4`` (the parallel path may not perturb a single bit);
* a sweep interrupted mid-grid (here: a partial grid into a fresh
  cache) resumes — the full grid over the same cache executes only the
  missing points and still produces the identical document;
* the ``repro autotune`` CLI emits that same document as JSON.

Usage: ``PYTHONPATH=src python scripts/autotune_smoke.py``
"""

import contextlib
import io
import json
import sys
import tempfile

from repro import api
from repro.autotune import dominates, resolve_objectives
from repro.cli import main as cli_main
from repro.experiments.pool import ResultCache, SweepEngine

GRID = {
    "benchmarks": ("mesa",),
    "schemes": ("non-uniform", "uniform-ecc", "parity-only"),
    "codecs": ("secded",),
    "intervals": (262144,),
    "objectives": ("area", "fit"),
    "trials": 400,
    "trials_per_shard": 200,
    "refs": 6000,
    "warmup": 2000,
}

#: The same grid as ``repro autotune`` flags (262144 cycles == 256K).
CLI_FLAGS = [
    "autotune",
    "--benchmarks", "mesa",
    "--schemes", "non-uniform", "uniform-ecc", "parity-only",
    "--codecs", "secded",
    "--intervals", "256K",
    "--objectives", "area", "fit",
    "--trials", "400",
    "--trials-per-shard", "200",
    "--refs", "6000",
    "--warmup", "2000",
    "--format", "json",
]


def numbers(doc: dict) -> dict:
    """The document minus the executed/cached counters.

    Those counters legitimately differ between a cold sweep and a
    resumed one; every *number* — points, objective values, fronts —
    must still be bit-identical.
    """
    return {k: v for k, v in doc.items() if k not in ("executed", "cached")}


def explore(jobs: int, cache_dir: str, **overrides) -> api.AutotuneResponse:
    request = api.AutotuneRequest(**{**GRID, **overrides})
    engine = SweepEngine(jobs=jobs, cache=ResultCache(cache_dir))
    return api.autotune(request, engine=engine)


def check_front(response: api.AutotuneResponse) -> None:
    """The front is exactly the non-dominated set, cross-checked."""
    specs = resolve_objectives(response.objectives)
    names = [spec.name for spec in specs]
    intervals = [
        {spec.name: spec.interval(m) for spec in specs}
        for m in response.metrics
    ]
    for benchmark, front in response.fronts.items():
        members = set(front)
        candidates = [
            i for i, m in enumerate(response.metrics)
            if m.point.benchmark == benchmark
        ]
        for i in front:
            for j in front:
                assert i == j or not dominates(
                    intervals[i], intervals[j], names
                ), f"front member {i} dominates front member {j}"
        for i in candidates:
            if i in members:
                continue
            assert any(
                dominates(intervals[j], intervals[i], names) for j in front
            ), f"off-front point {i} is dominated by no front member"
        assert all(
            response.points[i]["on_front"] == (i in members)
            for i in candidates
        ), "on_front flags disagree with the front index list"


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-autotune-smoke-") as tmp:
        seq = explore(1, f"{tmp}/seq")
        assert seq.executed == len(seq.points) and seq.cached == 0, (
            "cold sweep must execute every point"
        )
        check_front(seq)
        reference = seq.as_dict()
        n_front = sum(len(f) for f in seq.fronts.values())
        print(f"sequential sweep: {len(seq.points)} points, "
              f"{n_front} on the front (non-dominance cross-checked)")

        par = explore(4, f"{tmp}/par")
        assert par.as_dict() == reference, (
            "--jobs 4 document diverged from --jobs 1"
        )
        print("parallel sweep (--jobs 4) is bit-identical")

        # A sweep killed mid-grid leaves a partially-filled cache; the
        # partial grid stands in for the interrupted run.
        partial = explore(1, f"{tmp}/resume",
                          schemes=("non-uniform", "uniform-ecc"))
        resumed = explore(1, f"{tmp}/resume")
        assert partial.executed == 2 and resumed.executed == 1, (
            "resume must execute exactly the missing points"
        )
        assert resumed.cached == 2, "resume must reuse the completed points"
        assert numbers(resumed.as_dict()) == numbers(reference), (
            "resumed document diverged from the uninterrupted sweep"
        )
        print("mid-sweep resume: 1 executed, 2 cached, identical document")

        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            rc = cli_main(CLI_FLAGS + ["--cache-dir", f"{tmp}/resume"])
        assert rc == 0, f"repro autotune exited {rc}"
        cli_doc = json.loads(stdout.getvalue())
        assert numbers(cli_doc) == numbers(json.loads(json.dumps(
            reference
        ))), "CLI JSON document diverged from the facade call"
        print("repro autotune --format json matches the facade document")
    print("autotune smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
