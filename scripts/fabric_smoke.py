#!/usr/bin/env python
"""CI smoke test for the distributed campaign fabric.

Starts **two** service replicas on ephemeral ports sharing one data
dir, submits the same reliability campaign to both over the wire, and
asserts the fabric contract end to end:

* the submissions dedupe cluster-wide (one logical job, one fabric
  record with two submissions);
* both replicas report the campaign done and serve **bit-identical**
  result documents, equal to a direct :mod:`repro.api` call;
* every shard executed exactly once across the cluster (work was
  split, not duplicated);
* ``GET /v1/workers`` shows both replicas alive;
* a shard leased by a dead "ghost" replica is stolen and finished by a
  survivor, still bit-identical;
* a third, fresh replica serves the finished key straight from the
  fabric result cache without executing anything.

Usage: ``PYTHONPATH=src python scripts/fabric_smoke.py``
"""

import json
import sys
import tempfile
import time

from repro import api
from repro.experiments.pool import SweepEngine
from repro.service import JobStore, ReproService, ServiceClient

CAMPAIGN = {
    "schemes": ["uniform-ecc", "non-uniform"],
    "trials": 500,
    "trials_per_shard": 125,
    "shards_per_round": 4,
    "seed": 9,
}
TOTAL_SHARDS = 8  # 500/125 = 4 shards per scheme, two schemes


def expected_doc():
    direct = api.reliability(
        api.request_from_dict(api.ReliabilityRequest, CAMPAIGN),
        engine=SweepEngine(),
    )
    return json.loads(json.dumps(direct.as_dict()))


def campaign_core(doc):
    """The measured campaign numbers, minus the shard-accounting
    counters (those are per-replica by design)."""
    return {
        key: value
        for key, value in doc["campaign"].items()
        if key not in ("executed_shards", "remote_shards", "resumed_shards")
    }


def two_replica_campaign(data: str, expected) -> str:
    replicas = [
        ReproService(
            port=0,
            workers=1,
            replica_id=f"smoke-{i}",
            store=JobStore(
                data_dir=data, workers=1, replica_id=f"smoke-{i}",
                lease_batch=1,  # force shard interleaving
            ),
        ).start()
        for i in (1, 2)
    ]
    try:
        clients = [ServiceClient(r.url) for r in replicas]
        submitted = [c.submit("reliability", CAMPAIGN) for c in clients]
        job_id = submitted[0]["job"]["id"]
        assert submitted[1]["job"]["id"] == job_id, (
            "the same request must map to one cluster-wide job key"
        )
        print(f"submitted campaign {job_id[:16]}… to both replicas")

        docs = [c.result(job_id, timeout=300) for c in clients]
        assert campaign_core(docs[0]) == campaign_core(docs[1]), (
            "replicas served different campaign numbers for one job"
        )
        assert docs[0]["request"] == docs[1]["request"]
        assert campaign_core(docs[0]) == campaign_core(expected), (
            "merged campaign diverged from the single-node run"
        )
        executed = docs[0]["executed_shards"] + docs[1]["executed_shards"]
        assert executed == TOTAL_SHARDS, (
            f"cluster executed {executed} shards, want {TOTAL_SHARDS} "
            "(shards were duplicated or lost)"
        )
        for doc in docs:
            # Per-replica accounting closes: every shard was executed
            # here, absorbed from a peer, or resumed from the shared
            # checkpoint.
            accounted = (
                doc["executed_shards"]
                + doc["remote_shards"]
                + doc["resumed_shards"]
            )
            assert accounted == TOTAL_SHARDS, doc
        print(
            f"bit-identical merge: {docs[0]['executed_shards']}+"
            f"{docs[1]['executed_shards']} shards split across replicas"
        )

        workers = clients[0].workers()["workers"]
        alive = {w["replica_id"] for w in workers if w["alive"]}
        assert {"smoke-1", "smoke-2"} <= alive, workers
        print(f"worker registry sees {sorted(alive)}")
        return job_id
    finally:
        for replica in replicas:
            replica.shutdown()


def ghost_reclaim(data: str, expected) -> None:
    store = JobStore(
        data_dir=data, workers=0, replica_id="survivor",
        lease_duration=0.2, worker_timeout=0.2,
    )
    try:
        job, _ = store.submit("reliability", CAMPAIGN)
        store.fabric.register_worker("ghost")
        ghost_keys = [("uniform-ecc", i) for i in range(2)]
        store.fabric.ensure_shards(job.key, ghost_keys)
        leased, _ = store.fabric.lease_shards(job.key, ghost_keys, "ghost")
        assert leased == ghost_keys
        time.sleep(0.3)  # the ghost's lease and heartbeat lapse
        store.run_pending()
        assert job.state == "done", job.state
        stolen = {
            tuple(shard)
            for event in job.events
            if event.get("type") == "steal"
            for shard in event["shards"]
        }
        assert stolen == set(ghost_keys), stolen
        doc = json.loads(json.dumps(job.result_doc()))
        assert doc["campaign"] == expected["campaign"], (
            "reclaimed campaign diverged from the single-node run"
        )
        print(f"survivor stole {len(stolen)} shards from the dead ghost")
    finally:
        store.close()


def cache_serves_cluster_wide(data: str, job_id: str, expected) -> None:
    fresh = ReproService(
        port=0, workers=0, replica_id="smoke-cache",
        store=JobStore(data_dir=data, workers=0, replica_id="smoke-cache"),
    ).start()
    try:
        client = ServiceClient(fresh.url)
        submitted = client.submit("reliability", CAMPAIGN)
        assert submitted["job"]["id"] == job_id
        doc = client.result(job_id, timeout=30)
        assert campaign_core(doc) == campaign_core(expected), (
            "fabric-cached document diverged"
        )
        print("fresh replica served the campaign from the fabric cache")
    finally:
        fresh.shutdown()


def main() -> int:
    expected = expected_doc()
    with tempfile.TemporaryDirectory(prefix="repro-fabric-smoke-") as data:
        job_id = two_replica_campaign(data, expected)
        cache_serves_cluster_wide(data, job_id, expected)
    with tempfile.TemporaryDirectory(prefix="repro-fabric-ghost-") as data:
        ghost_reclaim(data, expected)
    print("fabric smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
