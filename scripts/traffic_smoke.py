#!/usr/bin/env python
"""CI smoke test for the traffic-aware policy variants.

Drives the silent-write and wb-compress variants end to end through
the facade and the CLI and asserts the invariants the feature's
acceptance rests on:

* the standard path is untouched — a standard run reports zero for
  every traffic counter;
* ``silent-write`` actually elides: silent stores > 0, one elided ECC
  update per silent store, and the write-back traffic fraction does
  not exceed the standard run's;
* ``wb-compress`` actually compresses: compressed write-back bytes
  land strictly between zero and the raw byte count;
* ``repro ipc --variant silent-write`` renders the figures-5–8-style
  comparison with the energy row;
* an ``--objectives area fit traffic`` autotune grid puts at least
  one traffic-aware variant point on the Pareto front;
* an unknown variant name exits 2 with the enumerating ``error:``
  line, from the CLI and the request layer alike.

Usage: ``PYTHONPATH=src python scripts/traffic_smoke.py``
"""

import contextlib
import io
import sys

from repro import api
from repro.cli import main as cli_main
from repro.core.policy import traffic_aware_variants

RUN = dict(benchmark="swim", refs=20_000, warmup=5_000)


def cli(*argv):
    stdout, stderr = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(stdout), \
            contextlib.redirect_stderr(stderr):
        rc = cli_main(list(argv))
    return rc, stdout.getvalue(), stderr.getvalue()


def main() -> int:
    std = api.run(api.RunRequest(**RUN))
    assert (std.silent_writes, std.elided_ecc_updates,
            std.wb_bytes_raw, std.wb_bytes_compressed) == (0, 0, 0, 0), (
        "standard run must keep every traffic counter at zero"
    )
    print(f"standard: wbf {100 * std.writeback_fraction:.2f}%, "
          f"counters all zero")

    sw = api.run(api.RunRequest(variant="silent-write", **RUN))
    assert sw.silent_writes > 0, "silent-write run elided nothing"
    assert sw.elided_ecc_updates == sw.silent_writes, (
        "every silent store must elide exactly one ECC update"
    )
    assert sw.writeback_fraction <= std.writeback_fraction, (
        "eliding stores may not increase write-back traffic"
    )
    print(f"silent-write: {sw.silent_writes} silent stores, "
          f"wbf {100 * sw.writeback_fraction:.2f}% "
          f"(standard {100 * std.writeback_fraction:.2f}%)")

    wb = api.run(api.RunRequest(variant="wb-compress", **RUN))
    assert 0 < wb.wb_bytes_compressed < wb.wb_bytes_raw, (
        "wb-compress must shrink the write-back stream"
    )
    print(f"wb-compress: {wb.wb_bytes_raw} -> {wb.wb_bytes_compressed} "
          f"write-back bytes "
          f"(ratio {wb.wb_bytes_raw / wb.wb_bytes_compressed:.2f})")

    rc, out, _ = cli(
        "ipc", "--benchmark", "mesa", "--variant", "silent-write",
        "--insts", "8000", "--refs", "4000", "--warmup", "0",
    )
    assert rc == 0, f"repro ipc exited {rc}"
    assert "energy (uJ)" in out and "ours = silent-write" in out, (
        "ipc comparison table is missing the energy/variant rows"
    )
    print("repro ipc --variant silent-write renders the energy row")

    response = api.autotune(api.AutotuneRequest(
        benchmarks=("swim",),
        schemes=("non-uniform",),
        codecs=("secded",),
        intervals=(262144,),
        variants=("standard", "silent-write", "wb-compress"),
        objectives=("area", "fit", "traffic"),
        trials=400,
        trials_per_shard=200,
        refs=6_000,
        warmup=2_000,
    ))
    aware = set(traffic_aware_variants())
    front_variants = {
        response.points[i]["variant"]
        for front in response.fronts.values()
        for i in front
    }
    assert front_variants & aware, (
        f"no traffic-aware variant on the front (front: "
        f"{sorted(front_variants)})"
    )
    print(f"autotune area/fit/traffic front carries "
          f"{sorted(front_variants & aware)}")

    rc, _, err = cli("run", "--benchmark", "swim", "--variant", "bogus")
    assert rc == 2, f"unknown variant must exit 2, got {rc}"
    assert "error:" in err and "available variants:" in err, (
        "unknown variant must enumerate the registry"
    )
    try:
        api.RunRequest(variant="bogus")
    except api.ReproError as exc:
        assert "available variants:" in str(exc)
    else:
        raise AssertionError("request layer accepted an unknown variant")
    print("unknown variant enumerates and exits 2")

    print("traffic smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
