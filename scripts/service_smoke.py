#!/usr/bin/env python
"""CI smoke test for the repro job service.

Starts the HTTP service on an ephemeral port, submits a small
reliability campaign over the wire twice (the second submission must
dedupe onto the first job), follows the NDJSON progress stream to
completion, fetches the result document, and asserts it matches a
direct :mod:`repro.api` call bit for bit.  Exits nonzero on any
mismatch — this is the end-to-end gate that the service, the facade
and the campaign engine agree.

Usage: ``PYTHONPATH=src python scripts/service_smoke.py``
"""

import json
import sys
import tempfile

from repro import api
from repro.experiments.pool import SweepEngine
from repro.service import ReproService, ServiceClient

CAMPAIGN = {
    "trials": 500,
    "trials_per_shard": 125,
    "shards_per_round": 4,
    "seed": 9,
}


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as data:
        service = ReproService(port=0, data_dir=data, workers=2).start()
        try:
            client = ServiceClient(service.url)
            health = client.health()
            assert health["ok"] is True, health

            first = client.submit("reliability", CAMPAIGN)
            second = client.submit("reliability", CAMPAIGN)
            assert first["job"]["id"] == second["job"]["id"], (
                "identical submissions must map to one job"
            )
            assert [first["created"], second["created"]].count(True) == 1, (
                "exactly one submission may create the job"
            )
            job_id = first["job"]["id"]
            print(f"submitted campaign job {job_id[:16]}… (deduped)")

            events = list(client.stream_events(job_id))
            shards = sum(1 for e in events if e["type"] == "shard")
            rounds = sum(1 for e in events if e["type"] == "round")
            assert events[-1]["type"] == "state", events[-1]
            assert events[-1]["state"] == "done", events[-1]
            print(f"streamed {len(events)} events "
                  f"({shards} shards, {rounds} rounds)")

            served = client.result(job_id, timeout=300)
            direct = api.reliability(
                api.request_from_dict(api.ReliabilityRequest, CAMPAIGN),
                engine=SweepEngine(),
            )
            expected = json.loads(json.dumps(direct.as_dict()))
            # The served job ran against the service checkpoint; the
            # campaign numbers must still be bit-identical.
            assert served["campaign"] == expected["campaign"], (
                "served campaign document diverged from the direct "
                "facade call"
            )
            trials = served["campaign"]["total_trials"]
            print(f"campaign document matches direct api call "
                  f"({trials} trials)")
        finally:
            service.shutdown()
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
