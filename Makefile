# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install lint test test-all bench bench-perf bench-baseline \
	figures figures-par reliability-smoke service-smoke fabric-smoke \
	autotune-smoke traffic-smoke check-docs examples clean

install:
	$(PYTHON) -m pip install -e .[dev]

# Lint with ruff when available; skip (successfully) when the
# environment doesn't ship it, so `make lint` is safe everywhere but
# still propagates real findings where ruff exists (e.g. CI).
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

test:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Docs-consistency gate: every CLI verb and long option must be
# mentioned somewhere in README.md / EXPERIMENTS.md / docs/*.md.
check-docs:
	$(PYTHON) scripts/check_docs.py

test-all:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The CI performance-regression gate: measure injection-kernel
# throughput per backend (reference / batch / vector when numpy is
# installed) plus the autotune explorer's cold/warm-cache passes, then
# fail if anything regressed past the committed baseline
# (BENCH_reliability.json at the repo root, schema v5) or a speedup
# ratio fell under its floor.  See scripts/check_bench.py.
bench-perf:
	PYTHONPATH=src:benchmarks $(PYTHON) \
		benchmarks/bench_reliability_throughput.py \
		--out benchmarks/results/BENCH_reliability.json
	$(PYTHON) scripts/check_bench.py

# Refresh the committed schema-v5 baseline after an intentional kernel
# change (run with the [fast] extra installed so the vector backend is
# part of the baseline).
bench-baseline:
	PYTHONPATH=src:benchmarks $(PYTHON) \
		benchmarks/bench_reliability_throughput.py \
		--out BENCH_reliability.json

figures:
	$(PYTHON) -m repro figures

# Parallel figure regeneration through the sweep pool with the on-disk
# result cache (see EXPERIMENTS.md "Parallel sweeps").
JOBS ?= 4
figures-par:
	$(PYTHON) -m repro figures --jobs $(JOBS)

# A fast end-to-end reliability campaign (docs/reliability.md): auto
# stopping at a loose ±2% target so it finishes well under 30 s; run
# in CI to keep the CLI verb, engine and stopping rule exercised.
reliability-smoke:
	$(PYTHON) -m repro reliability --trials auto --target 0.02 \
		--trials-per-shard 250 --shards-per-round 4 --jobs 2 --no-cache

# End-to-end job-service gate (docs/service.md): start the HTTP
# server, submit one campaign twice (must dedupe onto one job), stream
# its progress, and assert the served result document is bit-identical
# to a direct repro.api call.
service-smoke:
	PYTHONPATH=src $(PYTHON) scripts/service_smoke.py

# Distributed-fabric gate (docs/architecture.md "Campaign fabric"):
# two replicas on one data dir split one campaign's shards and merge a
# bit-identical estimate; a dead replica's leased shards are stolen
# and finished by the survivor; a fresh replica serves the finished
# key from the cluster result cache without executing.
fabric-smoke:
	PYTHONPATH=src $(PYTHON) scripts/fabric_smoke.py

# Autotune gate (docs/autotune.md): a tiny design grid explored at
# --jobs 1 and --jobs 4 must produce bit-identical Pareto fronts, the
# front must be exactly the non-dominated set, a mid-sweep resume must
# execute only the missing points, and the CLI JSON must match the
# facade document.
autotune-smoke:
	PYTHONPATH=src $(PYTHON) scripts/autotune_smoke.py

# Traffic-aware variant gate (docs/traffic.md): silent-write must
# elide stores (and never raise traffic), wb-compress must shrink the
# write-back stream, the standard path must keep every counter at
# zero, and an area/fit/traffic autotune grid must place at least one
# traffic-aware variant on the Pareto front.
traffic-smoke:
	PYTHONPATH=src $(PYTHON) scripts/traffic_smoke.py

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

clean:
	rm -rf build *.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
