# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench figures figures-par examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro figures

# Parallel figure regeneration through the sweep pool with the on-disk
# result cache (see EXPERIMENTS.md "Parallel sweeps").
JOBS ?= 4
figures-par:
	$(PYTHON) -m repro figures --jobs $(JOBS)

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

clean:
	rm -rf build *.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
