"""Tests for the integrated protected L2 (cleaning + shared ECC array)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, WritebackReason
from repro.cache.cache import AccessResult
from repro.core import (
    IntegrityError,
    ProtectedL2,
    ProtectionConfig,
    check_invariants,
)


def l2_config(**kw):
    defaults = dict(name="l2", size_bytes=8192, ways=4, line_bytes=64)
    defaults.update(kw)
    return CacheConfig(**defaults)


def make_l2(cleaning=None, ecc=1):
    return ProtectedL2(
        l2_config(),
        ProtectionConfig(cleaning_interval=cleaning, ecc_entries_per_set=ecc),
    )


def same_set_addrs(cache, n):
    """n distinct block addresses all mapping to set 0."""
    stride = cache.n_sets * cache.config.line_bytes
    return [i * stride for i in range(n)]


class TestConfigValidation:
    def test_bad_interval(self):
        with pytest.raises(ValueError):
            ProtectionConfig(cleaning_interval=0)

    def test_bad_entries(self):
        with pytest.raises(ValueError):
            ProtectionConfig(ecc_entries_per_set=-1)

    def test_none_disables_both(self):
        l2 = make_l2(cleaning=None, ecc=None)
        assert l2.cleaning is None
        assert l2.ecc_array is None


class TestEccEntryEviction:
    """Section 3.3: at most one dirty line per set; ECC-WB on conflict."""

    def test_second_dirty_line_in_set_forces_ecc_wb(self):
        l2 = make_l2()
        a, b = same_set_addrs(l2, 2)
        l2.access(a, is_write=True, cycle=1)
        res = l2.access(b, is_write=True, cycle=2)
        ecc_wbs = [
            wb for wb in res.writebacks
            if wb.reason is WritebackReason.ECC_EVICTION
        ]
        assert len(ecc_wbs) == 1
        assert ecc_wbs[0].addr == a
        # The displaced line stays resident, but clean.
        assert l2.probe(a)
        assert not l2.find_line(a).dirty
        assert l2.find_line(b).dirty
        check_invariants(l2)

    def test_rewrite_of_owner_needs_no_eviction(self):
        l2 = make_l2()
        a = same_set_addrs(l2, 1)[0]
        l2.access(a, is_write=True, cycle=1)
        res = l2.access(a, is_write=True, cycle=2)
        assert res.writebacks == []
        assert l2.find_line(a).written
        check_invariants(l2)

    def test_at_most_one_dirty_per_set_always(self):
        l2 = make_l2()
        addrs = same_set_addrs(l2, 4)
        for cycle, a in enumerate(addrs * 3):
            l2.access(a, is_write=True, cycle=cycle)
            check_invariants(l2)
        dirty_in_set0 = sum(
            1 for line in l2.sets[0] if line.valid and line.dirty
        )
        assert dirty_in_set0 == 1

    def test_two_entries_per_set_allow_two_dirty(self):
        l2 = make_l2(ecc=2)
        a, b, c = same_set_addrs(l2, 3)
        l2.access(a, is_write=True, cycle=1)
        res = l2.access(b, is_write=True, cycle=2)
        assert res.writebacks == []
        res = l2.access(c, is_write=True, cycle=3)
        assert len(res.writebacks) == 1  # now an eviction is needed
        check_invariants(l2)

    def test_reads_never_touch_ecc_array(self):
        l2 = make_l2()
        for i in range(50):
            l2.access(i * 64, is_write=False, cycle=i)
        assert l2.ecc_array.used_entries() == 0

    def test_replacement_of_dirty_line_releases_entry(self):
        l2 = make_l2()
        addrs = same_set_addrs(l2, 5)
        l2.access(addrs[0], is_write=True, cycle=0)
        for i, a in enumerate(addrs[1:], start=1):
            l2.access(a, is_write=False, cycle=i)
        # addrs[0] was LRU-evicted; its entry must be free again.
        assert l2.ecc_array.used_entries() == 0
        check_invariants(l2)


class TestCleaningSweep:
    def test_write_once_line_cleaned_after_interval(self):
        l2 = make_l2(cleaning=64, ecc=None)
        l2.access(0x0, is_write=True, cycle=1)
        assert l2.dirty.dirty_count == 1
        wbs = l2.advance(10_000)
        assert any(wb.reason is WritebackReason.CLEANING for wb in wbs)
        assert l2.dirty.dirty_count == 0
        assert l2.probe(0x0)  # cleaned, not evicted

    def test_rewritten_line_gets_second_chance(self):
        """A written=1 line is not cleaned; its written bit resets."""
        l2 = make_l2(cleaning=128, ecc=None)
        l2.access(0x0, is_write=True, cycle=1)
        l2.access(0x0, is_write=True, cycle=2)
        line = l2.find_line(0x0)
        assert line.written
        # One full sweep: set 0 checked, written reset, not cleaned.
        wbs = l2.advance(130)
        assert wbs == []
        assert line.dirty and not line.written
        # Next sweep with no intervening write: now cleaned.
        wbs = l2.advance(260)
        assert any(wb.reason is WritebackReason.CLEANING for wb in wbs)
        assert not line.dirty

    def test_continuously_written_line_survives(self):
        l2 = make_l2(cleaning=64, ecc=None)
        for cycle in range(0, 2000, 10):
            l2.access(0x0, is_write=True, cycle=cycle)
            l2.advance(cycle + 5)
        assert l2.find_line(0x0).dirty

    def test_cleaning_releases_ecc_entry(self):
        l2 = make_l2(cleaning=64, ecc=1)
        l2.access(0x0, is_write=True, cycle=1)
        assert l2.ecc_array.used_entries() == 1
        l2.advance(10_000)
        assert l2.ecc_array.used_entries() == 0
        check_invariants(l2)

    def test_cleaning_disabled_never_writes_back(self):
        l2 = make_l2(cleaning=None, ecc=None)
        l2.access(0x0, is_write=True, cycle=1)
        assert l2.advance(1_000_000) == []
        assert l2.dirty.dirty_count == 1


class TestWritebackBreakdown:
    def test_breakdown_keys(self):
        l2 = make_l2()
        bd = l2.writeback_breakdown()
        assert set(bd) == {"WB", "Clean-WB", "ECC-WB"}

    def test_breakdown_counts(self):
        l2 = make_l2(cleaning=64, ecc=1)
        a, b = same_set_addrs(l2, 2)
        l2.access(a, is_write=True, cycle=1)
        l2.access(b, is_write=True, cycle=2)  # ECC-WB of a
        l2.advance(10_000)  # Clean-WB of b
        bd = l2.writeback_breakdown()
        assert bd["ECC-WB"] == 1
        assert bd["Clean-WB"] == 1
        assert bd["WB"] == 0


class TestInvariantsUnderRandomTraffic:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_workload_preserves_invariants(self, seed):
        rng = random.Random(seed)
        l2 = make_l2(cleaning=256, ecc=1)
        cycle = 0
        for _ in range(400):
            cycle += rng.randint(1, 50)
            addr = rng.randrange(1 << 16)
            l2.advance(cycle)
            l2.access(addr, rng.random() < 0.5, cycle)
        check_invariants(l2)

    def test_scrub_detects_corruption(self):
        l2 = make_l2()
        l2.access(0x0, is_write=True, cycle=1)
        # Corrupt: drop the ECC entry behind the cache's back.
        l2.ecc_array.release(*l2.locate(0x0)[:1], 0)
        with pytest.raises(IntegrityError):
            check_invariants(l2)

    def test_scrub_detects_integrator_drift(self):
        l2 = make_l2()
        l2.access(0x0, is_write=True, cycle=1)
        l2.dirty.dirty_count += 1
        with pytest.raises(IntegrityError):
            check_invariants(l2)


class TestWriteThroughProtectedL2:
    """Regression: a write-through ProtectedL2 must forward writes like
    the base cache instead of silently dirtying lines and claiming ECC
    entries."""

    def make_wt_l2(self):
        from repro.cache.cache import WritePolicy

        return ProtectedL2(
            l2_config(write_policy=WritePolicy.WRITE_THROUGH),
            ProtectionConfig(cleaning_interval=None, ecc_entries_per_set=1),
        )

    def test_write_hit_forwards_and_stays_clean(self):
        l2 = self.make_wt_l2()
        l2.access(0x40, is_write=False, cycle=1)  # fill
        res = l2.access(0x40, is_write=True, cycle=2)
        assert res.wrote_through
        line = l2.find_line(0x40)
        assert not line.dirty
        assert not line.written
        assert l2.stats.write_throughs == 1

    def test_no_ecc_entry_claimed(self):
        l2 = self.make_wt_l2()
        for i in range(8):
            addr = 0x40 * i
            l2.access(addr, is_write=False, cycle=i)
            l2.access(addr, is_write=True, cycle=100 + i)
        assert l2.ecc_array.used_entries() == 0
        assert l2.ecc_array.stats.allocations == 0
        assert l2.dirty.dirty_count == 0
        check_invariants(l2)

    def test_write_back_policy_unaffected(self):
        l2 = make_l2(ecc=1)
        l2.access(0x40, is_write=True, cycle=1)
        assert l2.find_line(0x40).dirty
        assert l2.ecc_array.used_entries() == 1
