"""Tests for the traffic-aware variants and the variant registry.

The silent-write tests pin the value-tag model at its determinism
anchors (``silent_fraction`` 1.0 and 0.0), assert an *exact* silent
count for the seeded default against the documented RNG contract, and
regression-test that elision never breaks the scheme invariant the
checker enforces (ECC-array owners == dirty ways).
"""

import random

import pytest

from repro.cache import CacheConfig
from repro.core import (
    CompressedWritebackL2,
    ProtectedL2,
    ProtectionConfig,
    SilentWriteL2,
    TrafficConfig,
    check_invariants,
)
from repro.core.policy import (
    VariantSpec,
    available_variants,
    build_variant_l2,
    get_variant,
    register_variant,
    traffic_aware_variants,
)


def l2_config(**kw):
    defaults = dict(name="l2", size_bytes=8192, ways=4, line_bytes=64)
    defaults.update(kw)
    return CacheConfig(**defaults)


def make_silent(silent_fraction, cleaning=1 << 12, ecc=1, seed=0):
    return SilentWriteL2(
        l2_config(),
        ProtectionConfig(cleaning_interval=cleaning, ecc_entries_per_set=ecc),
        seed=seed,
        traffic=TrafficConfig(silent_fraction=silent_fraction),
    )


def mixed_workload(n, seed=7):
    """(addr, is_write) pairs with reuse, so write hits actually occur."""
    rng = random.Random(seed)
    addrs = [i * 64 for i in range(64)]
    return [
        (rng.choice(addrs), rng.random() < 0.5) for _ in range(n)
    ]


class TestSilentFractionAnchors:
    def test_all_silent_means_every_store_elided(self):
        """p=1.0: every store rewrites the held tag — no line ever
        dirties, no write-back ever happens, and the count is exact."""
        l2 = make_silent(1.0)
        writes = 0
        for cycle, (addr, is_write) in enumerate(mixed_workload(2000), 1):
            l2.access(addr, is_write, cycle)
            writes += is_write
        assert l2.stats.silent_writes == writes
        assert l2.stats.elided_ecc_updates == writes
        assert l2.dirty_line_count() == 0
        assert l2.stats.writebacks_total == 0

    def test_no_silent_is_bitwise_standard(self):
        """p=0.0: the variant's behavior collapses to ProtectedL2."""
        silent = make_silent(0.0)
        plain = ProtectedL2(
            l2_config(),
            ProtectionConfig(cleaning_interval=1 << 12,
                             ecc_entries_per_set=1),
            seed=0,
        )
        for cycle, (addr, is_write) in enumerate(mixed_workload(2000), 1):
            silent.access(addr, is_write, cycle)
            plain.access(addr, is_write, cycle)
            silent.advance(cycle)
            plain.advance(cycle)
        assert silent.stats.silent_writes == 0
        assert silent.stats.elided_ecc_updates == 0
        assert silent.stats.writebacks_total == plain.stats.writebacks_total
        assert silent.stats.write_hits == plain.stats.write_hits
        assert silent.dirty_line_count() == plain.dirty_line_count()

    def test_seeded_default_count_is_exact(self):
        """The documented RNG contract: the store-value stream is
        ``random.Random((seed << 1) ^ 0x511E)``, one draw per store to
        a write-back cache, silent iff the draw < silent_fraction.

        With every store landing on one block, a non-silent store
        replaces the tag, so "incoming == stored" is exactly "the draw
        was silent" — the expected count replays the documented stream.
        """
        seed, p, n = 3, 0.35, 500
        l2 = make_silent(p, seed=seed)
        addr = 0
        for cycle in range(1, n + 1):
            l2.access(addr, is_write=True, cycle=cycle)
        rng = random.Random((seed << 1) ^ 0x511E)
        expected = sum(rng.random() < p for _ in range(n))
        assert l2.stats.silent_writes == expected
        assert 0 < expected < n  # the anchor is in the interior

    def test_same_seed_same_counts(self):
        counts = []
        for _ in range(2):
            l2 = make_silent(0.35, seed=11)
            for cycle, (addr, is_write) in enumerate(
                    mixed_workload(1500), 1):
                l2.access(addr, is_write, cycle)
            counts.append(l2.stats.silent_writes)
        assert counts[0] == counts[1] > 0


class TestElisionPreservesInvariants:
    def test_invariant_checker_holds_throughout_a_silent_run(self):
        """Eliding must never drop an ECC-array entry the checker
        expects: owners == dirty ways at every step, cleaning included.
        """
        l2 = make_silent(0.5, cleaning=256, ecc=1, seed=2)
        for cycle, (addr, is_write) in enumerate(mixed_workload(3000), 1):
            l2.access(addr, is_write, cycle)
            l2.advance(cycle)
            if cycle % 64 == 0:
                check_invariants(l2)
        check_invariants(l2)
        assert l2.stats.silent_writes > 0  # elision actually exercised

    def test_silent_store_on_dirty_line_keeps_ecc_entry(self):
        """A silent re-store of a dirty line leaves its ECC ownership
        (and the dirty bit) alone — the entry is not released early."""
        l2 = make_silent(0.0, cleaning=1 << 14)
        l2.access(0, is_write=True, cycle=1)  # non-silent: dirties
        assert l2.dirty_line_count() == 1
        l2.traffic = TrafficConfig(silent_fraction=1.0)
        l2.access(0, is_write=True, cycle=2)  # silent re-store
        assert l2.stats.silent_writes == 1
        assert l2.dirty_line_count() == 1
        check_invariants(l2)


class TestCompressedWriteback:
    def make(self, seed=0):
        return CompressedWritebackL2(
            l2_config(size_bytes=2048, ways=2),
            ProtectionConfig(cleaning_interval=1 << 12,
                             ecc_entries_per_set=1),
            seed=seed,
        )

    def run(self, l2, n=3000):
        for cycle, (addr, is_write) in enumerate(
                mixed_workload(n, seed=5), 1):
            l2.access(addr, is_write, cycle)
            l2.advance(cycle)

    def test_compressed_never_exceeds_raw(self):
        l2 = self.make()
        self.run(l2)
        assert l2.stats.writebacks_total > 0
        assert 0 < l2.stats.wb_bytes_compressed <= l2.stats.wb_bytes_raw
        assert l2.stats.wb_bytes_raw == (
            l2.stats.writebacks_total * l2.config.line_bytes
        )

    def test_classification_is_address_stable(self):
        """The same block compresses the same way every time."""
        l2 = self.make(seed=9)
        sizes = [l2.compressed_line_bytes(0x1234) for _ in range(3)]
        assert len(set(sizes)) == 1

    def test_ratio_and_determinism(self):
        a, b = self.make(seed=4), self.make(seed=4)
        self.run(a)
        self.run(b)
        assert a.stats.wb_bytes_compressed == b.stats.wb_bytes_compressed
        assert a.compression_ratio() == b.compression_ratio() > 1.0

    def test_traffic_config_validation(self):
        with pytest.raises(ValueError):
            TrafficConfig(silent_fraction=1.5)
        with pytest.raises(ValueError):
            TrafficConfig(zero_line_fraction=0.6,
                          frequent_value_fraction=0.6)
        with pytest.raises(ValueError):
            TrafficConfig(zero_line_ratio=0)


class TestVariantRegistry:
    def test_standard_first_then_alphabetical(self):
        names = available_variants()
        assert names[0] == "standard"
        assert names[1:] == sorted(names[1:])
        for expected in ("decay", "eager", "no-written-bit",
                         "silent-write", "wb-compress"):
            assert expected in names

    def test_unknown_name_enumerates(self):
        with pytest.raises(ValueError, match="unknown variant"):
            get_variant("bogus")

    def test_traffic_aware_subset(self):
        aware = traffic_aware_variants()
        assert aware == ["silent-write", "wb-compress"]
        assert all(get_variant(n).traffic_aware for n in aware)

    def test_needs_interval_enforced_by_builder(self):
        from repro.experiments.runner import SCALED_GEOMETRY

        assert get_variant("silent-write").needs_interval
        with pytest.raises(ValueError, match="needs a cleaning interval"):
            build_variant_l2("silent-write", SCALED_GEOMETRY, None)

    def test_build_returns_registered_classes(self):
        from repro.experiments.runner import SCALED_GEOMETRY

        protection = ProtectionConfig(
            cleaning_interval=1 << 20, ecc_entries_per_set=1
        )
        assert isinstance(
            build_variant_l2("silent-write", SCALED_GEOMETRY, protection),
            SilentWriteL2,
        )
        assert isinstance(
            build_variant_l2("wb-compress", SCALED_GEOMETRY, protection),
            CompressedWritebackL2,
        )
        assert isinstance(
            build_variant_l2("standard", SCALED_GEOMETRY, protection),
            ProtectedL2,
        )

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError):
            register_variant(VariantSpec(
                name="", description="x", build=lambda *a: None
            ))
