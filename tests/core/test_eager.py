"""Tests for the eager-writeback ablation baseline."""

import pytest

from repro.cache import CacheConfig, WritebackReason
from repro.core import EagerL2


def make_eager(**kw):
    defaults = dict(name="l2", size_bytes=4096, ways=4, line_bytes=64)
    defaults.update(kw)
    return EagerL2(CacheConfig(**defaults))


def same_set_addrs(cache, n):
    stride = cache.n_sets * cache.config.line_bytes
    return [i * stride for i in range(n)]


class TestValidation:
    def test_requires_lru(self):
        with pytest.raises(ValueError):
            EagerL2(CacheConfig("l2", 4096, 4, 64, replacement="fifo"))


class TestEagerCleaning:
    def test_dirty_lru_line_written_back_once_set_fills(self):
        l2 = make_eager()
        addrs = same_set_addrs(l2, 4)
        l2.access(addrs[0], is_write=True, cycle=0)
        eager = []
        for i, a in enumerate(addrs[1:], start=1):
            res = l2.access(a, is_write=False, cycle=i)
            eager += [
                wb for wb in res.writebacks
                if wb.reason is WritebackReason.EAGER
            ]
        # The fill of the 4th way made the set full with addrs[0] as the
        # dirty LRU line, triggering its eager write-back immediately.
        assert len(eager) == 1
        assert eager[0].addr == addrs[0]
        assert not l2.find_line(addrs[0]).dirty
        assert l2.probe(addrs[0])  # still resident

    def test_not_eager_while_set_has_invalid_ways(self):
        l2 = make_eager()
        a = same_set_addrs(l2, 1)[0]
        l2.access(a, is_write=True, cycle=0)
        res = l2.access(a, is_write=False, cycle=1)
        assert res.writebacks == []
        assert l2.find_line(a).dirty

    def test_mru_dirty_line_not_written_back(self):
        l2 = make_eager()
        addrs = same_set_addrs(l2, 4)
        for i, a in enumerate(addrs):
            l2.access(a, is_write=False, cycle=i)
        res = l2.access(addrs[3], is_write=True, cycle=10)  # MRU dirty
        assert res.writebacks == []
        assert l2.find_line(addrs[3]).dirty

    def test_eager_counts_separate_from_replacement(self):
        l2 = make_eager()
        addrs = same_set_addrs(l2, 4)
        l2.access(addrs[0], is_write=True, cycle=0)
        for i, a in enumerate(addrs[1:], start=1):
            l2.access(a, is_write=False, cycle=i)
        l2.access(addrs[1], is_write=False, cycle=10)
        assert l2.stats.writebacks_eager == 1
        assert l2.stats.writebacks_replacement == 0

    def test_lru_dirty_line_helper(self):
        l2 = make_eager()
        addrs = same_set_addrs(l2, 4)
        for i, a in enumerate(addrs):
            l2.access(a, is_write=False, cycle=i)
        assert l2.lru_dirty_line(0) is None
