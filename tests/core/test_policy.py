"""Tests for protection policies and payload-level line protection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LineProtection,
    NonUniformPolicy,
    ProtectionDomain,
    UniformEccPolicy,
    UniformParityPolicy,
)
from repro.core.policy import RecoveryAction

PAYLOADS = st.binary(min_size=64, max_size=64)


class TestDomains:
    def test_uniform_ecc_always_ecc(self):
        p = UniformEccPolicy()
        assert p.domains_for(False) == (ProtectionDomain.ECC,)
        assert p.domains_for(True) == (ProtectionDomain.ECC,)

    def test_uniform_parity_always_parity(self):
        p = UniformParityPolicy()
        assert p.domains_for(True) == (ProtectionDomain.PARITY,)

    def test_non_uniform_adds_ecc_when_dirty(self):
        p = NonUniformPolicy()
        assert p.domains_for(False) == (ProtectionDomain.PARITY,)
        assert ProtectionDomain.ECC in p.domains_for(True)
        assert ProtectionDomain.PARITY in p.domains_for(True)

    def test_recovery_domain_prefers_ecc(self):
        p = NonUniformPolicy()
        assert p.recovery_domain(True) is ProtectionDomain.ECC
        assert p.recovery_domain(False) is ProtectionDomain.PARITY


class TestCheckBits:
    """The bit counts behind the paper's area arithmetic."""

    def test_uniform_ecc_64_bits_per_line(self):
        assert UniformEccPolicy().check_bits_per_line(64, dirty=False) == 64

    def test_parity_8_bits_per_line(self):
        assert UniformParityPolicy().check_bits_per_line(64, dirty=True) == 8

    def test_non_uniform_clean_vs_dirty(self):
        p = NonUniformPolicy()
        assert p.check_bits_per_line(64, dirty=False) == 8
        assert p.check_bits_per_line(64, dirty=True) == 72


class TestLineProtectionStates:
    def test_starts_clean_with_parity_only(self):
        lp = LineProtection(NonUniformPolicy(), bytes(64))
        assert not lp.dirty
        assert lp.parity_checks is not None
        assert lp.ecc_checks is None

    def test_write_dirties_and_adds_ecc(self):
        lp = LineProtection(NonUniformPolicy(), bytes(64))
        lp.write(bytes([7] * 64))
        assert lp.dirty
        assert lp.ecc_checks is not None

    def test_clean_drops_ecc_and_returns_data(self):
        lp = LineProtection(NonUniformPolicy(), bytes(64))
        lp.write(bytes([7] * 64))
        data = lp.clean()
        assert data == bytes([7] * 64)
        assert not lp.dirty
        assert lp.ecc_checks is None

    def test_wrong_payload_size_rejected(self):
        with pytest.raises(ValueError):
            LineProtection(NonUniformPolicy(), bytes(32))
        lp = LineProtection(NonUniformPolicy(), bytes(64))
        with pytest.raises(ValueError):
            lp.write(bytes(63))

    def test_flip_bounds_checked(self):
        lp = LineProtection(NonUniformPolicy(), bytes(64))
        with pytest.raises(ValueError):
            lp.flip(64, 0)
        with pytest.raises(ValueError):
            lp.flip(0, 8)


class TestRecoveryPaths:
    """The end-to-end semantics Section 3.1 argues for."""

    @given(PAYLOADS)
    @settings(max_examples=40)
    def test_clean_read_no_fault(self, payload):
        lp = LineProtection(NonUniformPolicy(), payload)
        action, data = lp.access()
        assert action is RecoveryAction.CLEAN_READ
        assert data == payload

    def test_clean_line_fault_is_refetched(self):
        """Parity detects; pristine data comes from the next level."""
        payload = bytes(range(64))
        lp = LineProtection(NonUniformPolicy(), payload)
        lp.flip(3, 5)
        action, data = lp.access()
        assert action is RecoveryAction.REFETCHED
        assert data == payload

    def test_dirty_line_single_fault_corrected(self):
        lp = LineProtection(NonUniformPolicy(), bytes(64))
        lp.write(bytes([0xAA] * 64))
        lp.flip(10, 1)
        action, data = lp.access()
        assert action is RecoveryAction.CORRECTED_IN_PLACE
        assert data == bytes([0xAA] * 64)

    def test_dirty_line_double_fault_is_data_loss(self):
        """The scheme's accepted risk: 2-bit errors on dirty data."""
        lp = LineProtection(NonUniformPolicy(), bytes(64))
        lp.write(bytes([0xAA] * 64))
        lp.flip(10, 1)
        lp.flip(10, 2)  # same 64-bit word
        action, _ = lp.access()
        assert action is RecoveryAction.DATA_LOSS

    def test_clean_line_double_fault_under_parity_is_silent(self):
        """Parity's blind spot: even numbers of flips in one word."""
        payload = bytes(range(64))
        lp = LineProtection(NonUniformPolicy(), payload)
        lp.flip(0, 1)
        lp.flip(0, 2)
        action, _ = lp.access()
        assert action is RecoveryAction.SILENT_CORRUPTION

    def test_parity_only_dirty_line_fault_is_data_loss(self):
        """Under parity alone, a detected error on DIRTY data cannot be
        refetched (memory is stale) — the paper's core argument for ECC
        on dirty lines."""
        lp = LineProtection(UniformParityPolicy(), bytes(64))
        lp.write(bytes([0x55] * 64))
        lp.flip(0, 0)
        action, _ = lp.access()
        assert action is RecoveryAction.DATA_LOSS

    def test_uniform_ecc_refetches_nothing(self):
        """Baseline: ECC corrects on clean lines too (no refetch path)."""
        payload = bytes(range(64))
        lp = LineProtection(UniformEccPolicy(), payload)
        lp.flip(3, 5)
        action, data = lp.access()
        assert action is RecoveryAction.CORRECTED_IN_PLACE
        assert data == payload

    def test_correction_repairs_stored_payload(self):
        lp = LineProtection(NonUniformPolicy(), bytes(64))
        lp.write(bytes([1] * 64))
        lp.flip(0, 0)
        lp.access()
        action, _ = lp.access()  # second read sees repaired data
        assert action is RecoveryAction.CLEAN_READ

    def test_write_after_clean_reenters_dirty_protection(self):
        lp = LineProtection(NonUniformPolicy(), bytes(64))
        lp.write(bytes([1] * 64))
        lp.clean()
        lp.write(bytes([2] * 64))
        assert lp.ecc_checks is not None
        lp.flip(5, 5)
        action, data = lp.access()
        assert action is RecoveryAction.CORRECTED_IN_PLACE
        assert data == bytes([2] * 64)
