"""Differential testing: ProtectedL2 vs an independent reference model.

The reference model below re-implements the paper's semantics in the
most naive way possible — full scans, explicit state dictionaries, no
incremental bookkeeping — and both models are driven with identical
random traffic (accesses interleaved with cleaning sweeps at explicit
cycle points).  Any divergence in residency, dirtiness, written bits or
write-back traffic is a bug in one of them.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig
from repro.core import ProtectedL2, ProtectionConfig
from repro.core.scrub import check_invariants


class RefModel:
    """Naive reference implementation of the protected L2.

    LRU replacement, the written-bit rule, interval cleaning with a
    set-walking pointer, and a per-set single-entry ECC array with FIFO
    eviction — all spelled out longhand.
    """

    def __init__(self, n_sets, ways, line_bytes, interval, ecc_entries):
        self.n_sets = n_sets
        self.ways = ways
        self.line_bytes = line_bytes
        self.interval = interval
        self.ecc_entries = ecc_entries
        # Per set: list of dicts, one per resident line (order irrelevant).
        self.lines = [[] for _ in range(n_sets)]
        # Per set: block addrs owning ECC entries, oldest first.
        self.ecc = [[] for _ in range(n_sets)]
        self.time = 0
        self.writebacks = {"replacement": 0, "cleaning": 0, "ecc": 0}
        # Cleaning pointer state.
        self.clean_ptr = 0
        self.tick_balance = 0
        self.last_cycle = 0

    def locate(self, addr):
        block = addr // self.line_bytes
        return block % self.n_sets, block

    def _find(self, set_idx, block):
        for entry in self.lines[set_idx]:
            if entry["block"] == block:
                return entry
        return None

    def advance(self, cycle):
        self.tick_balance += (cycle - self.last_cycle) * self.n_sets
        self.last_cycle = cycle
        cap = 2 * self.n_sets
        issued = 0
        while self.tick_balance >= self.interval and issued < cap:
            self.tick_balance -= self.interval
            self._clean_set(self.clean_ptr)
            self.clean_ptr = (self.clean_ptr + 1) % self.n_sets
            issued += 1
        if issued == cap:
            self.tick_balance %= self.interval

    def _clean_set(self, set_idx):
        for entry in self.lines[set_idx]:
            if not entry["dirty"]:
                continue
            if entry["written"]:
                entry["written"] = False
            else:
                entry["dirty"] = False
                self.writebacks["cleaning"] += 1
                if entry["block"] in self.ecc[set_idx]:
                    self.ecc[set_idx].remove(entry["block"])

    def access(self, addr, is_write):
        self.time += 1
        set_idx, block = self.locate(addr)
        entry = self._find(set_idx, block)
        if entry is None:
            entry = self._fill(set_idx, block)
        entry["lru"] = self.time
        if is_write:
            self._write(set_idx, entry)

    def _fill(self, set_idx, block):
        lines = self.lines[set_idx]
        if len(lines) >= self.ways:
            victim = min(lines, key=lambda e: e["lru"])
            lines.remove(victim)
            if victim["dirty"]:
                self.writebacks["replacement"] += 1
                if victim["block"] in self.ecc[set_idx]:
                    self.ecc[set_idx].remove(victim["block"])
        entry = {"block": block, "dirty": False, "written": False,
                 "lru": self.time}
        lines.append(entry)
        return entry

    def _write(self, set_idx, entry):
        if entry["dirty"]:
            entry["written"] = True
            return
        if self.ecc_entries is not None:
            if len(self.ecc[set_idx]) >= self.ecc_entries:
                evicted_block = self.ecc[set_idx].pop(0)
                victim = self._find(set_idx, evicted_block)
                assert victim is not None and victim["dirty"]
                victim["dirty"] = False
                victim["written"] = False
                self.writebacks["ecc"] += 1
            self.ecc[set_idx].append(entry["block"])
        entry["dirty"] = True

    # -- state snapshots for comparison -----------------------------------

    def snapshot(self):
        out = {}
        for set_idx, lines in enumerate(self.lines):
            for e in lines:
                out[e["block"]] = (e["dirty"], e["written"])
        return out

    def dirty_count(self):
        return sum(
            1 for lines in self.lines for e in lines if e["dirty"]
        )


def snapshot_impl(cache: ProtectedL2):
    out = {}
    for set_idx, ways in enumerate(cache.sets):
        for line in ways:
            if line.valid:
                block = cache.block_addr(set_idx, line.tag) // (
                    cache.config.line_bytes
                )
                out[block] = (line.dirty, line.written)
    return out


def run_both(seed, n_ops, interval, ecc_entries, addr_space=1 << 15):
    cfg = CacheConfig("l2", 4096, 4, 64)  # 16 sets x 4 ways
    impl = ProtectedL2(
        cfg,
        ProtectionConfig(
            cleaning_interval=interval, ecc_entries_per_set=ecc_entries
        ),
    )
    ref = RefModel(cfg.n_sets, cfg.ways, cfg.line_bytes, interval,
                   ecc_entries)
    rng = random.Random(seed)
    cycle = 0
    for _ in range(n_ops):
        cycle += rng.randint(1, 30)
        addr = rng.randrange(addr_space)
        is_write = rng.random() < 0.4
        impl.advance(cycle)
        ref.advance(cycle)
        impl.access(addr, is_write, cycle)
        ref.access(addr, is_write)
    return impl, ref


class TestDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_with_ecc_array(self, seed):
        impl, ref = run_both(seed, n_ops=800, interval=200, ecc_entries=1)
        assert snapshot_impl(impl) == ref.snapshot()
        assert impl.dirty.dirty_count == ref.dirty_count()
        assert impl.stats.writebacks_replacement == ref.writebacks["replacement"]
        assert impl.stats.writebacks_cleaning == ref.writebacks["cleaning"]
        assert impl.stats.writebacks_ecc_eviction == ref.writebacks["ecc"]
        check_invariants(impl)

    @pytest.mark.parametrize("seed", range(8))
    def test_cleaning_only(self, seed):
        impl, ref = run_both(seed, n_ops=800, interval=500, ecc_entries=None)
        assert snapshot_impl(impl) == ref.snapshot()
        assert impl.stats.writebacks_cleaning == ref.writebacks["cleaning"]
        check_invariants(impl)

    @pytest.mark.parametrize("seed", range(4))
    def test_two_ecc_entries(self, seed):
        impl, ref = run_both(seed, n_ops=600, interval=300, ecc_entries=2)
        assert snapshot_impl(impl) == ref.snapshot()
        assert impl.stats.writebacks_ecc_eviction == ref.writebacks["ecc"]
        check_invariants(impl)

    @given(st.integers(0, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_property_random_seeds(self, seed):
        impl, ref = run_both(seed, n_ops=300, interval=150, ecc_entries=1)
        assert snapshot_impl(impl) == ref.snapshot()
        assert impl.dirty.dirty_count == ref.dirty_count()
