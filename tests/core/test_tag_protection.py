"""Tests for tag-array protection semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tag_protection import ProtectedTag, TagOutcome


class TestValidation:
    def test_tag_out_of_range(self):
        with pytest.raises(ValueError):
            ProtectedTag(tag=1 << 24)

    def test_flip_out_of_range(self):
        t = ProtectedTag(tag=0x1234)
        with pytest.raises(ValueError):
            t.flip(24)


class TestOutcomes:
    def test_pristine_tag_ok(self):
        t = ProtectedTag(tag=0xABCD)
        assert t.check(dirty=False) is TagOutcome.OK
        assert t.check(dirty=True) is TagOutcome.OK

    @given(st.integers(0, (1 << 24) - 1), st.integers(0, 23))
    def test_single_flip_clean_is_recoverable(self, tag, bit):
        t = ProtectedTag(tag=tag)
        t.flip(bit)
        assert t.check(dirty=False) is TagOutcome.INVALIDATED_REFETCH

    @given(st.integers(0, (1 << 24) - 1), st.integers(0, 23))
    def test_single_flip_dirty_is_data_loss(self, tag, bit):
        """A dirty line whose tag is corrupt cannot be written back."""
        t = ProtectedTag(tag=tag)
        t.flip(bit)
        assert t.check(dirty=True) is TagOutcome.DATA_LOSS

    @given(
        st.integers(0, (1 << 24) - 1),
        st.lists(st.integers(0, 23), min_size=2, max_size=2, unique=True),
    )
    def test_double_flip_is_silent_alias(self, tag, bits):
        t = ProtectedTag(tag=tag)
        for b in bits:
            t.flip(b)
        assert t.check(dirty=False) is TagOutcome.SILENT_ALIAS

    def test_flip_and_flip_back_is_ok(self):
        t = ProtectedTag(tag=0x555555)
        t.flip(3)
        t.flip(3)
        assert t.check(dirty=True) is TagOutcome.OK


class TestRepair:
    def test_repair_restores_ok(self):
        t = ProtectedTag(tag=0x00F00D)
        t.flip(7)
        assert t.check(dirty=False) is TagOutcome.INVALIDATED_REFETCH
        t.repair()
        assert t.check(dirty=False) is TagOutcome.OK
