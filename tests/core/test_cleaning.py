"""Tests for the cleaning-logic sweep scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CleaningLogic


class TestValidation:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            CleaningLogic(n_sets=16, interval_cycles=0)

    def test_rejects_bad_sets(self):
        with pytest.raises(ValueError):
            CleaningLogic(n_sets=0, interval_cycles=100)

    def test_clock_must_not_go_backwards(self):
        cl = CleaningLogic(n_sets=4, interval_cycles=100)
        list(cl.due_sets(50))
        with pytest.raises(ValueError):
            list(cl.due_sets(40))


class TestSchedule:
    def test_each_line_checked_once_per_interval(self):
        """After exactly one interval, every set was visited once."""
        cl = CleaningLogic(n_sets=8, interval_cycles=800)
        visited = []
        for cycle in range(0, 801, 10):
            visited.extend(cl.due_sets(cycle))
        assert sorted(visited) == list(range(8))

    def test_sets_visited_in_order(self):
        cl = CleaningLogic(n_sets=4, interval_cycles=400)
        visited = []
        for cycle in range(0, 1601, 25):
            visited.extend(cl.due_sets(cycle))
        assert visited[:8] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_no_checks_before_first_slot(self):
        cl = CleaningLogic(n_sets=4, interval_cycles=400)
        assert list(cl.due_sets(99)) == []
        assert list(cl.due_sets(100)) == [0]

    def test_interval_smaller_than_sets(self):
        """Multiple sets can come due in a single cycle."""
        cl = CleaningLogic(n_sets=8, interval_cycles=4)
        due = list(cl.due_sets(1))
        assert due == [0, 1]

    def test_cycles_per_set_check(self):
        cl = CleaningLogic(n_sets=4096, interval_cycles=1 << 20)
        assert cl.cycles_per_set_check == 256.0

    @given(
        st.integers(2, 64),
        st.integers(10, 5000),
        st.lists(st.integers(1, 300), min_size=1, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_long_run_drift(self, n_sets, interval, steps):
        """Total checks == elapsed * n_sets / interval, exactly (floored),
        independent of the call pattern — provided no gap hits the
        two-full-sweep cap."""
        cl = CleaningLogic(n_sets=n_sets, interval_cycles=interval)
        cap_gap = interval  # keeps every advance safely under the sweep cap
        cycle = 0
        total = 0
        for dt in steps:
            cycle += min(dt, cap_gap)
            total += len(list(cl.due_sets(cycle)))
        assert total == (cycle * n_sets) // interval

    def test_idle_gap_capped_at_two_sweeps(self):
        cl = CleaningLogic(n_sets=4, interval_cycles=4)
        due = list(cl.due_sets(1_000_000))
        assert len(due) == 8  # 2 * n_sets

    def test_checks_counter(self):
        cl = CleaningLogic(n_sets=4, interval_cycles=40)
        for cycle in range(0, 101, 10):
            list(cl.due_sets(cycle))
        assert cl.checks == 10
