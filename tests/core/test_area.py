"""Tests for the area model — must reproduce the paper's numbers exactly."""

import pytest

from repro.cache.hierarchy import default_l2_config
from repro.cache.cache import CacheConfig
from repro.core import (
    codec_area_table,
    conventional_overhead,
    li_et_al_overhead,
    proposed_overhead,
    reduction,
)


@pytest.fixture
def l2():
    return default_l2_config()  # 1MB / 4-way / 64B


class TestConventional:
    def test_data_ecc_is_128kb(self, l2):
        conv = conventional_overhead(l2)
        assert conv.component_kib("data ECC") == 128.0

    def test_tag_status_is_4kb(self, l2):
        conv = conventional_overhead(l2)
        assert conv.component_kib("tag+status protection") == 4.0

    def test_total_is_132kb(self, l2):
        assert conventional_overhead(l2).total_kib == 132.0

    def test_overhead_ratio_is_12_5_percent_of_data(self, l2):
        conv = conventional_overhead(l2)
        data_bits = l2.size_bytes * 8
        assert conv.components["data ECC"] / data_bits == 0.125


class TestProposed:
    """The paper's 54KB = 16 + 2 + 2 + 2 + 32 accounting."""

    def test_data_parity_is_16kb(self, l2):
        assert proposed_overhead(l2).component_kib("data parity") == 16.0

    def test_written_bits_are_2kb(self, l2):
        assert proposed_overhead(l2).component_kib("written bits") == 2.0

    def test_tag_parity_is_2kb(self, l2):
        assert proposed_overhead(l2).component_kib("tag parity") == 2.0

    def test_status_parity_is_2kb(self, l2):
        assert proposed_overhead(l2).component_kib("status parity") == 2.0

    def test_ecc_array_is_32kb(self, l2):
        assert proposed_overhead(l2).component_kib("ECC array") == 32.0

    def test_total_is_54kb(self, l2):
        assert proposed_overhead(l2).total_kib == 54.0

    def test_two_entries_per_set_doubles_ecc_array(self, l2):
        b = proposed_overhead(l2, ecc_entries_per_set=2)
        assert b.component_kib("ECC array") == 64.0


class TestReduction:
    def test_paper_headline_59_percent(self, l2):
        conv = conventional_overhead(l2)
        ours = proposed_overhead(l2)
        assert reduction(conv, ours) == pytest.approx(0.5909, abs=0.0005)

    def test_zero_conventional_rejected(self, l2):
        conv = conventional_overhead(l2)
        empty = type(conv)(scheme="x", components={})
        with pytest.raises(ValueError):
            reduction(empty, conv)


class TestLiEtAl:
    """Related-work comparator: Li et al. [11] keep a full ECC array."""

    def test_total_is_150kb(self, l2):
        assert li_et_al_overhead(l2).total_kib == 150.0

    def test_provides_no_area_reduction(self, l2):
        """The paper's related-work claim, verified by arithmetic."""
        conv = conventional_overhead(l2)
        li = li_et_al_overhead(l2)
        assert reduction(conv, li) < 0  # strictly more area

    def test_keeps_both_code_arrays(self, l2):
        li = li_et_al_overhead(l2)
        assert li.component_kib("data parity") == 16.0
        assert li.component_kib("data ECC") == 128.0


class TestGeneralisation:
    def test_scales_with_cache_size(self):
        small = CacheConfig("l2", 512 * 1024, 4, 64)
        conv = conventional_overhead(small)
        ours = proposed_overhead(small)
        assert conv.total_kib == 66.0
        assert ours.total_kib == 27.0
        assert reduction(conv, ours) == pytest.approx(0.5909, abs=0.0005)

    def test_different_line_size(self):
        cfg = CacheConfig("l3", 1024 * 1024, 8, 128)
        conv = conventional_overhead(cfg)
        # ECC is always 12.5% of data, regardless of line size.
        assert conv.component_kib("data ECC") == 128.0

    def test_rows_include_total(self, l2):
        rows = proposed_overhead(l2).rows()
        assert rows[-1][0] == "total"
        assert rows[-1][2] == 54.0
        assert len(rows) == 6


class TestCodecGenericAccounting:
    """The area model follows any registered codec's geometry."""

    def test_dected_conventional_and_proposed(self, l2):
        conv = conventional_overhead(l2, ecc_codec="dected")
        ours = proposed_overhead(l2, ecc_codec="dected")
        # 16K lines x 8 words x 15 bits = 240 KiB of data ECC.
        assert conv.component_kib("data ECC") == 240.0
        assert conv.total_kib == 244.0
        assert ours.component_kib("ECC array") == 60.0
        assert ours.total_kib == 82.0
        # The shared-array argument strengthens with costlier codes.
        assert reduction(conv, ours) > 0.59

    def test_rs_symbol_costing(self, l2):
        conv = conventional_overhead(l2, ecc_codec="rs-symbol")
        assert conv.component_kib("data ECC") == 256.0
        assert reduction(
            conv, proposed_overhead(l2, ecc_codec="rs-symbol")
        ) == pytest.approx(0.669, abs=0.001)

    def test_default_codec_unchanged(self, l2):
        assert conventional_overhead(
            l2, ecc_codec="secded"
        ).components == conventional_overhead(l2).components

    def test_unknown_codec_raises(self, l2):
        with pytest.raises(ValueError):
            conventional_overhead(l2, ecc_codec="turbo")

    def test_codec_area_table_covers_registry(self, l2):
        from repro.ecc import available_codecs

        rows = codec_area_table(l2)
        assert [row[0] for row in rows] == available_codecs()
        by_name = {row[0]: row for row in rows}
        assert by_name["secded"][1:] == (8, 128.0, 12.5)
        assert by_name["dected"][1] == 15
        assert by_name["rs-symbol"][3] == 25.0
        assert by_name["parity"][2] == 16.0
