"""Tests for the related-work comparators: hot-line protection [9] and
in-cache replication [10]."""

import itertools
import random

import pytest

from repro.cache.cache import CacheConfig
from repro.core.hotlines import HotLineTable, coverage_for_stream
from repro.core.icr import IcrCache
from repro.workloads import MemRef
from repro.workloads.generators import zipf_stream


class TestHotLineTable:
    def test_validation(self):
        with pytest.raises(ValueError):
            HotLineTable(0)

    def test_first_touch_uncovered(self):
        t = HotLineTable(4)
        assert t.touch(1) is False
        assert t.touch(1) is True

    def test_mru_eviction(self):
        t = HotLineTable(2)
        t.touch(1)
        t.touch(2)
        t.touch(1)  # refresh 1
        t.touch(3)  # evicts 2
        assert t.covers(1)
        assert not t.covers(2)
        assert t.covers(3)

    def test_coverage_statistic(self):
        t = HotLineTable(8)
        for _ in range(10):
            t.touch(42)
        assert t.stats.coverage == pytest.approx(9 / 10)

    def test_hot_set_within_table_fully_covered(self):
        """A working set that fits the table converges to ~100% coverage."""
        t = HotLineTable(entries=8)
        rng = random.Random(0)
        for _ in range(2000):
            t.touch(rng.randrange(8))
        assert t.stats.coverage > 0.95

    def test_streaming_defeats_hot_line_protection(self):
        """The contrast the paper draws: sweeps cover almost nothing."""
        t = HotLineTable(entries=64)
        for block in range(5000):
            t.touch(block % 2048)  # footprint >> table
        assert t.stats.coverage < 0.05

    def test_coverage_for_stream_helper(self):
        refs = [MemRef(False, 0x40, 0)] * 5
        stats = coverage_for_stream(refs, entries=4)
        assert stats.accesses == 5
        assert stats.coverage == pytest.approx(4 / 5)

    def test_zipf_partial_coverage(self):
        """Skewed reuse gives [9] its good case — but never 100%."""
        rng = random.Random(1)
        refs = itertools.islice(
            zipf_stream(rng, ws_bytes=64 * 1024, alpha=1.1,
                        store_ratio=0.2, base=0),
            8000,
        )
        stats = coverage_for_stream(refs, entries=64)
        assert 0.2 < stats.coverage < 0.99


def make_icr(dead_interval=100):
    return IcrCache(CacheConfig("l1d", 2048, 4, 32),
                    dead_interval=dead_interval)


class TestIcrCache:
    def test_validation(self):
        with pytest.raises(ValueError):
            IcrCache(CacheConfig("l1d", 2048, 4, 32), dead_interval=0)

    def test_replica_created_in_dead_line(self):
        icr = make_icr(dead_interval=100)
        icr.access(0x0, False, cycle=1)  # fills way 0
        # Remaining invalid ways are dead hosts; a replica appears.
        assert icr.stats.replicas_created == 1
        assert icr.access(0x0, False, cycle=2) is True  # now covered

    def test_live_partners_block_replication(self):
        icr = make_icr(dead_interval=10_000)
        stride = icr.n_sets * icr.config.line_bytes
        # Fill all 4 ways of set 0 with live lines, touching them often.
        for i in range(4):
            icr.access(i * stride, False, cycle=1 + i)
        created_before = icr.stats.replicas_created
        for cycle in range(10, 200, 10):
            for i in range(4):
                icr.access(i * stride, False, cycle=cycle)
        # All ways live: only replicas into then-invalid ways at fill
        # time exist; no new hosts become available.
        assert icr.stats.replicas_created == created_before

    def test_dead_line_becomes_host_after_decay(self):
        icr = make_icr(dead_interval=50)
        stride = icr.n_sets * icr.config.line_bytes
        for i in range(4):
            icr.access(i * stride, False, cycle=1)
        # Long quiet period: lines 1..3 decay; line 0 stays hot.
        covered = icr.access(0x0, False, cycle=1000)
        # Replica created now (was none for way 0 among live partners).
        assert icr.stats.replicas_created >= 1
        assert icr.access(0x0, False, cycle=1001) or covered

    def test_refill_displaces_hosted_replica(self):
        icr = make_icr(dead_interval=100)
        icr.access(0x0, False, cycle=1)  # way 0 + replica in way 1
        stride = icr.n_sets * icr.config.line_bytes
        # Fill the set with new lines; replica hosts get reused.
        for i in range(1, 5):
            icr.access(i * stride, False, cycle=2 + i)
        assert icr.stats.replicas_displaced >= 1

    def test_write_updates_replica(self):
        icr = make_icr()
        icr.access(0x0, True, cycle=1)
        icr.access(0x0, True, cycle=2)  # covered write
        assert icr.stats.replica_updates >= 1

    def test_replicated_fraction_bounds(self):
        icr = make_icr()
        rng = random.Random(0)
        for cycle in range(3000):
            icr.access(rng.randrange(1 << 14) & ~3, rng.random() < 0.3,
                       cycle)
        assert 0.0 <= icr.replicated_fraction() <= 1.0
        assert 0.0 <= icr.stats.coverage <= 1.0
