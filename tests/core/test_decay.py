"""Tests for the decay-based cleaning comparator."""

from repro.cache import CacheConfig
from repro.core import ProtectionConfig, check_invariants
from repro.core.decay import DecayCleaningL2


def make_decay(interval=64, ecc=None):
    return DecayCleaningL2(
        CacheConfig("l2", 8192, 4, 64),
        ProtectionConfig(cleaning_interval=interval,
                         ecc_entries_per_set=ecc),
    )


class TestDecayCleaning:
    def test_idle_dirty_line_cleaned(self):
        l2 = make_decay(interval=64)
        l2.access(0x0, is_write=True, cycle=1)
        wbs = l2.advance(10_000)
        assert wbs
        assert l2.dirty.dirty_count == 0
        assert l2.probe(0x0)

    def test_read_hot_dirty_line_survives_decay(self):
        """The key difference vs the written bit: reads keep it alive."""
        l2 = make_decay(interval=64)
        l2.access(0x0, is_write=True, cycle=1)
        for cycle in range(10, 3000, 10):
            l2.access(0x0, is_write=False, cycle=cycle)  # reads only
            l2.advance(cycle + 5)
        assert l2.find_line(0x0).dirty  # never decayed

    def test_same_line_cleaned_by_written_bit_policy(self):
        """Cross-check: the paper's policy cleans that same line."""
        from repro.core import ProtectedL2

        l2 = ProtectedL2(
            CacheConfig("l2", 8192, 4, 64),
            ProtectionConfig(cleaning_interval=64, ecc_entries_per_set=None),
        )
        l2.access(0x0, is_write=True, cycle=1)
        for cycle in range(10, 3000, 10):
            l2.access(0x0, is_write=False, cycle=cycle)
            l2.advance(cycle + 5)
        assert l2.dirty.dirty_count == 0

    def test_recently_written_line_survives(self):
        l2 = make_decay(interval=512)
        for cycle in range(0, 2000, 100):
            l2.access(0x0, is_write=True, cycle=cycle)
            l2.advance(cycle + 50)
        assert l2.find_line(0x0).dirty

    def test_ecc_array_integration(self):
        l2 = make_decay(interval=64, ecc=1)
        l2.access(0x0, is_write=True, cycle=1)
        l2.advance(10_000)
        assert l2.ecc_array.used_entries() == 0
        check_invariants(l2)

    def test_disabled_cleaning_is_noop(self):
        l2 = DecayCleaningL2(
            CacheConfig("l2", 8192, 4, 64),
            ProtectionConfig(cleaning_interval=None, ecc_entries_per_set=None),
        )
        l2.access(0x0, is_write=True, cycle=1)
        assert l2.advance(100_000) == []
        assert l2.dirty.dirty_count == 1
