"""Tests for the shared ECC array bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SharedEccArray


@pytest.fixture
def arr():
    return SharedEccArray(n_sets=8, entries_per_set=1)


class TestValidation:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SharedEccArray(0, 1)
        with pytest.raises(ValueError):
            SharedEccArray(8, 0)


class TestAllocation:
    def test_free_entry_allocates_without_eviction(self, arr):
        assert arr.allocate(0, way=2) is None
        assert arr.holds(0, 2)
        assert arr.used_entries() == 1

    def test_second_allocation_evicts_first(self, arr):
        arr.allocate(0, 1)
        evicted = arr.allocate(0, 3)
        assert evicted == 1
        assert not arr.holds(0, 1)
        assert arr.holds(0, 3)
        assert arr.stats.evictions == 1

    def test_sets_are_independent(self, arr):
        arr.allocate(0, 1)
        assert arr.allocate(1, 1) is None

    def test_double_allocation_for_same_way_rejected(self, arr):
        arr.allocate(0, 1)
        with pytest.raises(ValueError):
            arr.allocate(0, 1)

    def test_fifo_eviction_order_with_two_entries(self):
        arr = SharedEccArray(n_sets=2, entries_per_set=2)
        arr.allocate(0, 0)
        arr.allocate(0, 1)
        assert arr.allocate(0, 2) == 0  # oldest goes first
        assert arr.allocate(0, 3) == 1

    def test_total_entries(self):
        assert SharedEccArray(4096, 1).total_entries == 4096
        assert SharedEccArray(4096, 2).total_entries == 8192


class TestRelease:
    def test_release_frees_entry(self, arr):
        arr.allocate(3, 2)
        assert arr.release(3, 2)
        assert arr.free_entries(3) == 1
        assert arr.allocate(3, 0) is None

    def test_release_absent_is_noop(self, arr):
        assert not arr.release(3, 2)
        assert arr.stats.releases == 0

    def test_owners_snapshot_is_a_copy(self, arr):
        arr.allocate(0, 1)
        owners = arr.owners(0)
        owners.append(99)
        assert arr.owners(0) == [1]


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 7), st.integers(0, 3)),
            max_size=200,
        ),
        st.integers(1, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, ops, entries):
        """Random alloc/release sequences respect per-set capacity and
        keep owners unique."""
        arr = SharedEccArray(n_sets=8, entries_per_set=entries)
        for is_alloc, set_idx, way in ops:
            if is_alloc:
                if not arr.holds(set_idx, way):
                    arr.allocate(set_idx, way)
            else:
                arr.release(set_idx, way)
            owners = arr.owners(set_idx)
            assert len(owners) <= entries
            assert len(owners) == len(set(owners))
        assert arr.used_entries() <= arr.total_entries


class TestStats:
    def test_counts(self, arr):
        arr.allocate(0, 0)
        arr.allocate(0, 1)  # evicts way 0
        arr.release(0, 1)
        assert arr.stats.allocations == 2
        assert arr.stats.evictions == 1
        assert arr.stats.releases == 1
