"""The job service: dedupe, streaming, restart-resume, HTTP protocol."""

import json
import threading
import urllib.request

import pytest

from repro import api
from repro.experiments.pool import SweepEngine
from repro.service import (
    JobStore,
    ReproService,
    ServiceClient,
    ServiceError,
)

RUN_REQUEST = {"benchmark": "swim", "refs": 3000, "warmup": 1000}
CAMPAIGN_REQUEST = {"trials": 200, "trials_per_shard": 50, "seed": 5}


def _plain_engine(job):
    return SweepEngine(jobs=1, cache=False, progress=False)


class _FailingEngine(SweepEngine):
    """Aborts the campaign before its Nth map_tasks call — the test
    stand-in for a service crash mid-campaign."""

    def __init__(self, fail_before_call: int):
        super().__init__(jobs=1, cache=False, progress=False)
        self.fail_before_call = fail_before_call
        self.calls = 0

    def map_tasks(self, func, items, phase="map"):
        self.calls += 1
        if self.calls >= self.fail_before_call:
            raise RuntimeError("simulated mid-campaign crash")
        return super().map_tasks(func, items, phase=phase)


class TestJobStore:
    def test_identical_submissions_share_one_job(self, tmp_path):
        store = JobStore(data_dir=tmp_path, workers=0)
        first, created_first = store.submit("run", RUN_REQUEST)
        second, created_second = store.submit("run", RUN_REQUEST)
        assert created_first and not created_second
        assert first is second
        assert first.submissions == 2
        assert store.run_pending() == 1

    def test_deduped_job_executes_exactly_once(self, tmp_path, monkeypatch):
        import repro.experiments.pool as pool

        calls = []
        real = pool.execute_cell
        monkeypatch.setattr(
            pool, "execute_cell",
            lambda cell: calls.append(cell.label) or real(cell),
        )
        store = JobStore(
            data_dir=tmp_path, workers=0, engine_factory=_plain_engine
        )
        jobs = [store.submit("run", RUN_REQUEST)[0] for _ in range(3)]
        store.run_pending()
        assert len(calls) == 1
        assert all(job.state == "done" for job in jobs)

    def test_concurrent_submissions_dedupe(self, tmp_path):
        # The acceptance shape: identical requests racing in from many
        # threads while workers are live still produce one execution.
        store = JobStore(data_dir=tmp_path, workers=2)
        results = []

        def submit():
            results.append(store.submit("reliability", CAMPAIGN_REQUEST))

        threads = [threading.Thread(target=submit) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        jobs = {id(job) for job, _ in results}
        assert len(jobs) == 1
        assert sum(created for _, created in results) == 1
        job = results[0][0]
        assert job.wait(timeout=120) == "done"
        assert job.result.executed_shards == 8
        store.close()

    def test_result_is_bit_identical_to_direct_facade_call(self, tmp_path):
        store = JobStore(
            data_dir=tmp_path, workers=0, engine_factory=_plain_engine
        )
        job, _ = store.submit("reliability", CAMPAIGN_REQUEST)
        store.run_pending()
        direct = api.reliability(
            api.request_from_dict(api.ReliabilityRequest, CAMPAIGN_REQUEST),
            engine=SweepEngine(),
        )
        assert (
            api.campaign_doc(job.result.result)
            == api.campaign_doc(direct.result)
        )

    def test_failed_key_is_retried(self, tmp_path):
        store = JobStore(data_dir=tmp_path, workers=0)
        job, _ = store.submit("run", {"benchmark": "swim", "refs": 1})
        job._finish("error", error="boom")
        retry, created = store.submit("run", {"benchmark": "swim", "refs": 1})
        assert created and retry is not job

    def test_unknown_kind_and_bad_fields_raise(self, tmp_path):
        store = JobStore(data_dir=tmp_path, workers=0)
        with pytest.raises(api.ReproError, match="unknown request kind"):
            store.submit("sweep-the-world", {})
        with pytest.raises(api.ReproError, match="unknown RunRequest"):
            store.submit("run", {"benchmrk": "swim"})

    def test_unknown_kernel_rejected_at_submit(self, tmp_path):
        # The request dataclass validates the kernel, so the job is
        # refused synchronously rather than failing in a worker.
        store = JobStore(data_dir=tmp_path, workers=0)
        with pytest.raises(api.ReproError, match="available backends"):
            store.submit(
                "reliability", dict(CAMPAIGN_REQUEST, kernel="turbo")
            )
        assert store.run_pending() == 0

    def test_events_end_with_terminal_state(self, tmp_path):
        # Default engine factory: its on_cell hook feeds the event log.
        store = JobStore(data_dir=tmp_path, workers=0)
        job, _ = store.submit("run", RUN_REQUEST)
        store.run_pending()
        events = list(job.iter_events())
        assert events[0] == {"seq": 0, "type": "state", "state": "running"}
        assert events[-1]["type"] == "state"
        assert events[-1]["state"] == "done"
        assert any(event["type"] == "cell" for event in events)


class TestRestartResume:
    """A killed campaign resumes from its JSONL checkpoint on a fresh
    store — the uninterrupted aggregate, bit-identical."""

    #: Needs several rounds (high-variance metric, tight target) so the
    #: simulated crash lands mid-campaign, after 2 checkpointed rounds.
    AUTO = {
        "schemes": ["uniform-ecc"],
        "trials": None,
        "target": 0.02,
        "metric": "corrected",
        "trials_per_shard": 100,
        "shards_per_round": 4,
        "seed": 11,
    }

    def test_resume_after_simulated_restart(self, tmp_path):
        # Run 1: the service dies mid-campaign (engine crash stands in
        # for a process kill; completed rounds are already fsynced).
        crashing = JobStore(
            data_dir=tmp_path, workers=0,
            engine_factory=lambda job: _FailingEngine(3),
        )
        job, _ = crashing.submit("reliability", self.AUTO)
        crashing.run_pending()
        assert job.state == "error"
        checkpoint = crashing.checkpoint_path(job.key)
        assert checkpoint.exists()
        lines = checkpoint.read_text().strip().splitlines()
        assert len(lines) == 1 + 8  # header + 2 rounds of 4 shards

        # Run 2: a fresh store over the same data dir — "the restart".
        restarted = JobStore(
            data_dir=tmp_path, workers=0, engine_factory=_plain_engine
        )
        resumed_job, created = restarted.submit("reliability", self.AUTO)
        assert created  # the old store's in-memory record is gone
        assert resumed_job.key == job.key  # same digest -> same checkpoint
        restarted.run_pending()
        assert resumed_job.state == "done"
        response = resumed_job.result
        assert response.resumed_shards == 8
        assert response.executed_shards > 0

        # The uninterrupted baseline, straight through the facade.
        baseline = api.reliability(
            api.request_from_dict(api.ReliabilityRequest, self.AUTO),
            engine=SweepEngine(),
        )
        assert (
            api.campaign_doc(response.result)["schemes"]
            == api.campaign_doc(baseline.result)["schemes"]
        )

        resume_events = [
            e for e in resumed_job.events if e["type"] == "resume"
        ]
        assert resume_events and resume_events[0]["resumed_shards"] == 8


@pytest.fixture()
def service(tmp_path):
    svc = ReproService(port=0, data_dir=tmp_path, workers=2).start()
    yield svc
    svc.shutdown()


class TestHttpService:
    def test_health_and_kinds(self, service):
        client = ServiceClient(service.url)
        assert client.health()["ok"] is True
        kinds = client.kinds()
        assert set(api.KINDS) <= set(kinds)
        assert kinds["run"]["benchmark"] == "mesa"

    def test_submit_dedupe_and_result_parity(self, service):
        client = ServiceClient(service.url)
        first = client.submit("run", RUN_REQUEST)
        second = client.submit("run", RUN_REQUEST)
        assert first["job"]["id"] == second["job"]["id"]
        assert [first["created"], second["created"]].count(True) == 1

        doc = client.result(first["job"]["id"], timeout=120)
        direct = api.run(
            api.request_from_dict(api.RunRequest, RUN_REQUEST),
            engine=SweepEngine(),
        )
        assert doc == json.loads(json.dumps(direct.as_dict()))

    def test_campaign_over_http_matches_direct_call(self, service):
        client = ServiceClient(service.url)
        job_id = client.submit("reliability", CAMPAIGN_REQUEST)["job"]["id"]
        events = list(client.stream_events(job_id))
        assert events[-1]["state"] == "done"
        assert any(event["type"] == "shard" for event in events)
        assert any(event["type"] == "round" for event in events)

        doc = client.result(job_id, timeout=120)
        direct = api.reliability(
            api.request_from_dict(api.ReliabilityRequest, CAMPAIGN_REQUEST),
            engine=SweepEngine(),
        )
        assert doc["campaign"] == json.loads(
            json.dumps(api.campaign_doc(direct.result))
        )

    def test_sse_stream_format(self, service):
        client = ServiceClient(service.url)
        job_id = client.submit("area", {})["job"]["id"]
        client.result(job_id, timeout=60)
        with urllib.request.urlopen(
            f"{service.url}/v1/jobs/{job_id}/events?sse=1"
        ) as response:
            assert response.headers["Content-Type"] == "text/event-stream"
            lines = [
                line for line in response.read().decode().splitlines() if line
            ]
        assert all(line.startswith("data: ") for line in lines)
        last = json.loads(lines[-1][len("data: "):])
        assert last == {
            "seq": last["seq"],
            "type": "state",
            "state": "done",
            "schema": "repro/v1",
        }

    def test_unknown_kernel_is_rejected_at_post(self, service):
        # Kernel validation happens at request construction, so a bad
        # --kernel is a 400 at POST /v1/jobs with the backend listing —
        # never an accepted job that dies worker-side as a 500.
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as err:
            client.submit(
                "reliability", dict(CAMPAIGN_REQUEST, kernel="turbo")
            )
        assert err.value.status == 400
        assert "available backends: batch, reference, vector" in str(
            err.value
        )

    def test_unknown_scenario_and_codec_are_400_with_listing(self, service):
        # Same pattern as the kernel: validated at request
        # construction, enumerated in the 400 body.
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as err:
            client.submit(
                "reliability", dict(CAMPAIGN_REQUEST, scenario="bogus")
            )
        assert err.value.status == 400
        assert (
            "available scenarios: nominal, burst-heavy, low-voltage, rowcol"
            in str(err.value)
        )
        with pytest.raises(ServiceError) as err:
            client.submit(
                "reliability", dict(CAMPAIGN_REQUEST, codec="turbo")
            )
        assert err.value.status == 400
        assert "available codecs:" in str(err.value)

    def test_bad_requests_are_400(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as err:
            client.submit("run", {"bogus": 1})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.submit("sweep-the-world", {})
        assert err.value.status == 400

    def test_unknown_job_is_404(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as err:
            client.job("deadbeef")
        assert err.value.status == 404

    def test_failed_job_result_is_500(self, service):
        client = ServiceClient(service.url)
        job_id = client.submit(
            "run", {"trace": "/no/such/trace.bin"}
        )["job"]["id"]
        with pytest.raises(ServiceError) as err:
            client.result(job_id, timeout=60)
        assert err.value.status == 500
        assert "trace file not found" in err.value.message


class TestWireSchema:
    """Every v1 document carries the version envelope; the client
    enforces it and strips it."""

    def test_raw_wire_carries_schema_tag(self, service):
        for path in ("/v1/health", "/v1/healthz", "/v1/kinds",
                     "/v1/jobs", "/v1/workers"):
            with urllib.request.urlopen(service.url + path) as response:
                assert json.loads(response.read())["schema"] == "repro/v1"

    def test_client_strips_schema_tag(self, service):
        client = ServiceClient(service.url)
        doc = client.health()
        assert "schema" not in doc
        assert doc["ok"] is True
        job_id = client.submit("area", {})["job"]["id"]
        events = list(client.stream_events(job_id))
        assert all("schema" not in event for event in events)
        assert "schema" not in client.result(job_id, timeout=60)

    def test_client_rejects_unknown_schema(self):
        from repro.service.client import _check_schema

        assert _check_schema({"schema": "repro/v1", "ok": True}) == {
            "ok": True
        }
        with pytest.raises(api.ReproError, match="repro/v1"):
            _check_schema({"ok": True})  # missing tag
        with pytest.raises(api.ReproError, match="repro/v2"):
            _check_schema({"schema": "repro/v2", "ok": True})

    def test_healthz_and_workers_endpoints(self, service):
        client = ServiceClient(service.url)
        healthz = client.healthz()
        assert healthz["ok"] is True
        assert healthz["replica_id"] == service.store.replica_id
        workers = client.workers()
        ids = [w["replica_id"] for w in workers["workers"]]
        assert service.store.replica_id in ids
        assert all(w["alive"] for w in workers["workers"])


class _CancelingEngine(SweepEngine):
    """Cancels its own job after the Nth map_tasks call — the campaign
    must stop at the next round-boundary abort poll."""

    def __init__(self, store, cancel_after_call):
        super().__init__(jobs=1, cache=False, progress=False)
        self.store = store
        self.cancel_after_call = cancel_after_call
        self.calls = 0

    def map_tasks(self, func, items, phase="map"):
        results = super().map_tasks(func, items, phase=phase)
        self.calls += 1
        if self.calls == self.cancel_after_call:
            job = self.store.list()[0]
            self.store.cancel(job.key)
        return results


class TestCancel:
    def test_cancel_queued_job_never_executes(self, tmp_path):
        store = JobStore(data_dir=tmp_path, workers=0)
        job, _ = store.submit("reliability", CAMPAIGN_REQUEST)
        cancelled, known = store.cancel(job.key)
        assert known and cancelled is job
        assert job.state == "canceled"
        assert store.run_pending() == 1  # dequeued, but skipped
        assert job.state == "canceled"
        events = list(job.iter_events())
        assert events[-1]["state"] == "canceled"

    def test_cancel_running_campaign_stops_at_round_boundary(
        self, tmp_path
    ):
        auto = {
            "schemes": ["uniform-ecc"],
            "trials": None,
            "target": 0.001,  # unreachably tight: runs until canceled
            "metric": "corrected",
            "trials_per_shard": 50,
            "shards_per_round": 2,
            "max_trials": 100_000,
            "seed": 3,
        }
        holder = {}
        store = JobStore(
            data_dir=tmp_path, workers=0,
            engine_factory=lambda job: holder["engine"],
        )
        holder["engine"] = _CancelingEngine(store, cancel_after_call=2)
        job, _ = store.submit("reliability", auto)
        store.run_pending()
        assert job.state == "canceled"
        assert holder["engine"].calls < 5  # stopped well short of max
        assert store.fabric.job_state(job.key) == "canceled"

    def test_cancel_over_http(self, service):
        client = ServiceClient(service.url)
        job_id = client.submit("run", RUN_REQUEST)["job"]["id"]
        doc = client.cancel(job_id)
        assert doc["job"]["id"] == job_id
        with pytest.raises(ServiceError) as err:
            client.cancel("deadbeef")
        assert err.value.status == 404

    def test_canceled_result_is_409(self, tmp_path):
        store = JobStore(data_dir=tmp_path, workers=0)
        service = ReproService(port=0, store=store).start()
        try:
            client = ServiceClient(service.url)
            job_id = client.submit("reliability", CAMPAIGN_REQUEST)["job"][
                "id"
            ]
            client.cancel(job_id)
            with pytest.raises(ServiceError) as err:
                client.result(job_id, timeout=10)
            assert err.value.status == 409
        finally:
            service.shutdown()

    def test_canceled_key_is_retried(self, tmp_path):
        store = JobStore(data_dir=tmp_path, workers=0)
        job, _ = store.submit("run", RUN_REQUEST)
        store.cancel(job.key)
        retry, created = store.submit("run", RUN_REQUEST)
        assert created and retry is not job
        store.run_pending()
        assert retry.state == "done"


class TestEventLocking:
    """A slow event consumer must never stall unrelated submissions."""

    def test_slow_reader_does_not_block_submit(self, tmp_path):
        import time as _time

        store = JobStore(data_dir=tmp_path, workers=0)
        job, _ = store.submit("reliability", CAMPAIGN_REQUEST)
        for i in range(50):
            job.emit({"type": "tick", "i": i})

        started = threading.Event()

        def slow_reader():
            for event in job.iter_events():
                started.set()
                _time.sleep(0.05)  # a glacial SSE consumer

        reader = threading.Thread(target=slow_reader, daemon=True)
        reader.start()
        assert started.wait(timeout=5)

        begin = _time.monotonic()
        other, created = store.submit("run", RUN_REQUEST)
        elapsed = _time.monotonic() - begin
        assert created
        # 50 events x 50ms of reader sleep; an unrelated submit must
        # not be serialized behind any of it.
        assert elapsed < 1.0
        job._finish("canceled")  # release the reader
