"""The distributed campaign fabric: work-stealing, reclamation, cache.

The correctness bar everywhere here is the repo's north star: however
many replicas cooperate on a campaign — and however unluckily one of
them dies — the merged estimate is **bit-identical** to a single-node
run of the same request.
"""

import threading
import time

from repro import api
from repro.experiments.pool import SweepEngine
from repro.service import FabricStore, JobStore, ShardCoordinator

#: Fixed-trial campaign: both replicas derive the identical shard
#: schedule, so cooperation is pure work-splitting.
CAMPAIGN = {
    "schemes": ["uniform-ecc", "non-uniform"],
    "trials": 400,
    "trials_per_shard": 50,
    "seed": 7,
}
#: 400/50 = 8 shards per scheme, two schemes.
TOTAL_SHARDS = 16


def _plain_engine(job):
    return SweepEngine(jobs=1, cache=False, progress=False)


def _direct_doc():
    response = api.reliability(
        api.request_from_dict(api.ReliabilityRequest, CAMPAIGN),
        engine=SweepEngine(jobs=1, cache=False, progress=False),
    )
    return api.campaign_doc(response.result)


class TestFabricStore:
    def test_lease_prefers_pending_then_steals_stale(self, tmp_path):
        store = FabricStore(
            tmp_path, lease_duration=0.1, worker_timeout=0.1
        )
        store.register_worker("a")
        store.register_worker("b")
        keys = [("s", i) for i in range(4)]
        store.ensure_shards("job", keys)
        leased, stolen = store.lease_shards("job", keys, "a", limit=2)
        assert leased == [("s", 0), ("s", 1)] and not stolen
        # b picks up the remaining pending shards, steals nothing: a's
        # leases are fresh.
        leased, stolen = store.lease_shards("job", keys, "b")
        assert leased == [("s", 2), ("s", 3)] and not stolen
        # a goes silent; once its lease and heartbeat lapse, b steals.
        time.sleep(0.15)
        store.heartbeat("b")
        leased, stolen = store.lease_shards("job", keys, "b")
        assert leased == stolen == [("s", 0), ("s", 1)]

    def test_heartbeat_extends_leases(self, tmp_path):
        store = FabricStore(
            tmp_path, lease_duration=0.2, worker_timeout=10.0
        )
        store.register_worker("a")
        store.register_worker("b")
        store.ensure_shards("job", [("s", 0)])
        store.lease_shards("job", [("s", 0)], "a")
        for _ in range(3):  # a is slow but alive
            time.sleep(0.1)
            store.heartbeat("a")
        leased, _ = store.lease_shards("job", [("s", 0)], "b")
        assert leased == []  # never stealable while a heartbeats

    def test_complete_and_done_shards(self, tmp_path):
        store = FabricStore(tmp_path)
        store.ensure_shards("job", [("s", 0), ("s", 1)])
        record = {"scheme": "s", "index": 0, "trials": 50, "seed": 1,
                  "outcomes": {}}
        store.complete_shard("job", record)
        store.complete_shard("job", record)  # idempotent
        assert store.done_shards("job", [("s", 0), ("s", 1)]) == [record]

    def test_close_releases_leases_and_deregisters(self, tmp_path):
        store = JobStore(data_dir=tmp_path, workers=0)
        replica = store.replica_id
        assert any(
            w["replica_id"] == replica for w in store.fabric.workers()
        )
        store.fabric.ensure_shards("job", [("s", 0)])
        store.fabric.lease_shards("job", [("s", 0)], replica)
        store.close()
        assert all(
            w["replica_id"] != replica for w in store.fabric.workers()
        )
        leased, _ = store.fabric.lease_shards("job", [("s", 0)], "other")
        assert leased == [("s", 0)]  # back to pending, not stuck leased


class TestTwoReplicaCampaign:
    def test_disjoint_shards_merge_bit_identical(self, tmp_path):
        """Two stores on one data dir split one campaign's shards;
        both merged estimates equal the single-node run bit-for-bit."""
        stores = [
            JobStore(
                data_dir=tmp_path, workers=0,
                engine_factory=_plain_engine,
                replica_id=f"replica-{i}",
                lease_batch=2,  # force interleaving within rounds
            )
            for i in (1, 2)
        ]
        jobs = [store.submit("reliability", CAMPAIGN)[0] for store in stores]
        threads = [
            threading.Thread(target=store.run_pending) for store in stores
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        try:
            assert [job.state for job in jobs] == ["done", "done"]
            docs = [api.campaign_doc(job.result.result) for job in jobs]
            direct = _direct_doc()
            assert docs[0]["schemes"] == direct["schemes"]
            assert docs[1]["schemes"] == direct["schemes"]
            assert docs[0]["total_trials"] == direct["total_trials"]
            # Every shard executed exactly once cluster-wide: no
            # duplicated work while both replicas stay alive.
            executed = [job.result.executed_shards for job in jobs]
            assert sum(executed) == TOTAL_SHARDS
            # The fabric cached the finished document for the cluster
            # (last finisher wins; either replica's doc is correct).
            cached = stores[0].fabric.cached_result(jobs[0].key)
            assert cached in [job.result_doc() for job in jobs]
        finally:
            for store in stores:
                store.close()

    def test_scenario_campaign_merges_bit_identical(self, tmp_path):
        """A correlated-fault campaign (burst-heavy, DECTED in the ECC
        slot) splits across two replicas and still merges to the
        single-node document bit for bit — the scenario engine's
        determinism contract holds through fabric leases."""
        campaign = dict(
            CAMPAIGN,
            schemes=["uniform-ecc"],
            scenario="burst-heavy",
            codec="dected",
        )
        stores = [
            JobStore(
                data_dir=tmp_path, workers=0,
                engine_factory=_plain_engine,
                replica_id=f"replica-{i}",
                lease_batch=2,
            )
            for i in (1, 2)
        ]
        jobs = [store.submit("reliability", campaign)[0] for store in stores]
        threads = [
            threading.Thread(target=store.run_pending) for store in stores
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        try:
            assert [job.state for job in jobs] == ["done", "done"]
            direct = api.campaign_doc(
                api.reliability(
                    api.request_from_dict(api.ReliabilityRequest, campaign),
                    engine=SweepEngine(jobs=1, cache=False, progress=False),
                ).result
            )
            for job in jobs:
                doc = api.campaign_doc(job.result.result)
                assert doc["schemes"] == direct["schemes"]
                assert doc["total_trials"] == direct["total_trials"]
            # Work split, not duplicated: 400/50 = 8 shards once.
            assert sum(job.result.executed_shards for job in jobs) == 8
        finally:
            for store in stores:
                store.close()

    def test_dead_replica_shards_are_reclaimed(self, tmp_path):
        """A ghost replica leases shards and dies; the survivor steals
        them after lease expiry and still matches the single-node run."""
        store = JobStore(
            data_dir=tmp_path, workers=0,
            engine_factory=_plain_engine,
            replica_id="survivor",
            lease_duration=0.2, worker_timeout=0.2,
        )
        job, _ = store.submit("reliability", CAMPAIGN)
        # The ghost grabs half of one scheme's shards, then vanishes
        # (no heartbeat, no completion, no lease release).
        store.fabric.register_worker("ghost")
        ghost_keys = [("uniform-ecc", i) for i in range(4)]
        store.fabric.ensure_shards(job.key, ghost_keys)
        leased, _ = store.fabric.lease_shards(
            job.key, ghost_keys, "ghost"
        )
        assert leased == ghost_keys
        time.sleep(0.3)  # ghost's lease and heartbeat both lapse
        try:
            store.run_pending()
            assert job.state == "done"
            assert job.result.executed_shards == TOTAL_SHARDS
            steals = [
                e for e in job.events if e.get("type") == "steal"
            ]
            stolen = {
                tuple(shard) for e in steals for shard in e["shards"]
            }
            assert stolen == set(ghost_keys)
            doc = api.campaign_doc(job.result.result)
            assert doc["schemes"] == _direct_doc()["schemes"]
        finally:
            store.close()

    def test_any_replica_serves_cached_results(self, tmp_path):
        """A key one replica finished is served by a fresh replica
        straight from the fabric cache, without executing anything."""
        first = JobStore(
            data_dir=tmp_path, workers=0, engine_factory=_plain_engine
        )
        job, _ = first.submit("reliability", CAMPAIGN)
        first.run_pending()
        assert job.state == "done"
        first.close()

        def exploding_engine(job):
            raise AssertionError("cache-served job must not execute")

        second = JobStore(
            data_dir=tmp_path, workers=0, engine_factory=exploding_engine
        )
        try:
            served, created = second.submit("reliability", CAMPAIGN)
            assert created and served.state == "done"
            assert second.run_pending() == 0  # nothing was queued
            assert served.result_doc() == job.result_doc()
            assert any(
                e.get("type") == "cached" for e in served.events
            )
        finally:
            second.close()


class TestCoordinator:
    def test_cancel_visible_through_coordinator(self, tmp_path):
        store = FabricStore(tmp_path)
        store.record_job("job", "reliability", {})
        coordinator = ShardCoordinator(store, "job", "me")
        assert not coordinator.canceled()
        assert store.cancel_job("job")
        assert coordinator.canceled()
        assert not store.cancel_job("job")  # already terminal
        assert not store.cancel_job("nope")  # unknown
