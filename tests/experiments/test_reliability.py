"""Tests for the payload-level reliability campaigns."""

import pytest

from repro.core import (
    NonUniformPolicy,
    UniformEccPolicy,
    UniformParityPolicy,
)
from repro.core.policy import RecoveryAction
from repro.experiments import (
    ReliabilityConfig,
    compare_policies,
    reliability_campaign,
)

FAST = ReliabilityConfig(n_lines=16, n_events=2500, seed=1)


class TestCampaignMechanics:
    def test_reads_and_faults_counted(self):
        res = reliability_campaign(NonUniformPolicy(), FAST)
        assert res.reads > 0
        assert res.faults_injected > 0
        assert sum(res.by_action.values()) == res.reads

    def test_deterministic(self):
        a = reliability_campaign(NonUniformPolicy(), FAST)
        b = reliability_campaign(NonUniformPolicy(), FAST)
        assert a.by_action == b.by_action

    def test_no_faults_means_all_clean(self):
        cfg = ReliabilityConfig(n_lines=8, n_events=1000,
                                fault_rate=0.0, seed=2)
        res = reliability_campaign(UniformEccPolicy(), cfg)
        assert res.by_action == {RecoveryAction.CLEAN_READ: res.reads}
        assert res.unrecovered_rate == 0.0


class TestPolicyOrdering:
    """The reliability hierarchy the paper's argument rests on."""

    def test_parity_only_loses_dirty_data(self):
        res = compare_policies(
            [UniformParityPolicy(), NonUniformPolicy()], FAST
        )
        parity = res["uniform-parity"]
        ours = res["non-uniform"]
        assert parity.rate(RecoveryAction.DATA_LOSS) > ours.rate(
            RecoveryAction.DATA_LOSS
        )

    def test_non_uniform_close_to_uniform_ecc(self):
        """The paper's scheme must track the conventional design closely."""
        res = compare_policies(
            [UniformEccPolicy(), NonUniformPolicy()],
            ReliabilityConfig(n_lines=32, n_events=8000, seed=3),
        )
        ecc = res["uniform-ecc"].unrecovered_rate
        ours = res["non-uniform"].unrecovered_rate
        assert ours <= ecc * 1.5 + 0.02

    def test_non_uniform_refetches_clean_lines(self):
        res = reliability_campaign(NonUniformPolicy(), FAST)
        assert res.rate(RecoveryAction.REFETCHED) > 0

    def test_uniform_ecc_never_refetches(self):
        res = reliability_campaign(UniformEccPolicy(), FAST)
        assert res.rate(RecoveryAction.REFETCHED) == 0.0
