"""Tests for the dirty-exposure / residual-failure model."""

import math

import pytest

from repro.core import ProtectionConfig
from repro.experiments import (
    RunConfig,
    dirty_exposure,
    expected_uncorrectable,
    exposure_comparison,
    p_double_bit,
    run_refs,
)

FAST = RunConfig(n_refs=10_000, warmup_refs=3_000)


class TestPDoubleBit:
    def test_zero_exposure_is_zero(self):
        assert p_double_bit(1e-12, 0.0) == 0.0

    def test_zero_rate_is_zero(self):
        assert p_double_bit(0.0, 1e9) == 0.0

    def test_monotone_in_exposure(self):
        assert p_double_bit(1e-9, 1e6) < p_double_bit(1e-9, 1e8)

    def test_saturates_at_one(self):
        assert p_double_bit(1.0, 1e6) == pytest.approx(1.0)

    def test_small_lambda_quadratic(self):
        """For small λ, P ≈ λ²/2."""
        rate, t = 1e-9, 1e3
        lam = rate * 72 * t
        assert p_double_bit(rate, t) == pytest.approx(lam**2 / 2, rel=0.01)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            p_double_bit(-1.0, 1.0)


class TestExposure:
    def test_exposure_from_fraction(self):
        out = run_refs("mesa", None, FAST)
        n_lines = FAST.geometry.hierarchy_config().l2.n_lines
        e = dirty_exposure(out, n_lines)
        assert e == pytest.approx(
            out.dirty_fraction * n_lines * out.cycles
        )

    def test_episode_stats_populated_when_cleaning(self):
        out = run_refs(
            "mesa",
            ProtectionConfig(cleaning_interval=1 << 18,
                             ecc_entries_per_set=1),
            FAST,
        )
        assert out.mean_dirty_episode_cycles > 0

    def test_expected_events_nonnegative(self):
        out = run_refs("swim", None, FAST)
        n_lines = FAST.geometry.hierarchy_config().l2.n_lines
        assert expected_uncorrectable(out, n_lines) >= 0.0

    def test_zero_exposure_zero_events(self):
        out = run_refs("mesa", None, FAST)
        object.__setattr__  # (RefRunOutput is not frozen; direct set ok)
        out.dirty_fraction = 0.0
        n_lines = FAST.geometry.hierarchy_config().l2.n_lines
        assert expected_uncorrectable(out, n_lines) == 0.0


class TestComparison:
    def test_scheme_reduces_exposure(self):
        res = exposure_comparison(FAST, benchmarks=["mesa", "parser"])
        for name, row in res.items():
            assert row["ours Mlc"] <= row["org Mlc"] + 1e-9, name
            assert row["exposure x"] >= 1.0, name

    def test_columns(self):
        res = exposure_comparison(FAST, benchmarks=["swim"])
        assert set(res["swim"]) == {
            "org Mlc", "ours Mlc", "exposure x", "events x",
        }
