"""Tests for the table renderers."""

from repro.experiments import render_bars, render_series, render_table


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["name", "value"], [["a", 1.5], ["bb", 2.25]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert "1.50" in out
        assert "2.25" in out

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_ndigits(self):
        out = render_table(["x"], [[3.14159]], ndigits=4)
        assert "3.1416" in out

    def test_ints_not_decorated(self):
        out = render_table(["x"], [[42]])
        assert "42" in out
        assert "42.00" not in out


class TestRenderBars:
    def test_scaled_to_peak(self):
        out = render_bars({"a": 50.0, "b": 100.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_values_shown(self):
        out = render_bars({"x": 12.3})
        assert "12.3%" in out

    def test_zero_values(self):
        out = render_bars({"a": 0.0, "b": 0.0})
        assert "█" not in out

    def test_nan_safe(self):
        out = render_bars({"a": float("nan"), "b": 2.0})
        assert "nan" in out

    def test_empty(self):
        assert render_bars({}, title="t") == "t"

    def test_title_and_alignment(self):
        out = render_bars({"long-name": 1.0, "x": 1.0}, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].index("|") == lines[2].index("|")


class TestRenderSeries:
    def test_average_row_added(self):
        series = {"a": {"c1": 1.0, "c2": 3.0}, "b": {"c1": 3.0, "c2": 5.0}}
        out = render_series(series)
        assert "average" in out
        lines = out.splitlines()
        assert "2.00" in lines[-1]
        assert "4.00" in lines[-1]

    def test_no_average_when_disabled(self):
        out = render_series({"a": {"c": 1.0}}, average_row=False)
        assert "average" not in out

    def test_missing_cells_render_nan(self):
        series = {"a": {"c1": 1.0}, "b": {"c2": 2.0}}
        out = render_series(series)
        assert "nan" in out

    def test_column_order_follows_first_seen(self):
        series = {"a": {"z": 1.0, "y": 2.0}}
        header = render_series(series).splitlines()[0]
        assert header.index("z") < header.index("y")
