"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_capacity, _parse_entries, _parse_interval, main


class TestParsers:
    def test_interval_suffixes(self):
        assert _parse_interval("1M") == 1 << 20
        assert _parse_interval("256k") == 256 << 10
        assert _parse_interval("4096") == 4096
        assert _parse_interval("none") is None

    def test_bad_interval(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_interval("abc")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_interval("-5")

    def test_entries(self):
        import argparse

        assert _parse_entries("2") == 2
        assert _parse_entries("none") is None
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_entries("0")

    def test_capacity(self):
        import argparse

        assert _parse_capacity("64k") == 64 << 10
        assert _parse_capacity("1000") == 1000
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_capacity("0")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "mesa" in out
        assert "0.7x L2" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "59.1%" in out
        assert "32.00" in out  # the ECC array

    def test_run_benchmark(self, capsys):
        code = main([
            "run", "--benchmark", "swim",
            "--refs", "4000", "--warmup", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "avg dirty %" in out
        assert "ECC-WB %" in out

    def test_run_without_protection(self, capsys):
        code = main([
            "run", "--benchmark", "swim", "--interval", "none",
            "--ecc-entries", "none", "--refs", "3000", "--warmup", "500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Clean-WB %" in out

    def test_inject(self, capsys):
        assert main(["inject", "--codec", "secded", "--trials", "50",
                     "--flips", "1"]) == 0
        out = capsys.readouterr().out
        assert "corrected" in out

    def test_inject_parity(self, capsys):
        assert main(["inject", "--codec", "parity", "--trials", "50",
                     "--flips", "1"]) == 0
        assert "detected" in capsys.readouterr().out

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "t.bin"
        assert main(["trace", "--benchmark", "mcf", "--out", str(out_file),
                     "-n", "500"]) == 0
        assert out_file.exists()
        assert "wrote 500 refs" in capsys.readouterr().out

        assert main(["run", "--trace", str(out_file),
                     "--refs", "400", "--warmup", "100"]) == 0
        assert "avg dirty %" in capsys.readouterr().out

    def test_ipc(self, capsys):
        code = main([
            "ipc", "--benchmark", "mesa", "--insts", "8000",
            "--refs", "4000", "--warmup", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC loss" in out

    def test_figures_single(self, capsys):
        code = main(["figures", "--fig", "1",
                     "--refs", "3000", "--warmup", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "average" in out

    def test_figures_area(self, capsys):
        assert main(["figures", "--fig", "area"]) == 0
        assert "59.1%" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--benchmark", "gcc"])

    def test_stats(self, capsys):
        code = main([
            "stats", "--benchmark", "mcf", "--n-seeds", "2",
            "--refs", "3000", "--warmup", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "spread over 2 seeds" in out
        assert "dirty fraction" in out

    def test_stats_json(self, capsys):
        code = main([
            "stats", "--benchmark", "mcf", "--n-seeds", "2",
            "--refs", "3000", "--warmup", "1000", "--format", "json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["benchmark"] == "mcf"
        assert doc["n_seeds"] == 2
        assert len(doc["metrics"]["dirty_fraction"]["values"]) == 2
        assert "mean" in doc["metrics"]["writeback_fraction"]
        # Registry snapshots ride along, mean plus per-seed.
        assert doc["mean_snapshot"]["hierarchy"]["loads_stores"] == 3000
        assert len(doc["snapshots"]) == 2
        assert "profile" in doc

    def test_run_trace_out(self, tmp_path, capsys):
        from repro.telemetry.tracing import load_jsonl, validate_event

        trace = tmp_path / "events.jsonl"
        code = main([
            "run", "--benchmark", "swim",
            "--refs", "4000", "--warmup", "1000",
            "--trace-out", str(trace), "--trace-capacity", "1k",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "events" in out
        events = load_jsonl(trace)
        assert events
        for event in events:
            validate_event(event)

    def test_run_profile(self, capsys):
        code = main([
            "run", "--benchmark", "swim",
            "--refs", "3000", "--warmup", "1000", "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        # The engine path always profiles its cache probe.
        assert "cache-lookup" in out

    def test_ablate_decay(self, capsys):
        code = main([
            "ablate", "decay", "--benchmarks", "swim",
            "--refs", "3000", "--warmup", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "decay dirty %" in out

    def test_ablate_ecc_entries(self, capsys):
        code = main([
            "ablate", "ecc-entries", "--benchmarks", "swim",
            "--refs", "3000", "--warmup", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "entries/set" in out
        assert "54.00" in out

    def test_ablate_unknown_study_rejected(self):
        with pytest.raises(SystemExit):
            main(["ablate", "voltage"])


class TestVariantFlag:
    def test_run_silent_write_shows_traffic_rows(self, capsys):
        code = main([
            "run", "--benchmark", "swim", "--variant", "silent-write",
            "--refs", "4000", "--warmup", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "variant" in out and "silent-write" in out
        assert "silent writes" in out
        assert "elided ECC updates" in out

    def test_run_wb_compress_shows_byte_rows(self, capsys):
        code = main([
            "run", "--benchmark", "swim", "--variant", "wb-compress",
            "--refs", "4000", "--warmup", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "write-back bytes raw" in out
        assert "write-back bytes sent" in out

    def test_ipc_variant_energy_row(self, capsys):
        code = main([
            "ipc", "--benchmark", "mesa", "--variant", "silent-write",
            "--insts", "8000", "--refs", "4000", "--warmup", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "energy (uJ)" in out
        assert "ours = silent-write" in out

    def test_unknown_variant_enumerates_and_exits_2(self, capsys):
        rc = main(["run", "--benchmark", "swim", "--variant", "bogus"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "available variants:" in err
        assert "silent-write" in err and "standard" in err

    def test_standard_variant_counters_stay_zero(self, capsys):
        code = main([
            "run", "--benchmark", "swim", "--refs", "4000",
            "--warmup", "1000", "--format", "json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["silent_writes"] == 0
        assert doc["wb_bytes_raw"] == 0


class TestFormatRenderer:
    """run/ipc/area/inject/stats/workers share table|json|csv."""

    def csv_rows(self, capsys):
        import csv as csv_mod
        import io

        return list(csv_mod.reader(io.StringIO(capsys.readouterr().out)))

    def test_run_csv(self, capsys):
        code = main([
            "run", "--benchmark", "swim", "--refs", "4000",
            "--warmup", "1000", "--format", "csv",
        ])
        assert code == 0
        rows = self.csv_rows(capsys)
        assert rows[0] == ["metric", "value"]
        assert ["benchmark", "swim"] in rows

    def test_area_csv(self, capsys):
        assert main(["area", "--format", "csv"]) == 0
        rows = self.csv_rows(capsys)
        assert rows[0][0] == "component"
        assert any(r[0].endswith("total") for r in rows)

    def test_inject_csv(self, capsys):
        assert main([
            "inject", "--codec", "secded", "--trials", "50",
            "--flips", "1", "--format", "csv",
        ]) == 0
        rows = self.csv_rows(capsys)
        assert rows[0] == ["outcome", "count", "rate"]
        assert any(r[0] == "corrected" for r in rows)

    def test_stats_csv(self, capsys):
        code = main([
            "stats", "--benchmark", "mcf", "--n-seeds", "2",
            "--refs", "3000", "--warmup", "1000", "--format", "csv",
        ])
        assert code == 0
        rows = self.csv_rows(capsys)
        assert rows[0][0] == "metric"
        assert any("dirty" in r[0] for r in rows[1:])
