"""Tests for the structured JSON export."""

import json

import pytest

from repro.experiments import (
    RunConfig,
    config_metadata,
    load_json,
    regenerate_all,
    save_json,
)

FAST = RunConfig(n_refs=4_000, warmup_refs=1_000)


class TestMetadata:
    def test_provenance_fields(self):
        meta = config_metadata(FAST)
        assert meta["n_refs"] == 4_000
        assert meta["geometry"]["name"] == "scaled"
        assert meta["geometry"]["l2_bytes"] == 64 * 1024


class TestRegenerateAll:
    @pytest.fixture(scope="class")
    def doc(self):
        # One expensive full regeneration shared by the class's tests.
        return regenerate_all(FAST, include_ipc=False)

    def test_all_figures_present(self, doc):
        for key in ("figure1", "figure3", "figure4", "figure5", "figure6",
                    "figure7", "figure8", "area", "config"):
            assert key in doc

    def test_no_ipc_when_disabled(self, doc):
        assert "ipc" not in doc

    def test_figure1_has_14_benchmarks(self, doc):
        assert len(doc["figure1"]) == 14

    def test_area_block(self, doc):
        area = doc["area"]
        assert area["conventional_kib"] == 132.0
        assert area["proposed_kib"] == 54.0
        assert area["reduction"] == pytest.approx(0.59, abs=0.005)

    def test_figure7_under_cap(self, doc):
        assert all(v <= 25.0 + 1e-6 for v in doc["figure7"].values())

    def test_json_serialisable(self, doc):
        text = json.dumps(doc)
        assert "figure1" in text

    def test_roundtrip_through_file(self, doc, tmp_path):
        path = tmp_path / "results.json"
        save_json(doc, path)
        loaded = load_json(path)
        assert loaded["figure1"] == doc["figure1"]
        assert loaded["area"]["reduction"] == doc["area"]["reduction"]


class TestCliJson:
    def test_figures_json_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "doc.json"
        code = main([
            "figures", "--json", str(path), "--no-ipc",
            "--refs", "2000", "--warmup", "500",
        ])
        assert code == 0
        doc = load_json(path)
        assert "figure8" in doc
        assert doc["config"]["n_refs"] == 2000
