"""Tests for the newer ablation studies (write buffer, cache size,
cleaning policy, energy, replacement)."""

import pytest

from repro.experiments import (
    RunConfig,
    ablate_cache_size,
    ablate_cleaning_policy,
    ablate_energy,
    ablate_replacement,
    ablate_write_buffer,
)

FAST = RunConfig(n_refs=8_000, warmup_refs=2_000)


class TestWriteBufferAblation:
    def test_coalescing_monotone_in_depth(self):
        res = ablate_write_buffer(FAST, benchmarks=["mesa"],
                                  depths=(1, 16))
        row = res["mesa"]
        assert row["coalesce@1"] <= row["coalesce@16"] + 1e-9

    def test_rates_in_percent_range(self):
        res = ablate_write_buffer(FAST, benchmarks=["swim"], depths=(4,))
        assert 0.0 <= res["swim"]["coalesce@4"] <= 100.0


class TestCacheSizeAblation:
    def test_resident_benchmark_fraction_halves(self):
        res = ablate_cache_size(FAST, benchmarks=["mesa"],
                                scale_factors=(1.0, 2.0))
        row = res["mesa"]
        # Fixed dirty footprint over doubled capacity: fraction ~halves.
        assert row["2x"] == pytest.approx(row["1x"] / 2, rel=0.25)

    def test_columns_labelled_by_factor(self):
        res = ablate_cache_size(FAST, benchmarks=["swim"],
                                scale_factors=(0.5, 1.0))
        assert set(res["swim"]) == {"0.5x", "1x"}


class TestCleaningPolicyAblation:
    def test_written_bit_beats_decay_on_read_hot_benchmarks(self):
        res = ablate_cleaning_policy(
            RunConfig(n_refs=20_000, warmup_refs=6_000),
            benchmarks=["mesa"],
        )
        row = res["mesa"]
        assert row["written dirty %"] < row["decay dirty %"]

    def test_keys(self):
        res = ablate_cleaning_policy(FAST, benchmarks=["swim"])
        assert set(res["swim"]) == {
            "written dirty %", "written wb %",
            "decay dirty %", "decay wb %",
        }


class TestEnergyAblation:
    def test_coding_energy_reported(self):
        res = ablate_energy(FAST, benchmarks=["swim"])
        row = res["swim"]
        assert row["conv coding uJ"] > 0
        assert row["ours coding uJ"] > 0
        assert row["conv uJ"] >= row["conv coding uJ"]

    def test_streaming_benchmark_saves_coding_energy(self):
        res = ablate_energy(FAST, benchmarks=["swim"])
        row = res["swim"]
        assert row["ours coding uJ"] < row["conv coding uJ"]


class TestBusWidthAblation:
    def test_loss_columns_per_width(self):
        from repro.experiments import ablate_bus_width

        res = ablate_bus_width(FAST, benchmarks=["swim"], widths=(8,),
                               n_insts=15_000)
        assert set(res["swim"]) == {"8B loss %"}

    def test_wider_bus_never_hurts_much(self):
        from repro.experiments import ablate_bus_width

        res = ablate_bus_width(FAST, benchmarks=["swim"], widths=(4, 16),
                               n_insts=20_000)
        row = res["swim"]
        assert row["16B loss %"] <= row["4B loss %"] + 1.0


class TestReplacementAblation:
    def test_all_policies_reported(self):
        res = ablate_replacement(FAST, benchmarks=["mesa"])
        assert set(res["mesa"]) == {"lru", "fifo", "random"}

    def test_values_are_percentages(self):
        res = ablate_replacement(FAST, benchmarks=["mcf"],
                                 policies=("lru",))
        assert 0.0 <= res["mcf"]["lru"] <= 100.0
