"""Tests for trace-driven runs through the experiment runner."""

import itertools

import pytest

from repro.core import ProtectionConfig
from repro.experiments import RunConfig, run_trace
from repro.workloads import MemRef, get_benchmark, make_ref_stream

FAST = RunConfig(n_refs=5_000, warmup_refs=1_000)


def synthetic_refs(n, stride=8, writes_every=3):
    return [
        MemRef(i % writes_every == 0, (i * stride) % (1 << 18), 1)
        for i in range(n)
    ]


class TestRunTrace:
    def test_list_input(self):
        out = run_trace(synthetic_refs(6_000), None, FAST, label="synthetic")
        assert out.benchmark == "synthetic"
        assert out.refs == FAST.n_refs

    def test_generator_input(self):
        stream = make_ref_stream(get_benchmark("swim"), 64 * 1024, seed=0)
        out = run_trace(stream, None, FAST)
        assert out.refs == FAST.n_refs

    def test_short_trace_ends_early(self):
        out = run_trace(synthetic_refs(2_000), None, FAST)
        assert out.refs == 1_000  # 2000 total - 1000 warm-up

    def test_trace_exhausted_by_warmup(self):
        out = run_trace(synthetic_refs(500), None, FAST)
        assert out.refs == 0
        assert out.writeback_fraction == 0.0

    def test_protection_applies(self):
        refs = synthetic_refs(6_000, stride=64, writes_every=1)
        protected = run_trace(
            refs,
            ProtectionConfig(cleaning_interval=1 << 16,
                             ecc_entries_per_set=1),
            FAST,
        )
        assert protected.peak_dirty_fraction <= 0.25 + 1e-9

    def test_matches_run_refs_for_same_stream(self):
        """run_trace(stream) == run_refs(name) for the same benchmark."""
        from repro.experiments import run_refs

        via_name = run_refs("mcf", None, FAST)
        stream = make_ref_stream(
            get_benchmark("mcf"), FAST.geometry.l2_bytes, seed=FAST.seed
        )
        via_trace = run_trace(stream, None, FAST)
        assert via_trace.dirty_fraction == via_name.dirty_fraction
        assert via_trace.writeback_fraction == via_name.writeback_fraction
