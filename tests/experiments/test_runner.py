"""Tests for the experiment runner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.core import ProtectedL2, ProtectionConfig
from repro.experiments import (
    PAPER_GEOMETRY,
    SCALED_GEOMETRY,
    RunConfig,
    build_l2,
    run_ipc,
    run_refs,
)
from repro.experiments.runner import Geometry, interval_label

FAST = RunConfig(n_refs=12_000, warmup_refs=4_000)


class TestGeometry:
    def test_paper_geometry_is_table1(self):
        hc = PAPER_GEOMETRY.hierarchy_config()
        assert hc.l2.size_bytes == 1024 * 1024
        assert hc.l2.ways == 4
        assert hc.l2.line_bytes == 64
        assert hc.l1d.size_bytes == 32 * 1024

    def test_scaled_geometry_preserves_shape(self):
        hc = SCALED_GEOMETRY.hierarchy_config()
        assert hc.l2.ways == 4
        assert hc.l2.line_bytes == 64
        # L1:L2 capacity ratio preserved (32KB : 1MB = 1 : 32).
        assert hc.l2.size_bytes // hc.l1d.size_bytes == 32

    def test_interval_scaling(self):
        g = Geometry("g", 1024, 65536, interval_scale=0.25)
        assert g.scaled_interval(1 << 20) == 1 << 18

    def test_interval_grid_labels(self):
        labels = [label for label, _ in SCALED_GEOMETRY.interval_grid()]
        assert labels == ["64K", "256K", "1M", "4M"]

    def test_interval_label_rendering(self):
        assert interval_label(65536) == "64K"
        assert interval_label(1 << 20) == "1M"
        assert interval_label(1000) == "1000"


# Scales span collapsing (1e-9 maps every nominal interval to 1 before
# the grid nudge) through identity to expanding; the property must hold
# across all of them, not just the two shipped geometries.
_scales = st.one_of(
    st.sampled_from([1.0, 1.0 / 32.0, 1.0 / 1024.0, 3.0]),
    st.floats(min_value=1e-9, max_value=64.0,
              allow_nan=False, allow_infinity=False),
)

_grids = st.one_of(
    st.just(Geometry("d", 1024, 65536, 1.0).paper_intervals),
    st.lists(st.integers(min_value=1, max_value=1 << 26),
             min_size=1, max_size=6, unique=True).map(
                 lambda xs: tuple(sorted(xs))),
)


class TestIntervalRoundTrip:
    """Property: label(scale(p)) == label(p) over the whole grid."""

    @given(scale=_scales, grid=_grids)
    @settings(max_examples=200, deadline=None)
    def test_label_round_trips_through_scaling(self, scale, grid):
        g = Geometry("prop", 1024, 65536, interval_scale=scale,
                     paper_intervals=grid)
        for p in g.paper_intervals:
            scaled = g.scaled_interval(p)
            assert g.nominal_interval(scaled) == p
            assert g.interval_label_for(scaled) == interval_label(p)

    @given(scale=_scales, grid=_grids)
    @settings(max_examples=200, deadline=None)
    def test_scaled_grid_stays_injective(self, scale, grid):
        """Distinct nominal points never share a scaled value."""
        g = Geometry("prop", 1024, 65536, interval_scale=scale,
                     paper_intervals=grid)
        scaled = [cycles for _, cycles in g.interval_grid()]
        assert len(set(scaled)) == len(scaled)
        assert scaled == sorted(scaled)
        assert all(s >= 1 for s in scaled)

    def test_collapsing_scale_example(self):
        """The documented failure mode: tiny scales collapse the grid."""
        g = Geometry("tiny", 1024, 65536, interval_scale=1e-9)
        labels = [g.interval_label_for(s) for _, s in g.interval_grid()]
        assert labels == ["64K", "256K", "1M", "4M"]


class TestBuildL2:
    def test_none_protection_builds_plain_cache(self):
        l2 = build_l2(SCALED_GEOMETRY, None)
        assert type(l2) is SetAssociativeCache

    def test_protection_builds_protected_l2(self):
        l2 = build_l2(
            SCALED_GEOMETRY,
            ProtectionConfig(cleaning_interval=1 << 20, ecc_entries_per_set=1),
        )
        assert isinstance(l2, ProtectedL2)
        assert l2.cleaning is not None
        assert l2.ecc_array is not None

    def test_interval_is_scaled(self):
        l2 = build_l2(
            SCALED_GEOMETRY,
            ProtectionConfig(cleaning_interval=1 << 20, ecc_entries_per_set=None),
        )
        assert l2.cleaning.interval_cycles == (1 << 20) // 32

    def test_cleaning_disabled_when_none(self):
        l2 = build_l2(
            SCALED_GEOMETRY,
            ProtectionConfig(cleaning_interval=None, ecc_entries_per_set=1),
        )
        assert l2.cleaning is None


class TestRunRefs:
    def test_baseline_run_produces_sane_metrics(self):
        out = run_refs("swim", None, FAST)
        assert out.refs == FAST.n_refs
        assert 0.0 <= out.dirty_fraction <= 1.0
        assert out.dirty_fraction <= out.peak_dirty_fraction
        assert 0.0 <= out.writeback_fraction
        assert out.cycles > FAST.n_refs  # gaps advance the clock further

    def test_split_sums_to_total(self):
        protection = ProtectionConfig(
            cleaning_interval=1 << 20, ecc_entries_per_set=1
        )
        out = run_refs("mesa", protection, FAST)
        assert sum(out.writeback_split.values()) == pytest.approx(
            out.writeback_fraction, abs=1e-9
        )

    def test_baseline_has_no_cleaning_or_ecc_traffic(self):
        out = run_refs("mesa", None, FAST)
        assert out.writeback_split["Clean-WB"] == 0.0
        assert out.writeback_split["ECC-WB"] == 0.0

    def test_deterministic(self):
        a = run_refs("parser", None, FAST)
        b = run_refs("parser", None, FAST)
        assert a.dirty_fraction == b.dirty_fraction
        assert a.writeback_fraction == b.writeback_fraction

    def test_seed_changes_results(self):
        a = run_refs("mcf", None, FAST)
        b = run_refs("mcf", None, RunConfig(n_refs=12_000, warmup_refs=4_000,
                                            seed=99))
        assert a.dirty_fraction != b.dirty_fraction

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            run_refs("gcc", None, FAST)


class TestSchemeEffects:
    """The paper's qualitative claims, on a fast configuration."""

    def test_cleaning_reduces_dirty_fraction(self):
        base = run_refs("mesa", None, FAST)
        cleaned = run_refs(
            "mesa",
            ProtectionConfig(cleaning_interval=1 << 18,
                             ecc_entries_per_set=None),
            FAST,
        )
        assert cleaned.dirty_fraction < base.dirty_fraction

    def test_smaller_interval_cleans_more(self):
        small = run_refs(
            "mesa",
            ProtectionConfig(cleaning_interval=1 << 16,
                             ecc_entries_per_set=None),
            FAST,
        )
        large = run_refs(
            "mesa",
            ProtectionConfig(cleaning_interval=1 << 22,
                             ecc_entries_per_set=None),
            FAST,
        )
        assert small.dirty_fraction < large.dirty_fraction

    def test_ecc_array_caps_dirty_fraction(self):
        """1 entry per set in a 4-way cache bounds dirty lines at 25%."""
        out = run_refs(
            "apsi",
            ProtectionConfig(cleaning_interval=1 << 20,
                             ecc_entries_per_set=1),
            FAST,
        )
        assert out.peak_dirty_fraction <= 0.25 + 1e-9


class TestRunIpc:
    def test_ipc_in_sane_range(self):
        out = run_ipc("mesa", None, FAST, n_insts=20_000)
        assert 0.01 < out.ipc < 4.0

    def test_result_counts(self):
        out = run_ipc("mesa", None, FAST, n_insts=20_000)
        assert out.result.instructions == 20_000
        assert out.result.loads > 0
        assert out.result.stores > 0
        assert out.result.branches > 0

    def test_protected_l2_slightly_slower(self):
        org = run_ipc("mesa", None, FAST, n_insts=30_000)
        ours = run_ipc(
            "mesa",
            ProtectionConfig(cleaning_interval=1 << 20,
                             ecc_entries_per_set=1),
            FAST,
            n_insts=30_000,
        )
        # Extra write-backs cannot make the machine faster; allow noise.
        assert ours.ipc <= org.ipc * 1.02
