"""Tests for the multi-seed statistics helpers."""

import math

import pytest

from repro.experiments import RunConfig
from repro.experiments.stats import (
    dirty_fraction_stats,
    multi_seed,
    summarize,
    writeback_fraction_stats,
)

FAST = RunConfig(n_refs=6_000, warmup_refs=2_000)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.std == pytest.approx(1.0)
        assert s.ci95 == pytest.approx(1.96 / math.sqrt(3))
        assert s.n == 3

    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.std == 0.0
        assert math.isinf(s.ci95)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_constant_sample(self):
        s = summarize([2.0] * 10)
        assert s.std == 0.0
        assert s.ci95 == 0.0


class TestMultiSeed:
    def test_dirty_stats_across_seeds(self):
        s = dirty_fraction_stats("mcf", None, FAST, seeds=(0, 1, 2))
        assert s.n == 3
        assert 0.0 <= s.mean <= 1.0
        # mcf's residency is workload-stable: seeds agree closely.
        assert s.std < 0.1

    def test_writeback_stats(self):
        s = writeback_fraction_stats("swim", None, FAST, seeds=(0, 1))
        assert s.n == 2
        assert s.mean >= 0.0

    def test_metric_callable(self):
        s = multi_seed(
            lambda out: out.l2_miss_rate, "swim", None, FAST, seeds=(0, 1)
        )
        assert 0.0 <= s.mean <= 1.0

    def test_values_preserved(self):
        s = dirty_fraction_stats("swim", None, FAST, seeds=(3, 4))
        assert len(s.values) == 2
        assert s.mean == pytest.approx(sum(s.values) / 2)
