"""The typed facade: requests, keys, parity with the CLI, errors."""

import json

import pytest

from repro import api
from repro.cli import main
from repro.experiments.pool import Cell, SweepEngine, cell_key
from repro.experiments.runner import RunConfig
from repro.reliability import CampaignConfig, StoppingRule, run_campaign


def _engine():
    return SweepEngine(jobs=1, cache=False, progress=False)


QUICK = dict(refs=3000, warmup=1000)


class TestRequestPlumbing:
    def test_from_dict_round_trips(self):
        request = api.RunRequest(benchmark="swim", **QUICK)
        rebuilt = api.request_from_dict(api.RunRequest, request.as_dict())
        assert rebuilt == request

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(api.ReproError, match="unknown RunRequest"):
            api.request_from_dict(api.RunRequest, {"benchmrk": "swim"})

    def test_from_dict_converts_json_lists_to_tuples(self):
        request = api.request_from_dict(
            api.ReliabilityRequest, {"schemes": ["non-uniform"]}
        )
        assert request.schemes == ("non-uniform",)

    def test_run_key_is_the_sweep_cache_key(self):
        # Service-level dedupe and the on-disk result cache must agree
        # about what "the same run" means.
        request = api.RunRequest(benchmark="swim", **QUICK)
        cell = Cell(
            "swim",
            request.protection_config(),
            RunConfig(n_refs=3000, warmup_refs=1000, seed=0),
        )
        assert api.request_key("run", request) == cell_key(cell)

    def test_keys_separate_kinds_and_payloads(self):
        run_key = api.request_key("run", api.RunRequest(**QUICK))
        assert run_key != api.request_key("ipc", api.IpcRequest(**QUICK))
        assert run_key != api.request_key(
            "run", api.RunRequest(benchmark="swim", **QUICK)
        )

    def test_execute_dispatches_by_kind(self):
        response = api.execute("area", api.AreaRequest())
        assert isinstance(response, api.AreaResponse)
        with pytest.raises(api.ReproError, match="unknown request kind"):
            api.execute("sweep-the-world", api.AreaRequest())
        with pytest.raises(api.ReproError, match="must be RunRequest"):
            api.execute("run", api.AreaRequest())


class TestFacadeResults:
    def test_run_matches_cli_json(self, capsys):
        rc = main([
            "run", "--benchmark", "swim", "--refs", "3000",
            "--warmup", "1000", "--no-cache", "--format", "json",
        ])
        assert rc == 0
        cli_doc = json.loads(capsys.readouterr().out)
        direct = api.run(
            api.RunRequest(benchmark="swim", **QUICK), engine=_engine()
        )
        assert cli_doc == json.loads(json.dumps(direct.as_dict()))

    def test_ipc_matches_cli_json(self, capsys):
        rc = main([
            "ipc", "--benchmark", "swim", "--insts", "4000",
            "--refs", "3000", "--warmup", "1000", "--no-cache",
            "--format", "json",
        ])
        assert rc == 0
        cli_doc = json.loads(capsys.readouterr().out)
        direct = api.ipc(
            api.IpcRequest(benchmark="swim", insts=4000, **QUICK),
            engine=_engine(),
        )
        assert cli_doc == json.loads(json.dumps(direct.as_dict()))
        assert cli_doc["ipc_loss_pct"] == pytest.approx(
            100 * (direct.org_ipc - direct.ours_ipc) / direct.org_ipc
        )

    def test_area_matches_cli_json(self, capsys):
        assert main(["area", "--format", "json"]) == 0
        cli_doc = json.loads(capsys.readouterr().out)
        direct = api.area(api.AreaRequest())
        assert cli_doc == json.loads(json.dumps(direct.as_dict()))
        assert direct.reduction == pytest.approx(0.5909, abs=1e-3)

    def test_reliability_matches_engine_directly(self):
        request = api.ReliabilityRequest(
            trials=200, trials_per_shard=50, seed=3
        )
        response = api.reliability(request, engine=_engine())
        direct = run_campaign(
            request.campaign_config(), engine=_engine()
        )
        assert api.campaign_doc(response.result) == api.campaign_doc(direct)

    def test_reliability_progress_events(self):
        events = []
        api.reliability(
            api.ReliabilityRequest(trials=100, trials_per_shard=50),
            engine=_engine(),
            progress=events.append,
        )
        kinds = {event["type"] for event in events}
        assert "shard" in kinds and "round" in kinds
        rounds = [e for e in events if e["type"] == "round"]
        assert rounds[-1]["schemes"]["non-uniform"]["trials"] == 100
        # Round events carry the telemetry counters' point of view.
        counters = rounds[-1]["counters"]["metrics"]
        assert counters["campaign.non-uniform.trials"] == 100

    def test_inject_accepts_any_registered_codec(self):
        response = api.inject(
            api.InjectRequest(codec="interleaved-parity", trials=50)
        )
        assert response.trials == 50
        with pytest.raises(api.ReproError, match="unknown codec"):
            api.inject(api.InjectRequest(codec="turbo"))

    def test_figures_sections_are_structured(self):
        response = api.figures(api.FiguresRequest(fig="area"))
        [section] = response.sections
        assert section.area is not None
        assert section.area.reduction == pytest.approx(0.5909, abs=1e-3)
        doc = response.as_dict()
        assert doc["sections"][0]["area"]["reduction"] == section.area.reduction


class TestErrors:
    def test_unknown_benchmark(self):
        with pytest.raises(api.ReproError, match="unknown benchmark"):
            api.run(api.RunRequest(benchmark="gcc"))

    def test_missing_trace_file(self):
        with pytest.raises(api.ReproError, match="trace file not found"):
            api.run(api.RunRequest(trace="/no/such/trace.bin"))

    def test_bad_run_shape(self):
        with pytest.raises(api.ReproError, match="refs must be positive"):
            api.run(api.RunRequest(refs=0))

    def test_bad_campaign_shape_is_repro_error(self):
        with pytest.raises(api.ReproError):
            api.reliability(
                api.ReliabilityRequest(schemes=("voltage-scaling",))
            )

    def test_unknown_study_and_figure(self):
        with pytest.raises(api.ReproError, match="unknown study"):
            api.ablate(api.AblateRequest(study="voltage"))
        with pytest.raises(api.ReproError, match="unknown figure"):
            api.figures(api.FiguresRequest(fig="99"))

    def test_cli_maps_repro_error_to_exit_2(self, capsys):
        rc = main(["run", "--trace", "/no/such/trace.bin"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "trace file not found" in err


class TestVariantsAndEnums:
    def test_unknown_variant_rejected_at_construction(self):
        with pytest.raises(api.ReproError, match="available variants:"):
            api.RunRequest(variant="bogus")
        with pytest.raises(api.ReproError, match="available variants:"):
            api.IpcRequest(variant="bogus")
        with pytest.raises(api.ReproError, match="available variants:"):
            api.ReliabilityRequest(variant="bogus")

    def test_silent_write_run_counts_and_standard_zero(self):
        config = dict(refs=6000, warmup=1500, benchmark="swim")
        ours = api.run(api.RunRequest(variant="silent-write", **config))
        std = api.run(api.RunRequest(**config))
        assert ours.silent_writes > 0
        assert ours.elided_ecc_updates == ours.silent_writes
        assert std.silent_writes == 0 and std.wb_bytes_raw == 0
        # Elision removes write-backs, never adds them.
        assert ours.writeback_fraction <= std.writeback_fraction

    def test_wb_compress_run_reports_byte_reduction(self):
        out = api.run(api.RunRequest(
            benchmark="swim", variant="wb-compress",
            refs=6000, warmup=1500,
        ))
        assert 0 < out.wb_bytes_compressed < out.wb_bytes_raw

    def test_variant_changes_request_key(self):
        std = api.request_key("run", api.RunRequest(benchmark="swim"))
        sw = api.request_key(
            "run", api.RunRequest(benchmark="swim", variant="silent-write")
        )
        assert std != sw

    def test_kind_enums_renders_registries(self):
        from repro.api.dispatch import kind_enums
        from repro.core.policy import available_variants

        enums = kind_enums("run")
        assert enums["variant"] == available_variants()
        rel = kind_enums("reliability")
        assert "nominal" in rel["scenario"]
        assert "secded" in rel["codec"]
        assert set(rel["schemes"]) >= {"non-uniform", "uniform-ecc"}

    def test_default_doc_carries_enums_but_keeps_fields_flat(self):
        doc = api.default_doc("run")
        assert doc["benchmark"] == "mesa"
        assert "silent-write" in doc["enums"]["variant"]
        # area has no enum-valued fields: no enums key at all.
        assert "enums" not in api.default_doc("area")
