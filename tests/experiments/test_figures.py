"""Tests for the figure drivers (fast configurations)."""

import pytest

from repro.experiments import (
    RunConfig,
    area_table,
    figure1,
    figure3_4,
    figure5_6,
    figure7,
    figure8,
    table1,
)

FAST = RunConfig(n_refs=10_000, warmup_refs=3_000)


class TestTable1:
    def test_renders_configuration(self):
        text = table1()
        assert "64-entry RUU" in text
        assert "4 instructions per cycle" in text


class TestFigure1:
    def test_all_benchmarks_present(self):
        f1 = figure1(FAST)
        assert len(f1) == 14
        assert all(0.0 <= v <= 100.0 for v in f1.values())


class TestFigure3_4:
    def test_rows_and_columns(self):
        f3 = figure3_4("fp", FAST)
        assert len(f3) == 7
        for row in f3.values():
            assert set(row) == {"64K", "256K", "1M", "4M", "org"}

    def test_monotone_in_interval_on_average(self):
        """Smaller cleaning intervals leave fewer dirty lines (averaged)."""
        f4 = figure3_4("int", FAST)
        cols = ["64K", "256K", "1M", "4M", "org"]
        avgs = [
            sum(row[c] for row in f4.values()) / len(f4) for c in cols
        ]
        assert all(a <= b + 1e-9 for a, b in zip(avgs, avgs[1:]))

    def test_bad_suite_rejected(self):
        with pytest.raises(ValueError):
            figure3_4("mixed", FAST)


class TestFigure5_6:
    def test_shape(self):
        f5 = figure5_6("fp", FAST)
        assert len(f5) == 7
        for row in f5.values():
            assert set(row) == {"64K", "256K", "1M", "4M", "org"}
            assert all(v >= 0 for v in row.values())

    def test_cleaning_never_reduces_traffic_much(self):
        """Write-back traffic with cleaning >= org - noise, per benchmark."""
        f6 = figure5_6("int", FAST)
        for name, row in f6.items():
            assert row["64K"] >= row["org"] - 0.5, name


class TestFigure7_8:
    def test_fig7_under_structural_cap(self):
        """1 ECC entry per set of 4 ways -> dirty fraction <= 25%."""
        f7 = figure7(FAST)
        assert len(f7) == 14
        for name, pct in f7.items():
            assert pct <= 25.0 + 1e-6, name

    def test_fig8_split_categories(self):
        f8 = figure8(FAST)
        assert len(f8) == 14
        for row in f8.values():
            assert set(row) == {"WB", "Clean-WB", "ECC-WB", "total"}
            assert row["total"] == pytest.approx(
                row["WB"] + row["Clean-WB"] + row["ECC-WB"], abs=1e-9
            )


class TestAreaTable:
    def test_paper_numbers(self):
        conv, ours, red = area_table()
        assert conv.total_kib == 132.0
        assert ours.total_kib == 54.0
        assert red == pytest.approx(0.59, abs=0.005)

    def test_bigger_ecc_array_reduces_savings(self):
        _, _, red1 = area_table(ecc_entries_per_set=1)
        _, _, red2 = area_table(ecc_entries_per_set=2)
        assert red2 < red1
