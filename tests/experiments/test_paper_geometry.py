"""Spot checks on the paper's exact Table-1 geometry.

The figure benches run the scaled geometry for speed; these tests make
sure the full 1MB/4-way machine works end to end and that its
geometry-derived quantities match the paper exactly.
"""

import pytest

from repro.core import ProtectionConfig
from repro.experiments import PAPER_GEOMETRY, RunConfig, build_l2, run_refs
from repro.experiments.runner import interval_label


class TestGeometryNumbers:
    def test_l2_line_and_set_counts(self):
        cfg = PAPER_GEOMETRY.hierarchy_config().l2
        assert cfg.n_lines == 16384  # the paper: "a total of [16K] lines"
        assert cfg.n_sets == 4096  # "there are 4K cache sets"

    def test_written_bits_are_16k(self):
        cfg = PAPER_GEOMETRY.hierarchy_config().l2
        assert cfg.n_lines == 16 * 1024  # 16K bits = 2KB of written bits

    def test_ecc_array_entry_count(self):
        """4K ECC entries, same as the number of sets (paper §5.2)."""
        l2 = build_l2(
            PAPER_GEOMETRY,
            ProtectionConfig(cleaning_interval=1 << 20,
                             ecc_entries_per_set=1),
        )
        assert l2.ecc_array.total_entries == 4096

    def test_interval_unscaled(self):
        l2 = build_l2(
            PAPER_GEOMETRY,
            ProtectionConfig(cleaning_interval=1 << 20,
                             ecc_entries_per_set=None),
        )
        assert l2.cleaning.interval_cycles == 1 << 20
        # The latch steps every 256 cycles: 1M / 4K sets (paper's "e.g."
        # figure for the per-set check cadence).
        assert l2.cleaning.cycles_per_set_check == 256.0

    def test_interval_grid_is_64k_to_4m(self):
        labels = [label for label, cycles in PAPER_GEOMETRY.interval_grid()]
        assert labels == ["64K", "256K", "1M", "4M"]
        assert PAPER_GEOMETRY.scaled_interval(65536) == 65536


class TestEndToEndRun:
    """One short full-geometry run; mostly a does-it-work check."""

    CONFIG = RunConfig(
        geometry=PAPER_GEOMETRY, n_refs=20_000, warmup_refs=5_000
    )

    def test_baseline_run(self):
        out = run_refs("swim", None, self.CONFIG)
        assert out.refs == 20_000
        assert 0.0 <= out.dirty_fraction <= 1.0

    def test_protected_run_respects_cap(self):
        out = run_refs(
            "mesa",
            ProtectionConfig(cleaning_interval=65536,
                             ecc_entries_per_set=1),
            self.CONFIG,
        )
        assert out.peak_dirty_fraction <= 0.25 + 1e-9
