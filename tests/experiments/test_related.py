"""Tests for the related-work coverage experiments."""

import pytest

from repro.experiments import (
    RunConfig,
    icr_coverage,
    kim_somani_coverage,
    related_work_table,
)
from repro.experiments.related import hotline_area_kib

FAST = RunConfig(n_refs=8_000, warmup_refs=0)


class TestHotlineArea:
    def test_area_scales_with_entries(self):
        assert hotline_area_kib(2048) == 2 * hotline_area_kib(1024)

    def test_per_entry_cost(self):
        # 64 ECC bits + 32 tag bits = 12 bytes per 64B-line entry.
        assert hotline_area_kib(1024) == pytest.approx(12.0)


class TestKimSomani:
    def test_points_per_grid_entry(self):
        pts = kim_somani_coverage("mesa", entries_grid=(64, 256),
                                  config=FAST)
        assert len(pts) == 2
        assert pts[0].scheme == "kim-somani"

    def test_coverage_monotone_in_entries(self):
        pts = kim_somani_coverage("parser", entries_grid=(16, 1024),
                                  config=FAST)
        assert pts[0].coverage_pct <= pts[1].coverage_pct + 1e-9

    def test_pointer_chase_defeats_hot_lines(self):
        (pt,) = kim_somani_coverage("mcf", entries_grid=(256,), config=FAST)
        assert pt.coverage_pct < 60.0


class TestIcr:
    def test_coverage_point_shape(self):
        pt = icr_coverage("mesa", config=FAST)
        assert pt.scheme == "icr"
        assert 0.0 <= pt.coverage_pct <= 100.0
        assert pt.area_kib == 0.0

    def test_resident_benchmark_gets_some_replication(self):
        pt = icr_coverage("mesa", config=FAST, dead_interval=256)
        assert pt.coverage_pct > 5.0


class TestTable:
    def test_ours_is_total_coverage(self):
        res = related_work_table(benchmarks=["swim"], config=FAST)
        assert res["swim"]["ours"] == 100.0

    def test_columns(self):
        res = related_work_table(benchmarks=["mesa"], config=FAST)
        assert set(res["mesa"]) == {"kim-somani@1K", "icr", "ours"}
