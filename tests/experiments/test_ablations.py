"""Tests for the ablation studies."""

import pytest

from repro.experiments import (
    RunConfig,
    ablate_best_interval,
    ablate_eager_writeback,
    ablate_ecc_entries,
    ablate_written_bit,
)

FAST = RunConfig(n_refs=10_000, warmup_refs=3_000)
SUBSET = ["mesa", "swim"]


class TestEccEntries:
    def test_area_grows_with_entries(self):
        pts = ablate_ecc_entries(SUBSET, entries_grid=(1, 2), config=FAST)
        assert pts[0].area_kib < pts[1].area_kib
        assert pts[0].area_kib == 54.0  # the paper's configuration

    def test_more_entries_less_ecc_wb(self):
        pts = ablate_ecc_entries(
            ["parser"], entries_grid=(1, 4), config=FAST
        )
        assert pts[1].ecc_wb_pct <= pts[0].ecc_wb_pct

    def test_points_carry_all_metrics(self):
        (pt,) = ablate_ecc_entries(["mesa"], entries_grid=(1,), config=FAST)
        assert pt.entries_per_set == 1
        assert 0 <= pt.dirty_pct <= 100
        assert pt.total_wb_pct >= pt.ecc_wb_pct


class TestBestInterval:
    def test_rows_have_expected_keys(self):
        res = ablate_best_interval(FAST, benchmarks=SUBSET)
        for row in res.values():
            assert set(row) == {"interval", "dirty %", "wb %", "org dirty %"}

    def test_chosen_config_never_dirtier_than_org(self):
        res = ablate_best_interval(FAST, benchmarks=SUBSET)
        for name, row in res.items():
            assert row["dirty %"] <= row["org dirty %"] + 1e-9, name

    def test_generous_budget_allows_aggressive_cleaning(self):
        tight = ablate_best_interval(
            FAST, traffic_budget_pct=0.0, benchmarks=["mesa"]
        )
        loose = ablate_best_interval(
            FAST, traffic_budget_pct=50.0, benchmarks=["mesa"]
        )
        assert loose["mesa"]["dirty %"] <= tight["mesa"]["dirty %"] + 1e-9


class TestEagerWriteback:
    def test_both_reduce_dirty_lines(self):
        res = ablate_eager_writeback(FAST, benchmarks=["mesa"])
        row = res["mesa"]
        assert row["clean dirty %"] < 60.0
        assert row["eager dirty %"] < 60.0

    def test_keys(self):
        res = ablate_eager_writeback(FAST, benchmarks=["swim"])
        assert set(res["swim"]) == {
            "eager dirty %", "eager wb %", "clean dirty %", "clean wb %",
        }


class TestWrittenBit:
    def test_without_bit_cleans_at_least_as_hard(self):
        """Dropping the second chance can only clean more, not less."""
        res = ablate_written_bit(
            RunConfig(n_refs=30_000, warmup_refs=10_000),
            benchmarks=["parser"],
        )
        row = res["parser"]
        assert row["without dirty %"] <= row["with dirty %"] + 0.5

    def test_keys(self):
        res = ablate_written_bit(FAST, benchmarks=["swim"])
        assert set(res["swim"]) == {
            "with dirty %", "with wb %", "without dirty %", "without wb %",
        }
