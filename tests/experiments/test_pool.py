"""Tests for the parallel sweep engine and its result cache."""

import dataclasses

import pytest

from repro.core import ProtectionConfig
from repro.experiments import (
    Cell,
    ResultCache,
    RunConfig,
    SweepEngine,
    cell_key,
    interval_sweep,
    run_refs,
)
from repro.experiments import pool as pool_mod
from repro.experiments.figures import figure8, ipc_loss

FAST = RunConfig(n_refs=6_000, warmup_refs=2_000)
PROT = ProtectionConfig(cleaning_interval=1 << 20, ecc_entries_per_set=1)


class TestCellKey:
    def test_key_is_stable(self):
        a = Cell("mesa", PROT, FAST)
        b = Cell("mesa", ProtectionConfig(1 << 20, 1), FAST)
        assert cell_key(a) == cell_key(b)

    def test_key_covers_benchmark(self):
        assert cell_key(Cell("mesa", PROT, FAST)) != cell_key(
            Cell("swim", PROT, FAST)
        )

    def test_key_covers_protection(self):
        unconstrained = ProtectionConfig(1 << 20, None)
        assert cell_key(Cell("mesa", PROT, FAST)) != cell_key(
            Cell("mesa", unconstrained, FAST)
        )
        assert cell_key(Cell("mesa", PROT, FAST)) != cell_key(
            Cell("mesa", None, FAST)
        )

    def test_key_covers_run_config(self):
        other = dataclasses.replace(FAST, seed=7)
        assert cell_key(Cell("mesa", PROT, FAST)) != cell_key(
            Cell("mesa", PROT, other)
        )

    def test_key_covers_mode_and_variant(self):
        base = cell_key(Cell("mesa", PROT, FAST))
        assert base != cell_key(Cell("mesa", PROT, FAST, mode="ipc"))
        assert base != cell_key(Cell("mesa", PROT, FAST, variant="decay"))

    def test_key_covers_code_version(self):
        cell = Cell("mesa", PROT, FAST)
        assert cell_key(cell, version="aaaa") != cell_key(cell, version="bbbb")

    def test_bad_mode_and_variant_rejected(self):
        with pytest.raises(ValueError):
            Cell("mesa", PROT, FAST, mode="bogus")
        with pytest.raises(ValueError):
            Cell("mesa", PROT, FAST, variant="bogus")


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("cd" * 32) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, [1, 2, 3])
        cache.path(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("12" * 32, 1)
        cache.put("34" * 32, 2)
        assert cache.clear() == 2
        assert len(cache) == 0


class TestEngineSequential:
    def test_matches_direct_run_refs(self):
        direct = run_refs("mesa", PROT, FAST)
        pooled = SweepEngine().run_refs("mesa", PROT, FAST)
        assert direct == pooled

    def test_outputs_in_submission_order(self):
        cells = [Cell(b, None, FAST) for b in ("swim", "mesa", "gap")]
        outputs = SweepEngine().run_cells(cells)
        assert [o.benchmark for o in outputs] == ["swim", "mesa", "gap"]

    def test_empty_grid(self):
        assert SweepEngine().run_cells([]) == []

    def test_stats_accounting(self):
        engine = SweepEngine()
        engine.run_cells([Cell("mesa", None, FAST)])
        assert engine.stats.cells == 1
        assert engine.stats.executed == 1
        assert engine.stats.cached == 0
        assert engine.stats.refs == FAST.n_refs
        assert engine.stats.refs_per_s > 0
        assert "1 cells" in engine.summary()


class TestEngineParallel:
    def test_jobs4_reproduces_sequential_bit_for_bit(self):
        """The acceptance-criterion determinism check at --jobs 4."""
        seq = interval_sweep("fp", FAST)
        par = interval_sweep("fp", FAST, engine=SweepEngine(jobs=4))
        assert seq.keys() == par.keys()
        for bench, row in seq.items():
            assert row.keys() == par[bench].keys()
            for label, res in row.items():
                assert res == par[bench][label], (bench, label)

    def test_parallel_figure8_matches(self):
        seq = figure8(FAST)
        par = figure8(FAST, engine=SweepEngine(jobs=2))
        assert seq == par

    def test_parallel_ipc_matches(self):
        seq = ipc_loss(FAST, suite="fp", n_insts=3_000)
        par = ipc_loss(FAST, suite="fp", n_insts=3_000,
                       engine=SweepEngine(jobs=2))
        assert seq == par

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepEngine(jobs=0)


class TestEngineCaching:
    def test_second_invocation_served_from_cache(self, tmp_path):
        first = SweepEngine(cache=tmp_path)
        a = first.run_refs("mesa", PROT, FAST)
        assert first.stats.executed == 1

        second = SweepEngine(cache=tmp_path)
        b = second.run_refs("mesa", PROT, FAST)
        assert second.stats.cached == 1
        assert second.stats.executed == 0
        assert a == b

    def test_cache_hit_never_simulates(self, tmp_path, monkeypatch):
        SweepEngine(cache=tmp_path).run_refs("mesa", PROT, FAST)

        def boom(cell):
            raise AssertionError("cache hit should not simulate")

        monkeypatch.setattr(pool_mod, "execute_cell", boom)
        SweepEngine(cache=tmp_path).run_refs("mesa", PROT, FAST)

    def test_config_change_misses(self, tmp_path):
        engine = SweepEngine(cache=tmp_path)
        engine.run_refs("mesa", PROT, FAST)
        engine.run_refs("mesa", PROT, dataclasses.replace(FAST, seed=3))
        assert engine.stats.executed == 2
        assert engine.stats.cached == 0

    def test_no_cache_engine_reruns(self, tmp_path):
        engine = SweepEngine(cache=None)
        engine.run_refs("mesa", PROT, FAST)
        engine.run_refs("mesa", PROT, FAST)
        assert engine.stats.executed == 2


class TestVariants:
    def test_eager_variant_matches_reference(self):
        from repro.cache.hierarchy import MemoryHierarchy
        from repro.core.eager import EagerL2
        from repro.experiments.runner import run_refs_with_hierarchy

        hier_cfg = FAST.geometry.hierarchy_config()
        l2 = EagerL2(hier_cfg.l2, seed=FAST.seed)
        direct = run_refs_with_hierarchy(
            "mesa", MemoryHierarchy(config=hier_cfg, l2=l2), FAST
        )
        pooled = SweepEngine().run(Cell("mesa", None, FAST, variant="eager"))
        assert direct.dirty_fraction == pooled.dirty_fraction
        assert direct.writeback_fraction == pooled.writeback_fraction

    def test_variant_without_interval_rejected(self):
        with pytest.raises(ValueError):
            SweepEngine().run(Cell("mesa", None, FAST, variant="decay"))
