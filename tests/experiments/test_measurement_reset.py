"""Regression tests: warm-up traffic must not pollute measured stats."""

from repro.cache.hierarchy import MemoryHierarchy
from repro.core import ProtectedL2, ProtectionConfig
from repro.experiments import RunConfig, SCALED_GEOMETRY, run_refs
from repro.experiments.runner import _reset_measurement, build_l2


def make_hierarchy(protection=ProtectionConfig(cleaning_interval=4096,
                                               ecc_entries_per_set=1)):
    l2 = build_l2(SCALED_GEOMETRY, protection)
    return MemoryHierarchy(config=SCALED_GEOMETRY.hierarchy_config(), l2=l2)


def warm(hierarchy, n=3000, until_cycle=50_000):
    """Drive mixed warm-up traffic that touches every stats holder."""
    cycle = 0
    for i in range(n):
        cycle += max(1, until_cycle // n)
        addr = (i * 1664525 + 1013904223) % (1 << 22) & ~7
        if i % 3 == 0:
            hierarchy.store(addr, cycle)
        else:
            hierarchy.load(addr, cycle)
    return cycle


class TestResetMeasurement:
    def test_write_buffer_stats_reset(self):
        hierarchy = make_hierarchy()
        cycle = warm(hierarchy)
        assert hierarchy.write_buffer.stats.stores_seen > 0
        _reset_measurement(hierarchy, cycle)
        wb = hierarchy.write_buffer.stats
        assert wb.inserts == 0
        assert wb.coalesced == 0
        assert wb.drains == 0

    def test_mshr_stats_reset(self):
        hierarchy = make_hierarchy()
        cycle = warm(hierarchy)
        assert hierarchy.l1d_mshr.stats.allocations > 0
        _reset_measurement(hierarchy, cycle)
        for mshr in (hierarchy.l1d_mshr, hierarchy.l1i_mshr):
            assert mshr.stats.allocations == 0
            assert mshr.stats.merges == 0
            assert mshr.stats.overflows == 0

    def test_ecc_array_and_cleaning_stats_reset(self):
        hierarchy = make_hierarchy()
        cycle = warm(hierarchy)
        l2 = hierarchy.l2
        assert l2.ecc_array.stats.allocations > 0
        assert l2.cleaning.checks > 0
        _reset_measurement(hierarchy, cycle)
        assert l2.ecc_array.stats.allocations == 0
        assert l2.ecc_array.stats.releases == 0
        assert l2.ecc_array.stats.evictions == 0
        assert l2.cleaning.checks == 0

    def test_memory_stats_fully_reset(self):
        hierarchy = make_hierarchy()
        cycle = warm(hierarchy)
        _reset_measurement(hierarchy, cycle)
        mem = hierarchy.memory.stats
        assert mem.reads == 0
        assert mem.writes == 0
        assert mem.bytes_read == 0
        assert mem.bytes_written == 0
        assert mem.busy_cycles == 0
        assert mem.read_queue_cycles == 0

    def test_reset_keeps_cache_contents(self):
        hierarchy = make_hierarchy()
        cycle = warm(hierarchy)
        resident = sum(
            1 for ways in hierarchy.l2.sets for l in ways if l.valid
        )
        assert resident > 0
        _reset_measurement(hierarchy, cycle)
        assert resident == sum(
            1 for ways in hierarchy.l2.sets for l in ways if l.valid
        )

    def test_measured_window_write_buffer_accounting_is_exact(self):
        """Every measured store is exactly one buffer event — warm-up
        stores must not leak into the ablation's coalescing rate."""
        hierarchy = make_hierarchy(None)
        from repro.experiments.runner import run_refs_with_hierarchy

        config = RunConfig(n_refs=8_000, warmup_refs=6_000)
        run_refs_with_hierarchy("mesa", hierarchy, config)
        assert (
            hierarchy.write_buffer.stats.stores_seen
            == hierarchy.stats.stores
        )


class TestRegistryResetParity:
    """The registry boundary must behave exactly like PR 1's manual reset."""

    @staticmethod
    def _manual_reset(hierarchy, cycle):
        """PR 1's hand-rolled ``_reset_measurement`` body, verbatim."""
        from repro.cache.hierarchy import HierarchyStats
        from repro.cache.mainmem import MemoryStats
        from repro.cache.mshr import MshrStats
        from repro.cache.stats import CacheStats
        from repro.cache.write_buffer import WriteBufferStats
        from repro.core.ecc_array import EccArrayStats

        hierarchy.l1d.stats = CacheStats()
        hierarchy.l1i.stats = CacheStats()
        hierarchy.stats = HierarchyStats()
        hierarchy.memory.stats = MemoryStats()
        hierarchy.write_buffer.stats = WriteBufferStats()
        hierarchy.l1d_mshr.stats = MshrStats()
        hierarchy.l1i_mshr.stats = MshrStats()
        for cache in hierarchy.levels:
            cache.stats = CacheStats()
            ecc_array = getattr(cache, "ecc_array", None)
            if ecc_array is not None:
                ecc_array.stats = EccArrayStats()
            cleaning = getattr(cache, "cleaning", None)
            if cleaning is not None:
                cleaning.checks = 0
            for ways in cache.sets:
                for line in ways:
                    if line.valid and line.dirty and line.dirty_since < cycle:
                        line.dirty_since = cycle
            cache.dirty.reset(cycle, cache.dirty.dirty_count)

    def test_registry_reset_matches_manual_reset(self):
        """Twin hierarchies, one per reset style, stay bit-identical."""
        manual, registry = make_hierarchy(), make_hierarchy()
        cycle_m = warm(manual)
        cycle_r = warm(registry)
        assert cycle_m == cycle_r

        self._manual_reset(manual, cycle_m)
        _reset_measurement(registry, cycle_r)

        # Drive both through an identical measured window...
        warm(manual, n=2000, until_cycle=40_000)
        warm(registry, n=2000, until_cycle=40_000)

        # ...and compare every live counter, component by component.
        pairs = [
            (manual.stats, registry.stats),
            (manual.l1d.stats, registry.l1d.stats),
            (manual.l1i.stats, registry.l1i.stats),
            (manual.l2.stats, registry.l2.stats),
            (manual.memory.stats, registry.memory.stats),
            (manual.write_buffer.stats, registry.write_buffer.stats),
            (manual.l1d_mshr.stats, registry.l1d_mshr.stats),
            (manual.l1i_mshr.stats, registry.l1i_mshr.stats),
            (manual.l2.ecc_array.stats, registry.l2.ecc_array.stats),
        ]
        for a, b in pairs:
            assert a.as_dict() == b.as_dict()
        assert manual.l2.cleaning.checks == registry.l2.cleaning.checks
        assert manual.l2.dirty == registry.l2.dirty
        assert manual.l2.as_dict() == registry.l2.as_dict()

    def test_reset_is_idempotent(self):
        """A second reset at the same boundary is a no-op on the snapshot."""
        hierarchy = make_hierarchy()
        cycle = warm(hierarchy)
        _reset_measurement(hierarchy, cycle)
        first = hierarchy.snapshot()
        _reset_measurement(hierarchy, cycle)
        assert hierarchy.snapshot() == first

    def test_snapshot_after_reset_is_all_zero_counts(self):
        hierarchy = make_hierarchy()
        cycle = warm(hierarchy)
        _reset_measurement(hierarchy, cycle)
        snap = hierarchy.snapshot()
        for group in ("hierarchy", "memory", "write_buffer",
                      "l1d_mshr", "l1i_mshr"):
            for key, value in snap[group].items():
                if key == "occupancy":
                    continue  # contents survive the boundary by design
                assert value == 0, f"{group}.{key} = {value}"

    def test_snapshot_across_warmup_boundary_counts_only_measured(self):
        """Through the public run API: snapshots see the measured window."""
        from repro.experiments.runner import run_refs_with_hierarchy

        hierarchy = make_hierarchy(None)
        config = RunConfig(n_refs=4_000, warmup_refs=3_000)
        out = run_refs_with_hierarchy("mesa", hierarchy, config)
        assert out.snapshot is not None
        assert out.snapshot["hierarchy"]["loads_stores"] == 4_000
        assert out.snapshot["hierarchy"]["refs"] == out.refs


class TestDirtyEpisodeClamp:
    def test_warmup_episode_start_clamped_to_reset(self):
        hierarchy = make_hierarchy(None)
        l2 = hierarchy.l2
        l2.access(0x1000, is_write=True, cycle=100)
        line = l2.find_line(0x1000)
        assert line.dirty and line.dirty_since == 100

        _reset_measurement(hierarchy, 10_000)
        assert line.dirty_since == 10_000

        l2.flush(cycle=10_500)
        assert l2.stats.dirty_episodes == 1
        # 500 measured cycles, not the 10,400 including warm-up.
        assert l2.stats.dirty_episode_cycles == 500

    def test_mean_episode_bounded_by_measured_window(self):
        """With the clamp, no episode can be longer than the window."""
        config = RunConfig(n_refs=2_000, warmup_refs=30_000)
        out = run_refs(
            "mesa",
            ProtectionConfig(cleaning_interval=1 << 16,
                             ecc_entries_per_set=1),
            config,
        )
        assert out.mean_dirty_episode_cycles <= out.cycles
