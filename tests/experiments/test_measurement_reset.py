"""Regression tests: warm-up traffic must not pollute measured stats."""

from repro.cache.hierarchy import MemoryHierarchy
from repro.core import ProtectedL2, ProtectionConfig
from repro.experiments import RunConfig, SCALED_GEOMETRY, run_refs
from repro.experiments.runner import _reset_measurement, build_l2


def make_hierarchy(protection=ProtectionConfig(cleaning_interval=4096,
                                               ecc_entries_per_set=1)):
    l2 = build_l2(SCALED_GEOMETRY, protection)
    return MemoryHierarchy(config=SCALED_GEOMETRY.hierarchy_config(), l2=l2)


def warm(hierarchy, n=3000, until_cycle=50_000):
    """Drive mixed warm-up traffic that touches every stats holder."""
    cycle = 0
    for i in range(n):
        cycle += max(1, until_cycle // n)
        addr = (i * 1664525 + 1013904223) % (1 << 22) & ~7
        if i % 3 == 0:
            hierarchy.store(addr, cycle)
        else:
            hierarchy.load(addr, cycle)
    return cycle


class TestResetMeasurement:
    def test_write_buffer_stats_reset(self):
        hierarchy = make_hierarchy()
        cycle = warm(hierarchy)
        assert hierarchy.write_buffer.stats.stores_seen > 0
        _reset_measurement(hierarchy, cycle)
        wb = hierarchy.write_buffer.stats
        assert wb.inserts == 0
        assert wb.coalesced == 0
        assert wb.drains == 0

    def test_mshr_stats_reset(self):
        hierarchy = make_hierarchy()
        cycle = warm(hierarchy)
        assert hierarchy.l1d_mshr.stats.allocations > 0
        _reset_measurement(hierarchy, cycle)
        for mshr in (hierarchy.l1d_mshr, hierarchy.l1i_mshr):
            assert mshr.stats.allocations == 0
            assert mshr.stats.merges == 0
            assert mshr.stats.overflows == 0

    def test_ecc_array_and_cleaning_stats_reset(self):
        hierarchy = make_hierarchy()
        cycle = warm(hierarchy)
        l2 = hierarchy.l2
        assert l2.ecc_array.stats.allocations > 0
        assert l2.cleaning.checks > 0
        _reset_measurement(hierarchy, cycle)
        assert l2.ecc_array.stats.allocations == 0
        assert l2.ecc_array.stats.releases == 0
        assert l2.ecc_array.stats.evictions == 0
        assert l2.cleaning.checks == 0

    def test_memory_stats_fully_reset(self):
        hierarchy = make_hierarchy()
        cycle = warm(hierarchy)
        _reset_measurement(hierarchy, cycle)
        mem = hierarchy.memory.stats
        assert mem.reads == 0
        assert mem.writes == 0
        assert mem.bytes_read == 0
        assert mem.bytes_written == 0
        assert mem.busy_cycles == 0
        assert mem.read_queue_cycles == 0

    def test_reset_keeps_cache_contents(self):
        hierarchy = make_hierarchy()
        cycle = warm(hierarchy)
        resident = sum(
            1 for ways in hierarchy.l2.sets for l in ways if l.valid
        )
        assert resident > 0
        _reset_measurement(hierarchy, cycle)
        assert resident == sum(
            1 for ways in hierarchy.l2.sets for l in ways if l.valid
        )

    def test_measured_window_write_buffer_accounting_is_exact(self):
        """Every measured store is exactly one buffer event — warm-up
        stores must not leak into the ablation's coalescing rate."""
        hierarchy = make_hierarchy(None)
        from repro.experiments.runner import run_refs_with_hierarchy

        config = RunConfig(n_refs=8_000, warmup_refs=6_000)
        run_refs_with_hierarchy("mesa", hierarchy, config)
        assert (
            hierarchy.write_buffer.stats.stores_seen
            == hierarchy.stats.stores
        )


class TestDirtyEpisodeClamp:
    def test_warmup_episode_start_clamped_to_reset(self):
        hierarchy = make_hierarchy(None)
        l2 = hierarchy.l2
        l2.access(0x1000, is_write=True, cycle=100)
        line = l2.find_line(0x1000)
        assert line.dirty and line.dirty_since == 100

        _reset_measurement(hierarchy, 10_000)
        assert line.dirty_since == 10_000

        l2.flush(cycle=10_500)
        assert l2.stats.dirty_episodes == 1
        # 500 measured cycles, not the 10,400 including warm-up.
        assert l2.stats.dirty_episode_cycles == 500

    def test_mean_episode_bounded_by_measured_window(self):
        """With the clamp, no episode can be longer than the window."""
        config = RunConfig(n_refs=2_000, warmup_refs=30_000)
        out = run_refs(
            "mesa",
            ProtectionConfig(cleaning_interval=1 << 16,
                             ecc_entries_per_set=1),
            config,
        )
        assert out.mean_dirty_episode_cycles <= out.cycles
