"""Property tests for the out-of-order timing model's invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Inst, OoOCore, OpClass, ProcessorConfig
from repro.workloads import InstructionMixer, MixConfig
from repro.workloads.generators import MemRef
from tests.cpu.test_ooo import make_hierarchy


def random_stream(seed, n):
    """A deterministic random instruction stream via the mixer."""
    rng = random.Random(seed)
    refs = [
        MemRef(rng.random() < 0.3,
               rng.randrange(1 << 18) & ~7,
               rng.randint(0, 4))
        for _ in range(n)
    ]
    mixer = InstructionMixer(MixConfig(), seed=seed)
    return list(mixer.expand(refs))


class TestTimingInvariants:
    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_ipc_bounded_by_machine_width(self, seed):
        insts = random_stream(seed, 300)
        core = OoOCore(make_hierarchy())
        res = core.run(insts)
        assert res.ipc <= core.config.commit_width
        assert res.cycles >= len(insts) // core.config.commit_width

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_counts_partition_the_stream(self, seed):
        insts = random_stream(seed, 300)
        res = OoOCore(make_hierarchy()).run(insts)
        assert res.instructions == len(insts)
        n_loads = sum(1 for i in insts if i.op is OpClass.LOAD)
        n_stores = sum(1 for i in insts if i.op is OpClass.STORE)
        n_branches = sum(1 for i in insts if i.op is OpClass.BRANCH)
        assert res.loads == n_loads
        assert res.stores == n_stores
        assert res.branches == n_branches
        assert res.mispredicts <= res.branches

    @given(st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_deterministic(self, seed):
        insts = random_stream(seed, 200)
        a = OoOCore(make_hierarchy()).run(list(insts))
        b = OoOCore(make_hierarchy()).run(list(insts))
        assert a.cycles == b.cycles
        assert a.mispredicts == b.mispredicts

    @given(st.integers(0, 10**6))
    @settings(max_examples=6, deadline=None)
    def test_extra_memory_latency_never_speeds_up(self, seed):
        """A machine with slower memory cannot finish earlier."""
        from repro.cache import HierarchyConfig, MemoryHierarchy
        from repro.cache.mainmem import MemoryConfig
        from repro.cache.cache import CacheConfig, WritePolicy

        def hierarchy(lat):
            cfg = HierarchyConfig(
                l1i=CacheConfig("l1i", 4096, 4, 32,
                                write_policy=WritePolicy.WRITE_THROUGH,
                                write_allocate=False),
                l1d=CacheConfig("l1d", 4096, 4, 32,
                                write_policy=WritePolicy.WRITE_THROUGH,
                                write_allocate=False),
                l2=CacheConfig("l2", 32768, 4, 64, hit_latency=10),
                memory=MemoryConfig(latency_cycles=lat),
            )
            return MemoryHierarchy(config=cfg)

        insts = random_stream(seed, 250)
        fast = OoOCore(hierarchy(50)).run(list(insts))
        slow = OoOCore(hierarchy(400)).run(list(insts))
        assert slow.cycles >= fast.cycles

    def test_wider_machine_not_slower(self):
        insts = random_stream(7, 600)
        narrow = OoOCore(
            make_hierarchy(),
            config=ProcessorConfig(decode_width=1, issue_width=1,
                                   commit_width=1),
        ).run(list(insts))
        wide = OoOCore(make_hierarchy()).run(list(insts))
        assert wide.cycles <= narrow.cycles

    def test_avg_load_latency_at_least_hit_latency(self):
        insts = random_stream(11, 400)
        core = OoOCore(make_hierarchy())
        res = core.run(insts)
        if res.loads:
            assert res.avg_load_latency >= 1.0
