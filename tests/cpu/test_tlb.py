"""Tests for the TLB model."""

import pytest

from repro.cpu import Tlb, TlbConfig


class TestConfig:
    def test_table1_defaults_valid(self):
        Tlb(TlbConfig(entries=64, ways=4))
        Tlb(TlbConfig(entries=128, ways=4))

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            TlbConfig(entries=63, ways=4)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ValueError):
            TlbConfig(entries=12, ways=4)

    def test_rejects_non_pow2_page(self):
        with pytest.raises(ValueError):
            TlbConfig(page_bytes=5000)


class TestTranslate:
    def test_first_access_misses(self):
        tlb = Tlb(TlbConfig(entries=8, ways=2, miss_penalty=30))
        assert tlb.translate(0x1000) == 30

    def test_second_access_hits(self):
        tlb = Tlb(TlbConfig(entries=8, ways=2, miss_penalty=30))
        tlb.translate(0x1000)
        assert tlb.translate(0x1ABC) == 0  # same 4K page

    def test_different_pages_differ(self):
        tlb = Tlb(TlbConfig(entries=8, ways=2))
        tlb.translate(0x1000)
        assert tlb.translate(0x2000) > 0

    def test_lru_eviction_within_set(self):
        tlb = Tlb(TlbConfig(entries=4, ways=2, page_bytes=4096))
        # Pages mapping to set 0 of a 2-set TLB: vpn % 2 == 0.
        pages = [0x0000, 0x2000, 0x4000]
        tlb.translate(pages[0])
        tlb.translate(pages[1])
        tlb.translate(pages[2])  # evicts pages[0]
        assert tlb.translate(pages[0]) > 0
        assert tlb.translate(pages[2]) == 0

    def test_touch_refreshes_lru(self):
        tlb = Tlb(TlbConfig(entries=4, ways=2, page_bytes=4096))
        tlb.translate(0x0000)
        tlb.translate(0x2000)
        tlb.translate(0x0000)  # refresh
        tlb.translate(0x4000)  # evicts 0x2000, not 0x0000
        assert tlb.translate(0x0000) == 0

    def test_stats(self):
        tlb = Tlb(TlbConfig(entries=8, ways=2))
        tlb.translate(0)
        tlb.translate(0)
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1
        assert tlb.stats.miss_rate == 0.5
