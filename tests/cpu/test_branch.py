"""Tests for the two-level branch predictor and BTB."""

import random

import pytest

from repro.cpu import BranchPredictor, BranchPredictorConfig


class TestConfig:
    def test_rejects_bad_pht_bits(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(pht_bits=0)

    def test_rejects_history_wider_than_pht(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(pht_bits=8, history_bits=9)

    def test_rejects_non_pow2_btb(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(btb_entries=1000)


class TestDirectionPrediction:
    def test_always_taken_branch_learned(self):
        bp = BranchPredictor()
        for _ in range(100):
            bp.predict_and_update(0x1000, taken=True, target=0x2000)
        assert bp.stats.mispredict_rate < 0.05

    def test_always_not_taken_branch_learned(self):
        bp = BranchPredictor()
        mis = [bp.predict_and_update(0x1000, False, 0) for _ in range(100)]
        # Counters start weakly-taken: a couple of early mispredicts only.
        assert sum(mis) <= 3
        assert mis[-1] is False

    def test_strongly_biased_static_branches(self):
        rng = random.Random(0)
        bp = BranchPredictor()
        pcs = [0x4000 + i * 16 for i in range(30)]
        bias = [rng.choice([0.95, 0.05]) for _ in pcs]
        for _ in range(300):
            for pc, b in zip(pcs, bias):
                bp.predict_and_update(pc, rng.random() < b, pc + 64)
        assert bp.stats.mispredict_rate < 0.12

    def test_alternating_pattern_learned_via_history(self):
        """T,N,T,N... is perfectly predictable with >=1 history bit."""
        bp = BranchPredictor()
        mis = 0
        for i in range(400):
            mis += bp.predict_and_update(0x1000, taken=(i % 2 == 0),
                                         target=0x2000)
        assert mis / 400 < 0.1

    def test_random_branch_near_chance(self):
        rng = random.Random(1)
        bp = BranchPredictor()
        for _ in range(2000):
            bp.predict_and_update(0x1000, rng.random() < 0.5, 0x2000)
        assert 0.3 < bp.stats.mispredict_rate < 0.7


class TestBtb:
    def test_taken_without_btb_entry_is_mispredict(self):
        bp = BranchPredictor()
        # Train direction taken at a different pc to warm the counters.
        for _ in range(10):
            bp.predict_and_update(0x1000, True, 0x2000)
        before = bp.stats.btb_misses
        bp.predict_and_update(0x9999000, True, 0x2000)
        assert bp.stats.btb_misses == before + 1

    def test_target_mismatch_is_mispredict(self):
        bp = BranchPredictor()
        for _ in range(10):
            bp.predict_and_update(0x1000, True, 0x2000)
        before = bp.stats.mispredictions
        bp.predict_and_update(0x1000, True, 0x3000)  # new target
        assert bp.stats.mispredictions == before + 1
        # The BTB now holds the new target.
        assert not bp.predict_and_update(0x1000, True, 0x3000)

    def test_not_taken_needs_no_target(self):
        bp = BranchPredictor()
        for _ in range(10):
            bp.predict_and_update(0x5000, False, 0)
        before = bp.stats.mispredictions
        bp.predict_and_update(0x5000, False, 0)
        assert bp.stats.mispredictions == before


class TestStats:
    def test_prediction_count(self):
        bp = BranchPredictor()
        for i in range(25):
            bp.predict_and_update(0x100 + i * 4, True, 0x200)
        assert bp.stats.predictions == 25

    def test_empty_rate(self):
        assert BranchPredictor().stats.mispredict_rate == 0.0
