"""Tests for the out-of-order core timing model."""

import pytest

from repro.cache import HierarchyConfig, MemoryHierarchy
from repro.cache.cache import CacheConfig, WritePolicy
from repro.cpu import Inst, OoOCore, OpClass, ProcessorConfig
from repro.cpu.config import FunctionalUnits
from repro.cpu.ooo import _BandwidthGate


def make_hierarchy():
    cfg = HierarchyConfig(
        l1i=CacheConfig("l1i", 4096, 4, 32,
                        write_policy=WritePolicy.WRITE_THROUGH,
                        write_allocate=False),
        l1d=CacheConfig("l1d", 4096, 4, 32,
                        write_policy=WritePolicy.WRITE_THROUGH,
                        write_allocate=False),
        l2=CacheConfig("l2", 65536, 4, 64, hit_latency=10),
    )
    return MemoryHierarchy(config=cfg)


def make_core(**proc_kw):
    return OoOCore(make_hierarchy(), config=ProcessorConfig(**proc_kw))


def alu(pc, dest=-1, srcs=()):
    return Inst(OpClass.INT_ALU, pc, dest=dest, srcs=srcs)


def alu_block(n, pc0=0x400000):
    return [alu(pc0 + i * 4, dest=i % 8) for i in range(n)]


class TestBandwidthGate:
    def test_admits_width_per_cycle(self):
        gate = _BandwidthGate(2)
        assert [gate.admit(5) for _ in range(5)] == [5, 5, 6, 6, 7]

    def test_time_never_regresses(self):
        gate = _BandwidthGate(4)
        gate.admit(10)
        assert gate.admit(3) == 10

    def test_new_cycle_resets_count(self):
        gate = _BandwidthGate(1)
        assert gate.admit(0) == 0
        assert gate.admit(5) == 5


class TestThroughput:
    def test_independent_alus_reach_issue_width(self):
        """Independent 1-cycle ops on a 4-wide machine: IPC approaches 4
        once the cold I-cache misses of the first loop amortise."""
        core = make_core()
        insts = [alu(0x400000 + (i % 64) * 4, dest=-1) for i in range(8000)]
        res = core.run(insts)
        assert res.ipc > 3.0

    def test_dependent_chain_limits_to_one_per_cycle(self):
        core = make_core()
        insts = [
            Inst(OpClass.INT_ALU, 0x400000 + (i % 64) * 4, dest=1, srcs=(1,))
            for i in range(500)
        ]
        res = core.run(insts)
        assert res.ipc < 1.2

    def test_single_mul_unit_serialises_muls(self):
        """INT_MUL latency 3, one unpipelined unit -> <= 1/3 IPC."""
        core = make_core()
        insts = [
            Inst(OpClass.INT_MUL, 0x400000 + (i % 64) * 4, dest=-1)
            for i in range(300)
        ]
        res = core.run(insts)
        assert res.ipc < 0.45

    def test_more_int_units_help_mixed_code(self):
        narrow = OoOCore(
            make_hierarchy(),
            config=ProcessorConfig(
                functional_units=FunctionalUnits(int_add=1)
            ),
        )
        wide = make_core()
        # Independent ALU ops: 4 adders beat 1 adder.
        insts = [alu(0x400000 + (i % 64) * 4) for i in range(600)]
        ipc_narrow = narrow.run(list(insts)).ipc
        ipc_wide = wide.run(list(insts)).ipc
        assert ipc_wide > ipc_narrow * 1.5


class TestMemoryBehaviour:
    def test_load_miss_stalls_dependents(self):
        core = make_core()
        insts = []
        for i in range(50):
            insts.append(
                Inst(OpClass.LOAD, 0x400000 + (i % 64) * 4,
                     addr=0x100000 + i * 4096, dest=1)
            )
            insts.append(
                Inst(OpClass.INT_ALU, 0x400000 + ((i + 1) % 64) * 4,
                     dest=2, srcs=(1,))
            )
        res = core.run(insts)
        assert res.ipc < 0.3  # every load misses to memory

    def test_cache_hits_keep_ipc_high(self):
        """Loads that hit the L1D sustain the 2 memory ports' bandwidth."""
        core = make_core()
        insts = [
            Inst(OpClass.LOAD, 0x400000 + (i % 64) * 4, addr=0x1000, dest=-1)
            for i in range(2000)
        ]
        res = core.run(insts)
        assert res.ipc > 1.0

    def test_stores_reach_hierarchy_at_commit(self):
        core = make_core()
        insts = [
            Inst(OpClass.STORE, 0x400000 + (i % 64) * 4, addr=0x2000 + i * 8)
            for i in range(10)
        ]
        res = core.run(insts)
        assert res.stores == 10
        assert core.hierarchy.stats.stores == 10

    def test_load_store_counts(self):
        core = make_core()
        insts = [
            Inst(OpClass.LOAD, 0x400000, addr=0x1000, dest=1),
            Inst(OpClass.STORE, 0x400004, addr=0x1008),
        ]
        res = core.run(insts)
        assert res.loads == 1
        assert res.stores == 1


class TestBranches:
    def test_mispredicts_slow_the_machine(self):
        import random

        rng = random.Random(0)

        def stream(predictable):
            insts = []
            for i in range(600):
                pc = 0x400000 + (i % 64) * 4
                if i % 5 == 4:
                    taken = True if predictable else rng.random() < 0.5
                    insts.append(
                        Inst(OpClass.BRANCH, pc, taken=taken, target=0x400000)
                    )
                else:
                    insts.append(alu(pc))
            return insts

        ipc_good = make_core().run(stream(True)).ipc
        ipc_bad = make_core().run(stream(False)).ipc
        assert ipc_good > ipc_bad

    def test_branch_counts(self):
        core = make_core()
        insts = [
            Inst(OpClass.BRANCH, 0x400000, taken=True, target=0x400000)
            for _ in range(20)
        ]
        res = core.run(insts)
        assert res.branches == 20
        assert res.mispredicts <= res.branches


class TestOccupancyLimits:
    def test_small_ruu_hurts_under_memory_latency(self):
        def mem_stream():
            return [
                Inst(OpClass.LOAD, 0x400000 + (i % 64) * 4,
                     addr=0x100000 + i * 4096, dest=-1)
                for i in range(60)
            ] + [alu(0x400000 + (i % 64) * 4) for i in range(600)]

        big = OoOCore(make_hierarchy(), config=ProcessorConfig(ruu_entries=64))
        small = OoOCore(make_hierarchy(), config=ProcessorConfig(ruu_entries=4))
        assert big.run(mem_stream()).ipc > small.run(mem_stream()).ipc

    def test_zero_instructions(self):
        res = make_core().run([])
        assert res.instructions == 0
        assert res.ipc == 0.0
