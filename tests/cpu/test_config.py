"""Tests for processor configuration (Table 1)."""

from repro.cpu import FunctionalUnits, OpClass, ProcessorConfig
from repro.cpu.trace import EXEC_LATENCY, Inst


class TestTable1Defaults:
    def test_ruu_and_lsq(self):
        cfg = ProcessorConfig()
        assert cfg.ruu_entries == 64
        assert cfg.lsq_entries == 32

    def test_widths(self):
        cfg = ProcessorConfig()
        assert cfg.decode_width == 4
        assert cfg.issue_width == 4
        assert cfg.commit_width == 4

    def test_functional_units(self):
        fu = FunctionalUnits()
        assert fu.int_add == 4
        assert fu.int_mul == 1
        assert fu.fp_add == 1
        assert fu.fp_mul == 1

    def test_pool_covers_every_op_class(self):
        pool = FunctionalUnits().pool()
        for op in OpClass:
            assert op in pool
            assert pool[op] >= 1

    def test_describe_mentions_table1_values(self):
        text = ProcessorConfig().describe()
        assert "64-entry RUU" in text
        assert "32-entry LSQ" in text
        assert "4 INT add" in text
        assert "1 FP mult/div" in text


class TestTraceTypes:
    def test_latency_for_every_op(self):
        for op in OpClass:
            assert EXEC_LATENCY[op] >= 1

    def test_is_mem(self):
        assert OpClass.LOAD.is_mem
        assert OpClass.STORE.is_mem
        assert not OpClass.BRANCH.is_mem
        assert not OpClass.INT_ALU.is_mem

    def test_inst_defaults(self):
        inst = Inst(OpClass.INT_ALU, pc=0x400000)
        assert inst.dest == -1
        assert inst.srcs == ()
        assert not inst.taken

    def test_inst_repr_is_informative(self):
        load = Inst(OpClass.LOAD, 0x400000, addr=0x1234)
        assert "LOAD" in repr(load)
        assert "0x1234" in repr(load)
        br = Inst(OpClass.BRANCH, 0x400000, taken=True)
        assert "taken=True" in repr(br)
