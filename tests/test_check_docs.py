"""The docs-consistency gate: introspection plus the FAIL contract.

``scripts/check_docs.py`` keeps the documentation corpus honest by
introspecting the live argparse tree; these tests pin (a) that the
introspection actually sees newly added verbs — autotune/recommend
must appear without any hand-maintained list being touched — and
(b) that :func:`check` emits a greppable ``FAIL:`` line for every
undocumented verb and flag, and nothing when the corpus covers them.
"""

import importlib.util
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parents[1] / "scripts" / "check_docs.py"
_spec = importlib.util.spec_from_file_location("check_docs", _SCRIPT)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


class TestCheck:
    def test_undocumented_verb_is_a_fail_line(self):
        failures = check_docs.check({"frobnicate": []}, corpus="")
        assert failures == [
            "FAIL: verb 'frobnicate' is not documented"
        ]

    def test_undocumented_flag_is_a_fail_line(self):
        failures = check_docs.check(
            {"run": ["--trials", "--seed"]},
            corpus="The `run` verb takes --trials.",
        )
        assert failures == ["FAIL: run: flag --seed is not documented"]

    def test_documented_surface_is_clean(self):
        corpus = "Use `run --trials N --seed S` to run."
        assert check_docs.check(
            {"run": ["--trials", "--seed"]}, corpus
        ) == []

    def test_every_failure_is_reported_not_just_the_first(self):
        failures = check_docs.check(
            {"a": ["--x"], "b": ["--y"]}, corpus=""
        )
        assert len(failures) == 4
        assert all(line.startswith("FAIL: ") for line in failures)


class TestSurface:
    def test_new_verbs_are_picked_up_automatically(self):
        surface = check_docs.cli_surface()
        assert "autotune" in surface
        assert "recommend" in surface

    def test_surface_carries_the_new_flags(self):
        surface = check_docs.cli_surface()
        assert "--objectives" in surface["autotune"]
        assert "--fit-budget" in surface["recommend"]
        assert "--area-budget" in surface["recommend"]

    def test_repo_docs_cover_the_full_surface(self):
        """The live gate itself: the shipped docs must be in sync."""
        failures = check_docs.check(
            check_docs.cli_surface(), check_docs.doc_corpus()
        )
        assert failures == []


class TestRegistries:
    def test_missing_name_is_a_fail_line(self):
        failures = check_docs.check_registries(
            {"variant": ["standard", "silent-write"]},
            api_text="only `standard` is described here",
        )
        assert failures == [
            "FAIL: variant 'silent-write' is not in docs/api.md"
        ]

    def test_covered_names_are_clean(self):
        assert check_docs.check_registries(
            {"codec": ["secded"], "variant": ["standard"]},
            api_text="`secded` and `standard` are documented",
        ) == []

    def test_live_registries_include_the_variants(self):
        names = check_docs.registry_names()
        assert "silent-write" in names["variant"]
        assert "wb-compress" in names["variant"]
        assert "nominal" in names["scenario"]
        assert "secded" in names["codec"]

    def test_repo_api_doc_covers_every_registered_name(self):
        """The live gate: docs/api.md enumerates all registries."""
        assert check_docs.check_registries(
            check_docs.registry_names(), check_docs.api_doc_text()
        ) == []
