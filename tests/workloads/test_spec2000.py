"""Tests for the benchmark suite registry and stream instantiation."""

import itertools

import pytest

from repro.workloads import (
    BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    get_benchmark,
    make_ref_stream,
)

L2 = 64 * 1024


class TestRegistry:
    def test_seven_plus_seven(self):
        assert len(FP_BENCHMARKS) == 7
        assert len(INT_BENCHMARKS) == 7
        assert len(BENCHMARKS) == 14

    def test_paper_benchmarks_present(self):
        """Every benchmark the paper names must exist."""
        for name in ("applu", "swim", "mgrid", "equake", "mcf",
                     "apsi", "mesa", "gap", "parser"):
            assert name in BENCHMARKS

    def test_suites_labelled(self):
        assert all(s.suite == "fp" for s in FP_BENCHMARKS)
        assert all(s.suite == "int" for s in INT_BENCHMARKS)

    def test_get_benchmark(self):
        assert get_benchmark("mcf").kind == "pointer"
        with pytest.raises(ValueError, match="unknown benchmark"):
            get_benchmark("gcc")

    def test_outliers_have_cache_resident_working_sets(self):
        """The paper's four high-dirty benchmarks fit in the L2."""
        for name in ("apsi", "mesa", "gap", "parser"):
            assert get_benchmark(name).ws_factor < 1.0

    def test_streaming_benchmarks_exceed_cache(self):
        for name in ("applu", "swim", "mgrid", "mcf"):
            assert get_benchmark(name).ws_factor > 1.0

    def test_working_set_scales_with_l2(self):
        spec = get_benchmark("swim")
        assert spec.working_set_bytes(2 * L2) == 2 * spec.working_set_bytes(L2)


class TestStreams:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_every_benchmark_yields_refs(self, name):
        spec = get_benchmark(name)
        # Enough refs to get past a blocked benchmark's read-only first pass.
        refs = list(itertools.islice(make_ref_stream(spec, L2, seed=1), 3000))
        assert len(refs) == 3000
        assert all(r.addr >= 0 for r in refs)
        assert any(r.is_write for r in refs)
        assert any(not r.is_write for r in refs)

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_streams_are_deterministic(self, name):
        spec = get_benchmark(name)
        a = list(itertools.islice(make_ref_stream(spec, L2, seed=3), 200))
        b = list(itertools.islice(make_ref_stream(spec, L2, seed=3), 200))
        assert a == b

    @pytest.mark.parametrize("name", ["mesa", "mcf"])
    def test_streams_are_deterministic_across_processes(self, name):
        """Regression: the stream seed once came from ``hash(name)``,
        which PYTHONHASHSEED randomizes per interpreter — the same
        (benchmark, seed) pair produced different traces in different
        processes, silently breaking run reproducibility and the sweep
        engine's result cache."""
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        src_dir = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        snippet = (
            "import itertools\n"
            "from repro.workloads import get_benchmark, make_ref_stream\n"
            f"refs = itertools.islice("
            f"make_ref_stream(get_benchmark({name!r}), {L2}, seed=3), 200)\n"
            "print(';'.join(f'{r.addr}:{int(r.is_write)}' for r in refs))\n"
        )
        outs = []
        for hashseed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=src_dir)
            proc = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True, env=env,
            )
            outs.append(proc.stdout)
        assert outs[0] == outs[1]

    def test_different_seeds_differ(self):
        spec = get_benchmark("mcf")
        a = list(itertools.islice(make_ref_stream(spec, L2, seed=1), 200))
        b = list(itertools.islice(make_ref_stream(spec, L2, seed=2), 200))
        assert a != b

    def test_footprint_tracks_ws_factor(self):
        """A >1x working set touches more than the cache's line count."""
        spec = get_benchmark("swim")
        refs = itertools.islice(make_ref_stream(spec, L2, seed=0), 80_000)
        lines = {r.addr // 64 for r in refs}
        assert len(lines) * 64 > L2
