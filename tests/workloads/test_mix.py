"""Tests for the instruction mixer."""

import itertools
import random

import pytest

from repro.cpu import OpClass
from repro.workloads import InstructionMixer, MemRef, MixConfig
from repro.workloads.generators import streaming_stream


def refs(n=200, seed=0, gap=2):
    rng = random.Random(seed)
    return [
        MemRef(rng.random() < 0.3, rng.randrange(1 << 16) & ~7, gap)
        for _ in range(n)
    ]


def expand(ref_list, config=None, seed=0):
    mixer = InstructionMixer(config or MixConfig(), seed=seed)
    return list(mixer.expand(ref_list))


class TestStructure:
    def test_every_ref_becomes_a_mem_inst(self):
        ref_list = refs(100)
        insts = expand(ref_list)
        mem = [i for i in insts if i.op.is_mem]
        assert len(mem) == 100
        assert [i.addr for i in mem] == [r.addr for r in ref_list]
        assert [i.op is OpClass.STORE for i in mem] == [
            r.is_write for r in ref_list
        ]

    def test_gap_zero_emits_back_to_back_mem(self):
        insts = expand([MemRef(False, 0, 0), MemRef(True, 8, 0)])
        assert all(i.op.is_mem or i.op is OpClass.BRANCH for i in insts)

    def test_fillers_match_gaps(self):
        insts = expand([MemRef(False, 0, 5)])
        non_mem = [i for i in insts if not i.op.is_mem]
        assert len(non_mem) == 5  # 5 fillers, possibly some are branches

    def test_loads_have_destinations(self):
        insts = expand(refs(50))
        for i in insts:
            if i.op is OpClass.LOAD:
                assert i.dest >= 0
            if i.op is OpClass.STORE:
                assert i.dest == -1


class TestPcStream:
    def test_pcs_stay_in_loop_body(self):
        cfg = MixConfig(loop_body_insts=128)
        insts = expand(refs(300), cfg)
        for i in insts:
            assert cfg.code_base <= i.pc < cfg.code_base + 128 * 4

    def test_branches_at_fixed_slots(self):
        cfg = MixConfig(loop_body_insts=64, branch_period=8)
        insts = expand(refs(400, gap=3), cfg)
        branch_pcs = {i.pc for i in insts if i.op is OpClass.BRANCH}
        slots = {(pc - cfg.code_base) // 4 for pc in branch_pcs}
        expected = set(range(7, 64, 8)) | {63}
        assert slots <= expected

    def test_back_edge_always_taken_to_base(self):
        cfg = MixConfig(loop_body_insts=32, branch_period=100)
        insts = expand(refs(200, gap=3), cfg)
        back = [
            i for i in insts
            if i.op is OpClass.BRANCH and i.pc == cfg.code_base + 31 * 4
        ]
        assert back
        assert all(i.taken and i.target == cfg.code_base for i in back)


class TestMixRatios:
    def test_fp_fraction_controls_fp_ops(self):
        fp_heavy = expand(refs(500, gap=4), MixConfig(fp_fraction=0.9))
        int_heavy = expand(refs(500, gap=4), MixConfig(fp_fraction=0.1))

        def fp_share(insts):
            alus = [
                i for i in insts
                if i.op in (OpClass.FP_ALU, OpClass.FP_MUL,
                            OpClass.INT_ALU, OpClass.INT_MUL)
            ]
            fp = [i for i in alus if i.op in (OpClass.FP_ALU, OpClass.FP_MUL)]
            return len(fp) / len(alus)

        assert fp_share(fp_heavy) > 0.8
        assert fp_share(int_heavy) < 0.2

    def test_branch_personalities_are_biased(self):
        cfg = MixConfig(loop_body_insts=64, branch_period=8,
                        random_branch_fraction=0.0)
        insts = expand(refs(3000, gap=3), cfg, seed=1)
        from collections import defaultdict

        outcomes = defaultdict(list)
        for i in insts:
            if i.op is OpClass.BRANCH:
                outcomes[i.pc].append(i.taken)
        for pc, taken in outcomes.items():
            if len(taken) < 20:
                continue
            rate = sum(taken) / len(taken)
            assert rate < 0.15 or rate > 0.85  # strongly biased


class TestDeterminism:
    def test_same_seed_same_stream(self):
        ref_list = refs(150, seed=5)
        a = expand(list(ref_list), seed=9)
        b = expand(list(ref_list), seed=9)
        assert [(i.op, i.pc, i.addr, i.taken) for i in a] == [
            (i.op, i.pc, i.addr, i.taken) for i in b
        ]

    def test_works_with_generator_input(self):
        rng = random.Random(0)
        stream = streaming_stream(rng, ws_bytes=8192)
        mixer = InstructionMixer(MixConfig(), seed=0)
        insts = list(itertools.islice(mixer.expand(stream), 500))
        assert len(insts) == 500
