"""Tests for phase composition of reference streams."""

import itertools
import random

import pytest

from repro.workloads import MemRef
from repro.workloads.phases import interleave, phase_alternate, with_pauses


def const_stream(addr, is_write=False, gap=1):
    while True:
        yield MemRef(is_write, addr, gap)


def take(stream, n):
    return list(itertools.islice(stream, n))


class TestPhaseAlternate:
    def test_validation(self):
        with pytest.raises(ValueError):
            next(phase_alternate([], 10))
        with pytest.raises(ValueError):
            next(phase_alternate([const_stream(0)], 0))
        with pytest.raises(ValueError):
            next(phase_alternate([const_stream(0)], 10, jitter=1.5))

    def test_round_robin_phases(self):
        a, b = const_stream(0xA0), const_stream(0xB0)
        refs = take(phase_alternate([a, b], phase_len=3), 12)
        addrs = [r.addr for r in refs]
        assert addrs == [0xA0] * 3 + [0xB0] * 3 + [0xA0] * 3 + [0xB0] * 3

    def test_single_stream_passthrough(self):
        refs = take(phase_alternate([const_stream(0x10)], 5), 20)
        assert all(r.addr == 0x10 for r in refs)

    def test_jitter_varies_phase_lengths(self):
        a, b = const_stream(0xA0), const_stream(0xB0)
        refs = take(
            phase_alternate([a, b], phase_len=10,
                            rng=random.Random(3), jitter=0.5),
            200,
        )
        # Measure run lengths of consecutive equal addresses.
        runs, current = [], 1
        for prev, cur in zip(refs, refs[1:]):
            if cur.addr == prev.addr:
                current += 1
            else:
                runs.append(current)
                current = 1
        assert len(set(runs)) > 1  # not all phases equal


class TestInterleave:
    def test_validation(self):
        with pytest.raises(ValueError):
            next(interleave([]))

    def test_strict_alternation(self):
        refs = take(interleave([const_stream(1), const_stream(2),
                                const_stream(3)]), 9)
        assert [r.addr for r in refs] == [1, 2, 3] * 3


class TestWithPauses:
    def test_validation(self):
        with pytest.raises(ValueError):
            next(with_pauses(const_stream(0), 0, 10))
        with pytest.raises(ValueError):
            next(with_pauses(const_stream(0), 5, -1))

    def test_pause_lands_on_gap(self):
        refs = take(with_pauses(const_stream(0, gap=1), active_refs=3,
                                pause_cycles=100), 8)
        gaps = [r.gap for r in refs]
        assert gaps == [1, 1, 1, 101, 1, 1, 101, 1]

    def test_total_time_includes_pauses(self):
        refs = take(with_pauses(const_stream(0, gap=0), 2, 50), 6)
        assert sum(r.gap for r in refs) == 2 * 50


class TestCleaningDuringPauses:
    def test_idle_gaps_let_cleaning_finish(self):
        """A paused workload gives the sweep time to clean everything."""
        from repro.cache import MemoryHierarchy
        from repro.experiments import SCALED_GEOMETRY
        from repro.core import ProtectedL2, ProtectionConfig

        geometry = SCALED_GEOMETRY
        l2 = ProtectedL2(
            geometry.hierarchy_config().l2,
            ProtectionConfig(cleaning_interval=2048,
                             ecc_entries_per_set=None),
        )
        h = MemoryHierarchy(config=geometry.hierarchy_config(), l2=l2)

        import itertools as it

        def writes():
            addr = 0
            while True:
                yield MemRef(True, addr, 0)
                addr += 8

        stream = with_pauses(writes(), active_refs=500, pause_cycles=20_000)
        cycle = 0
        for ref in it.islice(stream, 2000):
            cycle += 1 + ref.gap
            h.store(ref.addr, cycle)
        # Let one long pause elapse with a final idle advance.
        h.load(1 << 30, cycle + 50_000)
        assert l2.dirty.dirty_count <= 2  # everything older got cleaned
