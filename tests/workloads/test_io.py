"""Tests for trace file I/O."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import MemRef, get_benchmark, make_ref_stream
from repro.workloads.io import (
    BINARY_MAGIC,
    TraceFormatError,
    load_trace,
    save_trace,
    save_trace_binary,
    save_trace_text,
    summarize_trace,
)

REFS = st.lists(
    st.builds(
        MemRef,
        st.booleans(),
        st.integers(0, (1 << 48) - 1),
        st.integers(0, 64),
    ),
    max_size=200,
)


class TestRoundTrip:
    @given(REFS)
    @settings(max_examples=30, deadline=None)
    def test_binary_roundtrip(self, refs):
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            path = f"{d}/t.bin"
            n = save_trace_binary(refs, path)
            assert n == len(refs)
            assert list(load_trace(path)) == refs

    @given(REFS)
    @settings(max_examples=30, deadline=None)
    def test_text_roundtrip(self, refs):
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            path = f"{d}/t.txt"
            save_trace_text(refs, path)
            assert list(load_trace(path)) == refs

    def test_benchmark_stream_roundtrip(self, tmp_path):
        refs = list(
            itertools.islice(
                make_ref_stream(get_benchmark("mcf"), 65536, seed=2), 1000
            )
        )
        path = tmp_path / "mcf.bin"
        save_trace(refs, path, fmt="binary")
        assert list(load_trace(path)) == refs


class TestFormats:
    def test_binary_has_magic(self, tmp_path):
        path = tmp_path / "t.bin"
        save_trace_binary([MemRef(True, 0x40, 1)], path)
        assert path.read_bytes().startswith(BINARY_MAGIC)

    def test_text_is_readable(self, tmp_path):
        path = tmp_path / "t.txt"
        save_trace_text([MemRef(True, 0x1234, 3)], path)
        assert "W 0x1234 3" in path.read_text()

    def test_text_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# header\n\nR 0x40 2  # inline comment\nW 0x80\n")
        refs = list(load_trace(path))
        assert refs == [MemRef(False, 0x40, 2), MemRef(True, 0x80, 0)]

    def test_unknown_save_format_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError):
            save_trace([], tmp_path / "t", fmt="json")

    def test_oversized_gap_rejected_in_binary(self, tmp_path):
        with pytest.raises(TraceFormatError):
            save_trace_binary([MemRef(False, 0, 1 << 16)], tmp_path / "t.bin")


class TestMalformed:
    def test_bad_op_letter(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("X 0x40 1\n")
        with pytest.raises(TraceFormatError, match="bad op"):
            list(load_trace(path))

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("R 0x40 1 9 9\n")
        with pytest.raises(TraceFormatError, match="2-3 fields"):
            list(load_trace(path))

    def test_negative_gap(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("R 0x40 -1\n")
        with pytest.raises(TraceFormatError, match="negative"):
            list(load_trace(path))

    def test_truncated_binary(self, tmp_path):
        path = tmp_path / "t.bin"
        save_trace_binary([MemRef(False, 0x40, 0)], path)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(TraceFormatError, match="truncated"):
            list(load_trace(path))


class TestSummary:
    def test_counts(self):
        refs = [
            MemRef(False, 0, 2),
            MemRef(True, 8, 3),   # same 64B line as the first
            MemRef(True, 128, 0),
        ]
        s = summarize_trace(refs)
        assert s.records == 3
        assert s.writes == 2
        assert s.write_ratio == pytest.approx(2 / 3)
        assert s.footprint_lines == 2
        assert s.footprint_bytes == 128
        assert s.instructions == 3 + 5

    def test_empty(self):
        s = summarize_trace([])
        assert s.records == 0
        assert s.write_ratio == 0.0
