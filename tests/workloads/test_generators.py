"""Tests for the memory-reference generator archetypes."""

import itertools
import random

import pytest

from repro.workloads import (
    blocked_stream,
    pointer_stream,
    streaming_stream,
    zipf_stream,
)


def take(stream, n):
    return list(itertools.islice(stream, n))


def footprint(refs, granule=64):
    return {r.addr // granule for r in refs}


def write_ratio(refs):
    return sum(r.is_write for r in refs) / len(refs)


class TestStreaming:
    def test_addresses_stay_in_working_set(self):
        refs = take(streaming_stream(random.Random(0), ws_bytes=4096,
                                     arrays=2, base=0), 2000)
        assert all(0 <= r.addr < (1 << 26) + 4096 for r in refs)

    def test_sequential_within_array(self):
        refs = take(
            streaming_stream(random.Random(0), ws_bytes=8192, arrays=1,
                             store_ratio=0, base=0),
            16,
        )
        addrs = [r.addr for r in refs]
        assert addrs == list(range(0, 128, 8))

    def test_wraps_around(self):
        refs = take(
            streaming_stream(random.Random(0), ws_bytes=64, arrays=1,
                             store_ratio=0, base=0),
            20,
        )
        assert refs[0].addr == refs[8].addr  # 64B array of 8B strides

    def test_writer_arrays_write_every_step(self):
        refs = take(
            streaming_stream(random.Random(0), ws_bytes=8192, arrays=4,
                             store_ratio=0.5),
            400,
        )
        assert write_ratio(refs) == pytest.approx(0.5, abs=0.01)

    def test_at_least_one_writer_for_small_ratio(self):
        refs = take(
            streaming_stream(random.Random(0), ws_bytes=8192, arrays=3,
                             store_ratio=0.05),
            300,
        )
        assert any(r.is_write for r in refs)

    def test_gap_nonnegative_and_bounded(self):
        refs = take(streaming_stream(random.Random(0), ws_bytes=4096), 500)
        assert all(0 <= r.gap <= 64 for r in refs)


class TestBlocked:
    def test_first_pass_is_read_only(self):
        refs = take(
            blocked_stream(random.Random(0), ws_bytes=4096, tile_bytes=512,
                           reuse=3, store_ratio=1.0, base=0),
            64,  # one pass = 512/8 = 64 refs
        )
        assert not any(r.is_write for r in refs)

    def test_later_passes_write(self):
        refs = take(
            blocked_stream(random.Random(0), ws_bytes=4096, tile_bytes=512,
                           reuse=2, store_ratio=1.0, base=0),
            128,
        )
        second_pass = refs[64:]
        assert all(r.is_write for r in second_pass)

    def test_tile_locality(self):
        """Each reuse group touches exactly one tile's footprint."""
        refs = take(
            blocked_stream(random.Random(0), ws_bytes=8192, tile_bytes=1024,
                           reuse=2, base=0),
            256,  # one tile visit = 2 * 128 refs
        )
        tiles = {r.addr // 1024 for r in refs}
        assert len(tiles) == 1

    def test_covers_working_set_quickly(self):
        """Sequential-ish tile order sweeps the footprint in ~one round."""
        rng = random.Random(1)
        n_tiles = 8
        refs = take(
            blocked_stream(rng, ws_bytes=8 * 512, tile_bytes=512, reuse=1,
                           base=0),
            64 * n_tiles * 2,
        )
        assert len({r.addr // 512 for r in refs}) == n_tiles


class TestPointer:
    def test_node_aligned_reads(self):
        refs = take(
            pointer_stream(random.Random(0), ws_bytes=4096, store_ratio=0,
                           node_bytes=64, base=0),
            200,
        )
        assert all(r.addr % 64 == 0 for r in refs)
        assert not any(r.is_write for r in refs)

    def test_store_follows_read_of_same_node(self):
        refs = take(
            pointer_stream(random.Random(0), ws_bytes=4096, store_ratio=1.0,
                           node_bytes=64, base=0),
            100,
        )
        for read, write in zip(refs[::2], refs[1::2]):
            assert write.is_write
            assert write.addr == read.addr + 8

    def test_footprint_spread(self):
        refs = take(
            pointer_stream(random.Random(0), ws_bytes=64 * 1024,
                           store_ratio=0, base=0),
            3000,
        )
        assert len(footprint(refs)) > 500


class TestZipf:
    def test_skewed_popularity(self):
        from collections import Counter

        refs = take(
            zipf_stream(random.Random(0), ws_bytes=64 * 1024, alpha=1.0,
                        store_ratio=0, base=0),
            8000,
        )
        counts = Counter(r.addr // 64 for r in refs)
        top = sum(c for _, c in counts.most_common(50))
        assert top / len(refs) > 0.25  # top-50 of 1024 take >25%

    def test_store_ratio_respected(self):
        refs = take(
            zipf_stream(random.Random(0), ws_bytes=16 * 1024,
                        store_ratio=0.3, base=0),
            4000,
        )
        assert write_ratio(refs) == pytest.approx(0.3, abs=0.05)

    def test_fresh_writes_march_sequentially(self):
        refs = take(
            zipf_stream(random.Random(0), ws_bytes=16 * 1024,
                        store_ratio=1.0, fresh_write_fraction=1.0, base=0),
            64,
        )
        addrs = [r.addr for r in refs]
        assert addrs == list(range(0, 512, 8))

    def test_addresses_within_working_set(self):
        refs = take(
            zipf_stream(random.Random(0), ws_bytes=8192, base=0), 2000
        )
        assert all(0 <= r.addr < 8192 for r in refs)


class TestEdgeCases:
    def test_streaming_tiny_working_set(self):
        refs = take(
            streaming_stream(random.Random(0), ws_bytes=8, arrays=1,
                             store_ratio=0, base=0),
            10,
        )
        assert all(r.addr == 0 for r in refs)  # one-slot array wraps

    def test_blocked_single_reuse_never_writes(self):
        refs = take(
            blocked_stream(random.Random(0), ws_bytes=2048, tile_bytes=512,
                           reuse=1, store_ratio=1.0, base=0),
            300,
        )
        assert not any(r.is_write for r in refs)

    def test_blocked_tile_larger_than_ws(self):
        refs = take(
            blocked_stream(random.Random(0), ws_bytes=256, tile_bytes=1024,
                           reuse=2, base=0),
            200,
        )
        assert len({r.addr // 1024 for r in refs}) == 1

    def test_pointer_single_node(self):
        refs = take(
            pointer_stream(random.Random(0), ws_bytes=64, store_ratio=0,
                           node_bytes=64, base=0),
            20,
        )
        assert all(r.addr == 0 for r in refs)

    def test_zipf_single_block(self):
        refs = take(
            zipf_stream(random.Random(0), ws_bytes=64, store_ratio=0.5,
                        base=0),
            50,
        )
        assert all(0 <= r.addr < 64 for r in refs)

    def test_zero_mean_gap(self):
        refs = take(
            streaming_stream(random.Random(0), ws_bytes=4096, mean_gap=0),
            100,
        )
        assert all(r.gap == 0 for r in refs)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda rng: streaming_stream(rng, ws_bytes=8192),
            lambda rng: blocked_stream(rng, ws_bytes=8192, tile_bytes=512),
            lambda rng: pointer_stream(rng, ws_bytes=8192),
            lambda rng: zipf_stream(rng, ws_bytes=8192),
        ],
        ids=["streaming", "blocked", "pointer", "zipf"],
    )
    def test_same_seed_same_stream(self, factory):
        a = take(factory(random.Random(7)), 300)
        b = take(factory(random.Random(7)), 300)
        assert a == b
