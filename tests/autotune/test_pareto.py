"""CI-aware dominance: worked examples plus hypothesis invariants.

The front's determinism story (``scripts/autotune_smoke.py`` asserts
bit-identical fronts across worker counts) rests on :func:`dominates`
being a strict partial order; the property tests drive that over
arbitrary interval sets — idempotence, order-invariance, and "no front
member is dominated by anything".
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotune import (
    OBJECTIVES,
    available_objectives,
    dominates,
    pareto_front,
    resolve_objectives,
)

NAMES = ("a", "b")


def point(a, b):
    """A two-objective point from zero-width or (value, lo, hi) specs."""
    out = {}
    for name, spec in zip(NAMES, (a, b)):
        if isinstance(spec, tuple):
            out[name] = spec
        else:
            out[name] = (spec, spec, spec)
    return out


class TestDominates:
    def test_strictly_better_everywhere_dominates(self):
        assert dominates(point(1.0, 1.0), point(2.0, 2.0), NAMES)

    def test_equal_points_never_dominate(self):
        p = point(1.0, 2.0)
        assert not dominates(p, dict(p), NAMES)

    def test_tie_on_one_objective_still_dominates(self):
        assert dominates(point(1.0, 1.0), point(1.0, 2.0), NAMES)

    def test_tradeoff_is_incomparable(self):
        a, b = point(1.0, 2.0), point(2.0, 1.0)
        assert not dominates(a, b, NAMES)
        assert not dominates(b, a, NAMES)

    def test_overlapping_intervals_are_incomparable(self):
        # The CI-aware rule: a better point estimate with an
        # overlapping interval must NOT dominate.
        better = point((1.0, 0.5, 1.5), 1.0)
        worse = point((2.0, 1.2, 2.8), 1.0)
        assert not dominates(better, worse, NAMES)
        assert not dominates(worse, better, NAMES)

    def test_cleared_interval_dominates(self):
        clear = point((1.0, 0.5, 1.5), 1.0)
        distant = point((3.0, 2.0, 4.0), 1.0)
        assert dominates(clear, distant, NAMES)

    def test_touching_bounds_need_another_strict_objective(self):
        # a.hi == b.lo satisfies <= but not <; with the other
        # objective tied there is no strict win anywhere.
        a = point((1.0, 0.5, 1.5), 1.0)
        b = point((2.0, 1.5, 2.5), 1.0)
        assert not dominates(a, b, NAMES)
        a_strict = point((1.0, 0.5, 1.5), 0.5)
        assert dominates(a_strict, b, NAMES)


class TestFrontExamples:
    def test_classic_two_objective_front(self):
        points = [
            point(1.0, 3.0),   # on the front (best a)
            point(3.0, 1.0),   # on the front (best b)
            point(2.0, 2.0),   # on the front (trade-off)
            point(3.0, 3.0),   # dominated by everything above
        ]
        assert pareto_front(points, NAMES) == [0, 1, 2]

    def test_duplicates_all_stay(self):
        points = [point(1.0, 1.0), point(1.0, 1.0), point(2.0, 2.0)]
        assert pareto_front(points, NAMES) == [0, 1]

    def test_indices_are_ascending(self):
        points = [point(3.0, 1.0), point(1.0, 3.0), point(2.0, 2.0)]
        assert pareto_front(points, NAMES) == sorted(
            pareto_front(points, NAMES)
        )


class TestObjectiveSpecs:
    def test_catalogue_and_resolution(self):
        specs = resolve_objectives(["area", "fit"])
        assert [s.name for s in specs] == ["area", "fit"]
        assert set(available_objectives()) == set(OBJECTIVES)

    def test_unknown_objective_enumerates(self):
        with pytest.raises(ValueError, match="available objectives"):
            resolve_objectives(["area", "latency"])

    def test_maximize_negates_and_swaps_bounds(self):
        class M:
            mttf_hours = (10.0, 5.0, 20.0)

        v, lo, hi = OBJECTIVES["mttf"].interval(M())
        assert (v, lo, hi) == (-10.0, -20.0, -5.0)
        assert lo <= v <= hi

    def test_deterministic_attr_is_zero_width(self):
        class M:
            area_kib = 54.0

        assert OBJECTIVES["area"].interval(M()) == (54.0, 54.0, 54.0)


@st.composite
def interval(draw):
    """A minimize-normalized (value, lo, hi) with lo <= value <= hi."""
    lo = draw(st.floats(min_value=-1e6, max_value=1e6,
                        allow_nan=False, allow_infinity=False))
    width_v = draw(st.floats(min_value=0.0, max_value=1e3,
                             allow_nan=False, allow_infinity=False))
    width_h = draw(st.floats(min_value=0.0, max_value=1e3,
                             allow_nan=False, allow_infinity=False))
    return (lo + width_v, lo, lo + width_v + width_h)


@st.composite
def point_sets(draw):
    return draw(st.lists(
        st.fixed_dictionaries({name: interval() for name in NAMES}),
        min_size=1, max_size=12,
    ))


class TestFrontProperties:
    @given(point_sets())
    @settings(max_examples=200)
    def test_front_never_contains_a_dominated_point(self, points):
        front = pareto_front(points, NAMES)
        for i in front:
            assert not any(
                dominates(points[j], points[i], NAMES)
                for j in range(len(points)) if j != i
            )

    @given(point_sets())
    @settings(max_examples=200)
    def test_every_off_front_point_is_dominated_by_a_front_member(
        self, points
    ):
        # Needs transitivity: its dominator may itself be dominated,
        # but the chain must terminate on the front.
        front = set(pareto_front(points, NAMES))
        for i in range(len(points)):
            if i in front:
                continue
            assert any(
                dominates(points[j], points[i], NAMES) for j in front
            )

    @given(point_sets())
    @settings(max_examples=200)
    def test_idempotent(self, points):
        front = pareto_front(points, NAMES)
        refront = pareto_front([points[i] for i in front], NAMES)
        assert refront == list(range(len(front)))

    @given(point_sets(), st.randoms(use_true_random=False))
    @settings(max_examples=200)
    def test_order_invariant(self, points, rng):
        order = list(range(len(points)))
        rng.shuffle(order)
        base = {id(points[i]) for i in pareto_front(points, NAMES)}
        shuffled = [points[i] for i in order]
        permuted = {
            id(shuffled[i]) for i in pareto_front(shuffled, NAMES)
        }
        assert base == permuted

    @given(point_sets())
    @settings(max_examples=100)
    def test_front_is_never_empty(self, points):
        assert pareto_front(points, NAMES)

    @given(interval(), interval())
    @settings(max_examples=200)
    def test_dominance_is_asymmetric(self, a, b):
        pa, pb = {"a": a, "b": a}, {"a": b, "b": b}
        assert not (
            dominates(pa, pb, NAMES) and dominates(pb, pa, NAMES)
        )
