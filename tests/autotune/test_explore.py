"""Grid expansion, point identity, and the explorer's determinism.

The acceptance contract — fronts bit-identical across ``--jobs``
values and across a mid-sweep resume — is smoke-tested end to end by
``scripts/autotune_smoke.py``; these tests pin the pieces it rests on
at unit size: canonicalization collapses inapplicable axes, the cache
key ignores the checkpoint path, and :func:`explore` serves a warm
cache without executing.
"""

import dataclasses

import pytest

from repro.autotune import (
    PointMetrics,
    PointTask,
    expand_grid,
    explore,
    point_key,
)
from repro.experiments.pool import ResultCache, SweepEngine


def grid(**overrides):
    axes = dict(
        benchmarks=("mesa",),
        schemes=("non-uniform",),
        codecs=("secded",),
        intervals=(262144,),
        ecc_entries=(1,),
        write_buffers=(16,),
        variants=("standard",),
        scenarios=("nominal",),
    )
    axes.update(overrides)
    return expand_grid(**axes)


def task(point, **overrides):
    fields = dict(
        point=point,
        trials=200,
        trials_per_shard=100,
        kernel="batch",
        seed=0,
        refs=4000,
        warmup=1000,
        insts=0,
        double_bit_fraction=0.05,
        raw_fit=1000.0,
        n_lines=16384,
        measure_ipc=False,
    )
    fields.update(overrides)
    return PointTask(**fields)


class TestExpandGrid:
    def test_uniform_ecc_collapses_cleaning_axes(self):
        points = grid(
            schemes=("uniform-ecc",),
            intervals=(262144, 1048576),
            ecc_entries=(1, 2),
            variants=("standard", "decay"),
        )
        assert len(points) == 1
        (p,) = points
        assert p.interval is None and p.ecc_entries is None
        assert p.variant == "standard"

    def test_parity_only_collapses_the_codec_axis_too(self):
        points = grid(
            schemes=("parity-only",), codecs=("secded", "dected"),
        )
        assert len(points) == 1
        assert points[0].codec == "secded"

    def test_eager_variant_collapses_the_interval_axis(self):
        points = grid(
            variants=("eager",), intervals=(262144, 1048576),
        )
        assert len(points) == 1
        assert points[0].interval is None

    def test_non_uniform_keeps_the_full_cross_product(self):
        points = grid(
            codecs=("secded", "dected"),
            intervals=(262144, 1048576),
            ecc_entries=(1, 2),
        )
        assert len(points) == 8

    def test_first_seen_order_is_preserved(self):
        points = grid(
            schemes=("uniform-ecc", "non-uniform"),
            intervals=(1048576, 262144),
        )
        assert points[0].scheme == "uniform-ecc"
        assert [p.interval for p in points[1:]] == [1048576, 262144]

    def test_mixed_grid_counts(self):
        # 2 non-uniform intervals + 1 uniform-ecc + 1 parity-only.
        points = grid(
            schemes=("non-uniform", "uniform-ecc", "parity-only"),
            intervals=(262144, 1048576),
        )
        assert len(points) == 4


class TestLabels:
    def test_defaults_are_suppressed(self):
        (p,) = grid()
        assert p.label == "non-uniform/secded/256K"

    def test_non_defaults_appear(self):
        (p,) = grid(
            codecs=("dected",), ecc_entries=(2,), write_buffers=(8,),
            variants=("decay",), scenarios=("low-voltage",),
        )
        assert "dected" in p.label
        assert "e2" in p.label
        assert "wb8" in p.label
        assert "decay" in p.label
        assert "low-voltage" in p.label

    def test_baseline_scheme_label_is_short(self):
        (p,) = grid(schemes=("uniform-ecc",))
        assert p.label == "uniform-ecc/secded"


class TestPointKey:
    def test_checkpoint_path_does_not_change_the_key(self):
        (p,) = grid()
        a = task(p)
        b = dataclasses.replace(a, checkpoint="/tmp/somewhere.jsonl")
        assert point_key(a, version="v") == point_key(b, version="v")

    def test_any_describe_field_changes_the_key(self):
        (p,) = grid()
        a = task(p)
        assert point_key(a, "v") != point_key(task(p, trials=201), "v")
        assert point_key(a, "v") != point_key(
            task(dataclasses.replace(p, scenario="low-voltage")), "v"
        )

    def test_code_version_changes_the_key(self):
        (p,) = grid()
        assert point_key(task(p), "v1") != point_key(task(p), "v2")


class TestExplore:
    @pytest.fixture(scope="class")
    def tasks(self):
        points = grid(schemes=("non-uniform", "parity-only"))
        return [task(p) for p in points]

    def test_warm_cache_executes_nothing_and_matches(
        self, tasks, tmp_path_factory
    ):
        cache = ResultCache(str(tmp_path_factory.mktemp("autotune")))
        cold, executed, cached = explore(
            tasks, engine=SweepEngine(jobs=1, cache=cache)
        )
        assert (executed, cached) == (len(tasks), 0)
        warm, executed, cached = explore(
            tasks, engine=SweepEngine(jobs=1, cache=cache)
        )
        assert (executed, cached) == (0, len(tasks))
        assert warm == cold
        assert all(isinstance(m, PointMetrics) for m in warm)

    def test_results_follow_task_order(self, tasks, tmp_path_factory):
        cache = ResultCache(str(tmp_path_factory.mktemp("autotune")))
        explore(tasks, engine=SweepEngine(jobs=1, cache=cache))
        flipped, _, _ = explore(
            list(reversed(tasks)),
            engine=SweepEngine(jobs=1, cache=cache),
        )
        assert [m.point for m in flipped] == [
            t.point for t in reversed(tasks)
        ]

    def test_progress_events_cover_every_point(
        self, tasks, tmp_path_factory
    ):
        cache = ResultCache(str(tmp_path_factory.mktemp("autotune")))
        events = []
        explore(
            tasks,
            engine=SweepEngine(jobs=1, cache=cache),
            progress=events.append,
        )
        points = [e for e in events if e["type"] == "point"]
        assert len(points) == len(tasks)
        assert points[-1]["done"] == points[-1]["total"] == len(tasks)

    def test_checkpoint_dir_survives_an_abort(self, tmp_path):
        """Aborting between batches loses nothing: finished points are
        in the result cache and the rerun completes the rest."""
        from repro.reliability.campaign import CampaignAborted

        points = grid(schemes=("non-uniform", "parity-only"))
        tasks = [task(p) for p in points]
        cache = ResultCache(str(tmp_path / "cache"))
        calls = []

        def abort_after_first():
            return len(calls) >= 1

        def record(event):
            if event.get("type") == "point":
                calls.append(event)

        # Batch size is 2*jobs, so with jobs=1 the first batch holds
        # both points only when len<=2 — force one-point batches by
        # aborting after the first batch's events arrive.
        with pytest.raises(CampaignAborted):
            explore(
                tasks * 2,  # two batches of two at jobs=1
                engine=SweepEngine(jobs=1, cache=cache),
                progress=record,
                should_abort=abort_after_first,
                checkpoint_dir=str(tmp_path / "ckpt"),
            )
        _, executed, cached = explore(
            tasks, engine=SweepEngine(jobs=1, cache=cache),
        )
        assert executed + cached == len(tasks)
        assert cached >= 1  # the aborted run's first batch was kept
