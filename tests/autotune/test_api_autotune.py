"""The autotune/recommend facade surface: validation, wire, service.

Every invalid axis value must be an enumerating :class:`ReproError`
(the CLI exits 2 and the HTTP service 400s on the same message), the
request dataclasses must round-trip through the wire dict format, and
a service-submitted autotune job must produce the same numbers as a
direct facade call.
"""

import json

import pytest

from repro import api
from repro.experiments.pool import ResultCache, SweepEngine
from repro.service import JobStore

GRID = {
    "benchmarks": ("mesa",),
    "schemes": ("non-uniform", "parity-only"),
    "codecs": ("secded",),
    "intervals": (262144,),
    "objectives": ("area", "fit"),
    "trials": 200,
    "trials_per_shard": 100,
    "refs": 4000,
    "warmup": 1000,
}


def request(**overrides):
    return api.AutotuneRequest(**{**GRID, **overrides})


class TestValidation:
    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("benchmarks", (), "must not be empty"),
            ("schemes", ("raid",), "available schemes"),
            ("codecs", ("hamming-weak",), "available codecs"),
            ("intervals", (0,), "positive cycle counts"),
            ("ecc_entries", (-1,), "ecc_entries must be positive"),
            ("write_buffers", (0,), "write_buffers must be positive"),
            ("variants", ("lazy",), "available variants"),
            ("scenarios", ("solar-flare",), "available scenarios"),
            ("objectives", ("area", "latency"), "available objectives"),
            ("objectives", ("area", "area"), "two distinct objectives"),
            ("trials", 0, "trials must be positive"),
            ("kernel", "gpu", "available backends"),
        ],
    )
    def test_bad_axis_values_enumerate(self, field, value, match):
        with pytest.raises(api.ReproError, match=match):
            request(**{field: value})

    def test_ipc_objective_accepts_any_registered_variant(self):
        # The OoO core runs under each point's variant, so the ipc
        # objective composes with the whole registry.
        req = request(objectives=("area", "ipc"),
                      variants=("standard", "eager", "silent-write"))
        assert req.variants == ("standard", "eager", "silent-write")

    def test_recommend_needs_a_budget(self):
        with pytest.raises(api.ReproError, match="fit-budget"):
            api.RecommendRequest(**GRID)

    def test_recommend_budgets_must_be_positive(self):
        with pytest.raises(api.ReproError, match="positive"):
            api.RecommendRequest(**GRID, fit_budget=-1.0)

    def test_recommend_requires_area_and_fit_objectives(self):
        with pytest.raises(api.ReproError, match="area"):
            api.RecommendRequest(
                **{**GRID, "objectives": ("energy", "traffic")},
                fit_budget=100.0,
            )


class TestWire:
    def test_autotune_round_trip(self):
        req = request()
        doc = json.loads(json.dumps(req.as_dict()))
        assert api.request_from_dict(api.AutotuneRequest, doc) == req

    def test_recommend_round_trip_keeps_budgets(self):
        req = api.RecommendRequest(**GRID, fit_budget=500.0,
                                   area_budget=100.0)
        doc = json.loads(json.dumps(req.as_dict()))
        back = api.request_from_dict(api.RecommendRequest, doc)
        assert back == req
        assert back.fit_budget == 500.0

    def test_unknown_field_is_rejected(self):
        with pytest.raises(api.ReproError, match="unknown"):
            api.request_from_dict(
                api.AutotuneRequest, {"bencmarks": ["mesa"]}
            )

    def test_request_key_is_stable(self):
        # Same request, same key — the dedupe invariant.  (Like
        # reliability's `checkpoint`, an explicit checkpoint_dir is
        # part of the identity; service submissions leave it None and
        # the store derives the real directory from the job key.)
        assert api.request_key("autotune", request()) == api.request_key(
            "autotune", request()
        )

    def test_request_key_separates_kinds_and_grids(self):
        auto = api.request_key("autotune", request())
        rec = api.request_key(
            "recommend", api.RecommendRequest(**GRID, fit_budget=1e6)
        )
        other = api.request_key("autotune", request(trials=201))
        assert len({auto, rec, other}) == 3

    def test_kinds_registry_carries_both(self):
        assert "autotune" in api.KINDS and "recommend" in api.KINDS
        assert "autotune" in api.CAMPAIGN_KINDS
        assert "recommend" in api.CAMPAIGN_KINDS


class TestService:
    def test_submitted_job_matches_direct_call(self, tmp_path):
        """Dedupe on submission; served numbers == direct facade call."""
        store = JobStore(
            data_dir=tmp_path / "service", workers=0,
            engine_factory=lambda job: SweepEngine(
                jobs=1, cache=False, progress=False
            ),
        )
        try:
            payload = json.loads(json.dumps(request().as_dict()))
            first, created = store.submit("autotune", payload)
            second, shared = store.submit("autotune", payload)
            assert created and not shared
            assert first is second
            assert store.run_pending() == 1
            served = first.result_doc()
            assert served is not None
        finally:
            store.close()

        direct = api.autotune(
            request(),
            engine=SweepEngine(jobs=1, cache=False, progress=False),
        ).as_dict()
        direct = json.loads(json.dumps(direct))
        assert served["points"] == direct["points"]
        assert served["fronts"] == direct["fronts"]

    def test_recommend_job_serves_choices(self, tmp_path):
        store = JobStore(
            data_dir=tmp_path / "service", workers=0,
            engine_factory=lambda job: SweepEngine(
                jobs=1, cache=ResultCache(str(tmp_path / "cache")),
                progress=False,
            ),
        )
        try:
            req = api.RecommendRequest(**GRID, fit_budget=1e6)
            payload = json.loads(json.dumps(req.as_dict()))
            job, created = store.submit("recommend", payload)
            assert created
            assert store.run_pending() == 1
            doc = job.result_doc()
            assert doc["choices"]["mesa"]["point"]["label"]
            assert doc["choices"]["mesa"]["fit_budget"] == 1e6
        finally:
            store.close()

    def test_infeasible_budget_is_a_job_error(self, tmp_path):
        store = JobStore(
            data_dir=tmp_path / "service", workers=0,
            engine_factory=lambda job: SweepEngine(
                jobs=1, cache=False, progress=False
            ),
        )
        try:
            req = api.RecommendRequest(**GRID, fit_budget=1e-9)
            payload = json.loads(json.dumps(req.as_dict()))
            job, _ = store.submit("recommend", payload)
            store.run_pending()
            assert job.state == "error"
            assert "budgets" in job.error
        finally:
            store.close()
